//! `edkm` — command-line front end for the eDKM reproduction.
//!
//! Subcommands drive the library end to end on the synthetic substrate:
//!
//! ```text
//! edkm compress [--bits N] [--dim D] [--epochs E] [--learners L]
//! edkm sweep    [--bits 2,3,4] [--dim D]
//! edkm inspect  [--bits N] [--dim D]
//! edkm ablate   [--d-model N] [--learners L]
//! edkm table1
//! edkm help
//! ```
//!
//! The heavyweight paper tables have dedicated binaries in `edkm-bench`
//! (`cargo run --release -p edkm-bench --bin table3`); this CLI is the
//! quick interactive path a downstream user reaches for first.

use edkm::autograd::SavedTensorHooks;
use edkm::chaos::{FaultPlan, FaultProfile};
use edkm::cluster::{Cluster, ClusterConfig};
use edkm::core::{run_table2, AblationSetup};
use edkm::core::{CompressSpec, CompressedTensor, CompressionPipeline, EdkmConfig, EdkmHooks};
use edkm::core::{
    EngineConfig, KvBlockConfig, PalettizedModel, Priority, Request, SamplingConfig, ServeEngine,
    ServeModel,
};
use edkm::data::{AlpacaSet, Corpus, Grammar};
use edkm::dist::LearnerGroup;
use edkm::eval::perplexity;
use edkm::nn::{AdamWConfig, LlamaConfig, LlamaModel, LmBatch, TrainConfig, Trainer};
use edkm::tensor::{runtime, DType, Device, Tensor};
use edkm::workload::{
    audit_invariants, replay_cluster_chaos, replay_engine, replay_trace, ChaosReplayConfig,
    EngineReplayConfig, Trace, TraceConfig, TraceKind,
};
use std::process::ExitCode;

/// Value of `--name v` or `--name=v` in `args`, if present.
fn flag_value(args: &[String], name: &str) -> Option<String> {
    for (i, a) in args.iter().enumerate() {
        if a == name {
            return args.get(i + 1).cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn parse_or<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    flag_value(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn usage() {
    eprintln!(
        "usage: edkm <command> [flags]

commands:
  compress   pretrain a small model, fine-tune-and-compress with eDKM,
             report size and perplexity
             flags: --bits N (3)  --dim D (1)  --epochs E (1)  --learners L (8)
  sweep      compress at several bit widths and compare
             flags: --bits 2,3,4  --dim D (1)
  inspect    per-parameter compression report (packed vs entropy-coded)
             flags: --bits N (3)  --dim D (1)  --group-rows G (0 = one LUT)
  ablate     the Table 2 M/U/S ablation at CLI scale
             flags: --d-model N (256)  --learners L (8)
  serve      compress a small pretrained model and serve sampled requests
             through the streaming engine (handle-based token streams over
             the continuous-batching scheduler; optionally tensor-parallel
             over a learner group, paged KV cache)
             flags: --bits N (3)  --batch B (4)  --requests R (6)
                    --new T (16)  --temp F (0.8, 0 = greedy)
                    --shards S (1)  --kv-block-tokens T (16)
                    --kv-blocks B (0 = unbounded pool)
                    --backend scalar|vectorized|vec4|vec8|vec16|sim|auto
                    (LUT-GEMM kernel backend; default auto-detects lanes)
                    --prefix-cache (share cached prompt-prefix KV blocks
                    copy-on-write across requests)
                    --draft-bits N (0 = no speculation; 2 palettizes a
                    draft model that proposes tokens the target verifies —
                    greedy requests only, tokens unchanged)
                    --draft-k K (4; draft tokens proposed per step)
                    --replicas R (1; R > 1 serves a fleet of R engine
                    replicas behind the load-aware edkm-cluster router —
                    per-request tokens identical to a single engine)
                    --affinity (with --replicas: route follow-up prompts
                    to the replica already holding their prefix KV)
                    --chaos-seed S (off; replay a seeded trace through the
                    fleet while a deterministic fault plan kills, stalls,
                    and KV-squeezes replicas — the supervisor respawns,
                    breaks circuits, and rides the degrade ladder; exits
                    non-zero if any global invariant is violated)
                    --chaos-profile replica-churn|slow-brownout|kv-pressure
                    (replica-churn; which fault mix the plan draws)
  bench workload
             generate a seeded request trace and replay it twice: once
             deterministically against the scheduler (step metrics), once
             through the live engine (wall-clock metrics)
             flags: --trace bursty|chat|summarize|classify|mixed (mixed)
                    --seed N (0)  --requests R (12)  --batch B (4)
  table1     the Table 1 cross-device copy scenario
  help       this text

full paper tables: cargo run --release -p edkm-bench --bin table{{1,2,3}}"
    );
}

/// A small pretrained model plus its data, shared by the subcommands.
struct Workbench {
    model: LlamaModel,
    corpus: Corpus,
    alpaca: AlpacaSet,
}

impl Workbench {
    fn build(steps: usize) -> Self {
        let cfg = LlamaConfig {
            vocab: 64,
            d_model: 64,
            n_heads: 4,
            n_layers: 2,
            d_ff: 128,
            max_seq: 33,
        };
        let grammar = Grammar::default_with_seed(0);
        let corpus = Corpus::generate(&grammar, 200, 10, 32, 1);
        let alpaca = AlpacaSet::generate(&grammar, 128, 12, 2);
        let model = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 0);
        let params = model.params();
        let mut trainer = Trainer::new(TrainConfig {
            optim: AdamWConfig {
                lr: 3e-3,
                ..AdamWConfig::default()
            },
            ..TrainConfig::default()
        });
        let batches: Vec<LmBatch> = corpus.batches(8).into_iter().map(LmBatch::new).collect();
        for step in 0..steps {
            trainer.step(&model, &batches[step % batches.len()], &params, None);
        }
        Workbench {
            model,
            corpus,
            alpaca,
        }
    }

    fn fresh_copy(&self) -> LlamaModel {
        let m = LlamaModel::new(
            *self.model.config(),
            self.model.dtype(),
            self.model.device(),
            1,
        );
        m.copy_weights_from(&self.model);
        m
    }

    fn mixed_batches(&self, n: usize) -> Vec<LmBatch> {
        let corpus_b = self.corpus.batches(4);
        let alpaca_b = self.alpaca.batches(4);
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    LmBatch::new(corpus_b[i % corpus_b.len()].clone())
                } else {
                    LmBatch::new(alpaca_b[i % alpaca_b.len()].clone())
                }
            })
            .collect()
    }
}

fn spec_from_flags(args: &[String]) -> CompressSpec {
    let bits: u8 = parse_or(args, "--bits", 3);
    let dim: usize = parse_or(args, "--dim", 1);
    let mut spec = if dim > 1 {
        CompressSpec::vector(bits, dim)
    } else {
        CompressSpec::with_bits(bits)
    };
    spec.epochs = parse_or(args, "--epochs", 1);
    spec.edkm = EdkmConfig::full(parse_or(args, "--learners", 8));
    spec.lut_group_rows = parse_or(args, "--group-rows", 0);
    spec.dkm.iters = 4;
    spec.train.optim.lr = 3e-4;
    spec
}

fn cmd_compress(args: &[String]) {
    let spec = spec_from_flags(args);
    println!(
        "compressing at {} bits (cluster_dim {}, {:.2} bits/weight), {} epoch(s), {} learners",
        spec.bits,
        spec.dkm.cluster_dim,
        spec.dkm.effective_bits_per_weight(),
        spec.epochs,
        spec.edkm.learners
    );
    let wb = Workbench::build(120);
    let held_out = wb.corpus.subsample(23);
    let base_ppl = perplexity(&wb.model, held_out.windows());
    println!(
        "base model: ppl {:.2}, {} bytes (bf16)",
        base_ppl,
        wb.model.native_size_bytes()
    );

    let target = wb.fresh_copy();
    let result =
        CompressionPipeline::new(spec).fine_tune_and_compress(&target, &wb.mixed_batches(40));
    let shipped = wb.fresh_copy();
    result.compressed.apply_to(&shipped);
    let ppl = perplexity(&shipped, held_out.windows());
    println!(
        "compressed: ppl {:.2}, {} bytes packed, {} bytes entropy-coded",
        ppl,
        result.compressed.size_bytes(),
        result.compressed.entropy_size_bytes()
    );
    if let Some(stats) = result.final_step_stats {
        println!(
            "final step hooks: {} packs, {:.0}% deduped, {} bytes offloaded",
            stats.packs,
            stats.dedup_rate() * 100.0,
            stats.offloaded_bytes
        );
    }
}

fn cmd_sweep(args: &[String]) {
    let bits_list: Vec<u8> = flag_value(args, "--bits")
        .unwrap_or_else(|| "2,3,4".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let dim: usize = parse_or(args, "--dim", 1);
    let wb = Workbench::build(120);
    let held_out = wb.corpus.subsample(23);
    let base_ppl = perplexity(&wb.model, held_out.windows());
    println!(
        "{:<10} {:>12} {:>14} {:>10}",
        "config", "bits/weight", "size (bytes)", "ppl"
    );
    println!(
        "{:<10} {:>12} {:>14} {:>10.2}",
        "bf16",
        16,
        wb.model.native_size_bytes(),
        base_ppl
    );
    for &bits in &bits_list {
        let mut spec = if dim > 1 {
            CompressSpec::vector(bits, dim)
        } else {
            CompressSpec::with_bits(bits)
        };
        spec.epochs = 1;
        spec.edkm = EdkmConfig::full(8);
        spec.dkm.iters = 4;
        spec.train.optim.lr = 3e-4;
        let target = wb.fresh_copy();
        let result = CompressionPipeline::new(spec.clone())
            .fine_tune_and_compress(&target, &wb.mixed_batches(30));
        let shipped = wb.fresh_copy();
        result.compressed.apply_to(&shipped);
        let ppl = perplexity(&shipped, held_out.windows());
        println!(
            "{:<10} {:>12.2} {:>14} {:>10.2}",
            format!("eDKM-{bits}b/d{dim}"),
            spec.dkm.effective_bits_per_weight(),
            result.compressed.size_bytes(),
            ppl
        );
    }
}

fn cmd_inspect(args: &[String]) {
    let spec = spec_from_flags(args);
    let wb = Workbench::build(60);
    let compressed = CompressionPipeline::new(spec).export(&wb.model);
    println!(
        "{:<28} {:<12} {:>10} {:>12}",
        "parameter", "kind", "packed B", "entropy B"
    );
    for (name, entry) in compressed.entries() {
        let (kind, packed, entropy) = match entry {
            CompressedTensor::Palettized(p) => (
                format!("palette {}b/d{}", p.bits(), p.cluster_dim()),
                p.size_bytes(),
                p.entropy_size_bytes(),
            ),
            CompressedTensor::PalettizedGrouped(g) => (
                format!("palette {}b x{}", g.bits(), g.groups().len()),
                g.size_bytes(),
                g.entropy_size_bytes(),
            ),
            CompressedTensor::Affine(a) => (
                "affine".to_string() + &format!(" {}b", a.bits()),
                a.size_bytes(),
                a.size_bytes(),
            ),
            CompressedTensor::Native { values, .. } => (
                "native 16b".to_string(),
                edkm::core::palettize::native16_size_bytes(values.len()),
                edkm::core::palettize::native16_size_bytes(values.len()),
            ),
        };
        println!("{name:<28} {kind:<12} {packed:>10} {entropy:>12}");
    }
    println!(
        "\ntotal: {} bytes packed, {} bytes entropy-coded ({} bytes bf16)",
        compressed.size_bytes(),
        compressed.entropy_size_bytes(),
        wb.model.native_size_bytes()
    );
}

fn cmd_ablate(args: &[String]) {
    let setup = AblationSetup {
        d_model: parse_or(args, "--d-model", 256),
        n_heads: 8,
        seq: 16,
        batch: 1,
        bits: 3,
        cluster_dim: 1,
        dkm_iters: 3,
        overlap_pcie: false,
    };
    let learners: usize = parse_or(args, "--learners", 8);
    println!(
        "M/U/S ablation: one attention layer, d_model={}, 3-bit DKM, {} learners\n",
        setup.d_model, learners
    );
    let rows = run_table2(&setup, learners);
    print!("{}", edkm_bench_table(&rows));
}

/// Render ablation rows (duplicated from `edkm-bench` to keep the CLI
/// dependency-light; same layout as the paper's Table 2).
fn edkm_bench_table(rows: &[edkm::core::AblationRow]) -> String {
    let base = rows.first().map(|r| r.peak_cpu_bytes).unwrap_or(1) as f64;
    let mut s = String::from("  M  S  U   Memory(MB)  Reduction(x)  Runtime(sim s)\n");
    for r in rows {
        let t = |b: bool| if b { "✓" } else { "·" };
        s.push_str(&format!(
            "  {}  {}  {}   {:>9.2}   {:>10.1}   {:>12.3}\n",
            t(r.config.marshal),
            t(r.config.shard),
            t(r.config.uniquify),
            r.peak_cpu_bytes as f64 / (1024.0 * 1024.0),
            base / r.peak_cpu_bytes.max(1) as f64,
            r.sim_seconds
        ));
    }
    s
}

/// Drive handle-based serving over any [`ServeModel`] (unsharded or
/// tensor-parallel): the engine owns the scheduler loop on its worker
/// thread, the CLI consumes each request's token stream and prints the
/// responses plus throughput/KV/TTFT stats.
fn serve_with_model<M: ServeModel + 'static>(
    model: M,
    max_batch: usize,
    n_requests: usize,
    n_new: usize,
    temperature: f32,
    speculative: Option<(std::sync::Arc<dyn ServeModel>, usize)>,
) {
    // Leave room for at least one prompt token (CLI convention: clamp bad
    // flag values instead of crashing).
    let max_seq = model.config().max_seq;
    if n_new >= max_seq {
        eprintln!(
            "--new {n_new} exceeds max_seq {max_seq}; clamping to {}",
            max_seq - 1
        );
    }
    let n_new = n_new.min(max_seq - 1);
    let max_prompt = max_seq - n_new;
    let vocab = model.config().vocab;
    let (block_tokens, block_bytes) = {
        let pool = model.kv_pool();
        (pool.block_tokens(), pool.block_bytes())
    };

    let config = EngineConfig {
        max_batch,
        queue_capacity: n_requests.max(1),
    };
    let engine = match speculative {
        Some((draft, draft_k)) => ServeEngine::with_speculative(model, config, draft, draft_k),
        None => ServeEngine::new(model, config),
    };
    let handle = engine.handle();
    let t0 = std::time::Instant::now();
    let sim0 = runtime::sim_seconds();
    let mut streams = Vec::new();
    for id in 0..n_requests as u64 {
        // Every 4th request jumps the FIFO queue — tokens are identical
        // either way (batch-independent sampling), only admission order
        // moves.
        let request = serve_request(id, max_prompt, vocab, n_new, temperature);
        let (rid, stream) = handle.submit(request).expect("engine accepts submissions");
        streams.push((rid, stream));
    }
    // Consume the streams; tokens buffered in each channel while we drain
    // an earlier one are not lost.
    let mut responses = Vec::new();
    for (rid, mut stream) in streams {
        let resp = stream.wait().expect("engine finishes every request");
        responses.push((rid, resp));
    }
    let secs = t0.elapsed().as_secs_f64();
    let stats = handle.stats();
    for (rid, r) in &responses {
        println!("  {rid} ({:?}): {:?}", r.finish, r.tokens);
    }
    println!(
        "\n{} tokens in {:.3}s = {:.1} tok/s over {} batched steps ({:.3} sim s)",
        stats.tokens_generated,
        secs,
        stats.tokens_generated as f64 / secs.max(1e-9),
        stats.decode_steps,
        runtime::sim_seconds() - sim0,
    );
    println!(
        "peak KV {} bytes ({}-token blocks, peak {} blocks, {} preemptions)",
        stats.kv_peak_bytes,
        block_tokens,
        stats.kv_peak_bytes / block_bytes.max(1),
        stats.preemptions
    );
    println!(
        "TTFT (steps ≤ bound): {:?} over bounds {:?} (+overflow)",
        stats.ttft_steps.counts(),
        edkm::core::engine::TTFT_BUCKET_BOUNDS
    );
    println!(
        "kernel backend: {} ({} lane{})",
        stats.kernel_backend,
        stats.kernel_lanes,
        if stats.kernel_lanes == 1 { "" } else { "s" }
    );
    if stats.prefix_hits > 0 {
        println!(
            "prefix cache: {} hits, {} prompt tokens served from shared blocks",
            stats.prefix_hits, stats.prefix_tokens_reused
        );
    }
    if stats.spec_proposed > 0 {
        println!(
            "speculation: {}/{} draft tokens accepted ({:.2} per decode step)",
            stats.spec_accepted,
            stats.spec_proposed,
            stats.spec_accepted as f64 / stats.decode_steps.max(1) as f64
        );
    }
    engine.shutdown();
}

/// The request set both serve drivers submit: short seeded prompts with a
/// deterministic per-request sampling seed, every 4th request high
/// priority.
fn serve_request(id: u64, max_prompt: usize, vocab: usize, n_new: usize, temp: f32) -> Request {
    let plen = (2 + id as usize % 5).min(max_prompt);
    let prompt: Vec<usize> = (0..plen)
        .map(|i| (3 + i * 11 + id as usize * 7) % vocab)
        .collect();
    Request::new(prompt)
        .max_new_tokens(n_new)
        .sampling(if temp > 0.0 {
            SamplingConfig::with_top_k(temp, 8, 100 + id)
        } else {
            SamplingConfig::greedy()
        })
        .priority(if id % 4 == 3 {
            Priority::High
        } else {
            Priority::Normal
        })
}

/// Multi-replica variant of [`serve_with_model`]: the same requests
/// submitted through the prefix-affinity router of an [`edkm::cluster`]
/// fleet. Placement never changes sampled output — per-request tokens are
/// bit-identical to the single-engine path.
fn serve_with_cluster<M: ServeModel + 'static>(
    models: Vec<M>,
    max_batch: usize,
    n_requests: usize,
    n_new: usize,
    temperature: f32,
    affinity: bool,
) {
    let max_seq = models[0].config().max_seq;
    let n_new = n_new.min(max_seq - 1);
    let max_prompt = max_seq - n_new;
    let vocab = models[0].config().vocab;
    let replicas = models.len();
    let cluster = Cluster::new(
        models,
        ClusterConfig {
            engine: EngineConfig {
                max_batch,
                queue_capacity: n_requests.max(1),
            },
            affinity,
            ..ClusterConfig::default()
        },
    );
    let router = cluster.handle();
    let t0 = std::time::Instant::now();
    let mut streams = Vec::new();
    for id in 0..n_requests as u64 {
        let request = serve_request(id, max_prompt, vocab, n_new, temperature);
        let (rid, stream) = router.submit(request).expect("router accepts submissions");
        streams.push((rid, stream));
    }
    let mut responses = Vec::new();
    for (rid, mut stream) in streams {
        let resp = stream.wait().expect("cluster finishes every request");
        responses.push((rid, resp));
    }
    let secs = t0.elapsed().as_secs_f64();
    let stats = router.stats();
    for (rid, r) in &responses {
        println!("  {rid} ({:?}): {:?}", r.finish, r.tokens);
    }
    println!(
        "\n{} tokens in {:.3}s = {:.1} tok/s over {replicas} replicas",
        stats.tokens_generated(),
        secs,
        stats.tokens_generated() as f64 / secs.max(1e-9),
    );
    println!(
        "router: {} dispatched, affinity hit rate {:.3}, {} spills, {} re-routes",
        stats.routed,
        stats.affinity_hit_rate(),
        stats.spills,
        stats.rerouted
    );
    println!(
        "resident KV peak {} bytes across the fleet",
        cluster.resident_peak_bytes()
    );
    cluster.shutdown();
}

/// Flags of the `--chaos-seed` serve path, bundled so the driver stays a
/// plain function call.
struct ChaosServe {
    replicas: usize,
    max_batch: usize,
    n_requests: usize,
    affinity: bool,
    seed: u64,
    profile: FaultProfile,
}

/// `edkm serve --chaos-seed S`: replay a seeded trace through a fleet
/// while a deterministic [`FaultPlan`] kills, stalls, KV-squeezes, and
/// corrupts replicas, with the cluster supervisor driving recovery.
/// Prints the applied faults and the invariant audit; exits non-zero if
/// any global invariant is violated.
fn serve_with_chaos(
    model: PalettizedModel,
    kv: KvBlockConfig,
    prefix_cache: bool,
    run: ChaosServe,
) {
    let cfg = model.config();
    let trace = Trace::generate(&TraceConfig::new(
        TraceKind::Mixed,
        run.seed,
        run.n_requests,
        cfg.vocab,
        cfg.max_seq,
    ));
    // Virtual-step horizon for the fault band: continuous batching decodes
    // up to `max_batch` tokens per engine step, so fleet-wide decode steps
    // scale with the trace's total completion budget over the batch width.
    let total_new: usize = trace.requests().iter().map(|r| r.max_new).sum();
    let horizon = ((total_new / run.max_batch.max(1)) as u64).max(48);
    let plan = FaultPlan::generate(run.profile, run.seed, run.replicas, horizon);
    println!(
        "chaos profile {}, seed {}: {} scheduled fault(s) over a {horizon}-step horizon \
         (plan fingerprint {:016x})",
        run.profile,
        run.seed,
        plan.events().len(),
        plan.fingerprint()
    );
    for event in plan.events() {
        println!("  {event}");
    }
    let report = replay_cluster_chaos(
        |corrupt| {
            if corrupt {
                Err("bit-flipped replica image fails reload verification".to_string())
            } else {
                Ok(model
                    .clone()
                    .with_kv_config(kv)
                    .with_prefix_cache(prefix_cache))
            }
        },
        run.replicas,
        &trace,
        &plan,
        ChaosReplayConfig {
            engine: EngineReplayConfig {
                max_batch: run.max_batch,
                queue_capacity: run.n_requests.max(1),
            },
            affinity: run.affinity,
            ..ChaosReplayConfig::default()
        },
    );
    println!("\nfaults applied:");
    for fault in &report.faults {
        println!(
            "  step {:>4}: {} -> {}",
            fault.at_step, fault.event, fault.applied
        );
    }
    println!(
        "\n{} of {} request(s) survived chaos ({} shed by the degrade ladder), \
         {:.1} tok/s goodput over {:.3}s",
        report.survivors,
        run.n_requests,
        report.shed.len(),
        report.goodput_tok_s,
        report.wall_secs
    );
    if !report.recovery_steps.is_empty() || report.corrupted_reloads > 0 {
        println!(
            "recovery: {} respawn(s), p99 {} virtual steps, {} corrupted reload(s) rejected",
            report.recovery_steps.len(),
            report.recovery_p99_steps(),
            report.corrupted_reloads
        );
    }
    for event in &report.degrade_events {
        println!("degrade: {event}");
    }
    println!(
        "invariants: requests_lost={} index_violations={} survivors_bit_identical={} \
         pools_at_baseline={}",
        report.requests_lost(),
        report.index_violations,
        report.survivors_bit_identical,
        report.pools_at_baseline
    );
    let violations = audit_invariants(&report);
    if violations.is_empty() {
        println!("all chaos invariants hold");
    } else {
        for violation in &violations {
            eprintln!("invariant violated: {violation}");
        }
        std::process::exit(1);
    }
}

fn cmd_serve(args: &[String]) {
    let bits: u8 = parse_or(args, "--bits", 3);
    let max_batch: usize = parse_or(args, "--batch", 4);
    let n_requests: usize = parse_or(args, "--requests", 6);
    let n_new: usize = parse_or(args, "--new", 16);
    let temperature: f32 = parse_or(args, "--temp", 0.8);
    let shards: usize = parse_or(args, "--shards", 1).max(1);
    let replicas: usize = parse_or(args, "--replicas", 1).max(1);
    let affinity = args.iter().any(|a| a == "--affinity");
    let kv_block_tokens: usize = parse_or(args, "--kv-block-tokens", 16).max(1);
    let kv_blocks: usize = parse_or(args, "--kv-blocks", 0);
    let prefix_cache = args.iter().any(|a| a == "--prefix-cache");
    let draft_bits: u8 = parse_or(args, "--draft-bits", 0);
    let draft_k: usize = parse_or(args, "--draft-k", 4).max(1);
    if let Some(backend) = flag_value(args, "--backend") {
        if let Err(e) = edkm::core::infer::launch::set_default_backend(&backend) {
            eprintln!("{e}");
            usage();
            std::process::exit(2);
        }
    }
    println!(
        "serving a {bits}-bit compressed model: {n_requests} requests x {n_new} tokens, \
         continuous batching at batch {max_batch}, {shards} shard(s), \
         {kv_block_tokens}-token KV blocks\n"
    );
    let wb = Workbench::build(80);
    let mut spec = CompressSpec::with_bits(bits);
    spec.dkm.iters = 4;
    // Clamp a bounded pool so the largest request this command submits can
    // always run alone (CLI convention: clamp bad flag values instead of
    // crashing — the scheduler panics on a pool it can never drain).
    let max_seq = wb.model.config().max_seq;
    let n_new_eff = n_new.min(max_seq - 1);
    let plen_max = (2 + n_requests.saturating_sub(1).min(4)).min(max_seq - n_new_eff);
    let min_blocks = (plen_max + n_new_eff).div_ceil(kv_block_tokens);
    let kv_blocks = if kv_blocks != 0 && kv_blocks < min_blocks {
        eprintln!(
            "--kv-blocks {kv_blocks} cannot hold one {}-token request at \
             {kv_block_tokens} tokens/block; raising to {min_blocks}",
            plen_max + n_new_eff
        );
        min_blocks
    } else {
        kv_blocks
    };
    let kv = KvBlockConfig {
        block_tokens: kv_block_tokens,
        max_blocks: kv_blocks,
    };
    let model = match PalettizedModel::from_dense(&wb.model, &spec) {
        Ok(m) => m.with_kv_config(kv).with_prefix_cache(prefix_cache),
        Err(e) => {
            eprintln!("cannot serve this export: {e}");
            return;
        }
    };
    println!(
        "palettized {} -> {} bytes ({:.1}x)",
        wb.model.native_size_bytes(),
        model.size_bytes(),
        wb.model.native_size_bytes() as f64 / model.size_bytes() as f64
    );
    if let Some(seed_text) = flag_value(args, "--chaos-seed") {
        let Ok(seed) = seed_text.parse::<u64>() else {
            eprintln!("--chaos-seed wants an unsigned integer, got {seed_text:?}\n");
            usage();
            std::process::exit(2);
        };
        let profile_name =
            flag_value(args, "--chaos-profile").unwrap_or_else(|| "replica-churn".into());
        let Some(profile) = FaultProfile::parse(&profile_name) else {
            eprintln!(
                "unknown --chaos-profile {profile_name:?} \
                 (want replica-churn, slow-brownout, or kv-pressure)\n"
            );
            usage();
            std::process::exit(2);
        };
        if shards > 1 {
            eprintln!("note: --chaos-seed serves unsharded replicas; ignoring --shards");
        }
        if replicas < 2 {
            eprintln!("note: chaos needs survivors; raising --replicas to 2");
        }
        serve_with_chaos(
            model,
            kv,
            prefix_cache,
            ChaosServe {
                replicas: replicas.max(2),
                max_batch,
                n_requests,
                affinity,
                seed,
                profile,
            },
        );
        return;
    }
    let speculative: Option<(std::sync::Arc<dyn ServeModel>, usize)> = if draft_bits > 0 {
        match PalettizedModel::draft_from_dense(&wb.model, draft_bits) {
            Ok(draft) => {
                println!(
                    "speculative draft: {draft_bits}-bit palettized ({} bytes), \
                     proposing {draft_k} token(s) per step",
                    draft.size_bytes()
                );
                if temperature > 0.0 {
                    eprintln!(
                        "note: speculation only applies to greedy requests; \
                         pass --temp 0 to see it engage"
                    );
                }
                Some((std::sync::Arc::new(draft), draft_k))
            }
            Err(e) => {
                eprintln!("cannot build a {draft_bits}-bit draft: {e}");
                return;
            }
        }
    } else {
        None
    };
    if replicas > 1 {
        if speculative.is_some() {
            eprintln!(
                "note: --draft-bits is single-replica only; serving the \
                 fleet without speculation"
            );
        }
        println!(
            "fleet of {replicas} replicas behind the {} router",
            if affinity {
                "prefix-affinity"
            } else {
                "load-aware"
            }
        );
        // Each replica gets an independent KV pool (`with_kv_config`
        // replaces the pool a clone would otherwise share).
        if shards > 1 {
            let fleet: Vec<_> = (0..replicas)
                .map(|_| {
                    model
                        .clone()
                        .shard(LearnerGroup::new(shards))
                        .with_kv_config(kv)
                        .with_prefix_cache(prefix_cache)
                })
                .collect();
            serve_with_cluster(fleet, max_batch, n_requests, n_new, temperature, affinity);
        } else {
            let fleet: Vec<_> = (0..replicas)
                .map(|_| {
                    model
                        .clone()
                        .with_kv_config(kv)
                        .with_prefix_cache(prefix_cache)
                })
                .collect();
            serve_with_cluster(fleet, max_batch, n_requests, n_new, temperature, affinity);
        }
    } else if shards > 1 {
        let sharded = model
            .shard(LearnerGroup::new(shards))
            .with_kv_config(kv)
            .with_prefix_cache(prefix_cache);
        println!(
            "tensor-parallel over {} learners: {} bytes total (full LUT per shard)",
            shards,
            sharded.size_bytes()
        );
        serve_with_model(
            sharded,
            max_batch,
            n_requests,
            n_new,
            temperature,
            speculative,
        );
    } else {
        serve_with_model(
            model,
            max_batch,
            n_requests,
            n_new,
            temperature,
            speculative,
        );
    }
}

/// `edkm bench workload`: seeded trace generation + the two replay layers
/// at CLI scale (an untrained model — replay measures the serving stack,
/// not model quality).
fn cmd_bench_workload(args: &[String]) -> ExitCode {
    let kind_name = flag_value(args, "--trace").unwrap_or_else(|| "mixed".into());
    let kind = match TraceKind::parse(&kind_name) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("{e}\n");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let seed: u64 = parse_or(args, "--seed", 0);
    let requests: usize = parse_or(args, "--requests", 12).max(1);
    let max_batch: usize = parse_or(args, "--batch", 4).max(1);
    let cfg = LlamaConfig {
        vocab: 64,
        d_model: 32,
        n_heads: 2,
        n_layers: 2,
        d_ff: 64,
        max_seq: 48,
    };
    let dense = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 0);
    let mut spec = CompressSpec::with_bits(3);
    spec.dkm.iters = 2;
    let model = match PalettizedModel::from_dense(&dense, &spec) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot serve this export: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = Trace::generate(&TraceConfig::new(
        kind,
        seed,
        requests,
        cfg.vocab,
        cfg.max_seq,
    ));
    println!(
        "trace {kind} (seed {seed}): {} requests, fingerprint {:016x}",
        trace.requests().len(),
        trace.fingerprint()
    );

    let step = replay_trace(&model, &trace, max_batch);
    println!(
        "\nstep replay (deterministic, batch {max_batch}):\n  \
         {} decode steps, {} tokens, TTFT p50 {} / p99 {} steps\n  \
         deadline-miss rate {:.3}, preemption rate {:.3}, peak KV {} bytes",
        step.counters.decode_steps,
        step.counters.tokens_generated,
        step.ttft_steps_p(0.50),
        step.ttft_steps_p(0.99),
        step.counters.deadline_miss_rate(),
        step.counters.preemption_rate(),
        step.counters.kv_peak_bytes
    );

    let eng = replay_engine(
        model,
        &trace,
        EngineReplayConfig {
            max_batch,
            queue_capacity: requests,
        },
    );
    println!(
        "\nengine replay (wall clock, batch {max_batch}):\n  \
         goodput {:.1} tok/s in {:.3}s, TTFT p50 {:.2} / p99 {:.2} ms\n  \
         per-token p50 {:.3} / p99 {:.3} ms, {} backpressure rejections",
        eng.goodput_tok_s,
        eng.wall_secs,
        eng.ttft_ms_p(0.50),
        eng.ttft_ms_p(0.99),
        eng.per_token_ms_p(0.50),
        eng.per_token_ms_p(0.99),
        eng.backpressure_rejections
    );
    ExitCode::SUCCESS
}

fn cmd_bench(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("workload") => cmd_bench_workload(&args[1..]),
        other => {
            if let Some(other) = other {
                eprintln!("unknown bench: {other}\n");
            }
            usage();
            ExitCode::FAILURE
        }
    }
}

fn cmd_table1() {
    println!("Table 1: GPU/CPU footprint of the cross-device copy scenario\n");
    println!("{:<42} {:>8} {:>8}", "line", "GPU(MB)", "CPU(MB)");
    runtime::reset();
    let report = |line: &str| {
        println!(
            "{:<42} {:>8.0} {:>8.0}",
            line,
            runtime::gpu_live_bytes() as f64 / (1 << 20) as f64,
            runtime::cpu_live_bytes() as f64 / (1 << 20) as f64
        );
    };
    let x0 = Tensor::rand(&[1024, 1024], DType::F32, Device::gpu(), 0);
    report("0: x0 = rand([1024,1024]) on gpu");
    let x1 = x0.reshape(&[1024 * 1024, 1]);
    report("1: x1 = x0.view(-1, 1)");
    let _y0 = x0.to_device(Device::Cpu);
    report("2: y0 = x0.to('cpu')");
    let _y1 = x1.to_device(Device::Cpu);
    report("3: y1 = x1.to('cpu')   <- duplicate!");

    println!("\nsame saves through eDKM marshaling hooks:");
    runtime::reset();
    let x0 = Tensor::rand(&[1024, 1024], DType::F32, Device::gpu(), 0);
    let x1 = x0.reshape(&[1024 * 1024, 1]);
    let hooks = EdkmHooks::new(EdkmConfig::marshal_only());
    let _p0 = hooks.pack(&x0);
    let _p1 = hooks.pack(&x1);
    println!(
        "  pack(x0); pack(x1) -> CPU {} MB ({} copy, {} reference)",
        runtime::cpu_live_bytes() / (1 << 20),
        hooks.stats().misses,
        hooks.stats().direct_hits
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compress") => cmd_compress(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("ablate") => cmd_ablate(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("bench") => return cmd_bench(&args[1..]),
        Some("table1") => cmd_table1(),
        Some("help") | None => {
            usage();
            return ExitCode::SUCCESS;
        }
        Some(other) => {
            eprintln!("unknown command: {other}\n");
            usage();
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
