//! # edkm — facade crate for the eDKM reproduction
//!
//! This crate re-exports the whole eDKM workspace behind one dependency, and
//! hosts the runnable examples (`examples/`) and cross-crate integration
//! tests (`tests/`).
//!
//! The workspace reproduces *eDKM: An Efficient and Accurate Train-time
//! Weight Clustering for Large Language Models* (HPCA 2025,
//! arXiv:2309.00964). See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record of every table and
//! figure.
//!
//! ## Crate map
//!
//! | re-export | crate | role |
//! |---|---|---|
//! | [`tensor`] | `edkm-tensor` | strided tensors, simulated devices, memory/traffic accounting |
//! | [`autograd`] | `edkm-autograd` | tape autograd with saved-tensor hooks |
//! | [`nn`] | `edkm-nn` | LLaMA-style layers, AdamW, trainer |
//! | [`data`] | `edkm-data` | synthetic corpora and benchmark tasks |
//! | [`quant`] | `edkm-quant` | RTN / GPTQ / AWQ / SmoothQuant / LLM-QAT baselines |
//! | [`dist`] | `edkm-dist` | simulated learner group + collectives |
//! | [`core`] | `edkm-core` | DKM layer + eDKM memory optimizations (the paper) |
//! | [`cluster`] | `edkm-cluster` | multi-replica fleet behind a load- and prefix-aware router |
//! | [`chaos`] | `edkm-chaos` | seeded deterministic fault-injection plans and hooks |
//! | [`eval`] | `edkm-eval` | perplexity / multiple-choice / few-shot harness |
//! | [`workload`] | `edkm-workload` | seeded serving traces + replay drivers |
//!
//! ## Quickstart
//!
//! ```
//! use edkm::core::{DkmConfig, DkmLayer};
//! use edkm::tensor::{DType, Device, Tensor};
//!
//! // Cluster a small weight matrix to 8 centroids (3-bit palette).
//! let w = Tensor::randn(&[64, 16], DType::Bf16, Device::Cpu, 0);
//! let layer = DkmLayer::new(DkmConfig::with_bits(3));
//! let out = layer.cluster_tensor(&w);
//! assert_eq!(out.centroids.numel(), 8);
//! ```

pub use edkm_autograd as autograd;
pub use edkm_chaos as chaos;
pub use edkm_cluster as cluster;
pub use edkm_core as core;
pub use edkm_data as data;
pub use edkm_dist as dist;
pub use edkm_eval as eval;
pub use edkm_nn as nn;
pub use edkm_quant as quant;
pub use edkm_tensor as tensor;
pub use edkm_workload as workload;
