//! # edkm-bench
//!
//! Reproduction harness for every table and figure of the eDKM paper.
//!
//! Criterion benches (`benches/`) measure the *mechanics* (tensor moves,
//! hook packing, DKM scaling); the binaries (`src/bin/`) regenerate the
//! paper's artifacts end to end:
//!
//! * `table1` — GPU/CPU footprint of the Table 1 move sequence, with and
//!   without marshaling.
//! * `table2` — the M/U/S ablation (memory, reduction factor, simulated
//!   runtime) on one DKM-clustered attention layer.
//! * `table3` — accuracy of FP16 / RTN / GPTQ / AWQ / LLM-QAT / eDKM
//!   compressed models on the Syn-benchmark suite, plus model sizes.
//! * `figures` — the worked examples of Figs. 1–3 (attention-map geometry,
//!   marshaling walk, uniquification decomposition) and the extension
//!   sweeps (hop limit, learner count, bit width).

use edkm_core::AblationRow;

/// Format a byte count in MB with two decimals.
pub fn mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Render ablation rows exactly like the paper's Table 2 layout.
pub fn paper_table2(rows: &[AblationRow]) -> String {
    let base = rows.first().map(|r| r.peak_cpu_bytes).unwrap_or(1) as f64;
    let mut s = String::new();
    s.push_str("  M  S  U   Memory(MB)  Reduction(x)  Runtime(sim s)\n");
    for r in rows {
        let t = |b: bool| if b { "✓" } else { "·" };
        s.push_str(&format!(
            "  {}  {}  {}   {:>9}   {:>10.1}   {:>12.3}\n",
            t(r.config.marshal),
            t(r.config.shard),
            t(r.config.uniquify),
            mb(r.peak_cpu_bytes),
            base / r.peak_cpu_bytes.max(1) as f64,
            r.sim_seconds
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mb_formats() {
        assert_eq!(mb(1024 * 1024), "1.00");
        assert_eq!(mb(1536 * 1024), "1.50");
    }
}
