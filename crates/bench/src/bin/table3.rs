//! Reproduce Table 3 of the eDKM paper: accuracy of compressed models on
//! the benchmark suite, plus model sizes.
//!
//! Pipeline (the paper's Section 3 at simulation scale, DESIGN.md §2):
//!
//! 1. pretrain a LLaMA-style model on the SynLang corpus (stand-in for
//!    LLaMA-7B's pretraining);
//! 2. compress with each baseline: RTN, GPTQ g128, AWQ g128 (4 and 3 bit),
//!    LLM-QAT (4 bit, data-free), and eDKM (3 bit, fine-tuned on
//!    SynAlpaca with full M+U+S hooks);
//! 3. evaluate every model on Syn-{PIQA, HellaSwag, Winogrande, ARC-e,
//!    ARC-c, TriviaQA, MMLU} and report accuracy + serialized size.
//!
//! Run with `cargo run --release -p edkm-bench --bin table3 [pretrain_steps]`.

use edkm_core::{CompressSpec, CompressionPipeline, EdkmConfig};
use edkm_data::{AlpacaSet, Corpus, Grammar, TaskSuite};
use edkm_eval::{evaluate_suite, perplexity, render_table3, Table3Row};
use edkm_nn::{AdamWConfig, LlamaConfig, LlamaModel, LmBatch, LrSchedule, TrainConfig, Trainer};
use edkm_quant::{
    capture_calibration, quantize_model, AwqQuantizer, GptqQuantizer, QatPipeline, QatSpec,
    RtnQuantizer, WeightQuantizer,
};
use edkm_tensor::{DType, Device};

fn model_config() -> LlamaConfig {
    // Small enough that 3-bit compression visibly damages the model — the
    // regime Table 3 studies. (A larger model saturates every Syn-task even
    // at 3 bits because the grammar is much simpler than natural language.)
    LlamaConfig {
        vocab: 64,
        d_model: 64,
        n_heads: 4,
        n_layers: 2,
        d_ff: 128,
        max_seq: 40,
    }
}

fn fresh_copy(base: &LlamaModel) -> LlamaModel {
    let m = LlamaModel::new(*base.config(), base.dtype(), base.device(), 999);
    m.copy_weights_from(base);
    m
}

fn train_cfg(lr: f32, total: u64) -> TrainConfig {
    TrainConfig {
        optim: AdamWConfig {
            lr,
            ..AdamWConfig::default()
        },
        schedule: LrSchedule::CosineWithWarmup {
            warmup: total / 20 + 1,
            total,
            final_frac: 0.1,
        },
        clip_norm: 1.0,
    }
}

fn main() {
    let pretrain_steps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1500);
    let t0 = std::time::Instant::now();
    let cfg = model_config();
    let grammar = Grammar::default_with_seed(0);
    let corpus = Corpus::generate(&grammar, 600, 12, 32, 1);
    let suite = TaskSuite::generate(&grammar, 200, 2);
    let alpaca = AlpacaSet::generate(&grammar, 512, 12, 3);

    // ---- 1. Pretrain the base model (the "LLaMA-7B" stand-in). ----
    eprintln!("[table3] pretraining base model ({pretrain_steps} steps)...");
    let base = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 0);
    let params = base.params();
    let mut trainer = Trainer::new(train_cfg(3e-3, pretrain_steps as u64));
    let batches: Vec<LmBatch> = corpus.batches(8).into_iter().map(LmBatch::new).collect();
    let mut step = 0usize;
    'outer: loop {
        for b in &batches {
            let loss = trainer.step(&base, b, &params, None);
            step += 1;
            if step.is_multiple_of(100) {
                eprintln!("[table3]   step {step}: loss {loss:.3}");
            }
            if step >= pretrain_steps {
                break 'outer;
            }
        }
    }
    let held_out = corpus.subsample(37);
    eprintln!(
        "[table3] base perplexity: {:.2} (elapsed {:.0}s)",
        perplexity(&base, held_out.windows()),
        t0.elapsed().as_secs_f64()
    );

    let mut rows: Vec<Table3Row> = Vec::new();
    rows.push(Table3Row {
        method: "LLaMA-sim".into(),
        bits: 16,
        size_bytes: base.native_size_bytes(),
        accuracies: evaluate_suite(&base, &suite),
    });

    // ---- 2. Post-training baselines. ----
    let calib_windows: Vec<Vec<usize>> = corpus.windows().iter().take(8).cloned().collect();
    let calib = capture_calibration(&base, &calib_windows, 256);

    let ptq: Vec<Box<dyn WeightQuantizer>> = vec![
        Box::new(RtnQuantizer::new(4, 0)),
        Box::new(GptqQuantizer::new(4, 128)),
        Box::new(AwqQuantizer::new(4, 128)),
        Box::new(GptqQuantizer::new(3, 128)),
        Box::new(AwqQuantizer::new(3, 128)),
    ];
    for q in &ptq {
        let m = fresh_copy(&base);
        let report = quantize_model(&m, q.as_ref(), Some(&calib));
        eprintln!(
            "[table3] {} done ({:.1} KB, elapsed {:.0}s)",
            report.method,
            report.size_bytes as f64 / 1024.0,
            t0.elapsed().as_secs_f64()
        );
        rows.push(Table3Row {
            method: report.method.clone(),
            bits: report.bits,
            size_bytes: report.size_bytes,
            accuracies: evaluate_suite(&m, &suite),
        });
    }

    // ---- 3. LLM-QAT (4 bit, data-free). ----
    eprintln!("[table3] LLM-QAT fine-tuning...");
    let qat_model = fresh_copy(&base);
    let qat_steps = (pretrain_steps / 8).max(10);
    let qat = QatPipeline::new(QatSpec {
        bits: 4,
        group: 0,
        train: train_cfg(1e-4, qat_steps as u64),
        epochs: 1,
    });
    let gen = qat.generate_training_data(&qat_model, qat_steps * 4, 12, 7);
    let qat_batches: Vec<LmBatch> = gen
        .chunks_exact(4)
        .map(|c| LmBatch::new(c.to_vec()))
        .collect();
    qat.fine_tune(&qat_model, &qat_batches);
    let qat_report = quantize_model(&qat_model, &RtnQuantizer::new(4, 0), None);
    rows.push(Table3Row {
        method: "LLM-QAT".into(),
        bits: 4,
        size_bytes: qat_report.size_bytes,
        accuracies: evaluate_suite(&qat_model, &suite),
    });
    eprintln!(
        "[table3] LLM-QAT done (elapsed {:.0}s)",
        t0.elapsed().as_secs_f64()
    );

    // ---- 4. eDKM (3 bit, train-time clustering on SynAlpaca). ----
    eprintln!("[table3] eDKM fine-tune-and-compress...");
    let edkm_model = fresh_copy(&base);
    let edkm_steps = (pretrain_steps / 8).max(10);
    let mut spec = CompressSpec::with_bits(3);
    spec.epochs = 1;
    spec.edkm = EdkmConfig::full(8);
    spec.train = train_cfg(3e-4, edkm_steps as u64);
    spec.dkm.iters = 4;
    // Fine-tune on instructions mixed with pretraining-distribution windows
    // (our SynAlpaca is far narrower than the real Alpaca set; the mix keeps
    // the fine-tune distribution comparably broad — DESIGN.md §2).
    let mut edkm_batches: Vec<LmBatch> = Vec::new();
    let corpus_b = corpus.batches(4);
    let alpaca_b = alpaca.batches(4);
    for i in 0..edkm_steps {
        if i % 2 == 0 {
            edkm_batches.push(LmBatch::new(alpaca_b[i % alpaca_b.len()].clone()));
        } else {
            edkm_batches.push(LmBatch::new(corpus_b[i % corpus_b.len()].clone()));
        }
    }
    let pipeline = CompressionPipeline::new(spec);
    let result = pipeline.fine_tune_and_compress(&edkm_model, &edkm_batches);
    // Evaluate the *hardened* compressed model, exactly what ships.
    let shipped = fresh_copy(&base);
    result.compressed.apply_to(&shipped);
    rows.push(Table3Row {
        method: "eDKM".into(),
        bits: 3,
        size_bytes: result.compressed.size_bytes(),
        accuracies: evaluate_suite(&shipped, &suite),
    });
    if let Some(stats) = result.final_step_stats {
        eprintln!(
            "[table3] eDKM final-step hooks: packs={} dedup={:.0}% offloaded={:.1}KB",
            stats.packs,
            100.0 * stats.dedup_rate(),
            stats.offloaded_bytes as f64 / 1024.0
        );
    }

    // ---- 5. Report. ----
    println!("\n== Table 3: accuracy of compressed models (Syn-benchmarks) ==");
    println!("(paper: LLaMA-7B, real benchmarks — levels differ, ordering is the claim)\n");
    println!("{}", render_table3(&rows));
    println!("chance:    PIQA/Winogrande 50.0 | HellaSwag/ARC/MMLU 25.0 | TriviaQA 0.0");
    eprintln!("\n(wall time: {:.0}s)", t0.elapsed().as_secs_f64());
}
