//! Serial vs threaded palettized inference (`PalettizedLinear::forward_serial`
//! vs `forward_batch`) on the deployment-scale case the runtime refactor
//! targets: a `[2048 × 2048]` 3-bit palette at batch 32.
//!
//! Prints a comparison table and writes a `BENCH_infer.json` perf record so
//! later PRs have a trajectory to compare against.
//!
//! Run with `cargo run --release -p edkm-bench --bin infer`.

use edkm_core::palettize::PalettizedTensor;
use edkm_core::PalettizedLinear;
use edkm_tensor::{runtime, DType, Device, Tensor};
use std::hint::black_box;
use std::time::Instant;

const OUT_FEATURES: usize = 2048;
const IN_FEATURES: usize = 2048;
const BITS: u8 = 3;
const BATCH: usize = 32;
const REPS: usize = 5;

fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    runtime::reset();
    let threads = rayon::current_num_threads();
    println!("== palettized inference: serial loop vs forward_batch ==");
    println!(
        "[{OUT_FEATURES} x {IN_FEATURES}] {BITS}-bit palette, batch {BATCH}, {threads} threads, best of {REPS}\n"
    );

    // Deployment-shaped weight: 8 centroids (3 bits), nearest assignment.
    let w =
        Tensor::randn(&[OUT_FEATURES, IN_FEATURES], DType::F32, Device::Cpu, 0).map(|v| v * 0.02);
    let centroids = Tensor::from_vec(
        (0..1 << BITS)
            .map(|i| (i as f32 - 3.5) * 0.01)
            .collect::<Vec<f32>>(),
        &[1 << BITS, 1],
        DType::F32,
        Device::Cpu,
    );
    let lin = PalettizedLinear::new(PalettizedTensor::from_nearest(&w, &centroids, BITS, 1));
    let x = Tensor::randn(&[BATCH, IN_FEATURES], DType::F32, Device::Cpu, 1);

    let identical = lin.forward_serial(&x).to_vec() == lin.forward_batch(&x).to_vec();
    assert!(
        identical,
        "forward_batch must match forward_serial bit for bit"
    );

    // `forward` now delegates to the batch path, so the serial baseline is
    // the explicit single-threaded reference.
    let serial_s = best_of(REPS, || {
        black_box(lin.forward_serial(black_box(&x)));
    });
    let batch_s = best_of(REPS, || {
        black_box(lin.forward_batch(black_box(&x)));
    });
    let speedup = serial_s / batch_s;

    println!("  serial forward       {:>9.3} ms", serial_s * 1e3);
    println!("  forward_batch        {:>9.3} ms", batch_s * 1e3);
    println!("  speedup              {speedup:>9.2}x");
    println!("  bit-identical        {identical}");

    let record = format!(
        "{{\n  \"bench\": \"palettized_infer\",\n  \"out_features\": {OUT_FEATURES},\n  \
         \"in_features\": {IN_FEATURES},\n  \"bits\": {BITS},\n  \"batch\": {BATCH},\n  \
         \"threads\": {threads},\n  \"reps\": {REPS},\n  \"serial_ms\": {:.3},\n  \
         \"forward_batch_ms\": {:.3},\n  \"speedup\": {:.3},\n  \"bit_identical\": {identical}\n}}\n",
        serial_s * 1e3,
        batch_s * 1e3,
        speedup
    );
    std::fs::write("BENCH_infer.json", &record).expect("write BENCH_infer.json");
    println!("\nwrote BENCH_infer.json");
    if threads >= 4 && speedup < 2.0 {
        eprintln!("WARNING: expected >= 2x speedup with {threads} threads, got {speedup:.2}x");
    }
}
