//! Serial vs tiled palettized inference (`PalettizedLinear::forward_serial`
//! vs `forward_batch`) on the deployment-scale case the kernel rewrite
//! targets: a `[2048 × 2048]` 3-bit palette at batch 32.
//!
//! Prints a comparison table and writes a `BENCH_infer.json` perf record so
//! later PRs have a trajectory to compare against.
//!
//! Flags:
//! * `--smoke` — a seconds-scale shape for CI (records `"smoke": true`);
//! * `--min-speedup <x>` — exit non-zero if `forward_batch` does not reach
//!   `x`× the serial reference (CI passes `--min-speedup 1.0` on
//!   multi-core runners, so a `speedup < 1.0` regression can never ship
//!   silently again);
//! * `--backend <name>` — LUT-GEMM kernel backend for the headline
//!   `forward_batch` timing (`scalar`, `vectorized`, `vec4`/`vec8`/`vec16`,
//!   `sim`, `auto`). Independent of the flag, the bench also sweeps every
//!   fixed lane width through the launch layer and records per-backend
//!   timings (`backend_scalar_ms`, `backend_vec{4,8,16}_ms`).
//!
//! Run with `cargo run --release -p edkm-bench --bin infer [-- --smoke]`.

use edkm_core::infer::launch;
use edkm_core::palettize::PalettizedTensor;
use edkm_core::{PalettizedLinear, ScratchArena};
use edkm_tensor::{runtime, DType, Device, Tensor};
use std::hint::black_box;
use std::time::Instant;

const BITS: u8 = 3;

struct Shape {
    out_features: usize,
    in_features: usize,
    batch: usize,
    reps: usize,
}

impl Shape {
    fn full() -> Self {
        Shape {
            out_features: 2048,
            in_features: 2048,
            batch: 32,
            reps: 5,
        }
    }

    fn smoke() -> Self {
        Shape {
            out_features: 512,
            in_features: 512,
            batch: 8,
            reps: 3,
        }
    }
}

fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn parse_args() -> (bool, Option<f64>) {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let min_speedup = args.iter().position(|a| a == "--min-speedup").map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or_else(|| {
                eprintln!("--min-speedup needs a numeric argument");
                std::process::exit(2);
            })
    });
    if let Some(i) = args.iter().position(|a| a == "--backend") {
        let name = args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--backend needs a backend name");
            std::process::exit(2);
        });
        if let Err(e) = launch::set_default_backend(&name) {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
    (smoke, min_speedup)
}

fn main() {
    let (smoke, min_speedup) = parse_args();
    let shape = if smoke { Shape::smoke() } else { Shape::full() };
    let (out_features, in_features, batch, reps) = (
        shape.out_features,
        shape.in_features,
        shape.batch,
        shape.reps,
    );
    runtime::reset();
    let threads = rayon::current_num_threads();
    println!("== palettized inference: serial loop vs tiled forward_batch ==");
    println!(
        "[{out_features} x {in_features}] {BITS}-bit palette, batch {batch}, {threads} threads, best of {reps}{}\n",
        if smoke { " (smoke)" } else { "" }
    );

    // Deployment-shaped weight: 8 centroids (3 bits), nearest assignment.
    let w =
        Tensor::randn(&[out_features, in_features], DType::F32, Device::Cpu, 0).map(|v| v * 0.02);
    let centroids = Tensor::from_vec(
        (0..1 << BITS)
            .map(|i| (i as f32 - 3.5) * 0.01)
            .collect::<Vec<f32>>(),
        &[1 << BITS, 1],
        DType::F32,
        Device::Cpu,
    );
    let lin = PalettizedLinear::new(PalettizedTensor::from_nearest(&w, &centroids, BITS, 1));
    let x = Tensor::randn(&[batch, in_features], DType::F32, Device::Cpu, 1);

    let identical = lin.forward_serial(&x).to_vec() == lin.forward_batch(&x).to_vec();
    assert!(
        identical,
        "forward_batch must match forward_serial bit for bit"
    );

    // `forward` delegates to the batch path, so the serial baseline is
    // the explicit single-threaded reference.
    let serial_s = best_of(reps, || {
        black_box(lin.forward_serial(black_box(&x)));
    });
    let batch_s = best_of(reps, || {
        black_box(lin.forward_batch(black_box(&x)));
    });
    let speedup = serial_s / batch_s;
    let (backend_name, backend_lanes) = launch::active();
    let cpu_features = launch::cpu_features();

    println!("  serial forward       {:>9.3} ms", serial_s * 1e3);
    println!(
        "  forward_batch        {:>9.3} ms  ({backend_name}, {backend_lanes} lanes)",
        batch_s * 1e3
    );
    println!("  speedup              {speedup:>9.2}x");
    println!("  bit-identical        {identical}");

    // Per-backend sweep through the launch layer: the scalar oracle plus
    // every fixed lane width, each checked bit-identical against the serial
    // reference before it is timed. Uses `backend_by_name` directly so the
    // sweep never perturbs the process-wide default backend selection.
    let reference = lin.forward_serial(&x).to_vec();
    let xv = x.to_vec();
    let kernel = lin.kernel();
    let mut arena = ScratchArena::new();
    let mut sweep_out = vec![0.0f32; batch * out_features];
    let mut sweep_ms = Vec::new();
    println!();
    for sel in ["scalar", "vec4", "vec8", "vec16"] {
        let backend = launch::backend_by_name(sel).expect("registered backend");
        kernel.launch_with(backend, &xv, batch, &mut sweep_out, &mut arena);
        assert_eq!(
            sweep_out, reference,
            "backend {sel} must match the serial reference bit for bit"
        );
        let s = best_of(reps, || {
            kernel.launch_with(
                backend,
                black_box(&xv),
                batch,
                black_box(&mut sweep_out),
                &mut arena,
            );
        });
        println!("  backend {sel:<12} {:>9.3} ms", s * 1e3);
        sweep_ms.push((sel, s * 1e3));
    }

    let sweep_json: String = sweep_ms
        .iter()
        .map(|(sel, ms)| format!("  \"backend_{sel}_ms\": {ms:.3},\n"))
        .collect();
    let record = format!(
        "{{\n  \"bench\": \"palettized_infer\",\n  \"smoke\": {smoke},\n  \
         \"out_features\": {out_features},\n  \
         \"in_features\": {in_features},\n  \"bits\": {BITS},\n  \"batch\": {batch},\n  \
         \"threads\": {threads},\n  \"reps\": {reps},\n  \
         \"kernel_backend\": \"{backend_name}\",\n  \"kernel_lanes\": {backend_lanes},\n  \
         \"cpu_features\": \"{cpu_features}\",\n  \"serial_ms\": {:.3},\n  \
         \"forward_batch_ms\": {:.3},\n{sweep_json}  \"speedup\": {:.3},\n  \
         \"bit_identical\": {identical}\n}}\n",
        serial_s * 1e3,
        batch_s * 1e3,
        speedup
    );
    std::fs::write("BENCH_infer.json", &record).expect("write BENCH_infer.json");
    println!("\nwrote BENCH_infer.json");
    if threads >= 4 && speedup < 2.0 {
        eprintln!("WARNING: expected >= 2x speedup with {threads} threads, got {speedup:.2}x");
    }
    if speedup < 1.0 {
        eprintln!(
            "WARNING: forward_batch is SLOWER than the serial reference ({speedup:.3}x) — \
             a regression if this machine has multiple cores"
        );
    }
    if let Some(min) = min_speedup {
        if speedup < min {
            eprintln!("FAIL: speedup {speedup:.3}x below the --min-speedup {min} gate");
            std::process::exit(1);
        }
        println!("min-speedup gate {min}x: ok");
    }
}
