//! Reproduce Table 1 of the eDKM paper: per-line GPU/CPU memory footprint
//! of a tensor moving across devices, without and with marshaling.
//!
//! Run with `cargo run -p edkm-bench --bin table1`.

use edkm_autograd::SavedTensorHooks;
use edkm_core::{EdkmConfig, EdkmHooks};
use edkm_tensor::{runtime, DType, Device, Tensor};

fn mb(b: usize) -> usize {
    b / (1024 * 1024)
}

fn main() {
    println!("== Table 1: cross-device copies duplicate storage ==\n");
    println!("line  code                                GPU(MB)  CPU(MB)");

    // --- As-is (stock PyTorch behaviour; the paper's Table 1). ---
    runtime::reset();
    let x0 = Tensor::rand(&[1024, 1024], DType::F32, Device::gpu(), 42);
    println!(
        "0     x0 = rand([1024,1024]) on gpu      {:>7}  {:>7}",
        mb(runtime::gpu_live_bytes()),
        mb(runtime::cpu_live_bytes())
    );
    let x1 = x0.reshape(&[1024 * 1024, 1]);
    println!(
        "1     x1 = x0.view(-1, 1)                {:>7}  {:>7}",
        mb(runtime::gpu_live_bytes()),
        mb(runtime::cpu_live_bytes())
    );
    let _y0 = x0.to_device(Device::Cpu);
    println!(
        "2     y0 = x0.to(cpu)                    {:>7}  {:>7}",
        mb(runtime::gpu_live_bytes()),
        mb(runtime::cpu_live_bytes())
    );
    let _y1 = x1.to_device(Device::Cpu);
    println!(
        "3     y1 = x1.to(cpu)                    {:>7}  {:>7}   <- duplicate storage",
        mb(runtime::gpu_live_bytes()),
        mb(runtime::cpu_live_bytes())
    );
    println!("(paper: 4 / 4 / 8 MB on CPU after lines 2-3)\n");

    // --- With the eDKM marshaling layer (Fig. 2 (b)). ---
    println!("with marshaling (offload through EdkmHooks, M only):");
    runtime::reset();
    let x0 = Tensor::rand(&[1024, 1024], DType::F32, Device::gpu(), 42);
    let x1 = x0.reshape(&[1024 * 1024, 1]);
    let hooks = EdkmHooks::new(EdkmConfig::marshal_only());
    let _p0 = hooks.pack(&x0);
    println!(
        "2'    pack(x0) -> offloaded              {:>7}  {:>7}",
        mb(runtime::gpu_live_bytes()),
        mb(runtime::cpu_live_bytes())
    );
    let _p1 = hooks.pack(&x1);
    println!(
        "3'    pack(x1) -> reference + view op    {:>7}  {:>7}   <- no duplicate",
        mb(runtime::gpu_live_bytes()),
        mb(runtime::cpu_live_bytes())
    );
    let s = hooks.stats();
    println!(
        "\nhook stats: packs={} misses={} direct_hits={} (dedup rate {:.0}%)",
        s.packs,
        s.misses,
        s.direct_hits,
        100.0 * s.dedup_rate()
    );
    let t = runtime::transfer_snapshot();
    println!(
        "PCIe traffic: d2h {} MB in {} transaction(s)",
        mb(t.d2h_bytes),
        t.d2h_txns
    );
}
