//! Compressed serving throughput under the streaming engine: sequential
//! single-request decoding vs the handle-based [`ServeEngine`] at batch
//! 1/4/8 over a whole palettized decoder, plus TTFT and per-token latency
//! percentiles measured off the token streams.
//!
//! On top of the microbenchmark, two macro sections:
//!
//! - **Workload sweep** — every [`TraceKind`] replayed twice over a
//!   bounded-KV model: once deterministically against the scheduler
//!   (TTFT-in-steps percentiles, deadline-miss and preemption rates —
//!   the numbers CI SLO gates pin), once through the live engine
//!   (goodput, wall-clock TTFT/per-token percentiles, backpressure
//!   rejections). Naturally finished requests must generate identical
//!   tokens in both replays.
//! - **Quality/throughput frontier** — a pretrained model exported at
//!   lossless (2^16 palette), 4-bit, and 3-bit; each setting reports
//!   perplexity and multichoice accuracy from `edkm-eval` next to the
//!   serving goodput of the same palettes.
//!
//! Writes `BENCH_serve.json`. The deployment-shaped full run uses a
//! 4-layer / d_model 256 model; `--smoke` shrinks everything so CI can
//! exercise the serving path on every PR in seconds.
//!
//! Run with `cargo run --release -p edkm-bench --bin serve [-- --smoke]`.
//! `--slo` turns the gates (`--max-deadline-miss`, `--max-ttft-p99-steps`,
//! the lossless accuracy floor) into a non-zero exit.
//!
//! Acceptance (4-core CI runner): ≥ 2× tokens/sec at batch 8 over
//! sequential decode. Single-core machines record ~1× parity — the batched
//! projection GEMMs fall below the parallel work threshold's win.

use edkm_chaos::{FaultPlan, FaultProfile};
use edkm_cluster::{Cluster, ClusterConfig};
use edkm_core::{
    CompressSpec, CompressionPipeline, EngineConfig, Generator, KvBlockConfig, PalettizedModel,
    SamplingConfig, ServeEngine, ServeModel, ServeResponse, TokenEvent,
};
use edkm_data::{Corpus, Grammar, TaskSuite};
use edkm_dist::LearnerGroup;
use edkm_eval::{evaluate_suite, perplexity};
use edkm_nn::{AdamWConfig, LlamaConfig, LlamaModel, LmBatch, LrSchedule, TrainConfig, Trainer};
use edkm_tensor::{runtime, DType, Device};
use edkm_workload::{
    audit_invariants, replay_cluster_chaos, replay_engine, replay_router, replay_trace,
    replay_trace_speculative, ChaosReplayConfig, EngineReplayConfig, Trace, TraceConfig, TraceKind,
};
use std::sync::Arc;
use std::time::Instant;

struct Workload {
    config: LlamaConfig,
    bits: u8,
    dkm_iters: usize,
    n_requests: usize,
    gen_tokens: usize,
    /// Requests per generated trace in the workload sweep.
    trace_requests: usize,
    /// Pretraining steps for the quality/throughput frontier model.
    frontier_steps: usize,
}

impl Workload {
    fn full() -> Self {
        Workload {
            config: LlamaConfig {
                vocab: 256,
                d_model: 256,
                n_heads: 4,
                n_layers: 4,
                d_ff: 512,
                max_seq: 96,
            },
            bits: 3,
            dkm_iters: 4,
            n_requests: 8,
            gen_tokens: 48,
            trace_requests: 24,
            frontier_steps: 300,
        }
    }

    fn smoke() -> Self {
        Workload {
            config: LlamaConfig {
                vocab: 64,
                d_model: 32,
                n_heads: 2,
                n_layers: 2,
                d_ff: 64,
                max_seq: 48,
            },
            bits: 3,
            dkm_iters: 2,
            n_requests: 4,
            gen_tokens: 8,
            trace_requests: 8,
            frontier_steps: 40,
        }
    }

    fn prompts(&self) -> Vec<Vec<usize>> {
        (0..self.n_requests as u64)
            .map(|id| {
                (0..4 + (id as usize % 5))
                    .map(|i| (i * 7 + id as usize) % self.config.vocab)
                    .collect()
            })
            .collect()
    }
}

fn tok_per_sec(tokens: u64, secs: f64) -> f64 {
    tokens as f64 / secs.max(1e-9)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Wall-clock latency record of one engine run.
struct Latencies {
    /// Submission → first token, per request, milliseconds.
    ttft_ms: Vec<f64>,
    /// Gap between consecutive tokens of a request, milliseconds.
    per_token_ms: Vec<f64>,
}

impl Latencies {
    fn sorted(mut self) -> Self {
        self.ttft_ms.sort_by(|a, b| a.total_cmp(b));
        self.per_token_ms.sort_by(|a, b| a.total_cmp(b));
        self
    }
}

/// One engine run over `prompts`: wall seconds, simulated seconds, the
/// final stats snapshot, responses (sorted by id) and stream latencies.
/// Every consumer drains its stream on its own thread so token arrival
/// times are real, not serialized by the measuring loop.
fn run_engine<M: ServeModel + 'static>(
    model: M,
    prompts: &[Vec<usize>],
    gen_tokens: usize,
    max_batch: usize,
) -> (
    f64,
    f64,
    edkm_core::StatsSnapshot,
    Vec<ServeResponse>,
    Latencies,
) {
    let engine = ServeEngine::new(
        model,
        EngineConfig {
            max_batch,
            queue_capacity: prompts.len().max(1),
        },
    );
    let handle = engine.handle();
    let sim0 = runtime::sim_seconds();
    let t0 = Instant::now();
    let consumers: Vec<_> = prompts
        .iter()
        .map(|prompt| {
            let (_, mut stream) = handle
                .submit(
                    edkm_core::Request::new(prompt.clone())
                        .max_new_tokens(gen_tokens)
                        .sampling(SamplingConfig::greedy()),
                )
                .expect("engine accepts the workload");
            let submitted = Instant::now();
            std::thread::spawn(move || {
                let mut ttft = None;
                let mut gaps = Vec::new();
                let mut last = submitted;
                let mut resp = None;
                while let Some(ev) = stream.next_event() {
                    match ev {
                        TokenEvent::Token { index, .. } => {
                            let now = Instant::now();
                            if index == 0 {
                                ttft = Some(now.duration_since(submitted).as_secs_f64() * 1e3);
                            } else {
                                gaps.push(now.duration_since(last).as_secs_f64() * 1e3);
                            }
                            last = now;
                        }
                        TokenEvent::Finished(r) => resp = Some(r),
                    }
                }
                (resp.expect("terminal event"), ttft, gaps)
            })
        })
        .collect();
    let mut responses = Vec::new();
    let mut lat = Latencies {
        ttft_ms: Vec::new(),
        per_token_ms: Vec::new(),
    };
    for c in consumers {
        let (resp, ttft, gaps) = c.join().expect("stream consumer");
        responses.push(resp);
        lat.ttft_ms.extend(ttft);
        lat.per_token_ms.extend(gaps);
    }
    let secs = t0.elapsed().as_secs_f64();
    let sim_s = runtime::sim_seconds() - sim0;
    let stats = handle.stats();
    engine.shutdown();
    responses.sort_by_key(|r| r.id);
    (secs, sim_s, stats, responses, lat.sorted())
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_or<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    flag_value(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One trace kind's sweep row: deterministic step-replay metrics plus
/// wall-clock engine-replay metrics over the same bounded-KV model.
struct WorkloadRow {
    kind: TraceKind,
    requests: usize,
    goodput_tok_s: f64,
    ttft_ms_p50: f64,
    ttft_ms_p99: f64,
    per_token_ms_p50: f64,
    per_token_ms_p99: f64,
    ttft_steps_p50: u64,
    ttft_steps_p99: u64,
    deadline_miss_rate: f64,
    preemption_rate: f64,
    preemptions: u64,
    expired: u64,
    backpressure_rejections: u64,
}

/// Replay every trace kind over `model` with a KV pool sized for ~3
/// max-length sequences, so long-context kinds contend for blocks and
/// exercise preemption. Panics if a naturally finished request generated
/// different tokens in the step replay and the engine replay.
fn run_workload_sweep(model: &PalettizedModel, wl: &Workload, seed: u64) -> Vec<WorkloadRow> {
    let mut rows = Vec::new();
    for kind in TraceKind::ALL {
        let trace = Trace::generate(&TraceConfig::new(
            kind,
            seed,
            wl.trace_requests,
            wl.config.vocab,
            wl.config.max_seq,
        ));
        let block_tokens = 8;
        let per_req = trace.max_tokens_per_request().div_ceil(block_tokens);
        let bounded = model.clone().with_kv_config(KvBlockConfig {
            block_tokens,
            max_blocks: per_req * 3,
        });
        let step = replay_trace(&bounded, &trace, 8);
        let eng = replay_engine(
            bounded,
            &trace,
            EngineReplayConfig {
                max_batch: 8,
                queue_capacity: (wl.trace_requests / 3).max(2),
            },
        );
        assert_eq!(
            step.outcomes.len(),
            eng.outcomes.len(),
            "{kind}: replays retired different request counts"
        );
        for (s, e) in step.outcomes.iter().zip(&eng.outcomes) {
            assert_eq!(s.id, e.id, "{kind}: replay outcome ids diverged");
            if !s.finish.is_aborted() && !e.finish.is_aborted() {
                assert_eq!(
                    s.tokens, e.tokens,
                    "{kind}: request {} tokens diverged between step and engine replay",
                    s.id
                );
            }
        }
        rows.push(WorkloadRow {
            kind,
            requests: wl.trace_requests,
            goodput_tok_s: eng.goodput_tok_s,
            ttft_ms_p50: eng.ttft_ms_p(0.50),
            ttft_ms_p99: eng.ttft_ms_p(0.99),
            per_token_ms_p50: eng.per_token_ms_p(0.50),
            per_token_ms_p99: eng.per_token_ms_p(0.99),
            ttft_steps_p50: step.ttft_steps_p(0.50),
            ttft_steps_p99: step.ttft_steps_p(0.99),
            deadline_miss_rate: step.counters.deadline_miss_rate(),
            preemption_rate: step.counters.preemption_rate(),
            preemptions: step.counters.preemptions,
            expired: step.counters.expired,
            backpressure_rejections: eng.backpressure_rejections,
        });
    }
    rows
}

/// Metrics of the prefix-sharing + speculative-decoding section.
struct PrefixSpecRow {
    /// Fraction of admissions that adopted cached prefix blocks.
    prefix_hit_rate: f64,
    /// Prompt tokens served from shared blocks instead of prefill.
    prefix_tokens_reused: u64,
    /// Peak live KV bytes with the prefix cache off.
    kv_peak_off: usize,
    /// Peak live KV bytes with the prefix cache on (deduplicated).
    kv_peak_on: usize,
    /// Accepted draft tokens per decode step.
    accepted_per_step: f64,
    /// Draft tokens proposed / accepted across the speculative replay.
    spec_proposed: u64,
    spec_accepted: u64,
    /// Prefix-on and speculative replays both matched the plain replay
    /// token for token.
    tokens_identical: bool,
}

/// Replay the chat trace three ways over an unbounded pool: plain, with
/// the prefix cache sharing prompt blocks copy-on-write, and with a
/// 2-bit palettized draft proposing `draft_k` tokens per step. Sharing
/// and speculation must both leave every token unchanged; the row
/// records what they bought (reused prefill, deduplicated peak KV,
/// accepted drafts per step).
fn run_prefix_spec(
    model: &PalettizedModel,
    dense: &LlamaModel,
    wl: &Workload,
    seed: u64,
    draft_k: usize,
) -> PrefixSpecRow {
    // Enough chat sessions that turns sharing a history overlap in
    // flight at the peak step — that concurrency is what deduplication
    // saves (the tiny smoke trace alone rarely lines it up).
    let trace = Trace::generate(&TraceConfig::new(
        TraceKind::Chat,
        seed,
        wl.trace_requests.max(24),
        wl.config.vocab,
        wl.config.max_seq,
    ));
    let kv = KvBlockConfig {
        block_tokens: 4,
        max_blocks: 0,
    };
    let plain = replay_trace(&model.clone().with_kv_config(kv), &trace, 8);
    let shared = replay_trace(
        &model.clone().with_kv_config(kv).with_prefix_cache(true),
        &trace,
        8,
    );
    let draft = Arc::new(PalettizedModel::draft_from_dense(dense, 2).expect("2-bit draft export"));
    let spec =
        replay_trace_speculative(&model.clone().with_kv_config(kv), &trace, 8, draft, draft_k);
    let same = |a: &edkm_workload::StepReplayReport, b: &edkm_workload::StepReplayReport| {
        a.outcomes.len() == b.outcomes.len()
            && a.outcomes
                .iter()
                .zip(&b.outcomes)
                .all(|(x, y)| x.id == y.id && x.tokens == y.tokens)
    };
    PrefixSpecRow {
        prefix_hit_rate: shared.counters.prefix_hit_rate(),
        prefix_tokens_reused: shared.counters.prefix_tokens_reused,
        kv_peak_off: plain.counters.kv_peak_bytes,
        kv_peak_on: shared.counters.kv_peak_bytes,
        accepted_per_step: spec.counters.accepted_per_step(),
        spec_proposed: spec.counters.spec_proposed,
        spec_accepted: spec.counters.spec_accepted,
        tokens_identical: same(&plain, &shared) && same(&plain, &spec),
    }
}

/// Metrics of the multi-replica cluster section.
struct ClusterRow {
    /// Fleet goodput at 1 / 2 / 4 replicas, affinity routing on.
    replica_tok_s: [f64; 3],
    /// Fraction of dispatches that landed on their prefix replica
    /// (4 replicas, affinity on).
    affinity_hit_rate: f64,
    /// Fleet-wide peak of physical resident KV bytes (live sequences plus
    /// prefix-cache residency), 4 replicas, affinity on.
    kv_peak_affinity_on: usize,
    /// Same fleet and trace with affinity routing off: session turns
    /// scatter, every replica re-prefills and retains its own copy of the
    /// conversation, so the fleet holds strictly more resident KV.
    kv_peak_affinity_off: usize,
    /// Every cluster replay (1/2/4 replicas, affinity on and off)
    /// reproduced the bare single-engine tokens per request.
    tokens_identical: bool,
}

/// Replay the chat trace through 1-, 2- and 4-replica clusters (affinity
/// routing on) plus a 4-replica affinity-off control, next to a bare
/// single-engine reference. Placement must never change sampled output:
/// per-request tokens are asserted bit-identical across every run. The
/// affinity-on vs -off aggregate KV peaks record what session stickiness
/// buys — co-located chat turns deduplicate their history blocks inside
/// one replica instead of prefilling them on several.
fn run_cluster_sweep(model: &PalettizedModel, wl: &Workload, seed: u64) -> ClusterRow {
    let trace = Trace::generate(&TraceConfig::new(
        TraceKind::Chat,
        seed,
        wl.trace_requests.max(24),
        wl.config.vocab,
        wl.config.max_seq,
    ));
    let kv = KvBlockConfig {
        block_tokens: 4,
        max_blocks: 0,
    };
    let fleet = |n: usize| -> Vec<PalettizedModel> {
        (0..n)
            .map(|_| model.clone().with_kv_config(kv).with_prefix_cache(true))
            .collect()
    };
    let engine_cfg = EngineReplayConfig {
        max_batch: 8,
        queue_capacity: trace.requests().len().max(1),
    };
    let bare = replay_engine(
        model.clone().with_kv_config(kv).with_prefix_cache(true),
        &trace,
        engine_cfg,
    );
    let matches_bare = |rep: &edkm_workload::ClusterReplayReport| -> bool {
        rep.outcomes.len() == bare.outcomes.len()
            && rep.outcomes.iter().zip(&bare.outcomes).all(|(c, b)| {
                c.id == b.id
                    && (c.finish.is_aborted() || b.finish.is_aborted() || c.tokens == b.tokens)
            })
    };

    // Own the cluster (rather than `replay_cluster`) so the pool-level
    // resident KV peak is readable after the replay drains.
    let run = |n: usize, affinity: bool| -> (edkm_workload::ClusterReplayReport, usize) {
        let cluster = Cluster::new(
            fleet(n),
            ClusterConfig {
                engine: EngineConfig {
                    max_batch: engine_cfg.max_batch,
                    queue_capacity: engine_cfg.queue_capacity,
                },
                affinity,
                ..ClusterConfig::default()
            },
        );
        let rep = replay_router(&cluster.handle(), &trace);
        let resident_peak = cluster.resident_peak_bytes();
        cluster.shutdown();
        (rep, resident_peak)
    };

    let mut replica_tok_s = [0.0f64; 3];
    let mut tokens_identical = true;
    let mut four_on = None;
    for (slot, &n) in [1usize, 2, 4].iter().enumerate() {
        let (rep, peak) = run(n, true);
        assert!(
            matches_bare(&rep),
            "{n}-replica cluster replay diverged from the bare engine"
        );
        tokens_identical &= matches_bare(&rep);
        replica_tok_s[slot] = rep.goodput_tok_s;
        if n == 4 {
            four_on = Some((rep, peak));
        }
    }
    let (four_on, peak_on) = four_on.expect("4-replica run happened");
    let (four_off, peak_off) = run(4, false);
    assert!(
        matches_bare(&four_off),
        "affinity-off cluster replay diverged from the bare engine"
    );
    tokens_identical &= matches_bare(&four_off);
    assert!(
        four_on.cluster.affinity_hit_rate() > 0.0,
        "chat trace produced no affinity hits at 4 replicas"
    );
    assert!(
        peak_on < peak_off,
        "affinity routing should dedup session KV: resident peak \
         {peak_on} B (on) vs {peak_off} B (off)"
    );
    ClusterRow {
        replica_tok_s,
        affinity_hit_rate: four_on.cluster.affinity_hit_rate(),
        kv_peak_affinity_on: peak_on,
        kv_peak_affinity_off: peak_off,
        tokens_identical,
    }
}

/// One fault profile's chaos-replay outcome.
struct ChaosRow {
    profile: FaultProfile,
    plan_fingerprint: u64,
    faults_applied: usize,
    requests_lost: u64,
    index_violations: u64,
    survivors: usize,
    shed: usize,
    survivors_bit_identical: bool,
    pools_at_baseline: bool,
    recovery_p99_steps: u64,
    corrupted_reloads: u64,
    goodput_tok_s: f64,
}

/// Replay a mixed trace through a 3-replica fleet under every seeded
/// fault profile, the supervisor driving recovery, and pin the global
/// invariants: no request lost, no token-index violation, survivors
/// bit-identical to the undisturbed run, pools back at their ledger
/// baseline. The rows land in `BENCH_serve.json` for the CI chaos gate.
fn run_chaos_sweep(model: &PalettizedModel, wl: &Workload, seed: u64) -> Vec<ChaosRow> {
    let trace = Trace::generate(&TraceConfig::new(
        TraceKind::Mixed,
        seed,
        wl.trace_requests.max(16),
        wl.config.vocab,
        wl.config.max_seq,
    ));
    let kv = KvBlockConfig {
        block_tokens: 4,
        max_blocks: 0,
    };
    let max_batch = 4usize;
    // Fault-band horizon in virtual steps: the fleet decodes up to
    // `max_batch` tokens per engine step, so total completion budget over
    // the batch width is the order of magnitude the run actually reaches.
    let total_new: usize = trace.requests().iter().map(|r| r.max_new).sum();
    let horizon = ((total_new / max_batch) as u64).max(48);
    FaultProfile::ALL
        .iter()
        .map(|&profile| {
            let plan = FaultPlan::generate(profile, seed, 3, horizon);
            let report = replay_cluster_chaos(
                |corrupt| {
                    if corrupt {
                        Err("bit-flipped replica image fails reload verification".to_string())
                    } else {
                        Ok(model.clone().with_kv_config(kv).with_prefix_cache(true))
                    }
                },
                3,
                &trace,
                &plan,
                ChaosReplayConfig {
                    engine: EngineReplayConfig {
                        max_batch,
                        queue_capacity: trace.requests().len().max(1),
                    },
                    ..ChaosReplayConfig::default()
                },
            );
            let violations = audit_invariants(&report);
            assert!(
                violations.is_empty(),
                "chaos profile {profile} violated global invariants: {violations:?}"
            );
            ChaosRow {
                profile,
                plan_fingerprint: report.plan_fingerprint,
                faults_applied: report.faults.len(),
                requests_lost: report.requests_lost(),
                index_violations: report.index_violations,
                survivors: report.survivors,
                shed: report.shed.len(),
                survivors_bit_identical: report.survivors_bit_identical,
                pools_at_baseline: report.pools_at_baseline,
                recovery_p99_steps: report.recovery_p99_steps(),
                corrupted_reloads: report.corrupted_reloads,
                goodput_tok_s: report.goodput_tok_s,
            }
        })
        .collect()
}

/// One bits setting on the quality/throughput frontier.
struct FrontierRow {
    setting: &'static str,
    bits: u8,
    size_bytes: usize,
    perplexity: f32,
    accuracy: f32,
    goodput_tok_s: f64,
}

/// Pretrain a small model, export it at three palette widths, and report
/// quality (perplexity + mean multichoice accuracy, `edkm-eval`) next to
/// serving goodput (chat-trace engine replay of the same palettes).
/// Returns `(base_perplexity, base_accuracy, rows)`.
fn run_frontier(wl: &Workload, smoke: bool, seed: u64) -> (f32, f32, Vec<FrontierRow>) {
    let cfg = LlamaConfig {
        vocab: 64,
        d_model: 64,
        n_heads: 4,
        n_layers: 2,
        d_ff: 128,
        max_seq: 48,
    };
    let grammar = Grammar::default_with_seed(0);
    let corpus = Corpus::generate(&grammar, if smoke { 80 } else { 300 }, 10, 32, 1);
    let suite = TaskSuite::generate(&grammar, if smoke { 30 } else { 120 }, 2);
    let base = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 0);
    let params = base.params();
    let total = wl.frontier_steps as u64;
    let mut trainer = Trainer::new(TrainConfig {
        optim: AdamWConfig {
            lr: 3e-3,
            ..AdamWConfig::default()
        },
        schedule: LrSchedule::CosineWithWarmup {
            warmup: total / 20 + 1,
            total,
            final_frac: 0.1,
        },
        clip_norm: 1.0,
    });
    let batches: Vec<LmBatch> = corpus.batches(8).into_iter().map(LmBatch::new).collect();
    let mut step = 0usize;
    'outer: loop {
        for b in &batches {
            trainer.step(&base, b, &params, None);
            step += 1;
            if step >= wl.frontier_steps {
                break 'outer;
            }
        }
    }
    let held_out = corpus.subsample(if smoke { 9 } else { 23 });
    let base_ppl = perplexity(&base, held_out.windows());
    let base_accs = evaluate_suite(&base, &suite);
    let base_acc = base_accs.iter().map(|&(_, a)| a).sum::<f32>() / base_accs.len() as f32;

    let trace = Trace::generate(&TraceConfig::new(
        TraceKind::Chat,
        seed,
        if smoke { 6 } else { 12 },
        cfg.vocab,
        cfg.max_seq,
    ));
    let settings: [(&'static str, CompressSpec); 3] = [
        ("lossless", CompressSpec::lossless()),
        ("4bit", {
            let mut s = CompressSpec::with_bits(4);
            s.dkm.iters = wl.dkm_iters;
            s
        }),
        ("3bit", {
            let mut s = CompressSpec::with_bits(3);
            s.dkm.iters = wl.dkm_iters;
            s
        }),
    ];
    let mut rows = Vec::new();
    for (setting, spec) in settings {
        let compressed = CompressionPipeline::new(spec.clone()).export(&base);
        let shipped = LlamaModel::new(cfg, base.dtype(), base.device(), 999);
        shipped.copy_weights_from(&base);
        compressed.apply_to(&shipped);
        let ppl = perplexity(&shipped, held_out.windows());
        let accs = evaluate_suite(&shipped, &suite);
        let acc = accs.iter().map(|&(_, a)| a).sum::<f32>() / accs.len() as f32;
        let servable = PalettizedModel::from_dense(&base, &spec).expect("servable export");
        let eng = replay_engine(
            servable,
            &trace,
            EngineReplayConfig {
                max_batch: 8,
                queue_capacity: trace.requests().len().max(1),
            },
        );
        rows.push(FrontierRow {
            setting,
            bits: spec.bits,
            size_bytes: compressed.size_bytes(),
            perplexity: ppl,
            accuracy: acc,
            goodput_tok_s: eng.goodput_tok_s,
        });
    }
    (base_ppl, base_acc, rows)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let enforce_slo = args.iter().any(|a| a == "--slo");
    let max_deadline_miss: f64 = parse_or(&args, "--max-deadline-miss", 0.35);
    let max_ttft_p99_steps: u64 = parse_or(&args, "--max-ttft-p99-steps", 96);
    let workload_seed: u64 = parse_or(&args, "--seed", 7);
    let wl = if smoke {
        Workload::smoke()
    } else {
        Workload::full()
    };
    runtime::reset();
    let threads = rayon::current_num_threads();
    println!("== palettized serving: sequential vs streaming engine ==");
    println!(
        "d_model {} x {} layers, {}-bit palettes, {} requests x {} tokens, {} threads{}\n",
        wl.config.d_model,
        wl.config.n_layers,
        wl.bits,
        wl.n_requests,
        wl.gen_tokens,
        threads,
        if smoke { " (smoke)" } else { "" }
    );

    let dense = LlamaModel::new(wl.config, DType::Bf16, Device::Cpu, 0);
    let mut spec = CompressSpec::with_bits(wl.bits);
    spec.dkm.iters = wl.dkm_iters;
    let t0 = Instant::now();
    let model = PalettizedModel::from_dense(&dense, &spec).expect("servable export");
    println!(
        "palettized {} -> {} bytes ({:.1}x) in {:.1}s",
        dense.native_size_bytes(),
        model.size_bytes(),
        dense.native_size_bytes() as f64 / model.size_bytes() as f64,
        t0.elapsed().as_secs_f64()
    );

    let prompts = wl.prompts();
    let total_tokens = (wl.n_requests * wl.gen_tokens) as u64;

    // Sequential baseline: one request at a time, Generator-driven.
    let gen = Generator::new(&model);
    let t0 = Instant::now();
    let sequential: Vec<Vec<usize>> = prompts
        .iter()
        .map(|p| gen.generate(p, wl.gen_tokens, &SamplingConfig::greedy()))
        .collect();
    let sequential_s = t0.elapsed().as_secs_f64();

    // The streaming engine at increasing batch caps.
    let mut batched = Vec::new();
    let mut batch8_lat = None;
    let mut batch8_scratch = (0u64, 0u64);
    for &max_batch in &[1usize, 4, 8] {
        let (secs, _, stats, out, lat) =
            run_engine(model.clone(), &prompts, wl.gen_tokens, max_batch);
        // Throughput must never change results: greedy tokens are identical
        // to the sequential run at every batch size.
        for (resp, want) in out.iter().zip(&sequential) {
            assert_eq!(
                &resp.tokens, want,
                "batch {max_batch}: request {} diverged from sequential",
                resp.id
            );
        }
        batched.push((max_batch, secs, stats.decode_steps));
        if max_batch == 8 {
            batch8_lat = Some(lat);
            batch8_scratch = (stats.scratch_checkouts, stats.scratch_grows);
        }
    }
    let batch8_lat = batch8_lat.expect("batch 8 ran");

    // Tensor-parallel shard sweep (batch 8): every projection partitioned
    // over the learner group, shard GEMMs on worker threads, all-gathers
    // on the simulated clock. Tokens stay bit-identical at every count.
    let mut shard_rows = Vec::new();
    for &shards in &[1usize, 2, 4] {
        let sharded = model.shard(LearnerGroup::new(shards));
        let (secs, sim_s, _, out, _) = run_engine(sharded, &prompts, wl.gen_tokens, 8);
        for (resp, want) in out.iter().zip(&sequential) {
            assert_eq!(
                &resp.tokens, want,
                "{shards} shards: request {} diverged",
                resp.id
            );
        }
        shard_rows.push((shards, secs, sim_s));
    }

    // Paged vs monolithic KV (batch 8): small blocks vs one max_seq-sized
    // block per sequence (the monolithic worst case the pool replaces).
    let paged_model = model.clone().with_kv_config(KvBlockConfig {
        block_tokens: 4,
        max_blocks: 0,
    });
    let (_, _, paged_stats, paged_out, _) = run_engine(paged_model, &prompts, wl.gen_tokens, 8);
    let mono_model = model.clone().with_kv_config(KvBlockConfig {
        block_tokens: wl.config.max_seq,
        max_blocks: 0,
    });
    let (_, _, mono_stats, mono_out, _) = run_engine(mono_model, &prompts, wl.gen_tokens, 8);
    for (a, b) in paged_out.iter().zip(&mono_out) {
        assert_eq!(a.tokens, b.tokens, "paging granularity changed tokens");
    }
    let (paged_peak, mono_peak) = (paged_stats.kv_peak_bytes, mono_stats.kv_peak_bytes);
    let kv_saving = mono_peak as f64 / paged_peak.max(1) as f64;

    // Heterogeneous workload sweep + quality/throughput frontier.
    println!("\nreplaying workload traces (seed {workload_seed})...");
    let workload_rows = run_workload_sweep(&model, &wl, workload_seed);
    println!("replaying chat trace with prefix sharing + speculative decoding...");
    let ps = run_prefix_spec(&model, &dense, &wl, workload_seed, 4);
    println!("replaying chat trace through 1/2/4-replica clusters...");
    let cl = run_cluster_sweep(&model, &wl, workload_seed);
    println!("replaying mixed trace under seeded fault profiles (3 replicas)...");
    let chaos_rows = run_chaos_sweep(&model, &wl, workload_seed);
    println!(
        "building quality/throughput frontier ({} pretrain steps)...",
        wl.frontier_steps
    );
    let (base_ppl, base_acc, frontier_rows) = run_frontier(&wl, smoke, workload_seed);

    let seq_tps = tok_per_sec(total_tokens, sequential_s);
    println!("\n  {:<24} {:>10} {:>12}", "mode", "tok/s", "steps");
    println!(
        "  {:<24} {:>10.1} {:>12}",
        "sequential",
        seq_tps,
        wl.n_requests * wl.gen_tokens
    );
    for &(mb, secs, steps) in &batched {
        println!(
            "  {:<24} {:>10.1} {:>12}",
            format!("engine batch {mb}"),
            tok_per_sec(total_tokens, secs),
            steps
        );
    }
    let batch8_tps = tok_per_sec(total_tokens, batched[2].1);
    let speedup = batch8_tps / seq_tps;
    println!("  batch-8 speedup          {speedup:>10.2}x");

    let ttft_p50 = percentile(&batch8_lat.ttft_ms, 0.50);
    let ttft_p95 = percentile(&batch8_lat.ttft_ms, 0.95);
    let tok_p50 = percentile(&batch8_lat.per_token_ms, 0.50);
    let tok_p95 = percentile(&batch8_lat.per_token_ms, 0.95);
    println!(
        "\n  stream latency (batch 8): TTFT p50 {ttft_p50:.2} ms / p95 {ttft_p95:.2} ms, \
         per-token p50 {tok_p50:.3} ms / p95 {tok_p95:.3} ms"
    );

    println!("\n  {:<24} {:>10} {:>12}", "shards", "tok/s", "sim s");
    for &(shards, secs, sim_s) in &shard_rows {
        println!(
            "  {:<24} {:>10.1} {:>12.4}",
            format!("tensor-parallel {shards}"),
            tok_per_sec(total_tokens, secs),
            sim_s
        );
    }
    println!(
        "\n  peak KV: paged (4-token blocks) {} B vs monolithic {} B = {:.2}x saved",
        paged_peak, mono_peak, kv_saving
    );
    println!(
        "  forward scratch (batch 8): {} checkouts, {} allocations ({:.2}% cold)",
        batch8_scratch.0,
        batch8_scratch.1,
        100.0 * batch8_scratch.1 as f64 / (batch8_scratch.0.max(1)) as f64
    );

    println!(
        "\n  {:<12} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "trace", "goodput", "ttft p50", "ttft p99", "p50 st", "p99 st", "miss", "preempt"
    );
    for r in &workload_rows {
        println!(
            "  {:<12} {:>10.1} {:>10.2} {:>10.2} {:>8} {:>8} {:>8.3} {:>8.3}",
            r.kind.name(),
            r.goodput_tok_s,
            r.ttft_ms_p50,
            r.ttft_ms_p99,
            r.ttft_steps_p50,
            r.ttft_steps_p99,
            r.deadline_miss_rate,
            r.preemption_rate
        );
    }

    println!(
        "\n  prefix cache (chat trace): hit rate {:.3}, {} prompt tokens reused, \
         peak KV {} -> {} bytes",
        ps.prefix_hit_rate, ps.prefix_tokens_reused, ps.kv_peak_off, ps.kv_peak_on
    );
    println!(
        "  speculative decode (2-bit draft, k=4): {}/{} accepted = {:.2}/step, tokens {}",
        ps.spec_accepted,
        ps.spec_proposed,
        ps.accepted_per_step,
        if ps.tokens_identical {
            "identical"
        } else {
            "DIVERGED"
        }
    );

    println!(
        "\n  cluster (chat trace, affinity on): {:.1} / {:.1} / {:.1} tok/s at 1/2/4 replicas",
        cl.replica_tok_s[0], cl.replica_tok_s[1], cl.replica_tok_s[2]
    );
    println!(
        "  affinity hit rate {:.3}, resident KV peak {} B (on) vs {} B (off), tokens {}",
        cl.affinity_hit_rate,
        cl.kv_peak_affinity_on,
        cl.kv_peak_affinity_off,
        if cl.tokens_identical {
            "identical"
        } else {
            "DIVERGED"
        }
    );

    println!(
        "\n  {:<16} {:>6} {:>5} {:>5} {:>6} {:>8} {:>10}",
        "chaos profile", "faults", "lost", "shed", "viols", "rec p99", "goodput"
    );
    for r in &chaos_rows {
        println!(
            "  {:<16} {:>6} {:>5} {:>5} {:>6} {:>8} {:>10.1}  tokens {}",
            format!("{}", r.profile),
            r.faults_applied,
            r.requests_lost,
            r.shed,
            r.index_violations,
            r.recovery_p99_steps,
            r.goodput_tok_s,
            if r.survivors_bit_identical {
                "identical"
            } else {
                "DIVERGED"
            }
        );
    }

    println!(
        "\n  {:<12} {:>5} {:>12} {:>10} {:>9} {:>10}",
        "setting", "bits", "size B", "ppl", "acc %", "goodput"
    );
    println!(
        "  {:<12} {:>5} {:>12} {:>10.3} {:>9.2} {:>10}",
        "base", 16, "-", base_ppl, base_acc, "-"
    );
    for r in &frontier_rows {
        println!(
            "  {:<12} {:>5} {:>12} {:>10.3} {:>9.2} {:>10.1}",
            r.setting, r.bits, r.size_bytes, r.perplexity, r.accuracy, r.goodput_tok_s
        );
    }

    let worst_miss = workload_rows
        .iter()
        .map(|r| r.deadline_miss_rate)
        .fold(0.0f64, f64::max);
    let worst_ttft_steps = workload_rows
        .iter()
        .map(|r| r.ttft_steps_p99)
        .max()
        .unwrap_or(0);
    // CompressSpec::lossless() round-trips every weight bit-exactly, so the
    // compressed serving path must score exactly what the base model does.
    let lossless = &frontier_rows[0];
    let lossless_acc_ok =
        lossless.accuracy >= base_acc - 1e-4 && lossless.perplexity <= base_ppl + 1e-3;
    let slo_ok = worst_miss <= max_deadline_miss
        && worst_ttft_steps <= max_ttft_p99_steps
        && lossless_acc_ok;
    println!(
        "\n  SLO: deadline-miss max {worst_miss:.3} (ceiling {max_deadline_miss}), \
         TTFT p99 max {worst_ttft_steps} steps (ceiling {max_ttft_p99_steps}), \
         lossless quality {} -> {}",
        if lossless_acc_ok {
            "intact"
        } else {
            "DEGRADED"
        },
        if slo_ok { "ok" } else { "VIOLATED" }
    );

    let workload_json: String = workload_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"trace\": \"{}\", \"requests\": {}, \"goodput_tok_s\": {:.1}, \
                 \"ttft_ms_p50\": {:.3}, \"ttft_ms_p99\": {:.3}, \
                 \"per_token_ms_p50\": {:.4}, \"per_token_ms_p99\": {:.4}, \
                 \"ttft_steps_p50\": {}, \"ttft_steps_p99\": {}, \
                 \"deadline_miss_rate\": {:.4}, \"preemption_rate\": {:.4}, \
                 \"preemptions\": {}, \"expired\": {}, \"backpressure_rejections\": {}}}",
                r.kind.name(),
                r.requests,
                r.goodput_tok_s,
                r.ttft_ms_p50,
                r.ttft_ms_p99,
                r.per_token_ms_p50,
                r.per_token_ms_p99,
                r.ttft_steps_p50,
                r.ttft_steps_p99,
                r.deadline_miss_rate,
                r.preemption_rate,
                r.preemptions,
                r.expired,
                r.backpressure_rejections
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let frontier_json: String = frontier_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"setting\": \"{}\", \"bits\": {}, \"size_bytes\": {}, \
                 \"perplexity\": {:.4}, \"accuracy\": {:.2}, \"goodput_tok_s\": {:.1}}}",
                r.setting, r.bits, r.size_bytes, r.perplexity, r.accuracy, r.goodput_tok_s
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let chaos_json: String = chaos_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"profile\": \"{}\", \"plan_fingerprint\": \"{:016x}\", \
                 \"faults_applied\": {}, \"requests_lost\": {}, \
                 \"index_violations\": {}, \"survivors\": {}, \"shed\": {}, \
                 \"survivors_bit_identical\": {}, \"pools_at_baseline\": {}, \
                 \"recovery_p99_steps\": {}, \"corrupted_reloads\": {}, \
                 \"goodput_tok_s\": {:.1}}}",
                r.profile,
                r.plan_fingerprint,
                r.faults_applied,
                r.requests_lost,
                r.index_violations,
                r.survivors,
                r.shed,
                r.survivors_bit_identical,
                r.pools_at_baseline,
                r.recovery_p99_steps,
                r.corrupted_reloads,
                r.goodput_tok_s
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let chaos_tokens_identical = chaos_rows.iter().all(|r| r.survivors_bit_identical);
    let chaos_requests_lost: u64 = chaos_rows.iter().map(|r| r.requests_lost).sum();
    let chaos_recovery_p99_steps = chaos_rows
        .iter()
        .map(|r| r.recovery_p99_steps)
        .max()
        .unwrap_or(0);
    let chaos_goodput_min = chaos_rows
        .iter()
        .map(|r| r.goodput_tok_s)
        .fold(f64::INFINITY, f64::min);

    let (kernel_backend, kernel_lanes) = edkm_core::infer::launch::active();
    let cpu_features = edkm_core::infer::launch::cpu_features();
    let record = format!(
        "{{\n  \"bench\": \"palettized_serve\",\n  \"smoke\": {smoke},\n  \
         \"kernel_backend\": \"{kernel_backend}\",\n  \
         \"kernel_lanes\": {kernel_lanes},\n  \
         \"cpu_features\": \"{cpu_features}\",\n  \
         \"d_model\": {},\n  \"n_layers\": {},\n  \"bits\": {},\n  \
         \"requests\": {},\n  \"gen_tokens\": {},\n  \"threads\": {threads},\n  \
         \"sequential_tok_s\": {:.1},\n  \"batch1_tok_s\": {:.1},\n  \
         \"batch4_tok_s\": {:.1},\n  \"batch8_tok_s\": {:.1},\n  \
         \"batch8_speedup\": {:.3},\n  \
         \"ttft_p50_ms\": {ttft_p50:.3},\n  \"ttft_p95_ms\": {ttft_p95:.3},\n  \
         \"per_token_p50_ms\": {tok_p50:.4},\n  \"per_token_p95_ms\": {tok_p95:.4},\n  \
         \"shard1_tok_s\": {:.1},\n  \"shard2_tok_s\": {:.1},\n  \
         \"shard4_tok_s\": {:.1},\n  \"shard1_sim_s\": {:.6},\n  \
         \"shard2_sim_s\": {:.6},\n  \"shard4_sim_s\": {:.6},\n  \
         \"kv_paged_peak_bytes\": {paged_peak},\n  \
         \"kv_monolithic_peak_bytes\": {mono_peak},\n  \
         \"kv_paged_saving\": {kv_saving:.3},\n  \
         \"scratch_checkouts\": {},\n  \"scratch_grows\": {},\n  \
         \"workload_seed\": {workload_seed},\n  \
         \"workload\": [\n{workload_json}\n  ],\n  \
         \"base_perplexity\": {base_ppl:.4},\n  \"base_accuracy\": {base_acc:.2},\n  \
         \"frontier\": [\n{frontier_json}\n  ],\n  \
         \"workload_deadline_miss_max\": {worst_miss:.4},\n  \
         \"workload_ttft_p99_steps_max\": {worst_ttft_steps},\n  \
         \"max_deadline_miss\": {max_deadline_miss},\n  \
         \"max_ttft_p99_steps\": {max_ttft_p99_steps},\n  \
         \"prefix_hit_rate\": {:.4},\n  \
         \"prefix_tokens_reused\": {},\n  \
         \"kv_prefix_off_peak_bytes\": {},\n  \
         \"kv_prefix_on_peak_bytes\": {},\n  \
         \"accepted_per_step\": {:.4},\n  \
         \"spec_proposed\": {},\n  \
         \"spec_accepted\": {},\n  \
         \"replicas_1_tok_s\": {:.1},\n  \
         \"replicas_2_tok_s\": {:.1},\n  \
         \"replicas_4_tok_s\": {:.1},\n  \
         \"affinity_hit_rate\": {:.4},\n  \
         \"cluster_kv_peak_affinity_on\": {},\n  \
         \"cluster_kv_peak_affinity_off\": {},\n  \
         \"cluster_tokens_identical\": {},\n  \
         \"chaos\": [\n{chaos_json}\n  ],\n  \
         \"chaos_tokens_identical\": {chaos_tokens_identical},\n  \
         \"chaos_requests_lost\": {chaos_requests_lost},\n  \
         \"chaos_recovery_p99_steps\": {chaos_recovery_p99_steps},\n  \
         \"chaos_goodput_min_tok_s\": {chaos_goodput_min:.1},\n  \
         \"lossless_acc_ok\": {lossless_acc_ok},\n  \
         \"slo_ok\": {slo_ok},\n  \
         \"tokens_identical\": {}\n}}\n",
        wl.config.d_model,
        wl.config.n_layers,
        wl.bits,
        wl.n_requests,
        wl.gen_tokens,
        seq_tps,
        tok_per_sec(total_tokens, batched[0].1),
        tok_per_sec(total_tokens, batched[1].1),
        batch8_tps,
        speedup,
        tok_per_sec(total_tokens, shard_rows[0].1),
        tok_per_sec(total_tokens, shard_rows[1].1),
        tok_per_sec(total_tokens, shard_rows[2].1),
        shard_rows[0].2,
        shard_rows[1].2,
        shard_rows[2].2,
        batch8_scratch.0,
        batch8_scratch.1,
        ps.prefix_hit_rate,
        ps.prefix_tokens_reused,
        ps.kv_peak_off,
        ps.kv_peak_on,
        ps.accepted_per_step,
        ps.spec_proposed,
        ps.spec_accepted,
        cl.replica_tok_s[0],
        cl.replica_tok_s[1],
        cl.replica_tok_s[2],
        cl.affinity_hit_rate,
        cl.kv_peak_affinity_on,
        cl.kv_peak_affinity_off,
        cl.tokens_identical,
        ps.tokens_identical,
    );
    std::fs::write("BENCH_serve.json", &record).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
    if threads >= 4 && !smoke && speedup < 2.0 {
        eprintln!(
            "WARNING: expected >= 2x batch-8 speedup with {threads} threads, got {speedup:.2}x"
        );
    }
    if enforce_slo && !slo_ok {
        eprintln!(
            "SLO violation: deadline-miss max {worst_miss:.3} (ceiling {max_deadline_miss}), \
             TTFT p99 max {worst_ttft_steps} steps (ceiling {max_ttft_p99_steps}), \
             lossless_acc_ok {lossless_acc_ok}"
        );
        std::process::exit(1);
    }
}
