//! Compressed serving throughput: sequential single-request decoding vs
//! continuous batching at batch 1/4/8 over a whole palettized decoder.
//!
//! Writes `BENCH_serve.json`. The deployment-shaped full run uses a
//! 4-layer / d_model 256 model; `--smoke` shrinks everything so CI can
//! exercise the serving path on every PR in seconds.
//!
//! Run with `cargo run --release -p edkm-bench --bin serve [-- --smoke]`.
//!
//! Acceptance (4-core CI runner): ≥ 2× tokens/sec at batch 8 over
//! sequential decode. Single-core machines record ~1× parity — the batched
//! projection GEMMs fall below the parallel work threshold's win.

use edkm_core::{
    CompressSpec, Generator, KvBlockConfig, PalettizedModel, SamplingConfig, Scheduler, ServeModel,
    ServeRequest, ServeResponse,
};
use edkm_dist::LearnerGroup;
use edkm_nn::{LlamaConfig, LlamaModel};
use edkm_tensor::{runtime, DType, Device};
use std::time::Instant;

struct Workload {
    config: LlamaConfig,
    bits: u8,
    dkm_iters: usize,
    n_requests: usize,
    gen_tokens: usize,
}

impl Workload {
    fn full() -> Self {
        Workload {
            config: LlamaConfig {
                vocab: 256,
                d_model: 256,
                n_heads: 4,
                n_layers: 4,
                d_ff: 512,
                max_seq: 96,
            },
            bits: 3,
            dkm_iters: 4,
            n_requests: 8,
            gen_tokens: 48,
        }
    }

    fn smoke() -> Self {
        Workload {
            config: LlamaConfig {
                vocab: 64,
                d_model: 32,
                n_heads: 2,
                n_layers: 2,
                d_ff: 64,
                max_seq: 48,
            },
            bits: 3,
            dkm_iters: 2,
            n_requests: 4,
            gen_tokens: 8,
        }
    }

    fn requests(&self) -> Vec<ServeRequest> {
        (0..self.n_requests as u64)
            .map(|id| ServeRequest {
                id,
                prompt: (0..4 + (id as usize % 5))
                    .map(|i| (i * 7 + id as usize) % self.config.vocab)
                    .collect(),
                max_new: self.gen_tokens,
                sampling: SamplingConfig::greedy(),
            })
            .collect()
    }
}

fn tok_per_sec(tokens: u64, secs: f64) -> f64 {
    tokens as f64 / secs.max(1e-9)
}

/// One scheduler run: wall seconds, simulated seconds, decode steps, peak
/// KV bytes, responses (sorted by id).
fn run_batched<M: ServeModel>(
    model: &M,
    reqs: &[ServeRequest],
    max_batch: usize,
) -> (f64, f64, u64, usize, Vec<ServeResponse>) {
    let mut sched = Scheduler::new(model, max_batch);
    for r in reqs {
        sched.submit(r.clone());
    }
    let sim0 = runtime::sim_seconds();
    let t0 = Instant::now();
    let mut peak_kv = 0usize;
    let mut out = Vec::new();
    while !sched.is_idle() {
        out.extend(sched.step());
        peak_kv = peak_kv.max(sched.kv_live_bytes());
    }
    let secs = t0.elapsed().as_secs_f64();
    let sim_s = runtime::sim_seconds() - sim0;
    out.sort_by_key(|r| r.id);
    (secs, sim_s, sched.decode_steps(), peak_kv, out)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let wl = if smoke {
        Workload::smoke()
    } else {
        Workload::full()
    };
    runtime::reset();
    let threads = rayon::current_num_threads();
    println!("== palettized serving: sequential vs continuous batching ==");
    println!(
        "d_model {} x {} layers, {}-bit palettes, {} requests x {} tokens, {} threads{}\n",
        wl.config.d_model,
        wl.config.n_layers,
        wl.bits,
        wl.n_requests,
        wl.gen_tokens,
        threads,
        if smoke { " (smoke)" } else { "" }
    );

    let dense = LlamaModel::new(wl.config, DType::Bf16, Device::Cpu, 0);
    let mut spec = CompressSpec::with_bits(wl.bits);
    spec.dkm.iters = wl.dkm_iters;
    let t0 = Instant::now();
    let model = PalettizedModel::from_dense(&dense, &spec).expect("servable export");
    println!(
        "palettized {} -> {} bytes ({:.1}x) in {:.1}s",
        dense.native_size_bytes(),
        model.size_bytes(),
        dense.native_size_bytes() as f64 / model.size_bytes() as f64,
        t0.elapsed().as_secs_f64()
    );

    let reqs = wl.requests();
    let total_tokens = (wl.n_requests * wl.gen_tokens) as u64;

    // Sequential baseline: one request at a time, Generator-driven.
    let gen = Generator::new(&model);
    let t0 = Instant::now();
    let sequential: Vec<Vec<usize>> = reqs
        .iter()
        .map(|r| gen.generate(&r.prompt, r.max_new, &r.sampling))
        .collect();
    let sequential_s = t0.elapsed().as_secs_f64();

    // Continuous batching at increasing caps.
    let mut batched = Vec::new();
    for &max_batch in &[1usize, 4, 8] {
        let (secs, _, steps, _, out) = run_batched(&model, &reqs, max_batch);
        // Throughput must never change results: greedy tokens are identical
        // to the sequential run at every batch size.
        for (resp, want) in out.iter().zip(&sequential) {
            assert_eq!(
                &resp.tokens, want,
                "batch {max_batch}: request {} diverged from sequential",
                resp.id
            );
        }
        batched.push((max_batch, secs, steps));
    }

    // Tensor-parallel shard sweep (batch 8): every projection partitioned
    // over the learner group, shard GEMMs on worker threads, all-gathers
    // on the simulated clock. Tokens stay bit-identical at every count.
    let mut shard_rows = Vec::new();
    for &shards in &[1usize, 2, 4] {
        let sharded = model.shard(LearnerGroup::new(shards));
        let (secs, sim_s, _, _, out) = run_batched(&sharded, &reqs, 8);
        for (resp, want) in out.iter().zip(&sequential) {
            assert_eq!(
                &resp.tokens, want,
                "{shards} shards: request {} diverged",
                resp.id
            );
        }
        shard_rows.push((shards, secs, sim_s));
    }

    // Paged vs monolithic KV (batch 8): small blocks vs one max_seq-sized
    // block per sequence (the monolithic worst case the pool replaces).
    let paged_model = model.clone().with_kv_config(KvBlockConfig {
        block_tokens: 4,
        max_blocks: 0,
    });
    let (_, _, _, paged_peak, paged_out) = run_batched(&paged_model, &reqs, 8);
    let mono_model = model.clone().with_kv_config(KvBlockConfig {
        block_tokens: wl.config.max_seq,
        max_blocks: 0,
    });
    let (_, _, _, mono_peak, mono_out) = run_batched(&mono_model, &reqs, 8);
    for (a, b) in paged_out.iter().zip(&mono_out) {
        assert_eq!(a.tokens, b.tokens, "paging granularity changed tokens");
    }
    let kv_saving = mono_peak as f64 / paged_peak.max(1) as f64;

    let seq_tps = tok_per_sec(total_tokens, sequential_s);
    println!("\n  {:<24} {:>10} {:>12}", "mode", "tok/s", "steps");
    println!(
        "  {:<24} {:>10.1} {:>12}",
        "sequential",
        seq_tps,
        wl.n_requests * wl.gen_tokens
    );
    for &(mb, secs, steps) in &batched {
        println!(
            "  {:<24} {:>10.1} {:>12}",
            format!("continuous batch {mb}"),
            tok_per_sec(total_tokens, secs),
            steps
        );
    }
    let batch8_tps = tok_per_sec(total_tokens, batched[2].1);
    let speedup = batch8_tps / seq_tps;
    println!("  batch-8 speedup          {speedup:>10.2}x");

    println!("\n  {:<24} {:>10} {:>12}", "shards", "tok/s", "sim s");
    for &(shards, secs, sim_s) in &shard_rows {
        println!(
            "  {:<24} {:>10.1} {:>12.4}",
            format!("tensor-parallel {shards}"),
            tok_per_sec(total_tokens, secs),
            sim_s
        );
    }
    println!(
        "\n  peak KV: paged (4-token blocks) {} B vs monolithic {} B = {:.2}x saved",
        paged_peak, mono_peak, kv_saving
    );

    let record = format!(
        "{{\n  \"bench\": \"palettized_serve\",\n  \"smoke\": {smoke},\n  \
         \"d_model\": {},\n  \"n_layers\": {},\n  \"bits\": {},\n  \
         \"requests\": {},\n  \"gen_tokens\": {},\n  \"threads\": {threads},\n  \
         \"sequential_tok_s\": {:.1},\n  \"batch1_tok_s\": {:.1},\n  \
         \"batch4_tok_s\": {:.1},\n  \"batch8_tok_s\": {:.1},\n  \
         \"batch8_speedup\": {:.3},\n  \
         \"shard1_tok_s\": {:.1},\n  \"shard2_tok_s\": {:.1},\n  \
         \"shard4_tok_s\": {:.1},\n  \"shard1_sim_s\": {:.6},\n  \
         \"shard2_sim_s\": {:.6},\n  \"shard4_sim_s\": {:.6},\n  \
         \"kv_paged_peak_bytes\": {paged_peak},\n  \
         \"kv_monolithic_peak_bytes\": {mono_peak},\n  \
         \"kv_paged_saving\": {kv_saving:.3},\n  \
         \"tokens_identical\": true\n}}\n",
        wl.config.d_model,
        wl.config.n_layers,
        wl.bits,
        wl.n_requests,
        wl.gen_tokens,
        seq_tps,
        tok_per_sec(total_tokens, batched[0].1),
        tok_per_sec(total_tokens, batched[1].1),
        batch8_tps,
        speedup,
        tok_per_sec(total_tokens, shard_rows[0].1),
        tok_per_sec(total_tokens, shard_rows[1].1),
        tok_per_sec(total_tokens, shard_rows[2].1),
        shard_rows[0].2,
        shard_rows[1].2,
        shard_rows[2].2,
    );
    std::fs::write("BENCH_serve.json", &record).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
    if threads >= 4 && !smoke && speedup < 2.0 {
        eprintln!(
            "WARNING: expected >= 2x batch-8 speedup with {threads} threads, got {speedup:.2}x"
        );
    }
}
