//! Reproduce the worked examples of Figures 1–3 of the eDKM paper, plus the
//! extension sweeps DESIGN.md calls out (hop limit, learner count, bit
//! width).
//!
//! Run with `cargo run --release -p edkm-bench --bin figures`.

use edkm_autograd::{SavedTensorHooks, Var};
use edkm_core::{run_one, AblationSetup};
use edkm_core::{uniquify, DkmConfig, DkmLayer, EdkmConfig, EdkmHooks};
use edkm_tensor::{runtime, DType, Device, Tensor};

/// Fig. 1: the DKM attention map and its memory complexity O(|W|·|C|).
fn fig1() {
    println!("== Fig. 1: differentiable weight clustering attention map ==\n");
    println!("  |W| (weights)   |C|  bits   map bytes (f32)   map for LLaMA-7B layer");
    for bits in [2u8, 3, 4] {
        let k = 1usize << bits;
        let n_sim = 512 * 512 * 4; // our simulated attention layer
        let n_llama = 4096usize * 4096 * 4; // q,k,v,o of LLaMA-7B
        println!(
            "  {:>13}  {:>4}  {:>4}   {:>14}   {:>20}",
            n_sim,
            k,
            bits,
            format!("{:.1} MB", (n_sim * k * 4) as f64 / 1e6),
            format!("{:.1} GB", (n_llama * k * 4) as f64 / 1e9),
        );
    }
    println!("\n  (the paper quotes >=224 GB for 4-bit clustering of LLaMA-7B)\n");
}

/// Fig. 2: the marshaling walk across storage-invariant ops.
fn fig2() {
    println!("== Fig. 2: cross-device marshaling walk ==\n");
    runtime::reset();
    let hooks = EdkmHooks::new(EdkmConfig::marshal_only());
    let a = Tensor::randn(&[64, 32], DType::F32, Device::gpu(), 0);
    // A chain of invariant ops: view -> transpose -> contiguous -> view.
    let b = a.reshape(&[32, 64]);
    let c = b.transpose(0, 1);
    let d = c.contiguous();
    let e = d.reshape(&[2048]);
    let _p = hooks.pack(&a);
    println!(
        "  pack(a)                 -> miss, offloaded ({} B)",
        runtime::cpu_live_bytes()
    );
    for (name, t) in [
        ("view(a)", &b),
        ("transpose", &c),
        ("contiguous", &d),
        ("view", &e),
    ] {
        let before = hooks.stats();
        let _p = hooks.pack(t);
        let after = hooks.stats();
        let kind = if after.direct_hits > before.direct_hits {
            "direct hit (same storage)"
        } else if after.walk_hits > before.walk_hits {
            "graph-walk hit"
        } else {
            "miss"
        };
        println!(
            "  pack({name:<10})        -> {kind}, CPU still {} B",
            runtime::cpu_live_bytes()
        );
    }
    let s = hooks.stats();
    println!(
        "\n  5 saves, 1 copy: dedup rate {:.0}% (paper: 4 hops suffice)\n",
        100.0 * s.dedup_rate()
    );
}

/// Fig. 3: uniquification decomposition on a real attention map.
fn fig3() {
    println!("== Fig. 3: weight uniquification and sharding ==\n");
    runtime::reset();
    uniquify::clear_annotations();
    let n = 65536;
    let w = Tensor::randn(&[n], DType::Bf16, Device::gpu(), 1).map(|v| v * 0.02);
    let dkm = DkmLayer::new(DkmConfig::with_bits(3));
    let out = dkm.cluster(&Var::constant(w.clone()));
    let bits = w.bits16().expect("bf16");
    let uniq: std::collections::HashSet<u16> = bits.iter().copied().collect();
    let k = 8;
    let dense = n * k * 4;
    let table = uniq.len() * k * 4;
    let index = n * 2;
    println!(
        "  weights |W|            : {n} (bf16 -> {} unique patterns)",
        uniq.len()
    );
    println!("  dense map [|W|,|C|] f32: {:>10} bytes", dense);
    println!(
        "  attention table        : {:>10} bytes ({} rows x {k})",
        table,
        uniq.len()
    );
    println!("  index list (u16)       : {:>10} bytes", index);
    println!(
        "  uniquification ratio   : {:.1}x   (+ sharding /8 on the index list -> {:.1}x)",
        dense as f64 / (table + index) as f64,
        dense as f64 / (table + index / 8) as f64
    );
    println!("  centroids: {:?}\n", out.centroids.to_vec());
    uniquify::clear_annotations();
}

/// Extension sweep: marshaling hop limit vs dedup rate.
fn sweep_hops() {
    println!("== Sweep: graph-walk hop limit vs dedup (design ablation) ==\n");
    println!("  hop_limit  dedup_rate  peak_cpu(KB)");
    for hop in [0usize, 1, 2, 4, 6] {
        runtime::reset();
        let mut cfg = EdkmConfig::marshal_only();
        cfg.hop_limit = hop;
        let hooks = EdkmHooks::new(cfg);
        let a = Tensor::randn(&[128, 128], DType::F32, Device::gpu(), 2);
        // Save a plus 3 derived tensors at increasing hop distance.
        let d1 = a.transpose(0, 1);
        let d2 = d1.contiguous();
        let d3 = d2.reshape(&[64, 256]);
        for t in [&a, &d1, &d2, &d3] {
            let _ = hooks.pack(t);
        }
        let s = hooks.stats();
        println!(
            "  {:>9}  {:>9.0}%  {:>11.1}",
            hop,
            100.0 * s.dedup_rate(),
            runtime::cpu_live_bytes() as f64 / 1024.0
        );
    }
    println!();
}

/// Extension sweep: learners vs per-learner memory (Table 2 config, S on).
fn sweep_learners() {
    println!("== Sweep: learner count |L| vs per-learner memory ==\n");
    let setup = AblationSetup {
        d_model: 128,
        n_heads: 4,
        seq: 8,
        batch: 1,
        bits: 3,
        cluster_dim: 1,
        dkm_iters: 2,
        overlap_pcie: false,
    };
    println!("  |L|   peak_cpu(MB)  sim_runtime(s)");
    for l in [1usize, 2, 4, 8, 16] {
        let mut cfg = EdkmConfig::full(l);
        cfg.min_shard_elems = 1;
        let row = run_one(&setup, cfg);
        println!(
            "  {:>3}   {:>11.3}  {:>13.4}",
            l,
            row.memory_mb(),
            row.sim_seconds
        );
    }
    println!();
}

/// Extension sweep: palette bit width vs clustering error.
fn sweep_bits() {
    println!("== Sweep: palette bits vs clustering error ==\n");
    runtime::reset();
    let w = Tensor::randn(&[16384], DType::Bf16, Device::Cpu, 3).map(|v| v * 0.02);
    println!("  bits   |C|   max |w - pal(w)|      size(KB)   vs bf16");
    for bits in [1u8, 2, 3, 4, 6] {
        let dkm = DkmLayer::new(DkmConfig::with_bits(bits));
        let pal = dkm.palettize(&w);
        let err = edkm_tensor::ops::max_abs_diff(&pal.decode(), &w);
        let sz = pal.size_bytes();
        println!(
            "  {:>4}  {:>4}   {:>16.5}   {:>10.2}   {:>6.2}x",
            bits,
            1 << bits,
            err,
            sz as f64 / 1024.0,
            (w.numel() * 2) as f64 / sz as f64
        );
    }
    println!();
}

/// Extension sweep: centroid init strategy vs clustering quality.
fn sweep_init() {
    use edkm_core::DkmInit;
    println!("== Sweep: centroid init strategy vs clustering error ==\n");
    runtime::reset();
    let w = Tensor::randn(&[16384], DType::Bf16, Device::Cpu, 5).map(|v| v * 0.02);
    println!("  init              mean |w - pal(w)|   lloyd iters");
    for (label, init) in [
        ("quantile", DkmInit::Quantile),
        ("kmeans++", DkmInit::KmeansPlusPlus { seed: 0 }),
        ("uniform-range", DkmInit::UniformRange),
    ] {
        let dkm = DkmLayer::new(DkmConfig {
            init,
            ..DkmConfig::with_bits(3)
        });
        let out = dkm.cluster_tensor(&w);
        let pal = dkm.palettize(&w);
        let dec = pal.decode().to_vec();
        let orig = w.to_vec();
        let mean_err: f32 = orig
            .iter()
            .zip(&dec)
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / orig.len() as f32;
        println!(
            "  {label:<16}  {mean_err:>17.6}   {:>11}",
            out.iterations_run
        );
    }
    println!();
}

/// Extension sweep: vector (multi-dimensional) clustering vs bits/weight.
fn sweep_vector() {
    println!("== Sweep: vector DKM — bits/weight below the scalar floor ==\n");
    runtime::reset();
    let w = Tensor::randn(&[16384], DType::Bf16, Device::Cpu, 7).map(|v| v * 0.02);
    println!("  config    bits/weight   mean |w - pal(w)|   size(KB)");
    for (bits, dim) in [(4u8, 1usize), (2, 1), (4, 2), (3, 2), (4, 4)] {
        let dkm = DkmLayer::new(DkmConfig {
            iters: 6,
            ..DkmConfig::with_vector(bits, dim)
        });
        let pal = dkm.palettize(&w);
        let dec = pal.decode().to_vec();
        let orig = w.to_vec();
        let mean_err: f32 = orig
            .iter()
            .zip(&dec)
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / orig.len() as f32;
        println!(
            "  {:<9} {:>10.2}   {:>17.6}   {:>8.2}",
            format!("{bits}b x d{dim}"),
            pal.bits_per_weight(),
            mean_err,
            pal.size_bytes() as f64 / 1024.0
        );
    }
    println!();
}

/// Extension sweep: entropy coding of the palette index stream.
fn sweep_entropy() {
    use edkm_core::entropy::index_entropy_bits;
    println!("== Sweep: Huffman coding of palette indices (Deep Compression) ==\n");
    runtime::reset();
    // Clustered weights whose assignment distribution ranges from uniform
    // (gaussian weights) to skewed (heavy mass at zero, as after magnitude
    // regularization).
    println!("  weights         H(idx) bits   fixed b/idx   huffman b/idx");
    let gauss = Tensor::randn(&[16384], DType::Bf16, Device::Cpu, 8).map(|v| v * 0.02);
    let spiky = Tensor::randn(&[16384], DType::Bf16, Device::Cpu, 9).map(|v| {
        if v.abs() < 1.2 {
            0.001 * v
        } else {
            v * 0.05
        }
    });
    for (label, w) in [("gaussian", &gauss), ("zero-heavy", &spiky)] {
        let dkm = DkmLayer::new(DkmConfig::with_bits(3));
        let pal = dkm.palettize(w);
        let idx = pal.indices();
        let ec = pal.entropy_coded();
        println!(
            "  {:<14}  {:>10.3}   {:>11}   {:>13.3}",
            label,
            index_entropy_bits(&idx, pal.k()),
            pal.bits(),
            ec.bits_per_symbol()
        );
    }
    println!("\n  (huffman tracks the index entropy to within 1 bit; skewed\n   assignments ship below the fixed palette width)\n");
}

/// Extension sweep: per-row-group LUTs vs one whole-matrix LUT.
fn sweep_groups() {
    println!("== Sweep: LUT group size (per-grouped-channel palettization) ==\n");
    runtime::reset();
    // A projection whose rows alternate between two scales — the worst
    // case for a shared palette.
    let rows = 64;
    let cols = 64;
    let mut data = Vec::new();
    for r in 0..rows {
        let scale = if r % 8 < 4 { 0.08 } else { 0.005 };
        for c in 0..cols {
            data.push(scale * ((r * cols + c) as f32 * 0.377).sin());
        }
    }
    let w = Tensor::from_vec(data.clone(), &[rows, cols], DType::F32, Device::Cpu);
    let dkm = DkmLayer::new(DkmConfig::with_bits(3));
    println!("  rows/LUT   LUTs   mean |w - pal(w)|    size(KB)");
    for group in [0usize, 32, 8, 4] {
        let g = dkm.palettize_grouped(&w, group);
        let dec = g.decode().to_vec();
        let mean_err: f32 = data
            .iter()
            .zip(&dec)
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / data.len() as f32;
        println!(
            "  {:>8}   {:>4}   {:>17.6}    {:>7.2}",
            if group == 0 { rows } else { group },
            g.groups().len(),
            mean_err,
            g.size_bytes() as f64 / 1024.0
        );
    }
    println!("\n  (smaller groups localize the codebook at ~16 B per extra LUT —\n   the palettization analogue of GPTQ's g128)\n");
}

fn main() {
    fig1();
    fig2();
    fig3();
    sweep_hops();
    sweep_learners();
    sweep_bits();
    sweep_init();
    sweep_vector();
    sweep_entropy();
    sweep_groups();
}
