//! Reproduce Table 2 of the eDKM paper: the M/U/S ablation on one
//! DKM-clustered attention layer (memory footprint, reduction factor,
//! simulated runtime).
//!
//! Run with `cargo run --release -p edkm-bench --bin table2 [d_model]`.

use edkm_core::{run_table2, AblationSetup};

fn main() {
    let d_model: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(512);
    let setup = AblationSetup {
        d_model,
        n_heads: 8,
        seq: 16,
        batch: 1,
        bits: 3,
        cluster_dim: 1,
        dkm_iters: 3,
        overlap_pcie: false,
    };
    println!("== Table 2: ablation of eDKM memory optimizations ==");
    println!(
        "one attention layer, d_model={} (4 projections of {} weights), 3-bit DKM, 8 learners\n",
        setup.d_model,
        setup.d_model * setup.d_model
    );
    let t0 = std::time::Instant::now();
    let rows = run_table2(&setup, 8);
    println!("{}", edkm_bench::paper_table2(&rows));
    println!("(paper, LLaMA-7B scale: 1600 -> 544 -> 68 / 97 -> 12 MB, i.e. 2.9x / 23.5x / 16.4x / 129.9x)");

    // The paper's training loop hides PCIe copies behind GPU compute, so
    // its runtime column is driven by the *optimization overheads* (walk,
    // hash, all-gather). Rerun the clock under that regime.
    let overlap_setup = AblationSetup {
        overlap_pcie: true,
        ..setup
    };
    let overlap_rows = run_table2(&overlap_setup, 8);
    println!("\nruntime with PCIe overlapped behind compute (paper regime):");
    for r in &overlap_rows {
        println!("  {:<6} {:>12.6} sim s", r.label, r.sim_seconds);
    }
    println!("(paper runtimes: 8.67 / 8.97 / 9.5 / 15.9 / 14.9 s — base ≲ M < M+U < M+U+S ≤ M+S)");
    for r in &rows {
        println!(
            "  [{}] packs={} direct={} walk={} misses={} d2h={}MB h2d={}MB",
            r.label,
            r.stats.packs,
            r.stats.direct_hits,
            r.stats.walk_hits,
            r.stats.misses,
            edkm_bench::mb(r.d2h_bytes),
            edkm_bench::mb(r.h2d_bytes),
        );
    }
    eprintln!("\n(wall time: {:.1}s)", t0.elapsed().as_secs_f64());
}
