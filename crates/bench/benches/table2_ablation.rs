//! Criterion bench for Table 2: wall-clock of the full fwd+bwd ablation at
//! smoke scale, one measurement per M/U/S configuration. (The paper-scale
//! numbers come from the `table2` binary.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edkm_core::{run_one, AblationSetup, EdkmConfig};
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let setup = AblationSetup {
        d_model: 64,
        n_heads: 4,
        seq: 8,
        batch: 1,
        bits: 3,
        cluster_dim: 1,
        dkm_iters: 2,
        overlap_pcie: false,
    };
    let configs = [
        ("baseline", EdkmConfig::baseline()),
        ("M", EdkmConfig::marshal_only()),
        ("M+U", EdkmConfig::marshal_uniquify()),
        ("M+S", EdkmConfig::marshal_shard()),
        ("M+U+S", EdkmConfig::full(8)),
    ];
    let mut group = c.benchmark_group("table2_ablation");
    group.sample_size(10);
    for (label, cfg) in configs {
        group.bench_with_input(BenchmarkId::new("fwd_bwd", label), &cfg, |b, cfg| {
            b.iter(|| black_box(run_one(&setup, *cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
