//! Scaling bench (figure-style): DKM forward+backward cost versus the
//! number of weights |W| and the palette size |C| — the O(|W|·|C|)
//! complexity Fig. 1 of the paper is about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use edkm_autograd::Var;
use edkm_core::{DkmConfig, DkmLayer};
use edkm_tensor::{DType, Device, Tensor};
use std::hint::black_box;

fn bench_weights_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dkm_scaling_weights");
    group.sample_size(10);
    for &n in &[1024usize, 4096, 16384] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("cluster_bwd_3bit", n), &n, |b, &n| {
            let w = Tensor::randn(&[n], DType::Bf16, Device::Cpu, 0).map(|v| v * 0.02);
            let layer = DkmLayer::new(DkmConfig {
                iters: 3,
                ..DkmConfig::with_bits(3)
            });
            b.iter(|| {
                let v = Var::param(w.clone());
                let out = layer.cluster(&v);
                out.soft.mean_all().backward();
                black_box(v.grad())
            });
        });
    }
    group.finish();
}

fn bench_palette_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dkm_scaling_bits");
    group.sample_size(10);
    let w = Tensor::randn(&[8192], DType::Bf16, Device::Cpu, 1).map(|v| v * 0.02);
    for &bits in &[1u8, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::new("cluster_fwd", bits), &bits, |b, &bits| {
            let layer = DkmLayer::new(DkmConfig {
                iters: 3,
                ..DkmConfig::with_bits(bits)
            });
            b.iter(|| black_box(layer.cluster_tensor(&w)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_weights_scaling, bench_palette_scaling);
criterion_main!(benches);
