//! Criterion bench for the Table 3 machinery at smoke scale: quantizer
//! throughput and suite-evaluation latency. (The accuracy table itself comes
//! from the `table3` binary.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edkm_data::{Grammar, TaskSuite};
use edkm_eval::evaluate_suite;
use edkm_nn::{LlamaConfig, LlamaModel};
use edkm_quant::{AwqQuantizer, GptqQuantizer, RtnQuantizer, WeightQuantizer};
use edkm_tensor::{DType, Device, Tensor};
use std::hint::black_box;

fn bench_quantizers(c: &mut Criterion) {
    let w = Tensor::randn(&[64, 64], DType::F32, Device::Cpu, 0);
    let x = Tensor::randn(&[128, 64], DType::F32, Device::Cpu, 1);
    let quantizers: Vec<(&str, Box<dyn WeightQuantizer>)> = vec![
        ("rtn", Box::new(RtnQuantizer::new(3, 0))),
        ("gptq", Box::new(GptqQuantizer::new(3, 32))),
        ("awq", Box::new(AwqQuantizer::new(3, 32))),
    ];
    let mut group = c.benchmark_group("table3_quantizers");
    group.sample_size(10);
    for (name, q) in &quantizers {
        group.bench_with_input(BenchmarkId::new("quantize_64x64", name), q, |b, q| {
            b.iter(|| black_box(q.quantize(&w, Some(&x))));
        });
    }
    group.finish();
}

fn bench_suite_eval(c: &mut Criterion) {
    // Must cover the grammar's 64-token vocabulary.
    let cfg = LlamaConfig {
        vocab: 64,
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        max_seq: 32,
    };
    let model = LlamaModel::new(cfg, DType::F32, Device::Cpu, 0);
    let grammar = Grammar::default_with_seed(0);
    let suite = TaskSuite::generate(&grammar, 4, 1);
    let mut group = c.benchmark_group("table3_eval");
    group.sample_size(10);
    group.bench_function("suite_4_items_per_task", |b| {
        b.iter(|| black_box(evaluate_suite(&model, &suite)));
    });
    group.finish();
}

criterion_group!(benches, bench_quantizers, bench_suite_eval);
criterion_main!(benches);
