//! Extension bench: Huffman entropy coding of palette index streams
//! (Deep Compression's final stage) versus fixed-width bit packing —
//! encode/decode throughput on uniform and skewed assignment
//! distributions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use edkm_core::entropy::EntropyCoded;
use edkm_core::palettize::{pack_bits, unpack_bits};
use std::hint::black_box;

/// Index stream over `0..8` with a controllable skew: `skew = 0` is
/// uniform; higher skews concentrate mass on symbol 0.
fn stream(n: usize, skew: u32) -> Vec<u32> {
    (0..n)
        .map(|i| {
            let r = (i as u64).wrapping_mul(2654435761) % 100;
            if r < 12 * u64::from(skew) {
                0
            } else {
                (i % 8) as u32
            }
        })
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("entropy_encode");
    group.sample_size(20);
    let n = 65536usize;
    for &skew in &[0u32, 4, 7] {
        let idx = stream(n, skew);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("huffman", skew), &idx, |b, idx| {
            b.iter(|| black_box(EntropyCoded::encode(idx, 8)));
        });
        group.bench_with_input(BenchmarkId::new("pack_bits", skew), &idx, |b, idx| {
            b.iter(|| black_box(pack_bits(idx, 3)));
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("entropy_decode");
    group.sample_size(20);
    let n = 65536usize;
    for &skew in &[0u32, 7] {
        let idx = stream(n, skew);
        let ec = EntropyCoded::encode(&idx, 8);
        let packed = pack_bits(&idx, 3);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("huffman", skew), &ec, |b, ec| {
            b.iter(|| black_box(ec.decode().unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("unpack_bits", skew), &packed, |b, p| {
            b.iter(|| black_box(unpack_bits(p, 3, n)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
