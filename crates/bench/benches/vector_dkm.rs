//! Extension bench: vector (multi-dimensional) DKM clustering cost and
//! block-uniquification packing cost across cluster dimensionalities.
//!
//! At fixed bits/weight, raising `cluster_dim` shrinks the attention map
//! (`|W|/d` rows) but pays a `d`-wide distance kernel; this bench measures
//! where the trade lands, alongside the wide (u32) uniquification path the
//! block keys require.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use edkm_core::uniquify::{self, RowKeys};
use edkm_core::{DkmConfig, DkmLayer};
use edkm_tensor::{DType, Device, Tensor};
use std::hint::black_box;

fn bench_cluster_dims(c: &mut Criterion) {
    let mut group = c.benchmark_group("vector_dkm_cluster");
    group.sample_size(10);
    let n = 8192usize;
    let w = Tensor::randn(&[n], DType::Bf16, Device::Cpu, 0).map(|v| v * 0.02);
    // 4 index bits per block at every point: d scales bits/weight down.
    for &dim in &[1usize, 2, 4] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("fwd_4bit", dim), &dim, |b, &dim| {
            let layer = DkmLayer::new(DkmConfig {
                iters: 3,
                ..DkmConfig::with_vector(4, dim)
            });
            b.iter(|| black_box(layer.cluster_tensor(&w)));
        });
    }
    group.finish();
}

fn bench_block_uniquify(c: &mut Criterion) {
    let mut group = c.benchmark_group("vector_dkm_uniquify");
    group.sample_size(20);
    let nblocks = 4096usize;
    let k = 16usize;
    // Low-entropy patterns (weights collapsed toward centroids late in a
    // clustering fine-tune): few unique blocks, wide path profits.
    for &dim in &[1usize, 2, 4] {
        let patterns: Vec<u16> = (0..nblocks * dim).map(|i| (i % 23) as u16).collect();
        let keys = RowKeys::blocks(&patterns, dim);
        let dense: Vec<f32> = keys
            .keys()
            .iter()
            .flat_map(|&key| (0..k).map(move |j| (key % 97) as f32 + j as f32))
            .collect();
        group.throughput(Throughput::Elements((nblocks * k) as u64));
        group.bench_with_input(BenchmarkId::new("uniquify_wide", dim), &dim, |b, _| {
            b.iter(|| black_box(uniquify::uniquify_wide(&dense, keys.keys(), k)));
        });
        group.bench_with_input(BenchmarkId::new("reconstruct_wide", dim), &dim, |b, _| {
            let (table, index, _) = uniquify::uniquify_wide(&dense, keys.keys(), k);
            b.iter(|| black_box(uniquify::reconstruct_wide(&table, &index, k)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cluster_dims, bench_block_uniquify);
criterion_main!(benches);
