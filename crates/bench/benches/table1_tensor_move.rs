//! Criterion bench for the Table 1 mechanics: cross-device copies with and
//! without marshaling.
//!
//! Prints the memory side of the table once (bytes are deterministic), then
//! measures the wall-clock cost of the pack path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edkm_autograd::SavedTensorHooks;
use edkm_core::{EdkmConfig, EdkmHooks};
use edkm_tensor::{runtime, DType, Device, Tensor};
use std::hint::black_box;

fn report_memory_once() {
    runtime::reset();
    let x0 = Tensor::rand(&[1024, 1024], DType::F32, Device::gpu(), 42);
    let x1 = x0.reshape(&[1024 * 1024, 1]);
    let naive = EdkmHooks::new(EdkmConfig::baseline());
    let _a = naive.pack(&x0);
    let _b = naive.pack(&x1);
    let without = runtime::cpu_live_bytes();
    runtime::reset();
    let x0 = Tensor::rand(&[1024, 1024], DType::F32, Device::gpu(), 42);
    let x1 = x0.reshape(&[1024 * 1024, 1]);
    let marshal = EdkmHooks::new(EdkmConfig::marshal_only());
    let _a = marshal.pack(&x0);
    let _b = marshal.pack(&x1);
    let with = runtime::cpu_live_bytes();
    eprintln!(
        "[table1] CPU bytes after two saves: without marshaling {} MB, with {} MB (paper: 8 vs 4)",
        without >> 20,
        with >> 20
    );
}

fn bench_tensor_move(c: &mut Criterion) {
    report_memory_once();
    let mut group = c.benchmark_group("table1_tensor_move");
    for &side in &[128usize, 512, 1024] {
        group.bench_with_input(BenchmarkId::new("to_cpu_copy", side), &side, |b, &side| {
            runtime::reset();
            let x = Tensor::rand(&[side, side], DType::F32, Device::gpu(), 0);
            b.iter(|| black_box(x.to_device(Device::Cpu)));
        });
        group.bench_with_input(
            BenchmarkId::new("pack_after_registry_hit", side),
            &side,
            |b, &side| {
                runtime::reset();
                let x = Tensor::rand(&[side, side], DType::F32, Device::gpu(), 0);
                let hooks = EdkmHooks::new(EdkmConfig::marshal_only());
                let _first = hooks.pack(&x); // registry now warm
                let view = x.reshape(&[side * side]);
                b.iter(|| black_box(hooks.pack(&view)));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_tensor_move
}
criterion_main!(benches);
