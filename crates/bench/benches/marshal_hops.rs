//! Bench of the marshaling graph walk: pack cost versus provenance depth
//! and hop limit (the paper found 4 hops sufficient).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edkm_autograd::SavedTensorHooks;
use edkm_core::{EdkmConfig, EdkmHooks};
use edkm_tensor::{runtime, DType, Device, Tensor};
use std::hint::black_box;

fn chain(depth: usize) -> (Tensor, Tensor) {
    runtime::reset();
    let root = Tensor::randn(&[64, 64], DType::F32, Device::gpu(), 0);
    let mut t = root.clone();
    for i in 0..depth {
        t = match i % 3 {
            0 => t.transpose(0, 1),
            1 => t.alias(),
            _ => t.reshape(&[64, 64]),
        };
    }
    (root, t)
}

fn bench_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("marshal_walk");
    group.sample_size(20);
    for &depth in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("pack_at_depth", depth),
            &depth,
            |b, &depth| {
                let (root, leaf) = chain(depth);
                let hooks = EdkmHooks::new(EdkmConfig::marshal_only());
                let _warm = hooks.pack(&root);
                b.iter(|| black_box(hooks.pack(&leaf)));
            },
        );
    }
    // Miss path: hop limit exhausted, full copy.
    group.bench_function("pack_miss_full_copy", |b| {
        let (_root, leaf) = chain(8);
        let mut cfg = EdkmConfig::marshal_only();
        cfg.hop_limit = 2;
        let hooks = EdkmHooks::new(cfg);
        b.iter(|| black_box(hooks.pack(&leaf)));
    });
    group.finish();
}

criterion_group!(benches, bench_walk);
criterion_main!(benches);
