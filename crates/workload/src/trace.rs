//! Seeded, fully deterministic workload traces.
//!
//! A [`Trace`] is an ordered list of [`TimedRequest`]s — each a complete
//! serving request (prompt, budget, sampling, priority, optional step
//! deadline) stamped with a virtual **arrival step**. Generation draws
//! every choice from one seeded [`StdRng`], so the same
//! [`TraceConfig`] always yields the same trace, byte for byte
//! ([`Trace::to_bytes`] / [`Trace::fingerprint`] make that checkable).

use edkm_core::{Priority, SamplingConfig};
use rand::{Rng, SeedableRng, StdRng};

/// The request-mix archetype a trace models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Bursty Poisson arrivals of medium requests with seeded top-k
    /// sampling: the open-loop traffic shape of a public endpoint.
    Bursty,
    /// Multi-turn chat sessions whose prompts grow by reusing the full
    /// conversation history (the prefix-sharing traffic shape).
    Chat,
    /// Long-context summarization: prompts near `max_seq` with tiny
    /// completion budgets at [`Priority::Low`] — the KV-pressure and
    /// preemption driver.
    Summarize,
    /// Short classification bursts: tiny prompts, 1–2 token budgets,
    /// [`Priority::High`] and tight step deadlines.
    Classify,
    /// A weighted blend of all of the above with mixed priorities and
    /// deadlines on the interactive slice.
    Mixed,
}

impl TraceKind {
    /// Every kind, in the order the bench sweeps them.
    pub const ALL: [TraceKind; 5] = [
        TraceKind::Bursty,
        TraceKind::Chat,
        TraceKind::Summarize,
        TraceKind::Classify,
        TraceKind::Mixed,
    ];

    /// Stable lowercase name (the `--trace` selector and the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Bursty => "bursty",
            TraceKind::Chat => "chat",
            TraceKind::Summarize => "summarize",
            TraceKind::Classify => "classify",
            TraceKind::Mixed => "mixed",
        }
    }

    /// Parse a `--trace` selector.
    ///
    /// # Errors
    ///
    /// Returns the accepted selector list when `name` is not one of them.
    pub fn parse(name: &str) -> Result<TraceKind, String> {
        match name {
            "bursty" => Ok(TraceKind::Bursty),
            "chat" => Ok(TraceKind::Chat),
            "summarize" => Ok(TraceKind::Summarize),
            "classify" => Ok(TraceKind::Classify),
            "mixed" => Ok(TraceKind::Mixed),
            other => Err(format!(
                "unknown trace kind '{other}' (expected bursty|chat|summarize|classify|mixed)"
            )),
        }
    }

    fn tag(self) -> u64 {
        match self {
            TraceKind::Bursty => 0xB0B5,
            TraceKind::Chat => 0xC4A7,
            TraceKind::Summarize => 0x50FA,
            TraceKind::Classify => 0xC1A5,
            TraceKind::Mixed => 0x313D,
        }
    }
}

impl std::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything a trace is generated from. Two equal configs always produce
/// byte-identical traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// The request-mix archetype.
    pub kind: TraceKind,
    /// Master seed; every prompt token, arrival gap and sampling seed
    /// derives from it.
    pub seed: u64,
    /// Number of requests in the trace.
    pub requests: usize,
    /// Vocabulary size of the model the trace targets (prompt tokens are
    /// drawn below it).
    pub vocab: usize,
    /// Context budget of the model: every request keeps
    /// `prompt.len() + max_new <= max_seq`.
    pub max_seq: usize,
}

impl TraceConfig {
    /// A config for `requests` requests of `kind` against a model with the
    /// given `vocab` and `max_seq`.
    ///
    /// # Panics
    ///
    /// Panics if `requests == 0`, `vocab == 0`, or `max_seq < 8` (too
    /// small to shape distinct request classes).
    #[must_use]
    pub fn new(kind: TraceKind, seed: u64, requests: usize, vocab: usize, max_seq: usize) -> Self {
        assert!(requests > 0, "a trace needs at least one request");
        assert!(vocab > 0, "vocab must be positive");
        assert!(max_seq >= 8, "max_seq {max_seq} too small for a trace");
        TraceConfig {
            kind,
            seed,
            requests,
            vocab,
            max_seq,
        }
    }
}

/// One request of a trace: a full serving request plus its virtual arrival
/// step.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedRequest {
    /// Position in submission order (0-based); also the id the replay
    /// drivers key outcomes by.
    pub id: u64,
    /// Virtual scheduler step at which the request arrives.
    pub arrival_step: u64,
    /// Prompt token ids (non-empty, all below the config's vocab).
    pub prompt: Vec<usize>,
    /// Completion budget; `prompt.len() + max_new <= max_seq` holds.
    pub max_new: usize,
    /// Per-request sampling policy (seeded when stochastic).
    pub sampling: SamplingConfig,
    /// Scheduling class.
    pub priority: Priority,
    /// Step deadline relative to submission, if any.
    pub deadline_steps: Option<u64>,
}

impl TimedRequest {
    /// Total KV footprint of the request in tokens (prompt + budget).
    pub fn total_tokens(&self) -> usize {
        self.prompt.len() + self.max_new
    }
}

/// A generated workload trace: requests in arrival order.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    config: TraceConfig,
    requests: Vec<TimedRequest>,
}

/// Intermediate request shape before ids are assigned in arrival order.
struct Proto {
    arrival: u64,
    prompt: Vec<usize>,
    max_new: usize,
    sampling: SamplingConfig,
    priority: Priority,
    deadline: Option<u64>,
}

/// Exponential inter-arrival gap (mean `mean` steps), rounded to whole
/// steps — the Poisson-process building block.
fn exp_gap(rng: &mut StdRng, mean: f64) -> u64 {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    (-u.ln() * mean).round() as u64
}

fn rand_prompt(rng: &mut StdRng, len: usize, vocab: usize) -> Vec<usize> {
    (0..len.max(1)).map(|_| rng.gen_range(0..vocab)).collect()
}

impl Trace {
    /// Generate the trace `config` describes. Deterministic: equal configs
    /// yield byte-identical traces.
    #[must_use]
    pub fn generate(config: &TraceConfig) -> Trace {
        let mut rng = StdRng::seed_from_u64(config.seed ^ config.kind.tag());
        let mut protos = match config.kind {
            TraceKind::Bursty => gen_bursty(&mut rng, config),
            TraceKind::Chat => gen_chat(&mut rng, config),
            TraceKind::Summarize => gen_summarize(&mut rng, config),
            TraceKind::Classify => gen_classify(&mut rng, config),
            TraceKind::Mixed => gen_mixed(&mut rng, config),
        };
        protos.truncate(config.requests);
        // Arrival order with a stable tie-break on generation order.
        let mut order: Vec<usize> = (0..protos.len()).collect();
        order.sort_by_key(|&i| (protos[i].arrival, i));
        let requests = order
            .into_iter()
            .enumerate()
            .map(|(id, i)| {
                let p = &protos[i];
                debug_assert!(!p.prompt.is_empty());
                debug_assert!(p.max_new >= 1);
                debug_assert!(p.prompt.len() + p.max_new <= config.max_seq);
                TimedRequest {
                    id: id as u64,
                    arrival_step: p.arrival,
                    prompt: p.prompt.clone(),
                    max_new: p.max_new,
                    sampling: p.sampling,
                    priority: p.priority,
                    deadline_steps: p.deadline,
                }
            })
            .collect();
        Trace {
            config: *config,
            requests,
        }
    }

    /// The config this trace was generated from.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// The requests, in arrival order.
    pub fn requests(&self) -> &[TimedRequest] {
        &self.requests
    }

    /// Largest `prompt + max_new` footprint over the trace, in tokens —
    /// what a bounded KV pool must at least hold.
    pub fn max_tokens_per_request(&self) -> usize {
        self.requests
            .iter()
            .map(TimedRequest::total_tokens)
            .max()
            .unwrap_or(0)
    }

    /// Whether any request carries a step deadline (deadline traces can
    /// expire differently under wall-clock vs virtual-clock replay).
    pub fn has_deadlines(&self) -> bool {
        self.requests.iter().any(|r| r.deadline_steps.is_some())
    }

    /// Canonical byte encoding of the whole trace (config + every request
    /// field, little-endian, length-prefixed). Two traces are equal iff
    /// their encodings are — the determinism tests compare these.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let push = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
        push(&mut out, self.config.kind.tag());
        push(&mut out, self.config.seed);
        push(&mut out, self.config.requests as u64);
        push(&mut out, self.config.vocab as u64);
        push(&mut out, self.config.max_seq as u64);
        push(&mut out, self.requests.len() as u64);
        for r in &self.requests {
            push(&mut out, r.id);
            push(&mut out, r.arrival_step);
            push(&mut out, r.prompt.len() as u64);
            for &t in &r.prompt {
                push(&mut out, t as u64);
            }
            push(&mut out, r.max_new as u64);
            push(&mut out, u64::from(r.sampling.temperature.to_bits()));
            push(&mut out, r.sampling.top_k as u64);
            push(&mut out, r.sampling.seed);
            push(
                &mut out,
                match r.priority {
                    Priority::Low => 0,
                    Priority::Normal => 1,
                    Priority::High => 2,
                },
            );
            push(&mut out, r.deadline_steps.unwrap_or(u64::MAX));
        }
        out
    }

    /// FNV-1a hash of [`Trace::to_bytes`] — a compact identity for logs
    /// and bench JSON.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

fn gen_bursty(rng: &mut StdRng, cfg: &TraceConfig) -> Vec<Proto> {
    let mut protos = Vec::with_capacity(cfg.requests);
    let mut now = 0u64;
    let mut burst_left = 0usize;
    for i in 0..cfg.requests {
        if burst_left > 0 {
            burst_left -= 1; // same-step burst member
        } else {
            now += exp_gap(rng, 2.0);
            if rng.gen_bool(0.25) {
                burst_left = rng.gen_range(1..4usize);
            }
        }
        let budget = cfg.max_seq;
        let plen = rng.gen_range(4..13usize).min(budget - 2);
        let max_new = rng.gen_range(4..10usize).min(budget - plen);
        protos.push(Proto {
            arrival: now,
            prompt: rand_prompt(rng, plen, cfg.vocab),
            max_new,
            sampling: SamplingConfig::with_top_k(0.8, 8, cfg.seed ^ ((i as u64) << 1)),
            priority: Priority::Normal,
            deadline: None,
        });
    }
    protos
}

fn gen_chat(rng: &mut StdRng, cfg: &TraceConfig) -> Vec<Proto> {
    // Sessions of 2–4 turns; each turn's prompt replays the whole prior
    // conversation (history + a simulated reply) plus fresh user tokens,
    // sliding-window truncated to the context budget.
    let mut protos = Vec::with_capacity(cfg.requests);
    let max_new = 6.min(cfg.max_seq / 4).max(1);
    let budget = cfg.max_seq - max_new;
    let mut session_start = 0u64;
    while protos.len() < cfg.requests {
        let turns = rng.gen_range(2..5usize);
        let mut now = session_start;
        let mut history: Vec<usize> = Vec::new();
        for _ in 0..turns {
            if protos.len() >= cfg.requests {
                break;
            }
            let user_len = rng.gen_range(3..8usize);
            let user = rand_prompt(rng, user_len, cfg.vocab);
            history.extend_from_slice(&user);
            if history.len() > budget {
                history.drain(..history.len() - budget);
            }
            protos.push(Proto {
                arrival: now,
                prompt: history.clone(),
                max_new,
                sampling: SamplingConfig::greedy(),
                priority: Priority::Normal,
                deadline: None,
            });
            // The simulated assistant reply joins the history the next
            // turn replays.
            let reply = rand_prompt(rng, max_new, cfg.vocab);
            history.extend_from_slice(&reply);
            now += 3 + exp_gap(rng, 4.0); // think time between turns
        }
        session_start += exp_gap(rng, 3.0) + 1;
    }
    protos
}

fn gen_summarize(rng: &mut StdRng, cfg: &TraceConfig) -> Vec<Proto> {
    let mut protos = Vec::with_capacity(cfg.requests);
    let mut now = 0u64;
    for _ in 0..cfg.requests {
        now += exp_gap(rng, 1.0); // near-simultaneous: pile on the KV pool
        let max_new = rng.gen_range(2..7usize).min(cfg.max_seq / 4).max(1);
        let budget = cfg.max_seq - max_new;
        let lo = (cfg.max_seq * 5 / 8).clamp(1, budget);
        let plen = if lo < budget {
            rng.gen_range(lo..budget + 1)
        } else {
            budget
        };
        protos.push(Proto {
            arrival: now,
            prompt: rand_prompt(rng, plen, cfg.vocab),
            max_new,
            sampling: SamplingConfig::greedy(),
            priority: Priority::Low,
            deadline: None,
        });
    }
    protos
}

fn gen_classify(rng: &mut StdRng, cfg: &TraceConfig) -> Vec<Proto> {
    let mut protos = Vec::with_capacity(cfg.requests);
    let mut now = 0u64;
    let mut burst_left = 0usize;
    for _ in 0..cfg.requests {
        if burst_left == 0 {
            now += 2 + exp_gap(rng, 3.0);
            burst_left = rng.gen_range(4..9usize);
        }
        burst_left -= 1;
        let plen = rng.gen_range(2..7usize).min(cfg.max_seq - 2);
        protos.push(Proto {
            arrival: now,
            prompt: rand_prompt(rng, plen, cfg.vocab),
            max_new: rng.gen_range(1..3usize),
            sampling: SamplingConfig::greedy(),
            priority: Priority::High,
            deadline: Some(rng.gen_range(4..11u64)),
        });
    }
    protos
}

fn gen_mixed(rng: &mut StdRng, cfg: &TraceConfig) -> Vec<Proto> {
    let mut protos = Vec::with_capacity(cfg.requests);
    let mut now = 0u64;
    for i in 0..cfg.requests {
        now += exp_gap(rng, 1.5);
        let roll = rng.gen_range(0..100u32);
        let proto = if roll < 35 {
            // Interactive medium request, sampled.
            let plen = rng.gen_range(4..11usize).min(cfg.max_seq - 2);
            let max_new = rng.gen_range(4..9usize).min(cfg.max_seq - plen);
            Proto {
                arrival: now,
                prompt: rand_prompt(rng, plen, cfg.vocab),
                max_new,
                sampling: SamplingConfig::with_top_k(0.7, 8, cfg.seed ^ 0x5EED ^ (i as u64)),
                priority: Priority::Normal,
                deadline: None,
            }
        } else if roll < 60 {
            // Chat-ish follow-up: medium prompt, greedy.
            let plen = rng.gen_range(6..15usize).min(cfg.max_seq - 2);
            let max_new = rng.gen_range(3..7usize).min(cfg.max_seq - plen);
            Proto {
                arrival: now,
                prompt: rand_prompt(rng, plen, cfg.vocab),
                max_new,
                sampling: SamplingConfig::greedy(),
                priority: Priority::Normal,
                deadline: None,
            }
        } else if roll < 80 {
            // Classification: short, urgent, deadlined.
            let plen = rng.gen_range(2..6usize);
            Proto {
                arrival: now,
                prompt: rand_prompt(rng, plen, cfg.vocab),
                max_new: rng.gen_range(1..3usize),
                sampling: SamplingConfig::greedy(),
                priority: Priority::High,
                deadline: Some(rng.gen_range(5..13u64)),
            }
        } else {
            // Background summarization: long prompt, low priority.
            let max_new = rng.gen_range(2..5usize);
            let budget = cfg.max_seq - max_new;
            let lo = (cfg.max_seq / 2).clamp(1, budget);
            let plen = if lo < budget {
                rng.gen_range(lo..budget + 1)
            } else {
                budget
            };
            Proto {
                arrival: now,
                prompt: rand_prompt(rng, plen, cfg.vocab),
                max_new,
                sampling: SamplingConfig::greedy(),
                priority: Priority::Low,
                deadline: None,
            }
        };
        protos.push(proto);
    }
    protos
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(kind: TraceKind) -> TraceConfig {
        TraceConfig::new(kind, 42, 16, 64, 48)
    }

    #[test]
    fn every_kind_respects_the_contract() {
        for kind in TraceKind::ALL {
            let trace = Trace::generate(&cfg(kind));
            assert_eq!(trace.requests().len(), 16, "{kind}");
            let mut last = 0u64;
            for (i, r) in trace.requests().iter().enumerate() {
                assert_eq!(r.id, i as u64, "{kind}: ids follow arrival order");
                assert!(r.arrival_step >= last, "{kind}: arrivals sorted");
                last = r.arrival_step;
                assert!(!r.prompt.is_empty(), "{kind}");
                assert!(r.max_new >= 1, "{kind}");
                assert!(r.total_tokens() <= 48, "{kind}: context budget");
                assert!(r.prompt.iter().all(|&t| t < 64), "{kind}: vocab");
            }
        }
    }

    #[test]
    fn same_seed_is_byte_identical_and_seeds_differ() {
        for kind in TraceKind::ALL {
            let a = Trace::generate(&cfg(kind));
            let b = Trace::generate(&cfg(kind));
            assert_eq!(a.to_bytes(), b.to_bytes(), "{kind}");
            assert_eq!(a.fingerprint(), b.fingerprint(), "{kind}");
            let mut other = cfg(kind);
            other.seed = 43;
            assert_ne!(
                Trace::generate(&other).to_bytes(),
                a.to_bytes(),
                "{kind}: different seeds must differ"
            );
        }
    }

    #[test]
    fn kinds_shape_their_traffic() {
        let classify = Trace::generate(&cfg(TraceKind::Classify));
        assert!(classify.has_deadlines());
        assert!(classify
            .requests()
            .iter()
            .all(|r| r.priority == Priority::High && r.max_new <= 2));

        let summarize = Trace::generate(&cfg(TraceKind::Summarize));
        assert!(!summarize.has_deadlines());
        assert!(summarize
            .requests()
            .iter()
            .all(|r| r.priority == Priority::Low && r.prompt.len() >= 48 * 5 / 8));

        let mixed = Trace::generate(&cfg(TraceKind::Mixed));
        assert!(mixed.has_deadlines());
        let prios: std::collections::HashSet<_> =
            mixed.requests().iter().map(|r| r.priority).collect();
        assert!(prios.len() >= 2, "mixed trace carries mixed priorities");
    }

    #[test]
    fn parse_roundtrips_and_rejects() {
        for kind in TraceKind::ALL {
            assert_eq!(TraceKind::parse(kind.name()).unwrap(), kind);
        }
        assert!(TraceKind::parse("poisson").is_err());
    }
}
