//! Small aggregation helpers shared by the replay drivers, the bench
//! bins and the CLI.

/// Nearest-rank percentile over an ascending `f64` slice (`p` in
/// `[0, 1]`; 0.0 on an empty slice).
pub fn percentile_f64(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// Nearest-rank percentile over an ascending `u64` slice (`p` in
/// `[0, 1]`; 0 on an empty slice).
pub fn percentile_u64(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_cover_edges() {
        assert_eq!(percentile_f64(&[], 0.5), 0.0);
        assert_eq!(percentile_u64(&[], 0.99), 0);
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_f64(&v, 0.0), 1.0);
        assert_eq!(percentile_f64(&v, 1.0), 4.0);
        let u = [10u64, 20, 30];
        assert_eq!(percentile_u64(&u, 0.5), 20);
        assert_eq!(percentile_u64(&u, 1.0), 30);
    }
}
