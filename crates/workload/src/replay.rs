//! Replay drivers: feed a [`Trace`] through the serving stack and
//! aggregate outcome and latency metrics.
//!
//! [`replay_trace`] is the deterministic layer — it owns a
//! [`Scheduler`] and advances a virtual step clock, so arrivals,
//! admissions, deadlines and preemptions replay identically on every run
//! and every machine. [`replay_engine`] is the wall-clock layer — it
//! submits through an [`EngineHandle`] with one consumer thread per token
//! stream, the shape a real front-end has, and reads backpressure and
//! engine counters from [`StatsSnapshot`].
//!
//! [`EngineHandle`]: edkm_core::EngineHandle

use crate::report::{percentile_f64, percentile_u64};
use crate::trace::Trace;
use edkm_cluster::{Cluster, ClusterConfig, ClusterStats, RouteError, RouterHandle};
use edkm_core::{
    EngineConfig, FinishReason, Request, Scheduler, ServeEngine, ServeModel, ServeRequest,
    StatsSnapshot, StepEvents, SubmitError, TokenEvent,
};
use std::collections::HashMap;
use std::time::Instant;

/// Terminal record of one replayed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestOutcome {
    /// The trace request id.
    pub id: u64,
    /// Full sequence: prompt followed by the generated continuation.
    pub tokens: Vec<usize>,
    /// Number of generated tokens.
    pub generated: usize,
    /// Why the request retired.
    pub finish: FinishReason,
    /// Steps between submission and the first emitted token (virtual-clock
    /// replay only; `None` if no token was emitted).
    pub ttft_steps: Option<u64>,
}

/// Aggregate counters of one replay, comparable across runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayCounters {
    /// Requests fed into the scheduler or engine.
    pub submitted: u64,
    /// Requests that finished naturally (budget or stop token).
    pub finished: u64,
    /// Requests that hit their step deadline.
    pub expired: u64,
    /// Requests cancelled mid-flight.
    pub cancelled: u64,
    /// Preemption events (KV blocks reclaimed, sequence replayed later).
    pub preemptions: u64,
    /// Batched forward steps executed.
    pub decode_steps: u64,
    /// Tokens generated across all requests.
    pub tokens_generated: u64,
    /// High-water mark of live KV bytes.
    pub kv_peak_bytes: usize,
    /// Admissions that adopted at least one cached prefix block.
    pub prefix_hits: u64,
    /// Prompt tokens served from the prefix cache instead of prefill.
    pub prefix_tokens_reused: u64,
    /// Draft tokens proposed by the speculative decoder.
    pub spec_proposed: u64,
    /// Draft tokens accepted by target verification.
    pub spec_accepted: u64,
}

impl ReplayCounters {
    /// `expired / submitted` (0 when nothing was submitted).
    pub fn deadline_miss_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.expired as f64 / self.submitted as f64
        }
    }

    /// Preemptions per submitted request (0 when nothing was submitted).
    pub fn preemption_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.preemptions as f64 / self.submitted as f64
        }
    }

    /// Fraction of admissions that reused a cached prefix (0 when nothing
    /// was submitted).
    pub fn prefix_hit_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.prefix_hits as f64 / self.submitted as f64
        }
    }

    /// Accepted draft tokens per decode step (0 when no step ran).
    pub fn accepted_per_step(&self) -> f64 {
        if self.decode_steps == 0 {
            0.0
        } else {
            self.spec_accepted as f64 / self.decode_steps as f64
        }
    }
}

/// Result of the deterministic virtual-clock replay ([`replay_trace`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StepReplayReport {
    /// Per-request outcomes, sorted by trace id.
    pub outcomes: Vec<RequestOutcome>,
    /// Aggregate counters.
    pub counters: ReplayCounters,
    /// First-token latencies in scheduler steps, ascending (one entry per
    /// request that emitted at least one token).
    pub ttft_steps: Vec<u64>,
}

impl StepReplayReport {
    /// TTFT percentile in steps (`p` in `[0, 1]`).
    pub fn ttft_steps_p(&self, p: f64) -> u64 {
        percentile_u64(&self.ttft_steps, p)
    }
}

/// Replay `trace` against a [`Scheduler`] over `model` on a virtual step
/// clock: each loop tick submits every request whose arrival step has
/// come, then runs one scheduling step. The result — every token, finish
/// reason, TTFT-in-steps, deadline miss and preemption — is a pure
/// function of `(model, trace, max_batch)`.
///
/// # Panics
///
/// Panics on the same conditions as [`Scheduler::submit`] /
/// [`Scheduler::step`] (empty prompts, context overflow, a bounded KV
/// pool too small for a single request).
pub fn replay_trace<M: ServeModel>(model: &M, trace: &Trace, max_batch: usize) -> StepReplayReport {
    replay_with_scheduler(Scheduler::new(model, max_batch), trace)
}

/// [`replay_trace`] with exact-acceptance speculative decoding: `draft`
/// proposes `draft_k` tokens per scheduler step and the target verifies
/// them in one batched forward. Tokens are bit-identical to the plain
/// replay for greedy requests; [`ReplayCounters::spec_proposed`] /
/// [`ReplayCounters::spec_accepted`] record the speculation economics.
///
/// # Panics
///
/// Panics on the same conditions as [`replay_trace`], plus those of
/// [`Scheduler::with_speculative`] (vocab mismatch, `draft_k == 0`, a
/// draft with a shorter context than the target).
pub fn replay_trace_speculative<M: ServeModel>(
    model: &M,
    trace: &Trace,
    max_batch: usize,
    draft: std::sync::Arc<dyn ServeModel>,
    draft_k: usize,
) -> StepReplayReport {
    replay_with_scheduler(
        Scheduler::with_speculative(model, max_batch, draft, draft_k),
        trace,
    )
}

/// Shared virtual-clock loop behind [`replay_trace`] and
/// [`replay_trace_speculative`].
fn replay_with_scheduler<M: ServeModel>(
    mut sched: Scheduler<'_, M>,
    trace: &Trace,
) -> StepReplayReport {
    let mut events = StepEvents::default();
    let reqs = trace.requests();
    let mut next = 0usize;
    let mut now = 0u64;
    let mut submit_step: HashMap<u64, u64> = HashMap::new();
    let mut ttft_of: HashMap<u64, u64> = HashMap::new();
    let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(reqs.len());
    let mut counters = ReplayCounters::default();

    while next < reqs.len() || !sched.is_idle() {
        while next < reqs.len() && reqs[next].arrival_step <= now {
            let r = &reqs[next];
            sched.submit(ServeRequest {
                id: r.id,
                prompt: r.prompt.clone(),
                max_new: r.max_new,
                sampling: r.sampling,
                stop_tokens: Vec::new(),
                priority: r.priority,
                deadline_steps: r.deadline_steps,
            });
            submit_step.insert(r.id, sched.decode_steps());
            counters.submitted += 1;
            next += 1;
        }
        if !sched.is_idle() {
            sched.step_events_into(&mut events);
            counters.kv_peak_bytes = counters.kv_peak_bytes.max(sched.kv_live_bytes());
            for t in &events.tokens {
                if t.index == 0 {
                    if let Some(&s0) = submit_step.get(&t.id) {
                        ttft_of.insert(t.id, sched.decode_steps().saturating_sub(s0));
                    }
                }
            }
            for resp in events.finished.drain(..) {
                if resp.finish == FinishReason::DeadlineExceeded {
                    counters.expired += 1;
                } else {
                    counters.finished += 1;
                }
                outcomes.push(RequestOutcome {
                    id: resp.id,
                    generated: resp.generated,
                    finish: resp.finish,
                    ttft_steps: ttft_of.get(&resp.id).copied(),
                    tokens: resp.tokens,
                });
            }
        }
        now += 1;
    }

    counters.preemptions = sched.preemptions();
    counters.decode_steps = sched.decode_steps();
    counters.tokens_generated = sched.tokens_generated();
    counters.prefix_hits = sched.prefix_hits();
    counters.prefix_tokens_reused = sched.prefix_tokens_reused();
    counters.spec_proposed = sched.spec_proposed();
    counters.spec_accepted = sched.spec_accepted();
    outcomes.sort_by_key(|o| o.id);
    let mut ttft_steps: Vec<u64> = outcomes.iter().filter_map(|o| o.ttft_steps).collect();
    ttft_steps.sort_unstable();
    StepReplayReport {
        outcomes,
        counters,
        ttft_steps,
    }
}

/// Sizing of a wall-clock engine replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineReplayConfig {
    /// Concurrent sequences the scheduler may keep in flight.
    pub max_batch: usize,
    /// Bounded admission capacity. When the trace outruns it, the driver
    /// counts one backpressure rejection per refused [`EngineHandle::try_submit`]
    /// and falls back to a blocking submit, so every request still runs.
    ///
    /// [`EngineHandle::try_submit`]: edkm_core::EngineHandle::try_submit
    pub queue_capacity: usize,
}

/// Result of a wall-clock engine replay ([`replay_engine`]).
#[derive(Debug, Clone)]
pub struct EngineReplayReport {
    /// Per-request outcomes, sorted by trace id (`ttft_steps` is `None`
    /// here; wall-clock TTFT lives in [`EngineReplayReport::ttft_ms`]).
    pub outcomes: Vec<RequestOutcome>,
    /// Aggregate counters, read back from the engine's [`StatsSnapshot`].
    pub counters: ReplayCounters,
    /// The engine's final stats snapshot.
    pub stats: StatsSnapshot,
    /// Wall-clock duration of the whole replay, seconds.
    pub wall_secs: f64,
    /// Naturally finished tokens per wall second (expired and cancelled
    /// work does not count — this is goodput, not throughput).
    pub goodput_tok_s: f64,
    /// `try_submit` refusals the driver absorbed at the bounded queue.
    pub backpressure_rejections: u64,
    /// Submission → first token, per request, milliseconds, ascending.
    pub ttft_ms: Vec<f64>,
    /// Gaps between consecutive tokens of a request, milliseconds,
    /// ascending.
    pub per_token_ms: Vec<f64>,
}

impl EngineReplayReport {
    /// Wall-clock TTFT percentile in milliseconds (`p` in `[0, 1]`).
    pub fn ttft_ms_p(&self, p: f64) -> f64 {
        percentile_f64(&self.ttft_ms, p)
    }

    /// Per-token gap percentile in milliseconds (`p` in `[0, 1]`).
    pub fn per_token_ms_p(&self, p: f64) -> f64 {
        percentile_f64(&self.per_token_ms, p)
    }
}

/// Replay `trace` through a live [`ServeEngine`]: submissions in arrival
/// order (closed loop — as fast as admission allows), one consumer thread
/// per token stream timing first-token and inter-token gaps, engine
/// counters from the final [`StatsSnapshot`].
///
/// Token values are bit-identical to [`replay_trace`] for every request
/// that reaches a natural finish; only wall-clock-dependent outcomes
/// (deadline expiry order) may differ.
pub fn replay_engine<M: ServeModel + 'static>(
    model: M,
    trace: &Trace,
    config: EngineReplayConfig,
) -> EngineReplayReport {
    let engine = ServeEngine::new(
        model,
        EngineConfig {
            max_batch: config.max_batch,
            queue_capacity: config.queue_capacity,
        },
    );
    let handle = engine.handle();
    let t0 = Instant::now();
    let mut rejections = 0u64;
    let mut consumers = Vec::with_capacity(trace.requests().len());
    for r in trace.requests() {
        let mut request = Request::new(r.prompt.clone())
            .max_new_tokens(r.max_new)
            .sampling(r.sampling)
            .priority(r.priority);
        if let Some(d) = r.deadline_steps {
            request = request.deadline_steps(d);
        }
        let (_, mut stream) = match handle.try_submit(request.clone()) {
            Ok(ok) => ok,
            Err(SubmitError::Full) => {
                rejections += 1;
                handle
                    .submit(request)
                    .expect("engine accepts after backoff")
            }
            Err(e) => panic!("engine refused trace request: {e}"),
        };
        let trace_id = r.id;
        let submitted = Instant::now();
        consumers.push(std::thread::spawn(move || {
            let mut ttft = None;
            let mut gaps = Vec::new();
            let mut last = submitted;
            let mut resp = None;
            while let Some(ev) = stream.next_event() {
                match ev {
                    TokenEvent::Token { index, .. } => {
                        let nowi = Instant::now();
                        if index == 0 {
                            ttft = Some(nowi.duration_since(submitted).as_secs_f64() * 1e3);
                        } else {
                            gaps.push(nowi.duration_since(last).as_secs_f64() * 1e3);
                        }
                        last = nowi;
                    }
                    TokenEvent::Finished(r) => resp = Some(r),
                }
            }
            (trace_id, resp.expect("terminal event"), ttft, gaps)
        }));
    }

    let mut outcomes = Vec::with_capacity(consumers.len());
    let mut ttft_ms = Vec::new();
    let mut per_token_ms = Vec::new();
    for c in consumers {
        let (trace_id, resp, ttft, gaps) = c.join().expect("stream consumer");
        outcomes.push(RequestOutcome {
            id: trace_id,
            generated: resp.generated,
            finish: resp.finish,
            ttft_steps: None,
            tokens: resp.tokens,
        });
        ttft_ms.extend(ttft);
        per_token_ms.extend(gaps);
    }
    let wall_secs = t0.elapsed().as_secs_f64();
    let stats = handle.stats();
    engine.shutdown();

    outcomes.sort_by_key(|o| o.id);
    ttft_ms.sort_by(|a, b| a.total_cmp(b));
    per_token_ms.sort_by(|a, b| a.total_cmp(b));
    let good_tokens: u64 = outcomes
        .iter()
        .filter(|o| !o.finish.is_aborted())
        .map(|o| o.generated as u64)
        .sum();
    let counters = ReplayCounters {
        submitted: stats.submitted,
        finished: stats.finished,
        expired: stats.expired,
        cancelled: stats.cancelled,
        preemptions: stats.preemptions,
        decode_steps: stats.decode_steps,
        tokens_generated: stats.tokens_generated,
        kv_peak_bytes: stats.kv_peak_bytes,
        prefix_hits: stats.prefix_hits,
        prefix_tokens_reused: stats.prefix_tokens_reused,
        spec_proposed: stats.spec_proposed,
        spec_accepted: stats.spec_accepted,
    };
    EngineReplayReport {
        outcomes,
        counters,
        stats,
        wall_secs,
        goodput_tok_s: good_tokens as f64 / wall_secs.max(1e-9),
        backpressure_rejections: rejections,
        ttft_ms,
        per_token_ms,
    }
}

/// Sizing of a wall-clock cluster replay: per-replica engine sizing plus
/// the router's affinity switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterReplayConfig {
    /// Per-replica engine sizing.
    pub engine: EngineReplayConfig,
    /// Route follow-up prompts to the replica holding their prefix.
    pub affinity: bool,
}

/// Result of a wall-clock cluster replay ([`replay_cluster`]).
#[derive(Debug, Clone)]
pub struct ClusterReplayReport {
    /// Per-request outcomes, sorted by trace id.
    pub outcomes: Vec<RequestOutcome>,
    /// Fleet snapshot at drain: per-replica engine stats plus router
    /// counters (affinity hits, spills, hedges, re-routes).
    pub cluster: ClusterStats,
    /// Wall-clock duration of the whole replay, seconds.
    pub wall_secs: f64,
    /// Naturally finished tokens per wall second across the fleet.
    pub goodput_tok_s: f64,
    /// `try_submit` refusals the driver absorbed (router saturation).
    pub backpressure_rejections: u64,
    /// Submission → first token, per request, milliseconds, ascending.
    pub ttft_ms: Vec<f64>,
    /// Gaps between consecutive tokens of a request, milliseconds,
    /// ascending.
    pub per_token_ms: Vec<f64>,
}

impl ClusterReplayReport {
    /// Wall-clock TTFT percentile in milliseconds (`p` in `[0, 1]`).
    pub fn ttft_ms_p(&self, p: f64) -> f64 {
        percentile_f64(&self.ttft_ms, p)
    }

    /// Per-token gap percentile in milliseconds (`p` in `[0, 1]`).
    pub fn per_token_ms_p(&self, p: f64) -> f64 {
        percentile_f64(&self.per_token_ms, p)
    }
}

/// Replay `trace` through a fresh [`Cluster`] of one engine per model —
/// the multi-replica counterpart of [`replay_engine`]. Submissions go in
/// arrival order through a [`RouterHandle`]; one consumer thread drains
/// each stream. Deterministic per-request-seeded sampling makes per-request
/// token values bit-identical to [`replay_engine`] over the same trace,
/// whatever the replica count or placement.
pub fn replay_cluster<M: ServeModel + 'static>(
    models: Vec<M>,
    trace: &Trace,
    config: ClusterReplayConfig,
) -> ClusterReplayReport {
    let cluster = Cluster::new(
        models,
        ClusterConfig {
            engine: EngineConfig {
                max_batch: config.engine.max_batch,
                queue_capacity: config.engine.queue_capacity,
            },
            affinity: config.affinity,
            ..ClusterConfig::default()
        },
    );
    let report = replay_router(&cluster.handle(), trace);
    cluster.shutdown();
    report
}

/// For each request, the position of the latest earlier request whose
/// prompt is a proper prefix of its own — the prior turn of the same chat
/// session (chat traces replay the full conversation in every prompt).
/// Requests without such a predecessor are independent.
fn turn_dependencies(trace: &Trace) -> Vec<Option<usize>> {
    let requests = trace.requests();
    let mut deps = vec![None; requests.len()];
    for j in 0..requests.len() {
        let pj = &requests[j].prompt;
        deps[j] = (0..j).rev().find(|&i| {
            let pi = &requests[i].prompt;
            pi.len() < pj.len() && pj[..pi.len()] == pi[..]
        });
    }
    deps
}

/// Replay `trace` through an existing [`RouterHandle`] — the driver behind
/// [`replay_cluster`], exposed so a caller can keep ownership of the
/// [`Cluster`] and exercise lifecycle transitions (drain/kill/respawn)
/// mid-replay.
///
/// Submission honors chat causality: a turn whose prompt extends an
/// earlier request's prompt is not sent until that request has finished,
/// exactly as a real client cannot type a follow-up before the reply
/// arrives. Independent requests still flood in arrival order. Ordering
/// never changes token values (sampling is per-request-seeded), but it is
/// what lets prefix-affinity routing convert session stickiness into KV
/// reuse on the sticky replica.
pub fn replay_router(router: &RouterHandle, trace: &Trace) -> ClusterReplayReport {
    let t0 = Instant::now();
    let mut rejections = 0u64;
    let mut consumers = Vec::with_capacity(trace.requests().len());
    let deps = turn_dependencies(trace);
    let finished = std::sync::Arc::new((
        std::sync::Mutex::new(vec![false; trace.requests().len()]),
        std::sync::Condvar::new(),
    ));
    for (pos, r) in trace.requests().iter().enumerate() {
        if let Some(dep) = deps[pos] {
            let (flags, cv) = &*finished;
            let mut done = flags.lock().expect("turn flags");
            while !done[dep] {
                done = cv.wait(done).expect("turn flags");
            }
        }
        let mut request = Request::new(r.prompt.clone())
            .max_new_tokens(r.max_new)
            .sampling(r.sampling)
            .priority(r.priority);
        if let Some(d) = r.deadline_steps {
            request = request.deadline_steps(d);
        }
        let (_, mut stream) = match router.try_submit(request.clone()) {
            Ok(ok) => ok,
            Err(RouteError::Saturated) => {
                rejections += 1;
                router
                    .submit(request)
                    .expect("router accepts after backoff")
            }
            Err(e) => panic!("router refused trace request: {e}"),
        };
        let trace_id = r.id;
        let submitted = Instant::now();
        let finished = std::sync::Arc::clone(&finished);
        consumers.push(std::thread::spawn(move || {
            let mut ttft = None;
            let mut gaps = Vec::new();
            let mut last = submitted;
            let mut resp = None;
            while let Some(ev) = stream.next_event() {
                match ev {
                    TokenEvent::Token { index, .. } => {
                        let nowi = Instant::now();
                        if index == 0 {
                            ttft = Some(nowi.duration_since(submitted).as_secs_f64() * 1e3);
                        } else {
                            gaps.push(nowi.duration_since(last).as_secs_f64() * 1e3);
                        }
                        last = nowi;
                    }
                    TokenEvent::Finished(r) => resp = Some(r),
                }
            }
            let (flags, cv) = &*finished;
            flags.lock().expect("turn flags")[pos] = true;
            cv.notify_all();
            (trace_id, resp.expect("terminal event"), ttft, gaps)
        }));
    }

    let mut outcomes = Vec::with_capacity(consumers.len());
    let mut ttft_ms = Vec::new();
    let mut per_token_ms = Vec::new();
    for c in consumers {
        let (trace_id, resp, ttft, gaps) = c.join().expect("stream consumer");
        outcomes.push(RequestOutcome {
            id: trace_id,
            generated: resp.generated,
            finish: resp.finish,
            ttft_steps: None,
            tokens: resp.tokens,
        });
        ttft_ms.extend(ttft);
        per_token_ms.extend(gaps);
    }
    let wall_secs = t0.elapsed().as_secs_f64();
    let cluster = router.stats();

    outcomes.sort_by_key(|o| o.id);
    ttft_ms.sort_by(|a, b| a.total_cmp(b));
    per_token_ms.sort_by(|a, b| a.total_cmp(b));
    let good_tokens: u64 = outcomes
        .iter()
        .filter(|o| !o.finish.is_aborted())
        .map(|o| o.generated as u64)
        .sum();
    ClusterReplayReport {
        outcomes,
        cluster,
        wall_secs,
        goodput_tok_s: good_tokens as f64 / wall_secs.max(1e-9),
        backpressure_rejections: rejections,
        ttft_ms,
        per_token_ms,
    }
}
