//! Chaos replay: drive a trace and a [`FaultPlan`] through a live
//! [`Cluster`] together, with the [`Supervisor`] closing the loop, and
//! audit the global robustness invariants afterwards.
//!
//! The harness owns the fleet on the calling thread and runs the trace
//! on a worker thread through a loss-tolerant variant of
//! [`replay_router`](crate::replay_router) (degrade-ladder sheds are
//! recorded, not fatal). Meanwhile the calling thread runs the
//! supervision loop: it advances the **virtual step clock** (the
//! monotonic fleet-wide decode-step count, respawn-proof via per-slot
//! high-water bases), applies every [`FaultEvent`] whose step has come
//! due through the [`FaultHook`] seam, schedules KV-squeeze restores,
//! ticks the [`Supervisor`] on each heartbeat, and applies its actions
//! (gates, drains, respawns — honouring deferred respawn bit-flips via
//! the caller's model factory — and degrade-ladder moves).
//!
//! The resulting [`ChaosReplayReport`] carries exactly the invariants
//! the acceptance gate checks: `requests_lost == 0`, zero duplicate or
//! skipped token indices, survivors bit-identical to an undisturbed
//! reference run of the same trace, and every pool's block ledger back
//! at its prefix-cache baseline at drain.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::replay::{EngineReplayConfig, RequestOutcome};
use crate::report::percentile_u64;
use crate::trace::Trace;
use edkm_chaos::{FaultApplied, FaultEvent, FaultHook, FaultKind, FaultPlan};
use edkm_cluster::{
    Cluster, ClusterConfig, ClusterStats, DegradeEvent, RouteError, RouterHandle, Supervisor,
    SupervisorAction, SupervisorConfig,
};
use edkm_core::{EngineConfig, Request, TokenEvent};
use edkm_core::{FinishReason, ServeModel};

/// Sizing and policy of a chaos replay.
#[derive(Debug, Clone)]
pub struct ChaosReplayConfig {
    /// Per-replica engine sizing.
    pub engine: EngineReplayConfig,
    /// Route follow-up prompts to the replica holding their prefix.
    pub affinity: bool,
    /// Supervisor tuning (breaker thresholds, backoffs, ladder
    /// hysteresis). The supervisor seed is what makes recovery decisions
    /// replayable.
    pub supervisor: SupervisorConfig,
}

impl Default for ChaosReplayConfig {
    fn default() -> Self {
        ChaosReplayConfig {
            engine: EngineReplayConfig {
                max_batch: 4,
                queue_capacity: 64,
            },
            affinity: true,
            supervisor: SupervisorConfig::default(),
        }
    }
}

/// One fault as it was actually applied during a chaos replay.
#[derive(Debug, Clone)]
pub struct AppliedFault {
    /// Virtual step at which the harness applied it (>= the scheduled
    /// step — faults fire on the first heartbeat at or after their step).
    pub at_step: u64,
    /// The scheduled event.
    pub event: FaultEvent,
    /// What the hook did with it.
    pub applied: FaultApplied,
}

/// Result of [`replay_cluster_chaos`]: the replay metrics plus the
/// robustness audit.
#[derive(Debug, Clone)]
pub struct ChaosReplayReport {
    /// Fingerprint of the injected [`FaultPlan`] — pin this to assert two
    /// runs faced the same schedule.
    pub plan_fingerprint: u64,
    /// Fingerprint of the replayed trace.
    pub trace_fingerprint: u64,
    /// Per-request outcomes of requests that ran, sorted by trace id.
    pub outcomes: Vec<RequestOutcome>,
    /// Trace ids refused by the degrade ladder (intentional, not lost).
    pub shed: Vec<u64>,
    /// Trace ids that neither produced a terminal event nor were shed —
    /// must be empty for the robustness gate.
    pub lost: Vec<u64>,
    /// Token events whose index was not the next expected one (duplicate
    /// or skip) — must be zero.
    pub index_violations: u64,
    /// Requests that finished naturally under chaos.
    pub survivors: usize,
    /// `true` iff every survivor's token stream is bit-identical to the
    /// undisturbed reference run of the same trace.
    pub survivors_bit_identical: bool,
    /// `true` iff, at drain, every replica pool's `blocks_in_use` equals
    /// its prefix-cache-retained block count (no leaked blocks) and its
    /// capacity cap is back at its pre-squeeze baseline.
    pub pools_at_baseline: bool,
    /// Corrupted model loads rejected during respawn (bit-flip faults
    /// that the reload verification caught before retrying clean).
    pub corrupted_reloads: u64,
    /// Virtual steps from each replica kill to its completed respawn,
    /// ascending.
    pub recovery_steps: Vec<u64>,
    /// Kills whose respawn had not completed when the replay drained.
    pub unrecovered_kills: u64,
    /// Degrade-ladder transitions observed by the router.
    pub degrade_events: Vec<DegradeEvent>,
    /// Every fault as applied, in firing order.
    pub faults: Vec<AppliedFault>,
    /// Naturally finished tokens per wall second under chaos.
    pub goodput_tok_s: f64,
    /// Wall-clock duration of the chaos run, seconds.
    pub wall_secs: f64,
    /// Fleet snapshot at drain.
    pub cluster: ClusterStats,
}

impl ChaosReplayReport {
    /// p99 of kill-to-respawn recovery time, in virtual steps (0 when the
    /// plan killed nothing).
    pub fn recovery_p99_steps(&self) -> u64 {
        percentile_u64(&self.recovery_steps, 0.99)
    }

    /// Number of requests the audit counts as lost.
    pub fn requests_lost(&self) -> u64 {
        self.lost.len() as u64
    }
}

struct LossyOutcome {
    outcomes: Vec<RequestOutcome>,
    shed: Vec<u64>,
    lost: Vec<u64>,
    index_violations: u64,
    wall_secs: f64,
}

/// Loss-tolerant router replay: like
/// [`replay_router`](crate::replay_router) (chat causality, arrival
/// order, one consumer per stream) but degrade-ladder sheds and
/// unrecoverable submissions are *recorded* instead of panicking, and
/// token-index ordering violations are counted instead of asserted.
fn replay_router_lossy(router: &RouterHandle, trace: &Trace) -> LossyOutcome {
    let t0 = Instant::now();
    let requests = trace.requests();
    let deps = turn_dependencies(trace);
    let finished = std::sync::Arc::new((
        std::sync::Mutex::new(vec![false; requests.len()]),
        std::sync::Condvar::new(),
    ));
    let mut shed = Vec::new();
    let mut lost = Vec::new();
    let mut consumers = Vec::new();
    for (pos, r) in requests.iter().enumerate() {
        if let Some(dep) = deps[pos] {
            let (flags, cv) = &*finished;
            let mut done = flags.lock().expect("turn flags");
            while !done[dep] {
                done = cv.wait(done).expect("turn flags");
            }
        }
        let mut request = Request::new(r.prompt.clone())
            .max_new_tokens(r.max_new)
            .sampling(r.sampling)
            .priority(r.priority);
        if let Some(d) = r.deadline_steps {
            request = request.deadline_steps(d);
        }
        // Saturation and momentary total outage (every slot dead or
        // draining mid-recovery) are retried; a degrade-ladder shed is a
        // terminal, intentional refusal.
        let submit_deadline = Instant::now() + Duration::from_secs(30);
        let stream = loop {
            match router.try_submit(request.clone()) {
                Ok((_, stream)) => break Some(stream),
                Err(RouteError::Shed { .. }) => {
                    shed.push(r.id);
                    break None;
                }
                Err(RouteError::Saturated) | Err(RouteError::NoReplicas) => {
                    if Instant::now() >= submit_deadline {
                        lost.push(r.id);
                        break None;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => {
                    lost.push(r.id);
                    break None;
                }
            }
        };
        let Some(mut stream) = stream else {
            let (flags, cv) = &*finished;
            flags.lock().expect("turn flags")[pos] = true;
            cv.notify_all();
            continue;
        };
        let trace_id = r.id;
        let finished = std::sync::Arc::clone(&finished);
        consumers.push(std::thread::spawn(move || {
            let mut next = 0usize;
            let mut violations = 0u64;
            let mut resp = None;
            while let Some(ev) = stream.next_event() {
                match ev {
                    TokenEvent::Token { index, .. } => {
                        if index != next {
                            violations += 1;
                        }
                        next = index + 1;
                    }
                    TokenEvent::Finished(r) => resp = Some(r),
                }
            }
            let (flags, cv) = &*finished;
            flags.lock().expect("turn flags")[pos] = true;
            cv.notify_all();
            (trace_id, resp, violations)
        }));
    }

    let mut outcomes = Vec::new();
    let mut index_violations = 0u64;
    for c in consumers {
        let (trace_id, resp, violations) = c.join().expect("stream consumer");
        index_violations += violations;
        match resp {
            Some(resp) => outcomes.push(RequestOutcome {
                id: trace_id,
                generated: resp.generated,
                finish: resp.finish,
                ttft_steps: None,
                tokens: resp.tokens,
            }),
            None => lost.push(trace_id),
        }
    }
    outcomes.sort_by_key(|o| o.id);
    shed.sort_unstable();
    lost.sort_unstable();
    LossyOutcome {
        outcomes,
        shed,
        lost,
        index_violations,
        wall_secs: t0.elapsed().as_secs_f64(),
    }
}

/// Same turn-dependency scan as the strict replay driver: the latest
/// earlier request whose prompt is a proper prefix of this one.
fn turn_dependencies(trace: &Trace) -> Vec<Option<usize>> {
    let requests = trace.requests();
    let mut deps = vec![None; requests.len()];
    for j in 0..requests.len() {
        let pj = &requests[j].prompt;
        deps[j] = (0..j).rev().find(|&i| {
            let pi = &requests[i].prompt;
            pi.len() < pj.len() && pj[..pi.len()] == pi[..]
        });
    }
    deps
}

/// Replay `trace` under `plan` through a supervised fleet and audit the
/// robustness invariants. See the module docs for the architecture.
///
/// `build(corrupt)` constructs one replica model; `corrupt = true` asks
/// for a bit-flipped load and **must** fail (the harness uses it to model
/// a container image corrupted on respawn — the reload verification
/// rejects it and the respawn retries clean). It is called once per
/// replica up front (clean), once per respawn, and once extra per
/// deferred bit-flip.
///
/// The harness first runs the same trace undisturbed on an identically
/// sized fleet to obtain the reference token streams survivors are
/// audited against.
pub fn replay_cluster_chaos<M, F>(
    mut build: F,
    replicas: usize,
    trace: &Trace,
    plan: &FaultPlan,
    config: ChaosReplayConfig,
) -> ChaosReplayReport
where
    M: ServeModel + 'static,
    F: FnMut(bool) -> Result<M, String>,
{
    let cluster_cfg = ClusterConfig {
        engine: EngineConfig {
            max_batch: config.engine.max_batch,
            queue_capacity: config.engine.queue_capacity,
        },
        affinity: config.affinity,
        ..ClusterConfig::default()
    };

    // Reference run: the same trace, the same fleet shape, no faults.
    let reference: HashMap<u64, Vec<usize>> = {
        let models: Vec<M> = (0..replicas)
            .map(|_| build(false).expect("clean reference build"))
            .collect();
        let cluster = Cluster::new(models, cluster_cfg.clone());
        let out = replay_router_lossy(&cluster.handle(), trace);
        cluster.shutdown();
        out.outcomes.into_iter().map(|o| (o.id, o.tokens)).collect()
    };

    // Chaos run.
    let models: Vec<M> = (0..replicas)
        .map(|_| build(false).expect("clean build"))
        .collect();
    // The scheduler's liveness precondition: a pool must always hold one
    // full-length request (it panics on a pool it can never drain). The
    // harness clamps every squeeze to that floor — the squeeze then
    // degrades service (contention, preemption, admission stalls) instead
    // of wedging a replica beyond recovery.
    let max_seq = models[0].config().max_seq;
    let mut cluster = Cluster::new(models, cluster_cfg);
    let baseline_caps: Vec<usize> = (0..replicas)
        .map(|r| cluster.pool(r).max_blocks())
        .collect();
    let mut supervisor = Supervisor::new(replicas, config.supervisor.clone());

    let router = cluster.handle();
    let trace_owned = trace.clone();
    let replay = std::thread::spawn(move || replay_router_lossy(&router, &trace_owned));

    let router = cluster.handle();
    let events = plan.events();
    let mut next_event = 0usize;
    // Virtual step clock, respawn-proof: per-slot high-water base plus
    // the slot's current (resetting) decode_steps counter.
    let mut bases = vec![0u64; replicas];
    let mut lasts = vec![0u64; replicas];
    // (due_step, wall_deadline, replica, cap) — pending KV-squeeze
    // restorations. The wall deadline is a liveness fallback: if every
    // decode on the fleet is blocked on squeezed pools, the virtual clock
    // freezes and a step-only restore would never come due.
    let mut restores: Vec<(u64, Instant, usize, usize)> = Vec::new();
    let mut bitflip = vec![false; replicas];
    let mut kill_at: HashMap<usize, u64> = HashMap::new();
    let mut recovery_steps = Vec::new();
    let mut corrupted_reloads = 0u64;
    let mut faults = Vec::new();
    while !replay.is_finished() {
        let stats = router.stats();
        for (i, (_, snap)) in stats.replicas.iter().enumerate().take(replicas) {
            if snap.decode_steps < lasts[i] {
                bases[i] += lasts[i];
            }
            lasts[i] = snap.decode_steps;
        }
        let vstep: u64 = bases.iter().sum::<u64>() + lasts.iter().sum::<u64>();

        while next_event < events.len() && events[next_event].step <= vstep {
            let mut event = events[next_event];
            next_event += 1;
            if let FaultKind::KvSqueeze {
                replica,
                ref mut blocks,
                ..
            } = event.kind
            {
                let floor = cluster.pool(replica).blocks_for(max_seq);
                *blocks = (*blocks).max(floor);
            }
            let applied = cluster.apply_fault(&event);
            match applied {
                FaultApplied::Killed { replica } => {
                    kill_at.insert(replica, vstep);
                }
                FaultApplied::KvSqueezed {
                    replica,
                    previous_blocks,
                } => {
                    if let FaultKind::KvSqueeze { restore_after, .. } = event.kind {
                        restores.push((
                            vstep + restore_after,
                            Instant::now() + Duration::from_millis(500),
                            replica,
                            previous_blocks,
                        ));
                    }
                }
                FaultApplied::Deferred => {
                    bitflip[event.kind.replica()] = true;
                }
                _ => {}
            }
            faults.push(AppliedFault {
                at_step: vstep,
                event,
                applied,
            });
        }

        restores.retain(|&(due, wall_deadline, replica, cap)| {
            if vstep >= due || Instant::now() >= wall_deadline {
                cluster.pool(replica).set_max_blocks(cap);
                false
            } else {
                true
            }
        });

        for action in supervisor.tick(&stats) {
            match action {
                SupervisorAction::OpenBreaker { replica } => {
                    router.set_dispatch_gate(replica, false);
                }
                SupervisorAction::HalfOpenBreaker { replica }
                | SupervisorAction::CloseBreaker { replica } => {
                    router.set_dispatch_gate(replica, true);
                }
                SupervisorAction::DrainReplica { replica } => {
                    let _ = cluster.drain(replica);
                }
                SupervisorAction::RespawnReplica { replica } => {
                    if bitflip[replica] {
                        bitflip[replica] = false;
                        if build(true).is_err() {
                            corrupted_reloads += 1;
                        }
                    }
                    if let Ok(model) = build(false) {
                        cluster.respawn(replica, model);
                        router.set_dispatch_gate(replica, true);
                        if let Some(killed) = kill_at.remove(&replica) {
                            recovery_steps.push(vstep.saturating_sub(killed));
                        }
                    }
                }
                SupervisorAction::SetDegradeLevel { level } => {
                    router.set_degrade_level(level, vstep);
                }
            }
        }
        std::thread::sleep(edkm_cluster::supervisor::HEARTBEAT_INTERVAL);
    }
    let lossy = replay.join().expect("chaos replay thread");

    // Any squeeze still pending restoration is undone now, so the
    // capacity audit below checks real recovery, not scheduling luck.
    for (_, _, replica, cap) in restores.drain(..) {
        cluster.pool(replica).set_max_blocks(cap);
    }

    let survivors: Vec<&RequestOutcome> = lossy
        .outcomes
        .iter()
        .filter(|o| !o.finish.is_aborted())
        .collect();
    let survivors_bit_identical = survivors
        .iter()
        .all(|o| reference.get(&o.id).is_some_and(|t| *t == o.tokens));
    let pools_at_baseline = (0..replicas).all(|r| {
        let pool = cluster.pool(r);
        pool.blocks_in_use() == pool.prefix_cached_blocks() && pool.max_blocks() == baseline_caps[r]
    });

    let good_tokens: u64 = survivors.iter().map(|o| o.generated as u64).sum();
    let survivors = survivors.len();
    recovery_steps.sort_unstable();
    let cluster_stats = router.stats();
    let degrade_events = cluster_stats.degrade_events.clone();
    let unrecovered_kills = kill_at.len() as u64;
    cluster.shutdown();

    ChaosReplayReport {
        plan_fingerprint: plan.fingerprint(),
        trace_fingerprint: trace.fingerprint(),
        outcomes: lossy.outcomes,
        shed: lossy.shed,
        lost: lossy.lost,
        index_violations: lossy.index_violations,
        survivors,
        survivors_bit_identical,
        pools_at_baseline,
        corrupted_reloads,
        recovery_steps,
        unrecovered_kills,
        degrade_events,
        faults,
        goodput_tok_s: good_tokens as f64 / lossy.wall_secs.max(1e-9),
        wall_secs: lossy.wall_secs,
        cluster: cluster_stats,
    }
}

/// Audit a [`ChaosReplayReport`] against the robustness gate, returning
/// every violated invariant as a human-readable line (empty = pass).
pub fn audit_invariants(report: &ChaosReplayReport) -> Vec<String> {
    let mut violations = Vec::new();
    if !report.lost.is_empty() {
        violations.push(format!("requests lost: {:?}", report.lost));
    }
    if report.index_violations > 0 {
        violations.push(format!(
            "token index violations (duplicate or skipped): {}",
            report.index_violations
        ));
    }
    if !report.survivors_bit_identical {
        violations.push("survivor token streams diverge from the undisturbed run".into());
    }
    if !report.pools_at_baseline {
        violations.push("a KV pool did not drain to its ledger baseline".into());
    }
    for o in &report.outcomes {
        if o.finish == FinishReason::Cancelled {
            violations.push(format!("request {} was cancelled by the fault path", o.id));
        }
    }
    violations
}
