//! # edkm-workload
//!
//! Trace-driven workload harness for the serving engine: a seeded, fully
//! deterministic generator of heterogeneous request traces plus two replay
//! drivers that feed those traces through the stack and aggregate
//! serving-quality metrics.
//!
//! "Throughput at batch 8 on uniform requests" says nothing about heavy
//! mixed traffic. A [`Trace`] instead models the request mixes a production
//! deployment sees — bursty Poisson arrivals, multi-turn chat with history
//! reuse, long-context summarization that forces KV pressure and
//! preemption, short classification bursts with tight deadlines, and a
//! mixed-priority blend — all derived from one seed, so every run of a
//! trace is byte-identical.
//!
//! Two replay layers exist on purpose:
//!
//! - [`replay_trace`] drives a [`edkm_core::Scheduler`] step by step on a
//!   virtual clock. Every admission, preemption, deadline expiry and token
//!   is a pure function of `(model, trace, max_batch)`, so TTFT-in-steps
//!   percentiles, deadline-miss and preemption rates are **reproducible**
//!   numbers a CI gate can pin.
//! - [`replay_engine`] drives a live [`edkm_core::ServeEngine`] through its
//!   handle with one consumer thread per token stream, measuring the
//!   wall-clock side: goodput, TTFT and per-token latency percentiles, and
//!   backpressure rejections under a bounded admission queue.
//!
//! [`replay_cluster`] extends the wall-clock layer across a whole
//! [`edkm_cluster::Cluster`] of engine replicas behind the prefix-affinity
//! router, reporting fleet goodput plus the router's affinity/spill/
//! hedge/re-route counters. Per-request tokens stay bit-identical to the
//! single-engine replay whatever the replica count — placement never
//! changes sampled output.
//!
//! Because sampling is per-request-seeded and logits rows are independent
//! of batch composition, the token streams of the two layers are
//! bit-identical for every request that runs to its natural finish — the
//! cross-check `tests/workload_replay.rs` pins.

//! [`replay_cluster_chaos`] closes the loop on robustness: it replays a
//! trace *and* a seeded [`edkm_chaos::FaultPlan`] together through a
//! supervised fleet, then audits the global invariants — no request
//! lost, no duplicate token index, survivors bit-identical to the
//! undisturbed run, every pool ledger back at baseline.

#![warn(missing_docs)]

pub mod chaos;
pub mod replay;
pub mod report;
pub mod trace;

pub use chaos::{
    audit_invariants, replay_cluster_chaos, AppliedFault, ChaosReplayConfig, ChaosReplayReport,
};
pub use replay::{
    replay_cluster, replay_engine, replay_router, replay_trace, replay_trace_speculative,
    ClusterReplayConfig, ClusterReplayReport, EngineReplayConfig, EngineReplayReport,
    ReplayCounters, RequestOutcome, StepReplayReport,
};
pub use report::{percentile_f64, percentile_u64};
pub use trace::{TimedRequest, Trace, TraceConfig, TraceKind};
