//! # edkm-dist
//!
//! The simulated learner group behind eDKM's sharding (Section 2.3 of the
//! paper) and the fully synchronous data-parallel training setup (Section 3,
//! 8×A100 under FSDP).
//!
//! The paper trains with `|L|` identical learners; eDKM shards the
//! uniquification *index lists* of saved tensors across the group so each
//! learner keeps only `1/|L|` of every list, paying an all-gather when the
//! backward pass needs the full buffer again. This crate provides
//!
//! * [`LearnerGroup`] — a copyable handle naming the group (`|L|` learners),
//! * [`ShardSpec`] — the balanced contiguous partition of an index list over
//!   the group (rank 0 first; uneven tails allowed, shards may be empty),
//! * collectives ([`LearnerGroup::all_gather`], [`LearnerGroup::broadcast`])
//!   whose traffic is charged to the simulated clock through
//!   [`edkm_tensor::runtime::record_all_gather`], and
//! * [`DataParallelTrainer`] — the synchronous data-parallel training loop
//!   whose losses are bit-exact with single-process training while the
//!   gradient all-reduce is charged to the clock.
//!
//! Devices are simulated (see `edkm-tensor`), so "remote" learners are plain
//! host memory that is *not* charged to this learner's pool — exactly the
//! accounting Table 2's per-learner memory column needs.

#![warn(missing_docs)]

pub mod group;
pub mod trainer;
pub mod workers;

pub use group::{LearnerGroup, ShardSpec};
pub use trainer::DataParallelTrainer;
pub use workers::ShardWorkers;
