//! Persistent worker threads for per-shard compute.
//!
//! Tensor-parallel serving runs one GEMM per shard per projection call —
//! dozens of tiny jobs per decode step. Spawning a fresh scoped thread for
//! each (what the serving path did before this pool existed) costs more
//! than the GEMM itself at decode batch sizes; a [`ShardWorkers`] pool
//! spawns its threads **once** and feeds them jobs over a shared channel,
//! so the steady-state dispatch cost is a channel round-trip instead of a
//! thread spawn.
//!
//! Jobs are `'static` closures (capture `Arc`s, not borrows) and each job
//! binds the submitting thread's [`edkm_tensor::runtime`] handle for its
//! duration, so every FLOP and allocation a shard performs lands in the
//! caller's shared ledgers — the same accounting contract the old
//! scoped-thread path kept.

use edkm_tensor::runtime;
use parking_lot::Mutex;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of long-lived worker threads executing shard jobs.
///
/// Dropping the pool closes the job channel; workers drain what they hold
/// and exit, and the drop joins them.
///
/// ```
/// use edkm_dist::ShardWorkers;
///
/// let pool = ShardWorkers::new(2);
/// let doubled = pool.run(4, |rank| rank * 2);
/// assert_eq!(doubled, vec![0, 2, 4, 6]);
/// ```
#[derive(Debug)]
pub struct ShardWorkers {
    tx: Option<mpsc::Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    n_workers: usize,
}

impl ShardWorkers {
    /// Spawn `n` worker threads (at least one), parked on the job channel.
    pub fn new(n: usize) -> Arc<Self> {
        let n = n.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..n)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("edkm-shard-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while receiving, not while
                        // running the job, so workers pull concurrently.
                        let job = {
                            let guard = rx.lock();
                            guard.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // pool dropped
                        }
                    })
                    .expect("spawn shard worker")
            })
            .collect();
        Arc::new(ShardWorkers {
            tx: Some(tx),
            handles,
            n_workers: n,
        })
    }

    /// Worker threads in the pool.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Run `f(rank)` for every `rank` in `0..n_jobs` on the pool, binding
    /// each job to the caller's runtime, and collect results in rank order.
    /// Blocks until every job finished.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job.
    pub fn run<R, F>(&self, n_jobs: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        let tx = self.tx.as_ref().expect("pool is live until drop");
        let f = Arc::new(f);
        let rt = runtime::current();
        let (done_tx, done_rx) = mpsc::channel::<(usize, std::thread::Result<R>)>();
        for rank in 0..n_jobs {
            let f = Arc::clone(&f);
            let rt = rt.clone();
            let done = done_tx.clone();
            tx.send(Box::new(move || {
                let _g = runtime::bind(&rt);
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(rank)));
                let _ = done.send((rank, out));
            }))
            .expect("worker channel open");
        }
        drop(done_tx);
        let mut slots: Vec<Option<R>> = (0..n_jobs).map(|_| None).collect();
        for _ in 0..n_jobs {
            let (rank, result) = done_rx.recv().expect("all jobs report back");
            match result {
                Ok(r) => slots[rank] = Some(r),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every rank reported"))
            .collect()
    }
}

impl Drop for ShardWorkers {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the channel; workers exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_rank_order() {
        let pool = ShardWorkers::new(3);
        let got = pool.run(7, |rank| rank * rank);
        assert_eq!(got, vec![0, 1, 4, 9, 16, 25, 36]);
        assert_eq!(pool.n_workers(), 3);
    }

    #[test]
    fn threads_are_reused_across_run_calls() {
        let pool = ShardWorkers::new(2);
        let names: std::collections::HashSet<String> = (0..4)
            .flat_map(|_| pool.run(2, |_| std::thread::current().name().unwrap().to_string()))
            .collect();
        assert!(
            names.len() <= 2,
            "jobs must run on the two persistent workers, saw {names:?}"
        );
        assert!(names.iter().all(|n| n.starts_with("edkm-shard-worker-")));
    }

    #[test]
    fn jobs_charge_the_callers_runtime() {
        runtime::reset();
        let pool = ShardWorkers::new(2);
        let t0 = runtime::sim_seconds();
        pool.run(2, |_| {
            runtime::record_compute(1e6, edkm_tensor::Device::Cpu);
        });
        assert!(
            runtime::sim_seconds() > t0,
            "worker FLOPs must land on the caller's clock"
        );
    }

    #[test]
    fn zero_jobs_is_a_no_op() {
        let pool = ShardWorkers::new(1);
        let got: Vec<usize> = pool.run(0, |r| r);
        assert!(got.is_empty());
    }

    #[test]
    fn pool_outlives_many_concurrent_runs() {
        let pool = ShardWorkers::new(4);
        let hits = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = &pool;
                let hits = Arc::clone(&hits);
                s.spawn(move || {
                    for _ in 0..10 {
                        let h = Arc::clone(&hits);
                        pool.run(3, move |_| {
                            h.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4 * 10 * 3);
    }

    #[test]
    #[should_panic(expected = "shard job boom")]
    fn job_panics_propagate_to_the_caller() {
        let pool = ShardWorkers::new(2);
        pool.run(2, |rank| {
            if rank == 1 {
                panic!("shard job boom");
            }
        });
    }
}
