//! Fully synchronous data-parallel training over a learner group.
//!
//! The paper's Section 3 setup trains on 8×A100 under FSDP: every step, all
//! learners hold identical weights, compute gradients, all-reduce them, and
//! apply the same optimizer update. Because the simulation is single-process
//! and the learners are *identical by construction*, the canonical learner's
//! step on the full batch already produces every learner's result bit-exactly
//! — so [`DataParallelTrainer::step`] computes that one step (losses equal a
//! single-process [`edkm_nn::Trainer`] run to the last bit) and charges the gradient
//! ring all-reduce to the simulated clock: a reduce-scatter plus an
//! all-gather, each `(L-1)` ring steps of `1/L` of the gradient bytes.

use crate::LearnerGroup;
use edkm_autograd::Var;
use edkm_nn::{clip_grad_norm, AdamW, LlamaModel, LmBatch, TrainConfig, WeightHook};
use edkm_tensor::runtime;

/// Synchronous data-parallel counterpart of [`edkm_nn::Trainer`].
#[derive(Debug)]
pub struct DataParallelTrainer {
    group: LearnerGroup,
    optim: AdamW,
    config: TrainConfig,
    losses: Vec<f32>,
}

impl DataParallelTrainer {
    /// A trainer stepping `group` learners in lockstep.
    pub fn new(group: LearnerGroup, config: TrainConfig) -> Self {
        DataParallelTrainer {
            group,
            optim: AdamW::with_schedule(config.optim, config.schedule),
            config,
            losses: Vec::new(),
        }
    }

    /// The learner group.
    pub fn group(&self) -> LearnerGroup {
        self.group
    }

    /// Loss history, one entry per step.
    pub fn losses(&self) -> &[f32] {
        &self.losses
    }

    /// The underlying optimizer.
    pub fn optimizer(&self) -> &AdamW {
        &self.optim
    }

    /// Split `batch` into one micro-batch per learner (balanced contiguous,
    /// like index-list sharding). Ranks past the sequence count get `None`.
    pub fn shard_batch(&self, batch: &LmBatch) -> Vec<Option<LmBatch>> {
        let spec = self.group.shard_spec(batch.seqs.len());
        (0..self.group.n_learners())
            .map(|r| {
                let range = spec.shard_range(r);
                if range.is_empty() {
                    None
                } else {
                    Some(LmBatch::new(batch.seqs[range].to_vec()))
                }
            })
            .collect()
    }

    /// One synchronous data-parallel step; returns the loss.
    ///
    /// Numerically identical to [`edkm_nn::Trainer::step`] on the same batch
    /// (invariant 1 of the distributed-training demo); additionally charges
    /// the gradient all-reduce over the group to the simulated clock.
    pub fn step(
        &mut self,
        model: &LlamaModel,
        batch: &LmBatch,
        params: &[Var],
        hook: Option<WeightHook<'_>>,
    ) -> f32 {
        let loss = model.lm_loss(&batch.seqs, hook);
        let loss_val = loss.value().item();
        loss.backward();
        self.charge_gradient_allreduce(params);
        clip_grad_norm(params, self.config.clip_norm);
        self.optim.step(params);
        self.losses.push(loss_val);
        loss_val
    }

    /// Charge the ring all-reduce of every parameter gradient: reduce-scatter
    /// then all-gather, each moving `1/L` of the gradient per ring step.
    fn charge_gradient_allreduce(&self, params: &[Var]) {
        let learners = self.group.n_learners();
        if learners <= 1 {
            return;
        }
        for p in params {
            if let Some(g) = p.grad() {
                let bytes = g.numel() * g.dtype().size_bytes();
                let spec = self.group.shard_spec(bytes);
                // Two collective phases of a ring all-reduce.
                runtime::record_all_gather(spec.shard_len(0), learners);
                runtime::record_all_gather(spec.shard_len(0), learners);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_nn::{AdamWConfig, LlamaConfig, Trainer};
    use edkm_tensor::{DType, Device};

    fn config() -> TrainConfig {
        TrainConfig {
            optim: AdamWConfig {
                lr: 1e-3,
                ..AdamWConfig::default()
            },
            ..TrainConfig::default()
        }
    }

    fn batch() -> LmBatch {
        LmBatch::new(vec![
            vec![1, 2, 3, 1],
            vec![2, 3, 1, 2],
            vec![3, 1, 2, 3],
            vec![1, 3, 2, 1],
        ])
    }

    #[test]
    fn dp_losses_match_single_process_bitexact() {
        let single: Vec<f32> = {
            runtime::reset();
            let model = LlamaModel::new(LlamaConfig::tiny(), DType::F32, Device::Cpu, 0);
            let params = model.params();
            let mut t = Trainer::new(config());
            (0..4)
                .map(|_| t.step(&model, &batch(), &params, None))
                .collect()
        };
        let dp: Vec<f32> = {
            runtime::reset();
            let model = LlamaModel::new(LlamaConfig::tiny(), DType::F32, Device::Cpu, 0);
            let params = model.params();
            let mut t = DataParallelTrainer::new(LearnerGroup::new(4), config());
            (0..4)
                .map(|_| t.step(&model, &batch(), &params, None))
                .collect()
        };
        assert_eq!(single, dp, "synchronous DP must be bit-exact");
    }

    #[test]
    fn dp_step_charges_allreduce_time() {
        let solo_t = {
            runtime::reset();
            let model = LlamaModel::new(LlamaConfig::tiny(), DType::F32, Device::Cpu, 0);
            let params = model.params();
            let mut t = DataParallelTrainer::new(LearnerGroup::new(1), config());
            t.step(&model, &batch(), &params, None);
            runtime::sim_seconds()
        };
        let dp_t = {
            runtime::reset();
            let model = LlamaModel::new(LlamaConfig::tiny(), DType::F32, Device::Cpu, 0);
            let params = model.params();
            let mut t = DataParallelTrainer::new(LearnerGroup::new(8), config());
            t.step(&model, &batch(), &params, None);
            runtime::sim_seconds()
        };
        assert!(
            dp_t > solo_t,
            "the gradient all-reduce must cost simulated time: {dp_t} vs {solo_t}"
        );
    }

    #[test]
    fn shard_batch_is_balanced_with_empty_tail() {
        runtime::reset();
        let t = DataParallelTrainer::new(LearnerGroup::new(3), config());
        let shards = t.shard_batch(&batch());
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].as_ref().unwrap().batch_size(), 2);
        assert_eq!(shards[1].as_ref().unwrap().batch_size(), 1);
        assert_eq!(shards[2].as_ref().unwrap().batch_size(), 1);
        // More learners than sequences: tail ranks sit this step out.
        let t = DataParallelTrainer::new(LearnerGroup::new(7), config());
        let shards = t.shard_batch(&batch());
        assert!(shards[6].is_none());
        // Reassembling the shards restores the batch.
        let all: Vec<Vec<usize>> = shards.into_iter().flatten().flat_map(|b| b.seqs).collect();
        assert_eq!(all, batch().seqs);
    }

    #[test]
    fn accessors() {
        runtime::reset();
        let t = DataParallelTrainer::new(LearnerGroup::new(4), config());
        assert_eq!(t.group().n_learners(), 4);
        assert!(t.losses().is_empty());
        assert_eq!(t.optimizer().steps(), 0);
    }
}
