//! The learner group and its index-list sharding geometry.
//!
//! Sharding (paper Section 2.3) partitions a buffer into `|L|` contiguous
//! shards, one per learner, balanced to within one element. Rank 0 is the
//! measured machine; the other ranks simulate peers. Collectives that
//! reassemble a sharded buffer pay simulated network time through
//! [`runtime::record_all_gather`].

use edkm_tensor::runtime;
use std::ops::Range;

/// Handle to a group of `|L|` fully synchronous learners.
///
/// Copyable and trivially cheap: the group carries no state beyond its size,
/// because learners are simulated and their memory lives with the payloads
/// (see `edkm-core`'s `Store`).
///
/// ```
/// use edkm_dist::LearnerGroup;
/// use edkm_tensor::runtime;
///
/// runtime::reset();
/// let group = LearnerGroup::new(3);
/// // Shard 7 elements over 3 learners (balanced to one element)...
/// let shards = group.shard_spec(7).split(&[1u32, 2, 3, 4, 5, 6, 7]);
/// assert_eq!(shards[0], vec![1, 2, 3]);
/// // ...and reassemble, paying the ring all-gather on the simulated clock.
/// assert_eq!(group.all_gather(&shards), vec![1, 2, 3, 4, 5, 6, 7]);
/// assert!(runtime::sim_seconds() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LearnerGroup {
    n: usize,
}

impl LearnerGroup {
    /// A group of `n` learners.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` — a group always contains the local learner.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a learner group needs at least one learner");
        LearnerGroup { n }
    }

    /// Number of learners `|L|` in the group.
    pub fn n_learners(&self) -> usize {
        self.n
    }

    /// The balanced contiguous partition of a `len`-element buffer over this
    /// group.
    pub fn shard_spec(&self, len: usize) -> ShardSpec {
        ShardSpec { len, n: self.n }
    }

    /// Reassemble a buffer from per-learner `shards` (rank order), charging
    /// the ring all-gather to the simulated clock.
    ///
    /// Each learner contributes its shard; the modeled cost is `(L-1)` ring
    /// steps of the largest shard (the straggler bounds the collective).
    /// Single-learner groups gather for free, like a real collective layer.
    ///
    /// # Panics
    ///
    /// Panics if `shards.len() != n_learners()`.
    pub fn all_gather<T: Copy>(&self, shards: &[Vec<T>]) -> Vec<T> {
        assert_eq!(
            shards.len(),
            self.n,
            "all_gather expects one shard per learner"
        );
        let widest = shards.iter().map(Vec::len).max().unwrap_or(0);
        runtime::record_all_gather(widest * std::mem::size_of::<T>(), self.n);
        let total = shards.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for s in shards {
            out.extend_from_slice(s);
        }
        out
    }

    /// Element-wise sum of one equal-length buffer per learner (rank
    /// order), charging the ring all-reduce to the simulated clock — the
    /// combine step of row-parallel sharded GEMMs, where each learner holds
    /// a partial product over its input columns.
    ///
    /// The modeled cost is that of gathering every learner's full buffer
    /// (`(L-1)` ring steps); single-learner groups reduce for free. The sum
    /// runs in ascending rank order, so the result is deterministic for a
    /// given shard layout (but, like any float all-reduce, not bit-equal to
    /// an unsharded accumulation).
    ///
    /// # Panics
    ///
    /// Panics if `parts.len() != n_learners()` or the buffers differ in
    /// length.
    pub fn all_reduce_sum(&self, parts: &[Vec<f32>]) -> Vec<f32> {
        assert_eq!(
            parts.len(),
            self.n,
            "all_reduce_sum expects one buffer per learner"
        );
        let len = parts[0].len();
        runtime::record_all_gather(len * std::mem::size_of::<f32>(), self.n);
        let mut out = parts[0].clone();
        for part in &parts[1..] {
            assert_eq!(part.len(), len, "all_reduce_sum buffers must match");
            for (o, &p) in out.iter_mut().zip(part) {
                *o += p;
            }
        }
        out
    }

    /// Replicate `data` from the root learner to every learner, returning
    /// one copy per rank (rank order). The ring broadcast costs the same
    /// `(L-1)` full-buffer hops an all-gather of the whole payload would.
    pub fn broadcast<T: Copy>(&self, data: &[T]) -> Vec<Vec<T>> {
        runtime::record_all_gather(std::mem::size_of_val(data), self.n);
        (0..self.n).map(|_| data.to_vec()).collect()
    }
}

/// Balanced contiguous partition of `len` elements over `n` learners.
///
/// The first `len % n` ranks hold one extra element, so shard sizes differ by
/// at most one; when `len < n` the tail ranks hold empty shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    len: usize,
    n: usize,
}

impl ShardSpec {
    /// Total element count being partitioned.
    pub fn total_len(&self) -> usize {
        self.len
    }

    /// Number of shards (= learners).
    pub fn n_shards(&self) -> usize {
        self.n
    }

    /// Element count of `rank`'s shard.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= n_shards()`.
    pub fn shard_len(&self, rank: usize) -> usize {
        self.shard_range(rank).len()
    }

    /// Half-open element range of `rank`'s shard.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= n_shards()`.
    pub fn shard_range(&self, rank: usize) -> Range<usize> {
        assert!(
            rank < self.n,
            "rank {rank} out of range for {} shards",
            self.n
        );
        let base = self.len / self.n;
        let rem = self.len % self.n;
        let start = rank * base + rank.min(rem);
        let extra = usize::from(rank < rem);
        start..start + base + extra
    }

    /// Borrowed view of `rank`'s shard of `data` (a per-learner memory view).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the spec's length or `rank` is out
    /// of range.
    pub fn view<'a, T>(&self, data: &'a [T], rank: usize) -> &'a [T] {
        assert_eq!(data.len(), self.len, "shard view over wrong-length buffer");
        &data[self.shard_range(rank)]
    }

    /// Split `data` into owned per-learner shards, rank order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the spec's length.
    pub fn split<T: Copy>(&self, data: &[T]) -> Vec<Vec<T>> {
        assert_eq!(data.len(), self.len, "shard split over wrong-length buffer");
        (0..self.n).map(|r| self.view(data, r).to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "at least one learner")]
    fn zero_learners_panics() {
        LearnerGroup::new(0);
    }

    #[test]
    fn even_split_is_exact() {
        let spec = LearnerGroup::new(8).shard_spec(800);
        for r in 0..8 {
            assert_eq!(spec.shard_len(r), 100);
        }
        assert_eq!(spec.shard_range(0), 0..100);
        assert_eq!(spec.shard_range(7), 700..800);
    }

    #[test]
    fn uneven_split_is_balanced_and_contiguous() {
        let spec = LearnerGroup::new(4).shard_spec(10);
        let lens: Vec<usize> = (0..4).map(|r| spec.shard_len(r)).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
        let mut cursor = 0;
        for r in 0..4 {
            assert_eq!(spec.shard_range(r).start, cursor);
            cursor = spec.shard_range(r).end;
        }
        assert_eq!(cursor, 10);
    }

    #[test]
    fn short_buffers_leave_empty_tail_shards() {
        let spec = LearnerGroup::new(7).shard_spec(3);
        let lens: Vec<usize> = (0..7).map(|r| spec.shard_len(r)).collect();
        assert_eq!(lens, vec![1, 1, 1, 0, 0, 0, 0]);
        let shards = spec.split(&[9u16, 8, 7]);
        assert_eq!(shards[0], vec![9]);
        assert!(shards[6].is_empty());
    }

    #[test]
    fn views_alias_the_buffer() {
        let data: Vec<u32> = (0..11).collect();
        let spec = LearnerGroup::new(3).shard_spec(11);
        assert_eq!(spec.view(&data, 0), &[0, 1, 2, 3]);
        assert_eq!(spec.view(&data, 1), &[4, 5, 6, 7]);
        assert_eq!(spec.view(&data, 2), &[8, 9, 10]);
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        runtime::reset();
        let g = LearnerGroup::new(3);
        let out = g.all_gather(&[vec![1u16, 2], vec![3], vec![4, 5]]);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn all_gather_charges_the_clock_for_real_groups() {
        runtime::reset();
        let g = LearnerGroup::new(4);
        let shards = g.shard_spec(1000).split(&vec![1.0f32; 1000]);
        let t0 = runtime::sim_seconds();
        g.all_gather(&shards);
        assert!(runtime::sim_seconds() > t0, "all-gather must cost time");
    }

    #[test]
    fn single_learner_gather_is_free() {
        runtime::reset();
        let g = LearnerGroup::new(1);
        let out = g.all_gather(&[vec![1u8, 2, 3]]);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(runtime::sim_seconds(), 0.0);
    }

    #[test]
    #[should_panic(expected = "one shard per learner")]
    fn all_gather_wrong_shard_count_panics() {
        runtime::reset();
        LearnerGroup::new(2).all_gather(&[vec![1u8]]);
    }

    #[test]
    fn all_reduce_sums_in_rank_order_and_costs_time() {
        runtime::reset();
        let g = LearnerGroup::new(3);
        let t0 = runtime::sim_seconds();
        let out = g.all_reduce_sum(&[vec![1.0, 2.0], vec![10.0, 20.0], vec![100.0, 200.0]]);
        assert_eq!(out, vec![111.0, 222.0]);
        assert!(runtime::sim_seconds() > t0, "all-reduce must cost time");
        // Single learner: identity, free.
        runtime::reset();
        let solo = LearnerGroup::new(1).all_reduce_sum(&[vec![3.5]]);
        assert_eq!(solo, vec![3.5]);
        assert_eq!(runtime::sim_seconds(), 0.0);
    }

    #[test]
    #[should_panic(expected = "one buffer per learner")]
    fn all_reduce_wrong_part_count_panics() {
        runtime::reset();
        LearnerGroup::new(2).all_reduce_sum(&[vec![1.0]]);
    }

    #[test]
    fn broadcast_replicates_and_costs_time() {
        runtime::reset();
        let g = LearnerGroup::new(3);
        let copies = g.broadcast(&[1.5f32, 2.5]);
        assert_eq!(copies.len(), 3);
        assert!(copies.iter().all(|c| c == &[1.5, 2.5]));
        assert!(runtime::sim_seconds() > 0.0);
    }

    proptest! {
        /// shard → all-gather round-trips an index list exactly, for uneven
        /// learner counts and buffers shorter than the group (empty shards).
        #[test]
        fn prop_shard_allgather_roundtrip(
            len in 0usize..500,
            learners in prop::sample::select(vec![1usize, 3, 7]),
            seed in any::<u64>(),
        ) {
            runtime::reset();
            let data: Vec<u16> = (0..len)
                .map(|i| (seed.wrapping_mul(i as u64 + 1) % 65536) as u16)
                .collect();
            let g = LearnerGroup::new(learners);
            let shards = g.shard_spec(len).split(&data);
            prop_assert_eq!(shards.len(), learners);
            let max = shards.iter().map(Vec::len).max().unwrap_or(0);
            let min = shards.iter().map(Vec::len).min().unwrap_or(0);
            prop_assert!(max - min <= 1, "shards must be balanced to one element");
            prop_assert_eq!(g.all_gather(&shards), data);
        }

        /// Every element lands in exactly one shard view.
        #[test]
        fn prop_views_tile_the_buffer(len in 0usize..200, learners in 1usize..9) {
            let spec = LearnerGroup::new(learners).shard_spec(len);
            let mut cursor = 0;
            for r in 0..learners {
                let range = spec.shard_range(r);
                prop_assert_eq!(range.start, cursor);
                cursor = range.end;
            }
            prop_assert_eq!(cursor, len);
        }
    }
}
