//! One pre-norm decoder layer: attention and MLP with residuals.

use crate::{CausalSelfAttention, Linear, RmsNorm, SwiGluMlp, WeightHook};
use edkm_autograd::Var;
use edkm_tensor::{DType, Device};

/// `x += attn(norm1(x)); x += mlp(norm2(x))`.
#[derive(Debug)]
pub struct DecoderLayer {
    input_norm: RmsNorm,
    attn: CausalSelfAttention,
    post_norm: RmsNorm,
    mlp: SwiGluMlp,
}

impl DecoderLayer {
    /// Build layer `index` of a model.
    #[allow(clippy::too_many_arguments)] // explicit geometry beats a config struct here
    pub fn new(
        index: usize,
        d_model: usize,
        n_heads: usize,
        d_ff: usize,
        rope_theta: f32,
        dtype: DType,
        device: Device,
        seed: u64,
    ) -> Self {
        let prefix = format!("layers.{index}");
        DecoderLayer {
            input_norm: RmsNorm::new(format!("{prefix}.input_norm"), d_model, dtype, device),
            attn: CausalSelfAttention::new(
                &format!("{prefix}.attn"),
                d_model,
                n_heads,
                rope_theta,
                dtype,
                device,
                seed,
            ),
            post_norm: RmsNorm::new(format!("{prefix}.post_norm"), d_model, dtype, device),
            mlp: SwiGluMlp::new(
                &format!("{prefix}.mlp"),
                d_model,
                d_ff,
                dtype,
                device,
                seed + 10,
            ),
        }
    }

    /// The attention block.
    pub fn attention(&self) -> &CausalSelfAttention {
        &self.attn
    }

    /// The MLP block.
    pub fn mlp(&self) -> &SwiGluMlp {
        &self.mlp
    }

    /// The two norms.
    pub fn norms(&self) -> [&RmsNorm; 2] {
        [&self.input_norm, &self.post_norm]
    }

    /// All seven projection weights of this layer.
    pub fn projections(&self) -> Vec<&Linear> {
        let mut v: Vec<&Linear> = self.attn.projections().to_vec();
        v.extend(self.mlp.projections());
        v
    }

    /// Forward `[b·t, d] → [b·t, d]`.
    pub fn forward(&self, x: &Var, b: usize, t: usize, hook: Option<WeightHook<'_>>) -> Var {
        let h = x.add(&self.attn.forward(&self.input_norm.forward(x), b, t, hook));
        h.add(&self.mlp.forward(&self.post_norm.forward(&h), hook))
    }

    /// KV-cached forward of `n` new tokens for one sequence (`[n, d] →
    /// [n, d]`); the attention block reads and extends `cache`.
    pub fn forward_cached(&self, x: &Var, cache: &mut crate::AttnKvCache) -> Var {
        let h = x.add(&self.attn.forward_cached(&self.input_norm.forward(x), cache));
        h.add(&self.mlp.forward(&self.post_norm.forward(&h), None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_tensor::{runtime, Tensor};

    #[test]
    fn forward_and_backward() {
        runtime::reset();
        let layer = DecoderLayer::new(0, 8, 2, 16, 10000.0, DType::F32, Device::Cpu, 0);
        let x = Var::constant(Tensor::randn(&[4, 8], DType::F32, Device::Cpu, 1));
        let y = layer.forward(&x, 1, 4, None);
        assert_eq!(y.value().shape(), &[4, 8]);
        y.sum_all().backward();
        assert_eq!(layer.projections().len(), 7);
        for p in layer.projections() {
            assert!(p.weight().grad().is_some(), "{} missing grad", p.name());
        }
        for n in layer.norms() {
            assert!(n.weight().grad().is_some(), "{} missing grad", n.name());
        }
    }

    #[test]
    fn residual_keeps_signal() {
        runtime::reset();
        // With zeroed projections the layer must be the identity (residuals).
        let layer = DecoderLayer::new(0, 8, 2, 16, 10000.0, DType::F32, Device::Cpu, 0);
        let zero_hook = |_: &str, w: &Var| -> Var {
            Var::constant(Tensor::zeros(
                w.value().shape(),
                w.value().dtype(),
                w.value().device(),
            ))
        };
        let x = Tensor::randn(&[4, 8], DType::F32, Device::Cpu, 2);
        let y = layer.forward(&Var::constant(x.clone()), 1, 4, Some(&zero_hook));
        assert!(edkm_tensor::ops::allclose(y.value(), &x, 1e-6));
    }
}
