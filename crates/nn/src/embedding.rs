//! Token embedding table.

use crate::init;
use edkm_autograd::Var;
use edkm_tensor::{DType, Device};

/// `[vocab, d]` lookup table.
#[derive(Debug)]
pub struct Embedding {
    name: String,
    weight: Var,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// New table with seeded normal(0, 0.02) init.
    pub fn new(
        name: impl Into<String>,
        vocab: usize,
        dim: usize,
        dtype: DType,
        device: Device,
        seed: u64,
    ) -> Self {
        let weight = Var::param(init::normal_init(&[vocab, dim], dtype, device, seed));
        Embedding {
            name: name.into(),
            weight,
            vocab,
            dim,
        }
    }

    /// Registered parameter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The raw table parameter.
    pub fn weight(&self) -> &Var {
        &self.weight
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Look up `ids`, producing `[ids.len(), d]`.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of vocabulary.
    pub fn forward(&self, ids: &[usize]) -> Var {
        self.weight.embedding(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_tensor::runtime;

    #[test]
    fn lookup_and_grad() {
        runtime::reset();
        let e = Embedding::new("tok", 10, 4, DType::F32, Device::Cpu, 0);
        let out = e.forward(&[1, 1, 3]);
        assert_eq!(out.value().shape(), &[3, 4]);
        out.sum_all().backward();
        let g = e.weight().grad().unwrap();
        // Row 1 hit twice, row 3 once, others zero.
        assert_eq!(g.get(&[1, 0]), 2.0);
        assert_eq!(g.get(&[3, 0]), 1.0);
        assert_eq!(g.get(&[0, 0]), 0.0);
        assert_eq!(e.vocab(), 10);
        assert_eq!(e.dim(), 4);
        assert_eq!(e.name(), "tok");
    }
}
