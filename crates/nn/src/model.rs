//! LLaMA-style decoder-only language model.

use crate::{DecoderLayer, Embedding, Linear, RmsNorm, WeightHook};
use edkm_autograd::Var;
use edkm_tensor::{DType, Device};
use serde::{Deserialize, Serialize};

/// Model hyper-parameters.
///
/// Defaults are a laptop-scale stand-in for LLaMA-7B (DESIGN.md documents
/// the substitution); the architecture — and therefore the set of weights a
/// compressor sees — is the same.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlamaConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Residual width.
    pub d_model: usize,
    /// Attention heads.
    pub n_heads: usize,
    /// Decoder layers.
    pub n_layers: usize,
    /// MLP hidden width.
    pub d_ff: usize,
    /// Longest supported sequence.
    pub max_seq: usize,
}

impl Default for LlamaConfig {
    fn default() -> Self {
        LlamaConfig {
            vocab: 64,
            d_model: 64,
            n_heads: 4,
            n_layers: 2,
            d_ff: 128,
            max_seq: 64,
        }
    }
}

impl LlamaConfig {
    /// A deliberately tiny config for unit tests.
    pub fn tiny() -> Self {
        LlamaConfig {
            vocab: 16,
            d_model: 8,
            n_heads: 2,
            n_layers: 1,
            d_ff: 16,
            max_seq: 8,
        }
    }

    /// Parameter count of a model with this config.
    pub fn param_count(&self) -> usize {
        let per_layer = 4 * self.d_model * self.d_model          // q,k,v,o
            + 3 * self.d_model * self.d_ff                        // gate,up,down
            + 2 * self.d_model; //                                   norms
        self.vocab * self.d_model                                 // embed
            + self.n_layers * per_layer
            + self.d_model                                        // final norm
            + self.vocab * self.d_model //                           lm head
    }
}

/// Decoder-only transformer: embedding → n × [`DecoderLayer`] → RMSNorm →
/// LM head.
#[derive(Debug)]
pub struct LlamaModel {
    config: LlamaConfig,
    embed: Embedding,
    layers: Vec<DecoderLayer>,
    final_norm: RmsNorm,
    lm_head: Linear,
    device: Device,
    dtype: DType,
}

impl LlamaModel {
    /// Build a model with seeded initialization.
    pub fn new(config: LlamaConfig, dtype: DType, device: Device, seed: u64) -> Self {
        let embed = Embedding::new(
            "embed_tokens",
            config.vocab,
            config.d_model,
            dtype,
            device,
            seed,
        );
        let layers = (0..config.n_layers)
            .map(|i| {
                DecoderLayer::new(
                    i,
                    config.d_model,
                    config.n_heads,
                    config.d_ff,
                    10000.0,
                    dtype,
                    device,
                    seed + 100 * (i as u64 + 1),
                )
            })
            .collect();
        let final_norm = RmsNorm::new("final_norm", config.d_model, dtype, device);
        let lm_head = Linear::new(
            "lm_head",
            config.d_model,
            config.vocab,
            dtype,
            device,
            seed + 7,
        );
        LlamaModel {
            config,
            embed,
            layers,
            final_norm,
            lm_head,
            device,
            dtype,
        }
    }

    /// Model hyper-parameters.
    pub fn config(&self) -> &LlamaConfig {
        &self.config
    }

    /// Device all parameters live on.
    pub fn device(&self) -> Device {
        self.device
    }

    /// Parameter dtype.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// The token embedding table.
    pub fn embedding(&self) -> &Embedding {
        &self.embed
    }

    /// The decoder layers.
    pub fn layers(&self) -> &[DecoderLayer] {
        &self.layers
    }

    /// The LM head projection.
    pub fn lm_head(&self) -> &Linear {
        &self.lm_head
    }

    /// Logits `[b·t, vocab]` for `b` sequences of length `t` given row-major
    /// flattened `ids`.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != b*t`, `t > max_seq`, or any id is out of
    /// vocabulary.
    pub fn logits(&self, ids: &[usize], b: usize, t: usize, hook: Option<WeightHook<'_>>) -> Var {
        assert_eq!(ids.len(), b * t, "ids length must be b*t");
        assert!(t <= self.config.max_seq, "sequence too long: {t}");
        let mut x = self.embed.forward(ids);
        for layer in &self.layers {
            x = layer.forward(&x, b, t, hook);
        }
        let x = self.final_norm.forward(&x);
        self.lm_head.forward(&x, hook)
    }

    /// Mean next-token cross-entropy over `b` sequences of length `t+1`
    /// (standard causal LM shift).
    ///
    /// # Panics
    ///
    /// Panics if sequences differ in length or are shorter than 2 tokens.
    pub fn lm_loss(&self, seqs: &[Vec<usize>], hook: Option<WeightHook<'_>>) -> Var {
        assert!(!seqs.is_empty(), "lm_loss needs at least one sequence");
        let l = seqs[0].len();
        assert!(l >= 2, "sequences must have >= 2 tokens");
        assert!(seqs.iter().all(|s| s.len() == l), "ragged batch");
        let b = seqs.len();
        let t = l - 1;
        let mut inputs = Vec::with_capacity(b * t);
        let mut targets = Vec::with_capacity(b * t);
        for s in seqs {
            inputs.extend_from_slice(&s[..t]);
            targets.extend_from_slice(&s[1..]);
        }
        self.logits(&inputs, b, t, hook).cross_entropy(&targets)
    }

    /// All named parameters: projections, norms, embedding, head.
    pub fn named_params(&self) -> Vec<(String, Var)> {
        let mut out: Vec<(String, Var)> = Vec::new();
        out.push((self.embed.name().to_string(), self.embed.weight().clone()));
        for layer in &self.layers {
            for p in layer.projections() {
                out.push((p.name().to_string(), p.weight().clone()));
            }
            for n in layer.norms() {
                out.push((n.name().to_string(), n.weight().clone()));
            }
        }
        out.push((
            self.final_norm.name().to_string(),
            self.final_norm.weight().clone(),
        ));
        out.push((
            self.lm_head.name().to_string(),
            self.lm_head.weight().clone(),
        ));
        out
    }

    /// Just the parameter handles.
    pub fn params(&self) -> Vec<Var> {
        self.named_params().into_iter().map(|(_, v)| v).collect()
    }

    /// Names of the decoder projection weights — the set eDKM clusters
    /// (embeddings are handled separately at 8 bit, norms stay 16-bit).
    pub fn clusterable_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        for layer in &self.layers {
            for p in layer.projections() {
                out.push(p.name().to_string());
            }
        }
        out.push(self.lm_head.name().to_string());
        out
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.value().numel()).sum()
    }

    /// Bytes of the uncompressed model at its native dtype (the paper's
    /// "Model Size" baseline: 16-bit weights).
    pub fn native_size_bytes(&self) -> usize {
        self.params()
            .iter()
            .map(|p| p.value().numel() * self.dtype.size_bytes())
            .sum()
    }

    /// Copy every parameter value from `other` (same config required).
    ///
    /// # Panics
    ///
    /// Panics if the models have different parameter sets.
    pub fn copy_weights_from(&self, other: &LlamaModel) {
        let theirs = other.named_params();
        for (name, var) in self.named_params() {
            let (_, src) = theirs
                .iter()
                .find(|(n, _)| *n == name)
                .unwrap_or_else(|| panic!("source model lacks parameter {name}"));
            var.value().copy_from(src.value());
        }
    }

    /// Greedy argmax continuation of `prompt` by `n_new` tokens.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or grows past `max_seq`.
    pub fn generate_greedy(&self, prompt: &[usize], n_new: usize) -> Vec<usize> {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        let _ng = edkm_autograd::no_grad();
        let mut ids = prompt.to_vec();
        for _ in 0..n_new {
            let t = ids.len();
            let logits = self.logits(&ids, 1, t, None);
            let row = logits.value().slice(0, t - 1, 1);
            let next = edkm_tensor::ops::argmax_lastdim(&row)[0];
            ids.push(next);
        }
        ids
    }

    /// One empty KV cache per decoder layer.
    pub fn new_kv_caches(&self) -> Vec<crate::AttnKvCache> {
        self.layers
            .iter()
            .map(|l| l.attention().new_kv_cache())
            .collect()
    }

    /// Logits `[n, vocab]` for `n` new tokens of one sequence whose prefix
    /// lives in `caches` (one cache per layer, extended in place).
    ///
    /// # Panics
    ///
    /// Panics if the cache count disagrees with the layer count or the
    /// sequence would grow past `max_seq`.
    pub fn logits_cached(&self, tokens: &[usize], caches: &mut [crate::AttnKvCache]) -> Var {
        assert_eq!(
            caches.len(),
            self.layers.len(),
            "one KV cache per decoder layer"
        );
        assert!(
            caches[0].len() + tokens.len() <= self.config.max_seq,
            "sequence too long: {} cached + {} new > {}",
            caches[0].len(),
            tokens.len(),
            self.config.max_seq
        );
        let mut x = self.embed.forward(tokens);
        for (layer, cache) in self.layers.iter().zip(caches.iter_mut()) {
            x = layer.forward_cached(&x, cache);
        }
        let x = self.final_norm.forward(&x);
        self.lm_head.forward(&x, None)
    }

    /// KV-cached greedy decoding: one prompt prefill, then one token per
    /// step. Produces exactly the same tokens as
    /// [`LlamaModel::generate_greedy`] (bit-identical logits) at
    /// `O(t)` work per step instead of `O(t²)`.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or grows past `max_seq`.
    pub fn generate_greedy_kv(&self, prompt: &[usize], n_new: usize) -> Vec<usize> {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        let _ng = edkm_autograd::no_grad();
        let mut caches = self.new_kv_caches();
        let mut ids = prompt.to_vec();
        let mut next_input = prompt.to_vec();
        for _ in 0..n_new {
            let logits = self.logits_cached(&next_input, &mut caches);
            let row = logits.value().slice(0, next_input.len() - 1, 1);
            let next = edkm_tensor::ops::argmax_lastdim(&row)[0];
            ids.push(next);
            next_input = vec![next];
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_tensor::runtime;

    #[test]
    fn config_param_count_matches_model() {
        runtime::reset();
        let cfg = LlamaConfig::tiny();
        let model = LlamaModel::new(cfg, DType::F32, Device::Cpu, 0);
        assert_eq!(model.param_count(), cfg.param_count());
    }

    #[test]
    fn logits_shape() {
        runtime::reset();
        let model = LlamaModel::new(LlamaConfig::tiny(), DType::F32, Device::Cpu, 0);
        let ids = vec![1usize, 2, 3, 4, 5, 6];
        let logits = model.logits(&ids, 2, 3, None);
        assert_eq!(logits.value().shape(), &[6, 16]);
    }

    #[test]
    fn loss_is_finite_and_backward_reaches_everything() {
        runtime::reset();
        let model = LlamaModel::new(LlamaConfig::tiny(), DType::F32, Device::Cpu, 0);
        let seqs = vec![vec![1usize, 2, 3, 4], vec![5, 6, 7, 8]];
        let loss = model.lm_loss(&seqs, None);
        assert!(loss.value().item().is_finite());
        loss.backward();
        for (name, p) in model.named_params() {
            assert!(p.grad().is_some(), "{name} got no grad");
        }
    }

    #[test]
    fn loss_near_uniform_at_init() {
        runtime::reset();
        let cfg = LlamaConfig::tiny();
        let model = LlamaModel::new(cfg, DType::F32, Device::Cpu, 0);
        let seqs = vec![vec![0usize; 6]];
        let loss = model.lm_loss(&seqs, None).value().item();
        let uniform = (cfg.vocab as f32).ln();
        assert!(
            (loss - uniform).abs() < 0.5,
            "init loss {loss} vs ln|V| {uniform}"
        );
    }

    #[test]
    fn clusterable_names_cover_projections() {
        runtime::reset();
        let model = LlamaModel::new(LlamaConfig::tiny(), DType::F32, Device::Cpu, 0);
        let names = model.clusterable_names();
        assert_eq!(names.len(), 7 + 1); // 7 per layer + lm_head
        assert!(names.iter().any(|n| n.contains("q_proj")));
        assert!(names.iter().all(|n| !n.contains("norm")));
        assert!(names.iter().all(|n| !n.contains("embed")));
    }

    #[test]
    fn native_size_counts_dtype() {
        runtime::reset();
        let cfg = LlamaConfig::tiny();
        let m16 = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 0);
        assert_eq!(m16.native_size_bytes(), 2 * cfg.param_count());
    }

    #[test]
    fn greedy_generation_extends_prompt() {
        runtime::reset();
        let model = LlamaModel::new(LlamaConfig::tiny(), DType::F32, Device::Cpu, 0);
        let out = model.generate_greedy(&[1, 2], 3);
        assert_eq!(out.len(), 5);
        assert_eq!(&out[..2], &[1, 2]);
        assert!(out.iter().all(|&t| t < 16));
    }

    #[test]
    fn kv_cached_generation_matches_full_recompute() {
        runtime::reset();
        let model = LlamaModel::new(LlamaConfig::tiny(), DType::F32, Device::Cpu, 3);
        let full = model.generate_greedy(&[1, 2], 5);
        let cached = model.generate_greedy_kv(&[1, 2], 5);
        assert_eq!(full, cached, "KV-cached greedy must match full recompute");
    }

    #[test]
    fn cached_logits_are_bit_identical_to_full_logits() {
        runtime::reset();
        let model = LlamaModel::new(LlamaConfig::tiny(), DType::F32, Device::Cpu, 4);
        let ids = [1usize, 5, 2, 7];
        let full = model.logits(&ids, 1, ids.len(), None);
        // Prefill 3 tokens, then decode the 4th incrementally.
        let mut caches = model.new_kv_caches();
        let prefill = model.logits_cached(&ids[..3], &mut caches);
        let step = model.logits_cached(&ids[3..], &mut caches);
        let full_v = full.value().to_vec();
        let mut cached_v = prefill.value().to_vec();
        cached_v.extend(step.value().to_vec());
        assert_eq!(full_v, cached_v, "cached logits must be bit-identical");
    }

    #[test]
    #[should_panic(expected = "sequence too long")]
    fn cached_decode_respects_max_seq() {
        runtime::reset();
        let model = LlamaModel::new(LlamaConfig::tiny(), DType::F32, Device::Cpu, 5);
        let mut caches = model.new_kv_caches();
        let ids: Vec<usize> = (0..9).map(|i| i % 16).collect(); // max_seq = 8
        model.logits_cached(&ids, &mut caches);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_batch_panics() {
        runtime::reset();
        let model = LlamaModel::new(LlamaConfig::tiny(), DType::F32, Device::Cpu, 0);
        model.lm_loss(&[vec![1, 2, 3], vec![1, 2]], None);
    }
}
