//! Multi-head causal self-attention with rotary position embeddings.

use crate::{Linear, WeightHook};
use edkm_autograd::Var;
use edkm_tensor::{DType, Device, Tensor};

/// Precompute RoPE rotation tables for `t` positions of head dim `hd`.
///
/// Returns `(cos, sin)` flattened `[t, hd/2]`.
pub fn rope_tables(t: usize, hd: usize, theta: f32) -> (Vec<f32>, Vec<f32>) {
    rope_tables_range(0, t, hd, theta)
}

/// RoPE tables for the absolute positions `start..start + n` (the
/// KV-cached decode case: new tokens enter at a nonzero offset but must be
/// rotated exactly as a full forward pass would rotate them).
///
/// Returns `(cos, sin)` flattened `[n, hd/2]`.
pub fn rope_tables_range(start: usize, n: usize, hd: usize, theta: f32) -> (Vec<f32>, Vec<f32>) {
    let half = hd / 2;
    let mut cos = Vec::with_capacity(n * half);
    let mut sin = Vec::with_capacity(n * half);
    for p in start..start + n {
        for i in 0..half {
            let freq = 1.0 / theta.powf(2.0 * i as f32 / hd as f32);
            let ang = p as f32 * freq;
            cos.push(ang.cos());
            sin.push(ang.sin());
        }
    }
    (cos, sin)
}

/// Apply rotary position embeddings to `[bh, t, hd]` as a fused
/// differentiable op (GPT-NeoX half-split convention).
///
/// The backward pass is the transposed rotation; nothing needs to be saved.
///
/// # Panics
///
/// Panics if `x` is not `[bh, t, hd]` with `hd` even, or table lengths
/// disagree with `t·hd/2`.
pub fn rope(x: &Var, cos: &[f32], sin: &[f32]) -> Var {
    let shape = x.value().shape().to_vec();
    assert_eq!(shape.len(), 3, "rope expects [bh, t, hd]");
    let (bh, t, hd) = (shape[0], shape[1], shape[2]);
    assert_eq!(hd % 2, 0, "rope head dim must be even");
    let half = hd / 2;
    assert_eq!(cos.len(), t * half, "rope cos table size");
    assert_eq!(sin.len(), t * half, "rope sin table size");

    let rotate = move |data: &[f32], cos: &[f32], sin: &[f32], inverse: bool| -> Vec<f32> {
        let mut out = vec![0.0f32; data.len()];
        for b in 0..bh {
            for p in 0..t {
                let base = (b * t + p) * hd;
                let tb = p * half;
                for i in 0..half {
                    let (c, s) = (cos[tb + i], sin[tb + i]);
                    let s = if inverse { -s } else { s };
                    let x1 = data[base + i];
                    let x2 = data[base + half + i];
                    out[base + i] = x1 * c - x2 * s;
                    out[base + half + i] = x1 * s + x2 * c;
                }
            }
        }
        out
    };

    let value = x.value().with_data(|d| rotate(d, cos, sin, false));
    edkm_tensor::runtime::record_compute(6.0 * (bh * t * hd) as f64, x.value().device());
    let value = Tensor::from_vec(value, &shape, DType::F32, x.value().device());
    let cos_b: Vec<f32> = cos.to_vec();
    let sin_b: Vec<f32> = sin.to_vec();
    let bshape = shape.clone();
    Var::custom(
        value,
        "rope",
        vec![x.clone()],
        vec![],
        Box::new(move |g, _| {
            let dx = g.with_data(|d| rotate(d, &cos_b, &sin_b, true));
            vec![Some(Tensor::from_vec(dx, &bshape, DType::F32, g.device()))]
        }),
    )
}

/// Causal mask `[t, t]`: 0 on/below the diagonal, −1e9 above.
pub fn causal_mask(t: usize, device: Device) -> Tensor {
    causal_mask_offset(t, t, 0, device)
}

/// Rectangular causal mask `[n, t_total]` for queries at absolute positions
/// `offset..offset + n` attending over `t_total` cached keys: entry `[i, j]`
/// is 0 when `j ≤ offset + i`, −1e9 otherwise. `causal_mask` is the
/// `offset = 0, n = t_total` square case.
///
/// # Panics
///
/// Panics if the last query position `offset + n` exceeds `t_total`.
pub fn causal_mask_offset(n: usize, t_total: usize, offset: usize, device: Device) -> Tensor {
    assert!(
        offset + n <= t_total,
        "query positions {}..{} exceed {t_total} cached keys",
        offset,
        offset + n
    );
    let mut m = vec![0.0f32; n * t_total];
    for i in 0..n {
        for j in (offset + i + 1)..t_total {
            m[i * t_total + j] = -1e9;
        }
    }
    Tensor::from_vec(m, &[n, t_total], DType::F32, device)
}

/// Position-indexed read access to one layer's cached K/V rows.
///
/// Serving caches implement this per layer so attention can read rows
/// through whatever storage they use — a contiguous buffer or a paged
/// block table (`edkm-core`'s `KvCache` resolves each position through its
/// per-sequence block table). Row `pos` must be the already-rotated
/// `[d_model]`-wide projection row of absolute position `pos`, head-major.
pub trait KvRowView {
    /// The cached K row at absolute position `pos`.
    fn k_row(&self, pos: usize) -> &[f32];
    /// The cached V row at absolute position `pos`.
    fn v_row(&self, pos: usize) -> &[f32];

    /// The longest contiguous run of K rows starting at `pos` the storage
    /// can surface as one slice (at least one row). Paged caches return
    /// the remainder of `pos`'s block, so attention resolves the block
    /// table once per block instead of once per row; the default returns
    /// a single row. Rows past the caller's context length may hold stale
    /// data — callers clamp the run before reading.
    fn k_rows(&self, pos: usize) -> &[f32] {
        self.k_row(pos)
    }

    /// The longest contiguous run of V rows starting at `pos`; see
    /// [`KvRowView::k_rows`].
    fn v_rows(&self, pos: usize) -> &[f32] {
        self.v_row(pos)
    }
}

/// Causal multi-head attention of `n` new query rows over cached K/V rows
/// read through `view` — the serving-side inner loop, shared so the paged
/// and contiguous cache layouts run the *same* accumulation order and stay
/// bit-identical to each other.
///
/// `q` holds `n` rotated query rows (`[n, h·hd]`, head-major) at absolute
/// positions `start..start + n`; row `i` attends positions `0..=start + i`.
/// Context accumulates into `ctx` (same shape as `q`, **caller-zeroed**);
/// `scores` is scratch of length ≥ `start + n`. Returns the FLOPs of the
/// score/softmax/context work (`4·t_ctx·d` per query row) for the caller
/// to charge once.
///
/// Accumulation order per element matches the dense path (`bmm` dots in
/// ascending `j`, `softmax_lastdim` max/exp/sum order, context as an
/// ascending-`j` sum of `p_j · v_j`).
///
/// # Panics
///
/// Panics if `q` and `ctx` lengths disagree or are not a multiple of
/// `h·hd`.
pub fn attend_cached_rows<V: KvRowView>(
    q: &[f32],
    start: usize,
    h: usize,
    hd: usize,
    view: &V,
    ctx: &mut [f32],
    scores: &mut [f32],
) -> f64 {
    let d = h * hd;
    assert_eq!(q.len(), ctx.len(), "q and ctx must be the same shape");
    assert_eq!(q.len() % d, 0, "q must be [n, h*hd]");
    let n = q.len() / d;
    let scale = 1.0 / (hd as f32).sqrt();
    let mut flops = 0.0f64;
    for i in 0..n {
        let t_ctx = start + i + 1; // attends positions 0..=start+i
        let qrow = &q[i * d..(i + 1) * d];
        let orow = &mut ctx[i * d..(i + 1) * d];
        for head in 0..h {
            let hb = head * hd;
            let qh = &qrow[hb..hb + hd];
            // Scores (same dot order as the dense bmm), streaming the
            // cache block-at-a-time: each `k_rows` run is resolved once
            // and its rows consumed in ascending j.
            let mut j = 0usize;
            while j < t_ctx {
                let run = view.k_rows(j);
                let rows = (run.len() / d).min(t_ctx - j).max(1);
                for (r, s) in scores[j..j + rows].iter_mut().enumerate() {
                    let kh = &run[r * d + hb..r * d + hb + hd];
                    let mut acc = 0.0f32;
                    for (&a, &b) in qh.iter().zip(kh) {
                        acc += a * b;
                    }
                    *s = acc * scale;
                }
                j += rows;
            }
            // Softmax (same order as ops::softmax_lastdim).
            let mx = scores[..t_ctx]
                .iter()
                .cloned()
                .fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for s in scores[..t_ctx].iter_mut() {
                *s = (*s - mx).exp();
                sum += *s;
            }
            let inv = 1.0 / sum;
            // Context: Σ_j p_j · v_j, ascending j per element, V rows
            // streamed by block run like the scores.
            let mut j = 0usize;
            while j < t_ctx {
                let run = view.v_rows(j);
                let rows = (run.len() / d).min(t_ctx - j).max(1);
                for (r, &w) in scores[j..j + rows].iter().enumerate() {
                    let p = w * inv;
                    let vh = &run[r * d + hb..r * d + hb + hd];
                    for (o, &vv) in orow[hb..hb + hd].iter_mut().zip(vh) {
                        *o += p * vv;
                    }
                }
                j += rows;
            }
        }
        flops += (4 * t_ctx * d) as f64;
    }
    flops
}

/// Per-layer key/value cache for autoregressive decoding (batch 1).
///
/// Keys are stored *after* RoPE, in `[head][t, hd]` blocks, so a decode
/// step only computes projections for the new tokens and reuses everything
/// already rotated. Reassembled tensors are bit-identical to what a full
/// forward pass would produce for the same prefix.
#[derive(Debug)]
pub struct AttnKvCache {
    k: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    head_dim: usize,
    len: usize,
}

impl AttnKvCache {
    /// Empty cache for `n_heads` heads of dimension `head_dim`.
    pub fn new(n_heads: usize, head_dim: usize) -> Self {
        AttnKvCache {
            k: vec![Vec::new(); n_heads],
            v: vec![Vec::new(); n_heads],
            head_dim,
            len: 0,
        }
    }

    /// Cached sequence length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` before the first token.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append `n` new positions from `[h, n, hd]` key/value tensors.
    fn append(&mut self, k_new: &Tensor, v_new: &Tensor, n: usize) {
        let h = self.k.len();
        let hd = self.head_dim;
        assert_eq!(k_new.shape(), &[h, n, hd], "cache append shape");
        let kd = k_new.to_vec();
        let vd = v_new.to_vec();
        for head in 0..h {
            let base = head * n * hd;
            self.k[head].extend_from_slice(&kd[base..base + n * hd]);
            self.v[head].extend_from_slice(&vd[base..base + n * hd]);
        }
        self.len += n;
    }

    /// All cached keys as a `[h, len, hd]` tensor.
    fn k_tensor(&self, device: Device) -> Tensor {
        self.assemble(&self.k, device)
    }

    /// All cached values as a `[h, len, hd]` tensor.
    fn v_tensor(&self, device: Device) -> Tensor {
        self.assemble(&self.v, device)
    }

    fn assemble(&self, rows: &[Vec<f32>], device: Device) -> Tensor {
        let h = rows.len();
        let mut data = Vec::with_capacity(h * self.len * self.head_dim);
        for head in rows {
            data.extend_from_slice(head);
        }
        Tensor::from_vec(data, &[h, self.len, self.head_dim], DType::F32, device)
    }
}

/// Multi-head causal self-attention block (LLaMA layout: q/k/v/o
/// projections, RoPE on q and k, no biases).
#[derive(Debug)]
pub struct CausalSelfAttention {
    q_proj: Linear,
    k_proj: Linear,
    v_proj: Linear,
    o_proj: Linear,
    n_heads: usize,
    d_model: usize,
    rope_theta: f32,
}

impl CausalSelfAttention {
    /// Build with parameter names prefixed by `prefix` (e.g. `layers.0.attn`).
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `n_heads` or the head dim is
    /// odd (RoPE requirement).
    pub fn new(
        prefix: &str,
        d_model: usize,
        n_heads: usize,
        rope_theta: f32,
        dtype: DType,
        device: Device,
        seed: u64,
    ) -> Self {
        assert_eq!(d_model % n_heads, 0, "d_model must divide by n_heads");
        assert_eq!((d_model / n_heads) % 2, 0, "head dim must be even for RoPE");
        CausalSelfAttention {
            q_proj: Linear::new(
                format!("{prefix}.q_proj"),
                d_model,
                d_model,
                dtype,
                device,
                seed,
            ),
            k_proj: Linear::new(
                format!("{prefix}.k_proj"),
                d_model,
                d_model,
                dtype,
                device,
                seed + 1,
            ),
            v_proj: Linear::new(
                format!("{prefix}.v_proj"),
                d_model,
                d_model,
                dtype,
                device,
                seed + 2,
            ),
            o_proj: Linear::new(
                format!("{prefix}.o_proj"),
                d_model,
                d_model,
                dtype,
                device,
                seed + 3,
            ),
            n_heads,
            d_model,
            rope_theta,
        }
    }

    /// Head count.
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    /// The four projections (for parameter registration).
    pub fn projections(&self) -> [&Linear; 4] {
        [&self.q_proj, &self.k_proj, &self.v_proj, &self.o_proj]
    }

    /// Forward `[b·t, d] → [b·t, d]` for `b` sequences of length `t`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[b·t, d_model]`.
    pub fn forward(&self, x: &Var, b: usize, t: usize, hook: Option<WeightHook<'_>>) -> Var {
        assert_eq!(
            x.value().shape(),
            &[b * t, self.d_model],
            "attention input shape"
        );
        let h = self.n_heads;
        let hd = self.d_model / h;
        let device = x.value().device();

        let split = |y: &Var| -> Var {
            // [bt, d] -> [b, t, h, hd] -> [b, h, t, hd] -> [bh, t, hd]
            y.reshape(&[b, t, h, hd])
                .transpose(1, 2)
                .reshape(&[b * h, t, hd])
        };

        let (cos, sin) = rope_tables(t, hd, self.rope_theta);
        let q = rope(&split(&self.q_proj.forward(x, hook)), &cos, &sin);
        let k = rope(&split(&self.k_proj.forward(x, hook)), &cos, &sin);
        let v = split(&self.v_proj.forward(x, hook));

        let scale = 1.0 / (hd as f32).sqrt();
        let scores = q.bmm(&k.transpose(1, 2)).mul_scalar(scale); // [bh, t, t]
        let mask = Var::constant(causal_mask(t, device));
        let attn = scores.add(&mask).softmax_lastdim();
        let ctx = attn.bmm(&v); // [bh, t, hd]

        // [bh, t, hd] -> [b, h, t, hd] -> [b, t, h, hd] -> [bt, d]
        let merged = ctx
            .reshape(&[b, h, t, hd])
            .transpose(1, 2)
            .reshape(&[b * t, self.d_model]);
        self.o_proj.forward(&merged, hook)
    }

    /// An empty KV cache sized for this block.
    pub fn new_kv_cache(&self) -> AttnKvCache {
        AttnKvCache::new(self.n_heads, self.d_model / self.n_heads)
    }

    /// KV-cached forward for one sequence: `x` holds the `n` *new* tokens
    /// (`[n, d_model]`) entering at absolute position `cache.len()`; the
    /// cache gains their keys/values and the output covers only the new
    /// rows. With an empty cache this is bit-identical to
    /// [`CausalSelfAttention::forward`] at `b = 1`; incrementally it stays
    /// bit-identical row-for-row because every score/context row is computed
    /// in the same accumulation order a full forward would use.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[n, d_model]`.
    pub fn forward_cached(&self, x: &Var, cache: &mut AttnKvCache) -> Var {
        let n = x.value().shape()[0];
        assert_eq!(
            x.value().shape(),
            &[n, self.d_model],
            "cached attention input shape"
        );
        let h = self.n_heads;
        let hd = self.d_model / h;
        let device = x.value().device();
        let start = cache.len();

        let split = |y: &Var| -> Var {
            // [n, d] -> [1, n, h, hd] -> [1, h, n, hd] -> [h, n, hd]
            y.reshape(&[1, n, h, hd])
                .transpose(1, 2)
                .reshape(&[h, n, hd])
        };

        let (cos, sin) = rope_tables_range(start, n, hd, self.rope_theta);
        let q = rope(&split(&self.q_proj.forward(x, None)), &cos, &sin);
        let k_new = rope(&split(&self.k_proj.forward(x, None)), &cos, &sin);
        let v_new = split(&self.v_proj.forward(x, None));
        cache.append(k_new.value(), v_new.value(), n);

        let t_total = cache.len();
        let k_all = Var::constant(cache.k_tensor(device));
        let v_all = Var::constant(cache.v_tensor(device));
        let scale = 1.0 / (hd as f32).sqrt();
        let scores = q.bmm(&k_all.transpose(1, 2)).mul_scalar(scale); // [h, n, t_total]
        let mask = Var::constant(causal_mask_offset(n, t_total, start, device));
        let attn = scores.add(&mask).softmax_lastdim();
        let ctx = attn.bmm(&v_all); // [h, n, hd]

        let merged = ctx
            .reshape(&[1, h, n, hd])
            .transpose(1, 2)
            .reshape(&[n, self.d_model]);
        self.o_proj.forward(&merged, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_autograd::check_gradients;
    use edkm_tensor::runtime;

    #[test]
    fn rope_tables_shape_and_first_position() {
        let (cos, sin) = rope_tables(3, 4, 10000.0);
        assert_eq!(cos.len(), 6);
        // Position 0: no rotation.
        assert_eq!(&cos[..2], &[1.0, 1.0]);
        assert_eq!(&sin[..2], &[0.0, 0.0]);
    }

    #[test]
    fn rope_preserves_norms() {
        runtime::reset();
        let x = Var::constant(Tensor::randn(&[2, 5, 8], DType::F32, Device::Cpu, 0));
        let (cos, sin) = rope_tables(5, 8, 10000.0);
        let y = rope(&x, &cos, &sin);
        // Rotations are orthogonal: per-vector L2 norm preserved.
        let xv = x.value().to_vec();
        let yv = y.value().to_vec();
        for (xc, yc) in xv.chunks(8).zip(yv.chunks(8)) {
            let nx: f32 = xc.iter().map(|v| v * v).sum();
            let ny: f32 = yc.iter().map(|v| v * v).sum();
            assert!((nx - ny).abs() < 1e-4);
        }
    }

    #[test]
    fn rope_gradcheck() {
        runtime::reset();
        let x = Tensor::randn(&[1, 3, 4], DType::F32, Device::Cpu, 1);
        let (cos, sin) = rope_tables(3, 4, 10000.0);
        let w = Tensor::randn(&[1, 3, 4], DType::F32, Device::Cpu, 2);
        check_gradients(
            |vs| {
                rope(&vs[0], &cos, &sin)
                    .mul(&Var::constant(w.clone()))
                    .sum_all()
            },
            &[x],
            1e-2,
            2e-2,
        )
        .unwrap();
    }

    #[test]
    fn causal_mask_blocks_future() {
        runtime::reset();
        let m = causal_mask(3, Device::Cpu);
        assert_eq!(m.get(&[0, 0]), 0.0);
        assert_eq!(m.get(&[2, 1]), 0.0);
        assert!(m.get(&[0, 1]) < -1e8);
        assert!(m.get(&[1, 2]) < -1e8);
    }

    #[test]
    fn attention_shapes_and_causality() {
        runtime::reset();
        let attn = CausalSelfAttention::new("a", 8, 2, 10000.0, DType::F32, Device::Cpu, 0);
        let b = 2;
        let t = 4;
        let x = Tensor::randn(&[b * t, 8], DType::F32, Device::Cpu, 5);
        let y1 = attn.forward(&Var::constant(x.clone()), b, t, None);
        assert_eq!(y1.value().shape(), &[b * t, 8]);

        // Causality: changing the last token must not affect earlier outputs.
        let mut data = x.to_vec();
        for v in data[(b * t - 1) * 8..].iter_mut() {
            *v += 10.0;
        }
        let x2 = Tensor::from_vec(data, &[b * t, 8], DType::F32, Device::Cpu);
        let y2 = attn.forward(&Var::constant(x2), b, t, None);
        let v1 = y1.value().to_vec();
        let v2 = y2.value().to_vec();
        // All rows except the perturbed final row of the final sequence match.
        for r in 0..(b * t - 1) {
            for c in 0..8 {
                assert!(
                    (v1[r * 8 + c] - v2[r * 8 + c]).abs() < 1e-5,
                    "row {r} changed"
                );
            }
        }
    }

    #[test]
    fn rope_tables_range_matches_suffix_of_full_tables() {
        let (cos_full, sin_full) = rope_tables(8, 4, 10000.0);
        let (cos, sin) = rope_tables_range(5, 3, 4, 10000.0);
        assert_eq!(cos, &cos_full[5 * 2..]);
        assert_eq!(sin, &sin_full[5 * 2..]);
    }

    #[test]
    fn causal_mask_offset_zero_is_square_causal() {
        runtime::reset();
        let a = causal_mask(4, Device::Cpu);
        let b = causal_mask_offset(4, 4, 0, Device::Cpu);
        assert_eq!(a.to_vec(), b.to_vec());
        // Decode case: one query at position 3 sees all 4 keys.
        let m = causal_mask_offset(1, 4, 3, Device::Cpu);
        assert!(m.to_vec().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn causal_mask_offset_rejects_future_queries() {
        runtime::reset();
        causal_mask_offset(2, 4, 3, Device::Cpu);
    }

    #[test]
    fn cached_prefill_is_bit_identical_to_full_forward() {
        runtime::reset();
        let attn = CausalSelfAttention::new("a", 8, 2, 10000.0, DType::F32, Device::Cpu, 0);
        let t = 5;
        let x = Var::constant(Tensor::randn(&[t, 8], DType::F32, Device::Cpu, 7));
        let full = attn.forward(&x, 1, t, None);
        let mut cache = attn.new_kv_cache();
        let cached = attn.forward_cached(&x, &mut cache);
        assert_eq!(full.value().to_vec(), cached.value().to_vec());
        assert_eq!(cache.len(), t);
    }

    #[test]
    fn incremental_decode_matches_full_forward_rows() {
        runtime::reset();
        let attn = CausalSelfAttention::new("a", 8, 2, 10000.0, DType::F32, Device::Cpu, 1);
        let t = 6;
        let x = Tensor::randn(&[t, 8], DType::F32, Device::Cpu, 9);
        let full = attn.forward(&Var::constant(x.clone()), 1, t, None);
        // Feed the same rows one at a time through the cache.
        let mut cache = attn.new_kv_cache();
        let mut rows = Vec::new();
        for i in 0..t {
            let xi = Var::constant(x.slice(0, i, 1).contiguous());
            rows.extend(attn.forward_cached(&xi, &mut cache).value().to_vec());
        }
        assert_eq!(
            full.value().to_vec(),
            rows,
            "token-at-a-time decode must reproduce the full pass bit for bit"
        );
    }

    /// Rows in one contiguous `[t, d]` buffer (the monolithic layout).
    struct Flat<'a> {
        k: &'a [f32],
        v: &'a [f32],
        d: usize,
    }

    impl KvRowView for Flat<'_> {
        fn k_row(&self, pos: usize) -> &[f32] {
            &self.k[pos * self.d..(pos + 1) * self.d]
        }
        fn v_row(&self, pos: usize) -> &[f32] {
            &self.v[pos * self.d..(pos + 1) * self.d]
        }
    }

    /// Rows scattered across fixed-size blocks (the paged layout).
    struct Paged {
        blocks_k: Vec<Vec<f32>>,
        blocks_v: Vec<Vec<f32>>,
        table: Vec<usize>,
        block_tokens: usize,
        d: usize,
    }

    impl Paged {
        fn from_flat(k: &[f32], v: &[f32], d: usize, block_tokens: usize) -> Self {
            let t = k.len() / d;
            let n_blocks = t.div_ceil(block_tokens);
            // Shuffled physical order to prove reads go through the table.
            let table: Vec<usize> = (0..n_blocks).rev().collect();
            let bsz = block_tokens * d;
            let mut blocks_k = vec![vec![0.0f32; bsz]; n_blocks];
            let mut blocks_v = vec![vec![0.0f32; bsz]; n_blocks];
            for pos in 0..t {
                let (b, slot) = (pos / block_tokens, pos % block_tokens);
                let phys = table[b];
                blocks_k[phys][slot * d..(slot + 1) * d]
                    .copy_from_slice(&k[pos * d..(pos + 1) * d]);
                blocks_v[phys][slot * d..(slot + 1) * d]
                    .copy_from_slice(&v[pos * d..(pos + 1) * d]);
            }
            Paged {
                blocks_k,
                blocks_v,
                table,
                block_tokens,
                d,
            }
        }
    }

    impl KvRowView for Paged {
        fn k_row(&self, pos: usize) -> &[f32] {
            let phys = self.table[pos / self.block_tokens];
            let slot = pos % self.block_tokens;
            &self.blocks_k[phys][slot * self.d..(slot + 1) * self.d]
        }
        fn v_row(&self, pos: usize) -> &[f32] {
            let phys = self.table[pos / self.block_tokens];
            let slot = pos % self.block_tokens;
            &self.blocks_v[phys][slot * self.d..(slot + 1) * self.d]
        }
        // Multi-row runs to the end of the block, so the flat-vs-paged
        // parity test pins the block-at-a-time walker against the
        // row-at-a-time default (`Flat` stays on the defaults).
        fn k_rows(&self, pos: usize) -> &[f32] {
            let phys = self.table[pos / self.block_tokens];
            let slot = pos % self.block_tokens;
            &self.blocks_k[phys][slot * self.d..]
        }
        fn v_rows(&self, pos: usize) -> &[f32] {
            let phys = self.table[pos / self.block_tokens];
            let slot = pos % self.block_tokens;
            &self.blocks_v[phys][slot * self.d..]
        }
    }

    #[test]
    fn attend_cached_rows_matches_the_bmm_attention_path() {
        runtime::reset();
        let (h, hd, t, n) = (2usize, 4usize, 6usize, 2usize);
        let d = h * hd;
        let start = t - n;
        let q_all = Tensor::randn(&[t, d], DType::F32, Device::Cpu, 1).to_vec();
        let k_all = Tensor::randn(&[t, d], DType::F32, Device::Cpu, 2).to_vec();
        let v_all = Tensor::randn(&[t, d], DType::F32, Device::Cpu, 3).to_vec();

        // Reference: the dense bmm/softmax route over [h, t, hd] tensors.
        let to_heads = |rows: &[f32]| -> Var {
            let mut data = vec![0.0f32; t * d];
            for head in 0..h {
                for p in 0..t {
                    data[(head * t + p) * hd..(head * t + p + 1) * hd]
                        .copy_from_slice(&rows[p * d + head * hd..p * d + (head + 1) * hd]);
                }
            }
            Var::constant(Tensor::from_vec(data, &[h, t, hd], DType::F32, Device::Cpu))
        };
        let q_t = to_heads(&q_all);
        let k_t = to_heads(&k_all);
        let v_t = to_heads(&v_all);
        let scale = 1.0 / (hd as f32).sqrt();
        let scores = q_t.bmm(&k_t.transpose(1, 2)).mul_scalar(scale);
        let mask = Var::constant(causal_mask(t, Device::Cpu));
        let ctx_ref = scores.add(&mask).softmax_lastdim().bmm(&v_t);

        // attend_cached_rows over the last n query rows.
        let mut ctx = vec![0.0f32; n * d];
        let mut scratch = vec![0.0f32; t];
        let flops = attend_cached_rows(
            &q_all[start * d..],
            start,
            h,
            hd,
            &Flat {
                k: &k_all,
                v: &v_all,
                d,
            },
            &mut ctx,
            &mut scratch,
        );
        assert!(flops > 0.0);
        let ref_v = ctx_ref.value().to_vec(); // [h, t, hd]
        for i in 0..n {
            for head in 0..h {
                let got = &ctx[i * d + head * hd..i * d + (head + 1) * hd];
                let want = &ref_v[(head * t + start + i) * hd..(head * t + start + i + 1) * hd];
                for (g, w) in got.iter().zip(want) {
                    assert!((g - w).abs() < 1e-5, "row {i} head {head}: {g} vs {w}");
                }
            }
        }
    }

    #[test]
    fn paged_view_is_bit_identical_to_flat_view() {
        runtime::reset();
        let (h, hd, t) = (2usize, 4usize, 7usize);
        let d = h * hd;
        let q = Tensor::randn(&[t, d], DType::F32, Device::Cpu, 4).to_vec();
        let k = Tensor::randn(&[t, d], DType::F32, Device::Cpu, 5).to_vec();
        let v = Tensor::randn(&[t, d], DType::F32, Device::Cpu, 6).to_vec();
        let mut scratch = vec![0.0f32; t];
        let mut ctx_flat = vec![0.0f32; t * d];
        attend_cached_rows(
            &q,
            0,
            h,
            hd,
            &Flat { k: &k, v: &v, d },
            &mut ctx_flat,
            &mut scratch,
        );
        for block_tokens in [1usize, 3, 16] {
            let paged = Paged::from_flat(&k, &v, d, block_tokens);
            let mut ctx_paged = vec![0.0f32; t * d];
            let f = attend_cached_rows(&q, 0, h, hd, &paged, &mut ctx_paged, &mut scratch);
            assert_eq!(
                ctx_flat, ctx_paged,
                "block size {block_tokens} must not change a single bit"
            );
            assert!(f > 0.0);
        }
    }

    #[test]
    fn attention_backward_reaches_all_projections() {
        runtime::reset();
        let attn = CausalSelfAttention::new("a", 8, 2, 10000.0, DType::F32, Device::Cpu, 0);
        let x = Var::constant(Tensor::randn(&[4, 8], DType::F32, Device::Cpu, 3));
        attn.forward(&x, 1, 4, None).sum_all().backward();
        for p in attn.projections() {
            assert!(p.weight().grad().is_some(), "{} got no grad", p.name());
        }
    }
}
