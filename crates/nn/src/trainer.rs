//! Minimal training loop for causal language modeling.

use crate::{clip_grad_norm, AdamW, AdamWConfig, LlamaModel, LrSchedule, WeightHook};
use edkm_autograd::Var;

/// One batch of equal-length token sequences (each `t+1` tokens: the model
/// predicts positions `1..` from positions `..t`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LmBatch {
    /// Token sequences, all the same length ≥ 2.
    pub seqs: Vec<Vec<usize>>,
}

impl LmBatch {
    /// Build a batch, validating shape.
    ///
    /// # Panics
    ///
    /// Panics on an empty or ragged batch or sequences shorter than 2.
    pub fn new(seqs: Vec<Vec<usize>>) -> Self {
        assert!(!seqs.is_empty(), "empty batch");
        let l = seqs[0].len();
        assert!(l >= 2, "sequences must be >= 2 tokens");
        assert!(seqs.iter().all(|s| s.len() == l), "ragged batch");
        LmBatch { seqs }
    }

    /// Number of sequences.
    pub fn batch_size(&self) -> usize {
        self.seqs.len()
    }

    /// Predicted positions per sequence.
    pub fn seq_len(&self) -> usize {
        self.seqs[0].len() - 1
    }
}

/// Training-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Optimizer settings.
    pub optim: AdamWConfig,
    /// LR schedule.
    pub schedule: LrSchedule,
    /// Global gradient-norm clip (the paper uses 1.0).
    pub clip_norm: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            optim: AdamWConfig::default(),
            schedule: LrSchedule::Constant,
            clip_norm: 1.0,
        }
    }
}

/// Owns the optimizer state for a training run over a model's parameters.
#[derive(Debug)]
pub struct Trainer {
    optim: AdamW,
    config: TrainConfig,
    losses: Vec<f32>,
}

impl Trainer {
    /// New trainer.
    pub fn new(config: TrainConfig) -> Self {
        Trainer {
            optim: AdamW::with_schedule(config.optim, config.schedule),
            config,
            losses: Vec::new(),
        }
    }

    /// Loss history, one entry per step.
    pub fn losses(&self) -> &[f32] {
        &self.losses
    }

    /// The underlying optimizer.
    pub fn optimizer(&self) -> &AdamW {
        &self.optim
    }

    /// Mutable optimizer access (checkpoint restore).
    pub fn optimizer_mut(&mut self) -> &mut AdamW {
        &mut self.optim
    }

    /// Overwrite the loss history (checkpoint restore).
    pub fn set_losses(&mut self, losses: Vec<f32>) {
        self.losses = losses;
    }

    /// One optimization step on `batch`; returns the loss.
    ///
    /// `params` selects what is trained (e.g. all params, or only the
    /// centroids during clustering fine-tuning). `hook` substitutes
    /// effective weights (DKM / fake-quant).
    pub fn step(
        &mut self,
        model: &LlamaModel,
        batch: &LmBatch,
        params: &[Var],
        hook: Option<WeightHook<'_>>,
    ) -> f32 {
        let loss = model.lm_loss(&batch.seqs, hook);
        let loss_val = loss.value().item();
        loss.backward();
        clip_grad_norm(params, self.config.clip_norm);
        self.optim.step(params);
        self.losses.push(loss_val);
        loss_val
    }

    /// One optimization step over several micro-batches with gradient
    /// accumulation: each micro-batch's loss is scaled by `1/n` and
    /// back-propagated (gradients accumulate on the leaves), then a single
    /// clipped optimizer update runs. Equivalent to one [`Trainer::step`]
    /// on the concatenated batch, at a fraction of the peak memory.
    ///
    /// Returns the mean loss across micro-batches.
    ///
    /// # Panics
    ///
    /// Panics if `microbatches` is empty.
    pub fn step_accumulated(
        &mut self,
        model: &LlamaModel,
        microbatches: &[LmBatch],
        params: &[Var],
        hook: Option<WeightHook<'_>>,
    ) -> f32 {
        assert!(!microbatches.is_empty(), "no micro-batches");
        let scale = 1.0 / microbatches.len() as f32;
        let mut total = 0.0;
        for batch in microbatches {
            let loss = model.lm_loss(&batch.seqs, hook);
            total += loss.value().item();
            loss.mul_scalar(scale).backward();
        }
        clip_grad_norm(params, self.config.clip_norm);
        self.optim.step(params);
        let mean = total * scale;
        self.losses.push(mean);
        mean
    }

    /// One pass over `batches`; returns the mean loss.
    pub fn train_epoch(
        &mut self,
        model: &LlamaModel,
        batches: &[LmBatch],
        params: &[Var],
        hook: Option<WeightHook<'_>>,
    ) -> f32 {
        assert!(!batches.is_empty(), "no batches");
        let mut total = 0.0;
        for b in batches {
            total += self.step(model, b, params, hook);
        }
        total / batches.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LlamaConfig;
    use edkm_tensor::{runtime, DType, Device};

    #[test]
    fn batch_validation() {
        let b = LmBatch::new(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(b.batch_size(), 2);
        assert_eq!(b.seq_len(), 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_batch_panics() {
        LmBatch::new(vec![vec![1, 2, 3], vec![4, 5]]);
    }

    #[test]
    fn training_overfits_tiny_pattern() {
        runtime::reset();
        let model = LlamaModel::new(LlamaConfig::tiny(), DType::F32, Device::Cpu, 0);
        // A deterministic repeating pattern the model can memorize.
        let batch = LmBatch::new(vec![vec![1, 2, 3, 1, 2, 3], vec![2, 3, 1, 2, 3, 1]]);
        let mut trainer = Trainer::new(TrainConfig {
            optim: AdamWConfig {
                lr: 3e-3,
                ..AdamWConfig::default()
            },
            ..TrainConfig::default()
        });
        let params = model.params();
        let first = trainer.step(&model, &batch, &params, None);
        for _ in 0..60 {
            trainer.step(&model, &batch, &params, None);
        }
        let last = *trainer.losses().last().unwrap();
        assert!(
            last < first * 0.5,
            "loss must halve: first={first}, last={last}"
        );
        assert_eq!(trainer.losses().len(), 61);
        assert_eq!(trainer.optimizer().steps(), 61);
    }

    #[test]
    fn epoch_averages_losses() {
        runtime::reset();
        let model = LlamaModel::new(LlamaConfig::tiny(), DType::F32, Device::Cpu, 0);
        let batches = vec![
            LmBatch::new(vec![vec![1, 2, 3]]),
            LmBatch::new(vec![vec![4, 5, 6]]),
        ];
        let mut trainer = Trainer::new(TrainConfig::default());
        let params = model.params();
        let mean = trainer.train_epoch(&model, &batches, &params, None);
        assert!(mean.is_finite());
        assert_eq!(trainer.losses().len(), 2);
    }
}
