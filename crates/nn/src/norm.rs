//! RMS normalization layer (the LLaMA norm).

use edkm_autograd::Var;
use edkm_tensor::{DType, Device, Tensor};

/// `y = x / rms(x) ⊙ g` with a learned gain initialized to ones.
#[derive(Debug)]
pub struct RmsNorm {
    name: String,
    weight: Var,
    eps: f32,
}

impl RmsNorm {
    /// New norm over a last axis of size `dim`.
    pub fn new(name: impl Into<String>, dim: usize, dtype: DType, device: Device) -> Self {
        RmsNorm {
            name: name.into(),
            weight: Var::param(Tensor::ones(&[dim], dtype, device)),
            eps: 1e-5,
        }
    }

    /// Registered parameter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The gain parameter.
    pub fn weight(&self) -> &Var {
        &self.weight
    }

    /// Normalization epsilon.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Forward over the last axis.
    pub fn forward(&self, x: &Var) -> Var {
        x.rmsnorm(&self.weight, self.eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_tensor::runtime;

    #[test]
    fn unit_rms_output() {
        runtime::reset();
        let n = RmsNorm::new("norm", 8, DType::F32, Device::Cpu);
        let x = Var::constant(Tensor::randn(&[4, 8], DType::F32, Device::Cpu, 0).map(|v| v * 5.0));
        let y = n.forward(&x);
        for row in y.value().to_vec().chunks(8) {
            let ms = row.iter().map(|v| v * v).sum::<f32>() / 8.0;
            assert!((ms - 1.0).abs() < 1e-3, "rms must be ~1, got {}", ms.sqrt());
        }
    }

    #[test]
    fn gain_receives_grad() {
        runtime::reset();
        let n = RmsNorm::new("norm", 4, DType::F32, Device::Cpu);
        let x = Var::constant(Tensor::randn(&[2, 4], DType::F32, Device::Cpu, 1));
        n.forward(&x).sum_all().backward();
        assert!(n.weight().grad().is_some());
        assert_eq!(n.eps(), 1e-5);
    }
}
