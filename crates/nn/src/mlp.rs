//! SwiGLU feed-forward block (LLaMA MLP).

use crate::{Linear, WeightHook};
use edkm_autograd::Var;
use edkm_tensor::{DType, Device};

/// `down( silu(gate(x)) ⊙ up(x) )`.
#[derive(Debug)]
pub struct SwiGluMlp {
    gate_proj: Linear,
    up_proj: Linear,
    down_proj: Linear,
}

impl SwiGluMlp {
    /// Build with parameter names prefixed by `prefix` (e.g. `layers.0.mlp`).
    pub fn new(
        prefix: &str,
        d_model: usize,
        d_ff: usize,
        dtype: DType,
        device: Device,
        seed: u64,
    ) -> Self {
        SwiGluMlp {
            gate_proj: Linear::new(
                format!("{prefix}.gate_proj"),
                d_model,
                d_ff,
                dtype,
                device,
                seed,
            ),
            up_proj: Linear::new(
                format!("{prefix}.up_proj"),
                d_model,
                d_ff,
                dtype,
                device,
                seed + 1,
            ),
            down_proj: Linear::new(
                format!("{prefix}.down_proj"),
                d_ff,
                d_model,
                dtype,
                device,
                seed + 2,
            ),
        }
    }

    /// The three projections (for parameter registration).
    pub fn projections(&self) -> [&Linear; 3] {
        [&self.gate_proj, &self.up_proj, &self.down_proj]
    }

    /// Forward `[n, d] → [n, d]`.
    pub fn forward(&self, x: &Var, hook: Option<WeightHook<'_>>) -> Var {
        let gate = self.gate_proj.forward(x, hook).silu();
        let up = self.up_proj.forward(x, hook);
        self.down_proj.forward(&gate.mul(&up), hook)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_tensor::{runtime, Tensor};

    #[test]
    fn shapes_and_grads() {
        runtime::reset();
        let mlp = SwiGluMlp::new("m", 6, 12, DType::F32, Device::Cpu, 0);
        let x = Var::constant(Tensor::randn(&[3, 6], DType::F32, Device::Cpu, 1));
        let y = mlp.forward(&x, None);
        assert_eq!(y.value().shape(), &[3, 6]);
        y.sum_all().backward();
        for p in mlp.projections() {
            assert!(p.weight().grad().is_some(), "{} missing grad", p.name());
        }
    }

    #[test]
    fn zero_input_gives_zero_output() {
        runtime::reset();
        let mlp = SwiGluMlp::new("m", 4, 8, DType::F32, Device::Cpu, 0);
        let x = Var::constant(Tensor::zeros(&[2, 4], DType::F32, Device::Cpu));
        let y = mlp.forward(&x, None);
        assert!(y.value().to_vec().iter().all(|&v| v == 0.0));
    }
}
