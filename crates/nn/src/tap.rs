//! Activation taps: capture the inputs every projection sees.
//!
//! Post-training quantizers (GPTQ, AWQ, SmoothQuant) calibrate on the
//! activations that actually flow into each linear layer. While a tap is
//! armed on the current thread, every [`crate::Linear::forward`] records its
//! input tensor under the layer's parameter name.

use edkm_tensor::Tensor;
use std::cell::RefCell;
use std::collections::HashMap;

thread_local! {
    static TAP: RefCell<Option<HashMap<String, Vec<Tensor>>>> = const { RefCell::new(None) };
}

/// Start capturing projection inputs on this thread.
///
/// Any previously armed capture is discarded.
pub fn start() {
    TAP.with(|t| *t.borrow_mut() = Some(HashMap::new()));
}

/// Stop capturing and return `{parameter name → recorded inputs}`.
pub fn stop() -> HashMap<String, Vec<Tensor>> {
    TAP.with(|t| t.borrow_mut().take().unwrap_or_default())
}

/// `true` if a capture is armed.
pub fn is_armed() -> bool {
    TAP.with(|t| t.borrow().is_some())
}

/// Record an input (called by `Linear::forward`).
pub(crate) fn record(name: &str, x: &Tensor) {
    TAP.with(|t| {
        if let Some(map) = t.borrow_mut().as_mut() {
            map.entry(name.to_string()).or_default().push(x.clone());
        }
    });
}

/// Concatenate all recorded inputs for `name` into one `[n, in]` matrix.
///
/// Returns `None` if nothing was recorded.
pub fn concat_inputs(map: &HashMap<String, Vec<Tensor>>, name: &str) -> Option<Tensor> {
    let tensors = map.get(name)?;
    if tensors.is_empty() {
        return None;
    }
    let cols = *tensors[0].shape().last()?;
    let mut data = Vec::new();
    let mut rows = 0;
    for t in tensors {
        data.extend(t.to_vec());
        rows += t.numel() / cols;
    }
    Some(Tensor::from_vec(
        data,
        &[rows, cols],
        tensors[0].dtype(),
        tensors[0].device(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Linear;
    use edkm_autograd::Var;
    use edkm_tensor::{runtime, DType, Device};

    #[test]
    fn tap_captures_linear_inputs() {
        runtime::reset();
        let lin = Linear::new("proj", 4, 2, DType::F32, Device::Cpu, 0);
        let x = Var::constant(Tensor::randn(&[3, 4], DType::F32, Device::Cpu, 1));
        start();
        assert!(is_armed());
        lin.forward(&x, None);
        lin.forward(&x, None);
        let cap = stop();
        assert!(!is_armed());
        assert_eq!(cap["proj"].len(), 2);
        let cat = concat_inputs(&cap, "proj").unwrap();
        assert_eq!(cat.shape(), &[6, 4]);
        assert!(concat_inputs(&cap, "other").is_none());
    }

    #[test]
    fn no_capture_when_disarmed() {
        runtime::reset();
        let lin = Linear::new("proj", 4, 2, DType::F32, Device::Cpu, 0);
        let x = Var::constant(Tensor::randn(&[3, 4], DType::F32, Device::Cpu, 1));
        lin.forward(&x, None);
        let cap = stop();
        assert!(cap.is_empty());
    }
}
