//! Weight initialization helpers (seeded, deterministic).

use edkm_tensor::{DType, Device, Tensor};

/// GPT-style normal init with std 0.02.
pub fn normal_init(shape: &[usize], dtype: DType, device: Device, seed: u64) -> Tensor {
    scaled_normal(shape, 0.02, dtype, device, seed)
}

/// Normal init with explicit standard deviation.
pub fn scaled_normal(shape: &[usize], std: f32, dtype: DType, device: Device, seed: u64) -> Tensor {
    let t = Tensor::randn(shape, DType::F32, device, seed);
    t.map(|v| v * std).cast(dtype)
}

/// Kaiming-uniform-ish init for a `[out, in]` projection: U(−b, b) with
/// `b = 1/sqrt(in)`.
pub fn kaiming_uniform(shape: &[usize], dtype: DType, device: Device, seed: u64) -> Tensor {
    let fan_in = *shape.last().expect("kaiming needs a shape") as f32;
    let bound = 1.0 / fan_in.sqrt();
    Tensor::uniform(shape, -bound, bound, dtype, device, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_tensor::runtime;

    #[test]
    fn normal_init_std_is_small() {
        runtime::reset();
        let t = normal_init(&[100, 100], DType::F32, Device::Cpu, 0);
        let v = t.to_vec();
        let mean = v.iter().sum::<f32>() / v.len() as f32;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / v.len() as f32;
        assert!(mean.abs() < 5e-3);
        assert!((var.sqrt() - 0.02).abs() < 5e-3);
    }

    #[test]
    fn kaiming_bound_respected() {
        runtime::reset();
        let t = kaiming_uniform(&[64, 16], DType::F32, Device::Cpu, 1);
        let b = 1.0 / 4.0;
        assert!(t.to_vec().iter().all(|&v| v >= -b && v < b));
    }

    #[test]
    fn init_is_deterministic() {
        runtime::reset();
        let a = normal_init(&[8], DType::Bf16, Device::Cpu, 7);
        let b = normal_init(&[8], DType::Bf16, Device::Cpu, 7);
        assert_eq!(a.to_vec(), b.to_vec());
        assert_eq!(a.dtype(), DType::Bf16);
    }
}
