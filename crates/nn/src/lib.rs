//! # edkm-nn
//!
//! A from-scratch LLaMA-style decoder stack, optimizer and training loop on
//! top of `edkm-autograd`.
//!
//! This is the substrate the eDKM paper fine-tunes: RMSNorm, rotary position
//! embeddings, multi-head causal self-attention, SwiGLU MLPs, an AdamW
//! optimizer with gradient-norm clipping, and a small trainer. The model is
//! dimension-scaled (documented in DESIGN.md) but architecturally faithful,
//! so per-layer weight sets ({q,k,v,o,gate,up,down} projections) and the
//! tensors saved for backward match the paper's setting structurally.
//!
//! ## Weight hooks
//!
//! Every projection weight passes through an optional [`WeightHook`] at
//! forward time. Train-time compression (DKM soft clustering, LLM-QAT fake
//! quantization) is implemented by substituting the effective weight there,
//! which is exactly how train-time weight optimization systems wrap a model
//! (Fig. 1 of the paper).

pub mod attention;
pub mod checkpoint;
pub mod decoder;
pub mod embedding;
pub mod init;
pub mod linear;
pub mod mlp;
pub mod model;
pub mod norm;
pub mod optim;
pub mod tap;
pub mod trainer;

pub use attention::{attend_cached_rows, AttnKvCache, CausalSelfAttention, KvRowView};
pub use checkpoint::{CheckpointError, TrainCheckpoint};
pub use decoder::DecoderLayer;
pub use embedding::Embedding;
pub use linear::Linear;
pub use mlp::SwiGluMlp;
pub use model::{LlamaConfig, LlamaModel};
pub use norm::RmsNorm;
pub use optim::{clip_grad_norm, AdamW, AdamWConfig, LrSchedule, ParamStateSnapshot};
pub use trainer::{LmBatch, TrainConfig, Trainer};

use edkm_autograd::Var;

/// Hook applied to every projection weight at forward time.
///
/// Receives the parameter's registered name and the raw weight, returns the
/// effective weight to use. Identity when absent.
pub type WeightHook<'a> = &'a dyn Fn(&str, &Var) -> Var;

/// Apply an optional hook to a named weight.
pub(crate) fn effective_weight(hook: Option<WeightHook<'_>>, name: &str, w: &Var) -> Var {
    match hook {
        Some(h) => h(name, w),
        None => w.clone(),
    }
}
