//! Bias-free linear projection (as in LLaMA).

use crate::{effective_weight, init, WeightHook};
use edkm_autograd::Var;
use edkm_tensor::{DType, Device};

/// `y = x Wᵀ` with a `[out, in]` weight, no bias.
#[derive(Debug)]
pub struct Linear {
    name: String,
    weight: Var,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// New projection with seeded Kaiming-uniform init.
    pub fn new(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        dtype: DType,
        device: Device,
        seed: u64,
    ) -> Self {
        let weight = Var::param(init::kaiming_uniform(
            &[out_features, in_features],
            dtype,
            device,
            seed,
        ));
        Linear {
            name: name.into(),
            weight,
            in_features,
            out_features,
        }
    }

    /// Registered parameter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The raw weight parameter.
    pub fn weight(&self) -> &Var {
        &self.weight
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Forward `[n, in] → [n, out]`, routing the weight through `hook`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[n, in]`.
    pub fn forward(&self, x: &Var, hook: Option<WeightHook<'_>>) -> Var {
        assert_eq!(
            x.value().shape().last(),
            Some(&self.in_features),
            "linear {}: input {:?} incompatible with in_features {}",
            self.name,
            x.value().shape(),
            self.in_features
        );
        crate::tap::record(&self.name, x.value());
        let w = effective_weight(hook, &self.name, &self.weight);
        x.matmul(&w.t())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_tensor::{runtime, Tensor};

    #[test]
    fn forward_shapes_and_grad() {
        runtime::reset();
        let lin = Linear::new("l", 4, 3, DType::F32, Device::Cpu, 0);
        let x = Var::constant(Tensor::randn(&[5, 4], DType::F32, Device::Cpu, 1));
        let y = lin.forward(&x, None);
        assert_eq!(y.value().shape(), &[5, 3]);
        y.sum_all().backward();
        assert_eq!(lin.weight().grad().unwrap().shape(), &[3, 4]);
    }

    #[test]
    fn hook_substitutes_weight() {
        runtime::reset();
        let lin = Linear::new("proj", 2, 2, DType::F32, Device::Cpu, 0);
        let x = Var::constant(Tensor::from_vec(
            vec![1.0, 1.0],
            &[1, 2],
            DType::F32,
            Device::Cpu,
        ));
        let zero_hook = |name: &str, w: &Var| -> Var {
            assert_eq!(name, "proj");
            Var::constant(Tensor::zeros(
                w.value().shape(),
                w.value().dtype(),
                w.value().device(),
            ))
        };
        let y = lin.forward(&x, Some(&zero_hook));
        assert_eq!(y.value().to_vec(), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn wrong_input_panics() {
        runtime::reset();
        let lin = Linear::new("l", 4, 3, DType::F32, Device::Cpu, 0);
        let x = Var::constant(Tensor::zeros(&[5, 3], DType::F32, Device::Cpu));
        lin.forward(&x, None);
    }
}
