//! AdamW optimizer, gradient clipping and learning-rate schedules.
//!
//! Matches the paper's fine-tuning recipe (Section 3): AdamW with
//! `betas = (0.9, 0.95)`, weight decay 0, gradient-norm clipping at 1.0.
//! Parameters may be 16-bit; the optimizer keeps f32 master copies and
//! moment estimates (standard mixed-precision practice) and writes rounded
//! values back into the parameter tensors in place.

use edkm_autograd::Var;
use edkm_tensor::ops as t_ops;
use std::collections::HashMap;

/// AdamW hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamWConfig {
    /// Peak learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical epsilon.
    pub eps: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
}

impl Default for AdamWConfig {
    fn default() -> Self {
        // The paper's recipe: lr 5e-5, wd 0, betas (0.9, 0.95).
        AdamWConfig {
            lr: 5e-5,
            beta1: 0.9,
            beta2: 0.95,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// Learning-rate schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant at the configured `lr`.
    Constant,
    /// Linear warmup for `warmup` steps, then cosine decay to
    /// `final_frac · lr` at `total` steps.
    CosineWithWarmup {
        /// Warmup steps.
        warmup: u64,
        /// Total steps of the schedule.
        total: u64,
        /// Fraction of peak lr at the end.
        final_frac: f32,
    },
}

impl LrSchedule {
    /// Multiplier on the peak lr at `step` (0-based).
    pub fn factor(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::CosineWithWarmup {
                warmup,
                total,
                final_frac,
            } => {
                if warmup > 0 && step < warmup {
                    return (step + 1) as f32 / warmup as f32;
                }
                let span = total.saturating_sub(warmup).max(1) as f32;
                let p = ((step.saturating_sub(warmup)) as f32 / span).min(1.0);
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * p).cos());
                final_frac + (1.0 - final_frac) * cos
            }
        }
    }
}

struct ParamState {
    master: Vec<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
}

/// Exported optimizer state of one parameter (see [`AdamW::export_param_state`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ParamStateSnapshot {
    /// f32 master weights.
    pub master: Vec<f32>,
    /// First-moment estimate.
    pub m: Vec<f32>,
    /// Second-moment estimate.
    pub v: Vec<f32>,
}

/// AdamW with f32 master weights.
pub struct AdamW {
    config: AdamWConfig,
    schedule: LrSchedule,
    step_count: u64,
    state: HashMap<u64, ParamState>,
}

impl std::fmt::Debug for AdamW {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AdamW(step={}, lr={}, params={})",
            self.step_count,
            self.config.lr,
            self.state.len()
        )
    }
}

impl AdamW {
    /// New optimizer with a constant schedule.
    pub fn new(config: AdamWConfig) -> Self {
        Self::with_schedule(config, LrSchedule::Constant)
    }

    /// New optimizer with an explicit schedule.
    pub fn with_schedule(config: AdamWConfig, schedule: LrSchedule) -> Self {
        AdamW {
            config,
            schedule,
            step_count: 0,
            state: HashMap::new(),
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    /// The configured hyper-parameters.
    pub fn config(&self) -> &AdamWConfig {
        &self.config
    }

    /// Current effective learning rate.
    pub fn current_lr(&self) -> f32 {
        self.config.lr * self.schedule.factor(self.step_count)
    }

    /// Apply one update to every param that has a gradient, then clear the
    /// gradients.
    pub fn step(&mut self, params: &[Var]) {
        let lr = self.current_lr();
        self.step_count += 1;
        let t = self.step_count as i32;
        let (b1, b2) = (self.config.beta1, self.config.beta2);
        let bc1 = 1.0 - b1.powi(t);
        let bc2 = 1.0 - b2.powi(t);
        for p in params {
            let Some(grad) = p.grad() else { continue };
            let g = grad.to_vec();
            let key = p.id().0;
            let st = self.state.entry(key).or_insert_with(|| ParamState {
                master: p.value().to_vec(),
                m: vec![0.0; g.len()],
                v: vec![0.0; g.len()],
            });
            assert_eq!(st.master.len(), g.len(), "param/grad size mismatch");
            #[allow(clippy::needless_range_loop)] // four parallel arrays; zip obscures it
            for i in 0..g.len() {
                st.m[i] = b1 * st.m[i] + (1.0 - b1) * g[i];
                st.v[i] = b2 * st.v[i] + (1.0 - b2) * g[i] * g[i];
                let mhat = st.m[i] / bc1;
                let vhat = st.v[i] / bc2;
                st.master[i] -= lr
                    * (mhat / (vhat.sqrt() + self.config.eps)
                        + self.config.weight_decay * st.master[i]);
            }
            let master = &st.master;
            p.value().apply_inplace(|i, _| master[i]);
            p.zero_grad();
        }
    }

    /// Drop optimizer state for params no longer trained.
    pub fn reset_state(&mut self) {
        self.state.clear();
    }

    /// Snapshot the state of one parameter, if it has stepped before.
    pub fn export_param_state(&self, p: &Var) -> Option<ParamStateSnapshot> {
        self.state.get(&p.id().0).map(|st| ParamStateSnapshot {
            master: st.master.clone(),
            m: st.m.clone(),
            v: st.v.clone(),
        })
    }

    /// Install previously exported state for `p` (checkpoint resume). The
    /// next [`AdamW::step`] continues from these moments and master copy.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's length does not match the parameter.
    pub fn import_param_state(&mut self, p: &Var, s: ParamStateSnapshot) {
        let n = p.value().numel();
        assert_eq!(s.master.len(), n, "master size mismatch");
        assert_eq!(s.m.len(), n, "m size mismatch");
        assert_eq!(s.v.len(), n, "v size mismatch");
        self.state.insert(
            p.id().0,
            ParamState {
                master: s.master,
                m: s.m,
                v: s.v,
            },
        );
    }

    /// Overwrite the step counter (checkpoint resume — bias correction and
    /// schedules depend on it).
    pub fn set_steps(&mut self, steps: u64) {
        self.step_count = steps;
    }
}

/// Scale all gradients so their global L2 norm is at most `max_norm`.
///
/// Returns the pre-clip norm. Parameters without gradients are skipped.
pub fn clip_grad_norm(params: &[Var], max_norm: f32) -> f32 {
    let mut sq = 0.0f64;
    for p in params {
        if let Some(g) = p.grad() {
            sq += g
                .to_vec()
                .iter()
                .map(|&v| (v as f64) * (v as f64))
                .sum::<f64>();
        }
    }
    let norm = sq.sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            if let Some(g) = p.grad() {
                p.set_grad(Some(t_ops::mul_scalar(&g, scale)));
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_tensor::{runtime, DType, Device, Tensor};

    #[test]
    fn adamw_minimizes_quadratic() {
        runtime::reset();
        // minimize (x-3)^2 from x=0.
        let x = Var::param(Tensor::scalar(0.0, DType::F32, Device::Cpu));
        let mut opt = AdamW::new(AdamWConfig {
            lr: 0.1,
            ..AdamWConfig::default()
        });
        for _ in 0..200 {
            let loss = x.add_scalar(-3.0).square().sum_all();
            loss.backward();
            opt.step(std::slice::from_ref(&x));
        }
        assert!(
            (x.value().item() - 3.0).abs() < 0.05,
            "x={}",
            x.value().item()
        );
        assert_eq!(opt.steps(), 200);
    }

    #[test]
    fn step_clears_grads() {
        runtime::reset();
        let x = Var::param(Tensor::scalar(1.0, DType::F32, Device::Cpu));
        let mut opt = AdamW::new(AdamWConfig::default());
        x.square().sum_all().backward();
        assert!(x.grad().is_some());
        opt.step(std::slice::from_ref(&x));
        assert!(x.grad().is_none());
    }

    #[test]
    fn bf16_params_keep_f32_master_progress() {
        runtime::reset();
        // With a tiny lr, bf16 rounding alone would stall; the master copy
        // must keep accumulating so the param eventually moves.
        let x = Var::param(Tensor::scalar(1.0, DType::Bf16, Device::Cpu));
        let mut opt = AdamW::new(AdamWConfig {
            lr: 1e-4,
            ..AdamWConfig::default()
        });
        for _ in 0..100 {
            let loss = x.square().sum_all();
            loss.backward();
            opt.step(std::slice::from_ref(&x));
        }
        assert!(x.value().item() < 1.0, "param should have moved");
        // Value stays bf16-exact.
        assert_eq!(DType::Bf16.round(x.value().item()), x.value().item());
    }

    #[test]
    fn params_without_grads_are_skipped() {
        runtime::reset();
        let x = Var::param(Tensor::scalar(2.0, DType::F32, Device::Cpu));
        let mut opt = AdamW::new(AdamWConfig::default());
        opt.step(std::slice::from_ref(&x));
        assert_eq!(x.value().item(), 2.0);
    }

    #[test]
    fn clip_rescales_when_above_threshold() {
        runtime::reset();
        let x = Var::param(Tensor::from_vec(
            vec![3.0, 4.0],
            &[2],
            DType::F32,
            Device::Cpu,
        ));
        x.square().sum_all().backward(); // grad = [6, 8], norm 10
        let norm = clip_grad_norm(std::slice::from_ref(&x), 1.0);
        assert!((norm - 10.0).abs() < 1e-4);
        let g = x.grad().unwrap().to_vec();
        let new_norm = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((new_norm - 1.0).abs() < 1e-4);
    }

    #[test]
    fn clip_leaves_small_grads_alone() {
        runtime::reset();
        let x = Var::param(Tensor::from_vec(
            vec![0.01, 0.02],
            &[2],
            DType::F32,
            Device::Cpu,
        ));
        x.sum_all().backward(); // grad = [1, 1], norm sqrt2
        let norm = clip_grad_norm(std::slice::from_ref(&x), 10.0);
        assert!((norm - 2.0f32.sqrt()).abs() < 1e-5);
        assert_eq!(x.grad().unwrap().to_vec(), vec![1.0, 1.0]);
    }

    #[test]
    fn schedule_warmup_and_decay() {
        let s = LrSchedule::CosineWithWarmup {
            warmup: 10,
            total: 110,
            final_frac: 0.1,
        };
        assert!((s.factor(0) - 0.1).abs() < 1e-6);
        assert!((s.factor(9) - 1.0).abs() < 1e-6);
        assert!(s.factor(20) > s.factor(60));
        assert!((s.factor(109) - 0.1).abs() < 0.01);
        assert!((s.factor(10_000) - 0.1).abs() < 1e-6, "clamps past total");
        assert_eq!(LrSchedule::Constant.factor(12345), 1.0);
    }

    #[test]
    fn reset_state_reinitializes_master() {
        runtime::reset();
        let x = Var::param(Tensor::scalar(5.0, DType::F32, Device::Cpu));
        let mut opt = AdamW::new(AdamWConfig {
            lr: 0.5,
            ..AdamWConfig::default()
        });
        x.square().sum_all().backward();
        opt.step(std::slice::from_ref(&x));
        opt.reset_state();
        // After reset the master snapshots the *current* value; stepping with
        // a zero-ish grad keeps it there.
        x.mul_scalar(0.0).sum_all().backward();
        let before = x.value().item();
        opt.step(std::slice::from_ref(&x));
        assert!((x.value().item() - before).abs() < 1e-6);
    }
}
