//! Training checkpoints: capture and restore model parameters plus AdamW
//! state so a fine-tune can resume *bit-exactly* after an interruption —
//! table stakes for the multi-day LLM runs the paper's recipe implies.
//!
//! The serialized format is a self-describing little-endian binary:
//! magic, version, optimizer step, loss history, then per-parameter values
//! and optimizer snapshots keyed by parameter name. Decoding validates the
//! magic, version, and every length field against the remaining buffer, so
//! corrupt checkpoints are rejected rather than misread.

use crate::optim::ParamStateSnapshot;
use crate::{LlamaModel, Trainer};
use std::fmt;

const MAGIC: &[u8; 8] = b"EDKMCKPT";
const VERSION: u32 = 1;

/// Error decoding a serialized checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Buffer ended before a declared field.
    Truncated,
    /// A string field was not valid UTF-8.
    BadString,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not an eDKM checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadString => write!(f, "invalid UTF-8 in checkpoint"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A resumable snapshot of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// Optimizer steps taken.
    pub step: u64,
    /// Per-step loss history.
    pub losses: Vec<f32>,
    /// Parameter values by name: `(name, shape, values)`.
    pub params: Vec<(String, Vec<usize>, Vec<f32>)>,
    /// Optimizer state by parameter name (absent for params that never
    /// received a gradient).
    pub optim: Vec<(String, ParamStateSnapshot)>,
}

impl TrainCheckpoint {
    /// Capture the current state of `model` and `trainer`.
    pub fn capture(model: &LlamaModel, trainer: &Trainer) -> Self {
        let mut params = Vec::new();
        let mut optim = Vec::new();
        for (name, var) in model.named_params() {
            params.push((
                name.clone(),
                var.value().shape().to_vec(),
                var.value().to_vec(),
            ));
            if let Some(s) = trainer.optimizer().export_param_state(&var) {
                optim.push((name, s));
            }
        }
        TrainCheckpoint {
            step: trainer.optimizer().steps(),
            losses: trainer.losses().to_vec(),
            params,
            optim,
        }
    }

    /// Restore this checkpoint into `model` and `trainer`. After restoring,
    /// continued training reproduces the original run bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if a checkpointed parameter is missing from the model or has
    /// a different size.
    pub fn restore(&self, model: &LlamaModel, trainer: &mut Trainer) {
        let named = model.named_params();
        for (name, shape, values) in &self.params {
            let (_, var) = named
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("model has no parameter named {name}"));
            assert_eq!(
                var.value().shape(),
                &shape[..],
                "shape mismatch restoring {name}"
            );
            var.value().apply_inplace(|i, _| values[i]);
        }
        for (name, snapshot) in &self.optim {
            let (_, var) = named
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("model has no parameter named {name}"));
            trainer
                .optimizer_mut()
                .import_param_state(var, snapshot.clone());
        }
        trainer.optimizer_mut().set_steps(self.step);
        trainer.set_losses(self.losses.clone());
    }

    /// Serialize to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.bytes(MAGIC);
        w.u32(VERSION);
        w.u64(self.step);
        w.f32s(&self.losses);
        w.u64(self.params.len() as u64);
        for (name, shape, values) in &self.params {
            w.string(name);
            w.u64(shape.len() as u64);
            for &d in shape {
                w.u64(d as u64);
            }
            w.f32s(values);
        }
        w.u64(self.optim.len() as u64);
        for (name, s) in &self.optim {
            w.string(name);
            w.f32s(&s.master);
            w.f32s(&s.m);
            w.f32s(&s.v);
        }
        w.out
    }

    /// Deserialize from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] for wrong magic/version or a truncated
    /// or corrupt buffer.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader { buf: bytes, at: 0 };
        if r.take(8)? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let step = r.u64()?;
        let losses = r.f32s()?;
        let n_params = r.u64()? as usize;
        let mut params = Vec::with_capacity(n_params.min(4096));
        for _ in 0..n_params {
            let name = r.string()?;
            let rank = r.u64()? as usize;
            let mut shape = Vec::with_capacity(rank.min(16));
            for _ in 0..rank {
                shape.push(r.u64()? as usize);
            }
            let values = r.f32s()?;
            params.push((name, shape, values));
        }
        let n_optim = r.u64()? as usize;
        let mut optim = Vec::with_capacity(n_optim.min(4096));
        for _ in 0..n_optim {
            let name = r.string()?;
            let master = r.f32s()?;
            let m = r.f32s()?;
            let v = r.f32s()?;
            optim.push((name, ParamStateSnapshot { master, m, v }));
        }
        Ok(TrainCheckpoint {
            step,
            losses,
            params,
            optim,
        })
    }
}

#[derive(Default)]
struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn bytes(&mut self, b: &[u8]) {
        self.out.extend_from_slice(b);
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn string(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }
    fn f32s(&mut self, vals: &[f32]) {
        self.u64(vals.len() as u64);
        for &v in vals {
            self.out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.at + n > self.buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn string(&mut self) -> Result<String, CheckpointError> {
        let n = self.u64()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| CheckpointError::BadString)
    }
    fn f32s(&mut self) -> Result<Vec<f32>, CheckpointError> {
        let n = self.u64()? as usize;
        let b = self.take(n.checked_mul(4).ok_or(CheckpointError::Truncated)?)?;
        Ok(b.chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdamWConfig, LlamaConfig, LmBatch, TrainConfig};
    use edkm_tensor::{runtime, DType, Device};

    fn setup() -> (LlamaModel, Trainer, LmBatch) {
        let model = LlamaModel::new(LlamaConfig::tiny(), DType::Bf16, Device::Cpu, 0);
        let trainer = Trainer::new(TrainConfig {
            optim: AdamWConfig {
                lr: 2e-3,
                ..AdamWConfig::default()
            },
            ..TrainConfig::default()
        });
        let batch = LmBatch::new(vec![vec![1, 2, 3, 4, 1, 2], vec![3, 4, 1, 2, 3, 4]]);
        (model, trainer, batch)
    }

    fn all_values(model: &LlamaModel) -> Vec<Vec<f32>> {
        model
            .named_params()
            .into_iter()
            .map(|(_, v)| v.value().to_vec())
            .collect()
    }

    #[test]
    fn capture_restores_values_and_step() {
        runtime::reset();
        let (model, mut trainer, batch) = setup();
        let params = model.params();
        for _ in 0..5 {
            trainer.step(&model, &batch, &params, None);
        }
        let ckpt = TrainCheckpoint::capture(&model, &trainer);
        assert_eq!(ckpt.step, 5);
        assert_eq!(ckpt.losses.len(), 5);
        assert_eq!(ckpt.params.len(), model.named_params().len());
        assert!(!ckpt.optim.is_empty());

        // Wreck the model, restore, verify bit-exact values.
        let reference = all_values(&model);
        for (_, v) in model.named_params() {
            v.value().apply_inplace(|_, _| 0.123);
        }
        let mut trainer2 = Trainer::new(TrainConfig::default());
        ckpt.restore(&model, &mut trainer2);
        assert_eq!(all_values(&model), reference);
        assert_eq!(trainer2.optimizer().steps(), 5);
        assert_eq!(trainer2.losses().len(), 5);
    }

    #[test]
    fn resume_is_bit_exact() {
        runtime::reset();
        // Continuous run: 6 steps.
        let (model_a, mut trainer_a, batch) = setup();
        let params_a = model_a.params();
        for _ in 0..6 {
            trainer_a.step(&model_a, &batch, &params_a, None);
        }

        // Interrupted run: 3 steps, checkpoint (through bytes), restore
        // into a *fresh* model+trainer, 3 more steps.
        runtime::reset();
        let (model_b, mut trainer_b, batch_b) = setup();
        let params_b = model_b.params();
        for _ in 0..3 {
            trainer_b.step(&model_b, &batch_b, &params_b, None);
        }
        let bytes = TrainCheckpoint::capture(&model_b, &trainer_b).to_bytes();
        let ckpt = TrainCheckpoint::from_bytes(&bytes).unwrap();

        runtime::reset();
        let (model_c, mut trainer_c, batch_c) = setup();
        ckpt.restore(&model_c, &mut trainer_c);
        let params_c = model_c.params();
        for _ in 0..3 {
            trainer_c.step(&model_c, &batch_c, &params_c, None);
        }

        assert_eq!(
            all_values(&model_a),
            all_values(&model_c),
            "resumed run must match the continuous run bit for bit"
        );
        assert_eq!(trainer_a.losses()[3..], trainer_c.losses()[3..]);
    }

    #[test]
    fn roundtrip_through_bytes_is_identity() {
        runtime::reset();
        let (model, mut trainer, batch) = setup();
        let params = model.params();
        trainer.step(&model, &batch, &params, None);
        let ckpt = TrainCheckpoint::capture(&model, &trainer);
        let back = TrainCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn corrupt_checkpoints_are_rejected() {
        runtime::reset();
        let (model, trainer, _) = setup();
        let bytes = TrainCheckpoint::capture(&model, &trainer).to_bytes();

        assert_eq!(
            TrainCheckpoint::from_bytes(b"NOTCKPT!rest"),
            Err(CheckpointError::BadMagic)
        );
        let mut wrong_version = bytes.clone();
        wrong_version[8] = 99;
        assert_eq!(
            TrainCheckpoint::from_bytes(&wrong_version),
            Err(CheckpointError::BadVersion(99))
        );
        assert_eq!(
            TrainCheckpoint::from_bytes(&bytes[..bytes.len() / 2]),
            Err(CheckpointError::Truncated)
        );
        assert_eq!(
            TrainCheckpoint::from_bytes(&[]),
            Err(CheckpointError::Truncated)
        );
    }

    #[test]
    #[should_panic(expected = "no parameter named")]
    fn restore_rejects_foreign_params() {
        runtime::reset();
        let (model, trainer, _) = setup();
        let mut ckpt = TrainCheckpoint::capture(&model, &trainer);
        ckpt.params[0].0 = "not.a.param".into();
        let mut t2 = Trainer::new(TrainConfig::default());
        ckpt.restore(&model, &mut t2);
    }

    #[test]
    fn gradient_accumulation_matches_concatenated_batch() {
        runtime::reset();
        // Two micro-batches vs their concatenation: same single update.
        let micro1 = LmBatch::new(vec![vec![1, 2, 3, 4, 1, 2]]);
        let micro2 = LmBatch::new(vec![vec![3, 4, 1, 2, 3, 4]]);
        let full = LmBatch::new(vec![vec![1, 2, 3, 4, 1, 2], vec![3, 4, 1, 2, 3, 4]]);

        let run = |accumulate: bool| -> Vec<Vec<f32>> {
            runtime::reset();
            let (model, mut trainer, _) = setup();
            let params = model.params();
            for _ in 0..3 {
                if accumulate {
                    trainer.step_accumulated(
                        &model,
                        &[micro1.clone(), micro2.clone()],
                        &params,
                        None,
                    );
                } else {
                    trainer.step(&model, &full, &params, None);
                }
            }
            all_values(&model)
        };
        let (acc, full_run) = (run(true), run(false));
        for (a, b) in acc.iter().zip(&full_run) {
            for (x, y) in a.iter().zip(b) {
                assert!(
                    (x - y).abs() <= 1e-4 * x.abs().max(1e-3),
                    "accumulated {x} vs full-batch {y}"
                );
            }
        }
    }

    #[test]
    fn accumulated_loss_is_mean_of_microbatches() {
        runtime::reset();
        let (model, mut trainer, batch) = setup();
        let params = model.params();
        let mean = trainer.step_accumulated(&model, &[batch.clone(), batch.clone()], &params, None);
        assert!(mean.is_finite());
        assert_eq!(trainer.losses().len(), 1, "one entry per optimizer step");
    }
}
