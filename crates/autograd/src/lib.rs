//! # edkm-autograd
//!
//! Dynamic-tape reverse-mode automatic differentiation over
//! [`edkm_tensor::Tensor`], with a faithful reimplementation of PyTorch's
//! `torch.autograd.graph.saved_tensors_hooks` mechanism — the interception
//! point the eDKM paper builds its entire memory optimization on (its
//! reference \[2\] *is* the saved-tensors-hooks documentation).
//!
//! Every differentiable op stores the tensors its backward pass needs through
//! [`hooks::save_tensor`]. When a [`hooks::SavedTensorHooks`] object is
//! installed (see [`hooks::push_hooks`]), each saved tensor is `pack`ed at
//! forward time and `unpack`ed at backward time. eDKM's marshaling /
//! uniquification / sharding (in `edkm-core`) are implemented purely as such
//! hooks, exactly like the paper's PyTorch implementation.
//!
//! ## Example: a gradient through a matmul
//!
//! ```
//! use edkm_autograd::Var;
//! use edkm_tensor::{DType, Device, Tensor};
//!
//! let x = Var::param(Tensor::from_vec(vec![1.0, 2.0], &[1, 2], DType::F32, Device::Cpu));
//! let w = Var::param(Tensor::from_vec(vec![0.5, -0.5], &[2, 1], DType::F32, Device::Cpu));
//! let y = x.matmul(&w).sum_all();
//! y.backward();
//! assert_eq!(w.grad().unwrap().to_vec(), vec![1.0, 2.0]);
//! ```

pub mod gradcheck;
pub mod hooks;
pub mod ops;
pub mod var;

pub use gradcheck::{check_gradients, numeric_gradient};
pub use hooks::{
    pop_hooks, push_hooks, save_tensor, HooksGuard, PackedTensor, SavedTensor, SavedTensorHooks,
};
pub use var::{grad_enabled, no_grad, BackwardFn, NoGradGuard, Var, VarId};
