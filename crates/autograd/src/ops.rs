//! Differentiable operations on [`Var`] with hand-written VJPs.
//!
//! Every op that needs tensors at backward time stores them through
//! [`crate::hooks::save_tensor`], so installed saved-tensor hooks (the eDKM
//! mechanism) see exactly the set of tensors PyTorch would save.

use crate::hooks::save_tensor;
use crate::var::Var;
use edkm_tensor::layout::Layout;
use edkm_tensor::{ops as t, DType, Tensor};

/// Sum `g` down to `target` shape (the adjoint of broadcasting).
fn reduce_to_shape(g: &Tensor, target: &[usize]) -> Tensor {
    if g.shape() == target {
        return g.clone();
    }
    let mut cur = g.clone();
    while cur.rank() > target.len() {
        cur = t::sum_axis(&cur, 0);
    }
    for (i, &t_dim) in target.iter().enumerate() {
        if t_dim == 1 && cur.shape()[i] != 1 {
            cur = t::sum_axis(&cur, i);
            let mut s = cur.shape().to_vec();
            s.insert(i, 1);
            cur = cur.reshape(&s);
        }
    }
    cur
}

/// Sum over the last axis, keeping it as size 1.
fn sum_lastdim_keepdim(x: &Tensor) -> Tensor {
    let axis = x.rank() - 1;
    let s = t::sum_axis(x, axis);
    let mut shape = s.shape().to_vec();
    shape.push(1);
    s.reshape(&shape)
}

fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)

fn gelu_fwd(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + 0.044715 * x * x * x)).tanh())
}

fn gelu_bwd(x: f32) -> f32 {
    let inner = GELU_C * (x + 0.044715 * x * x * x);
    let th = inner.tanh();
    let sech2 = 1.0 - th * th;
    0.5 * (1.0 + th) + 0.5 * x * sech2 * GELU_C * (1.0 + 3.0 * 0.044715 * x * x)
}

impl Var {
    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// Element-wise sum with broadcasting.
    pub fn add(&self, other: &Var) -> Var {
        let (sa, sb) = (
            self.value().shape().to_vec(),
            other.value().shape().to_vec(),
        );
        let value = t::add(self.value(), other.value());
        Var::from_op(
            value,
            "add",
            vec![self.clone(), other.clone()],
            vec![],
            Box::new(move |g, _| {
                vec![Some(reduce_to_shape(g, &sa)), Some(reduce_to_shape(g, &sb))]
            }),
        )
    }

    /// Element-wise difference with broadcasting.
    pub fn sub(&self, other: &Var) -> Var {
        let (sa, sb) = (
            self.value().shape().to_vec(),
            other.value().shape().to_vec(),
        );
        let value = t::sub(self.value(), other.value());
        Var::from_op(
            value,
            "sub",
            vec![self.clone(), other.clone()],
            vec![],
            Box::new(move |g, _| {
                let db = reduce_to_shape(g, &sb).map(|v| -v);
                vec![Some(reduce_to_shape(g, &sa)), Some(db)]
            }),
        )
    }

    /// Element-wise product with broadcasting.
    pub fn mul(&self, other: &Var) -> Var {
        let (sa, sb) = (
            self.value().shape().to_vec(),
            other.value().shape().to_vec(),
        );
        let value = t::mul(self.value(), other.value());
        let saved = vec![save_tensor(self.value()), save_tensor(other.value())];
        Var::from_op(
            value,
            "mul",
            vec![self.clone(), other.clone()],
            saved,
            Box::new(move |g, s| {
                let da = reduce_to_shape(&t::mul(g, &s[1]), &sa);
                let db = reduce_to_shape(&t::mul(g, &s[0]), &sb);
                vec![Some(da), Some(db)]
            }),
        )
    }

    /// Element-wise quotient with broadcasting.
    pub fn div(&self, other: &Var) -> Var {
        let (sa, sb) = (
            self.value().shape().to_vec(),
            other.value().shape().to_vec(),
        );
        let value = t::div(self.value(), other.value());
        let saved = vec![save_tensor(self.value()), save_tensor(other.value())];
        Var::from_op(
            value,
            "div",
            vec![self.clone(), other.clone()],
            saved,
            Box::new(move |g, s| {
                let da = reduce_to_shape(&t::div(g, &s[1]), &sa);
                // db = -g*a/b^2
                let b2 = t::mul(&s[1], &s[1]);
                let db = reduce_to_shape(&t::div(&t::mul(g, &s[0]), &b2).map(|v| -v), &sb);
                vec![Some(da), Some(db)]
            }),
        )
    }

    /// Negation.
    pub fn neg(&self) -> Var {
        let value = self.value().map(|v| -v);
        Var::from_op(
            value,
            "neg",
            vec![self.clone()],
            vec![],
            Box::new(|g, _| vec![Some(g.map(|v| -v))]),
        )
    }

    /// Add a scalar constant.
    pub fn add_scalar(&self, c: f32) -> Var {
        let value = t::add_scalar(self.value(), c);
        Var::from_op(
            value,
            "add_scalar",
            vec![self.clone()],
            vec![],
            Box::new(|g, _| vec![Some(g.clone())]),
        )
    }

    /// Multiply by a scalar constant.
    pub fn mul_scalar(&self, c: f32) -> Var {
        let value = t::mul_scalar(self.value(), c);
        Var::from_op(
            value,
            "mul_scalar",
            vec![self.clone()],
            vec![],
            Box::new(move |g, _| vec![Some(t::mul_scalar(g, c))]),
        )
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// 2-D matrix product.
    ///
    /// Saves both operands for backward (the saves eDKM intercepts).
    pub fn matmul(&self, other: &Var) -> Var {
        let value = t::matmul(self.value(), other.value());
        let saved = vec![save_tensor(self.value()), save_tensor(other.value())];
        Var::from_op(
            value,
            "matmul",
            vec![self.clone(), other.clone()],
            saved,
            Box::new(|g, s| {
                let da = t::matmul(g, &s[1].t());
                let db = t::matmul(&s[0].t(), g);
                vec![Some(da), Some(db)]
            }),
        )
    }

    /// Batched 3-D matrix product.
    pub fn bmm(&self, other: &Var) -> Var {
        let value = t::bmm(self.value(), other.value());
        let saved = vec![save_tensor(self.value()), save_tensor(other.value())];
        Var::from_op(
            value,
            "bmm",
            vec![self.clone(), other.clone()],
            saved,
            Box::new(|g, s| {
                let da = t::bmm(g, &s[1].transpose(1, 2));
                let db = t::bmm(&s[0].transpose(1, 2), g);
                vec![Some(da), Some(db)]
            }),
        )
    }

    // ------------------------------------------------------------------
    // Shape ops (these are also storage-invariant at the tensor level)
    // ------------------------------------------------------------------

    /// Reshape (view when contiguous).
    pub fn reshape(&self, shape: &[usize]) -> Var {
        let in_shape = self.value().shape().to_vec();
        let value = self.value().reshape(shape);
        Var::from_op(
            value,
            "reshape",
            vec![self.clone()],
            vec![],
            Box::new(move |g, _| vec![Some(g.reshape(&in_shape))]),
        )
    }

    /// Swap two axes.
    pub fn transpose(&self, d0: usize, d1: usize) -> Var {
        let value = self.value().transpose(d0, d1);
        Var::from_op(
            value,
            "transpose",
            vec![self.clone()],
            vec![],
            Box::new(move |g, _| vec![Some(g.transpose(d0, d1))]),
        )
    }

    /// 2-D matrix transpose.
    pub fn t(&self) -> Var {
        self.transpose(0, 1)
    }

    /// Slice along one axis.
    pub fn slice(&self, dim: usize, start: usize, len: usize) -> Var {
        let in_shape = self.value().shape().to_vec();
        let value = self.value().slice(dim, start, len);
        Var::from_op(
            value,
            "slice",
            vec![self.clone()],
            vec![],
            Box::new(move |g, _| {
                let numel: usize = in_shape.iter().product();
                let mut out = vec![0.0f32; numel];
                let sl = Layout::contiguous(&in_shape).slice(dim, start, len);
                let gd = g.to_vec();
                for (o, v) in sl.iter_offsets().zip(gd) {
                    out[o] = v;
                }
                vec![Some(Tensor::from_vec(
                    out,
                    &in_shape,
                    DType::F32,
                    g.device(),
                ))]
            }),
        )
    }

    // ------------------------------------------------------------------
    // Nonlinearities
    // ------------------------------------------------------------------

    /// Softmax over the last axis (saves its output, like PyTorch).
    pub fn softmax_lastdim(&self) -> Var {
        let value = t::softmax_lastdim(self.value());
        let saved = vec![save_tensor(&value)];
        Var::from_op(
            value,
            "softmax",
            vec![self.clone()],
            saved,
            Box::new(|g, s| {
                let gs = t::mul(g, &s[0]);
                let row = sum_lastdim_keepdim(&gs);
                let dx = t::mul(&s[0], &t::sub(g, &row));
                vec![Some(dx)]
            }),
        )
    }

    /// Log-softmax over the last axis (saves its output).
    pub fn log_softmax_lastdim(&self) -> Var {
        let value = t::log_softmax_lastdim(self.value());
        let saved = vec![save_tensor(&value)];
        Var::from_op(
            value,
            "log_softmax",
            vec![self.clone()],
            saved,
            Box::new(|g, s| {
                let row = sum_lastdim_keepdim(g);
                let p = s[0].map(f32::exp);
                let dx = t::sub(g, &t::mul(&p, &row));
                vec![Some(dx)]
            }),
        )
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        let value = self.value().map(|v| v.max(0.0));
        let saved = vec![save_tensor(self.value())];
        Var::from_op(
            value,
            "relu",
            vec![self.clone()],
            saved,
            Box::new(|g, s| {
                vec![Some(t::binary_op(g, &s[0], |gv, xv| {
                    if xv > 0.0 {
                        gv
                    } else {
                        0.0
                    }
                }))]
            }),
        )
    }

    /// SiLU / swish: `x · σ(x)` (the LLaMA MLP activation).
    pub fn silu(&self) -> Var {
        let value = self.value().map(|v| v * sigmoid(v));
        let saved = vec![save_tensor(self.value())];
        Var::from_op(
            value,
            "silu",
            vec![self.clone()],
            saved,
            Box::new(|g, s| {
                let dx = t::binary_op(g, &s[0], |gv, xv| {
                    let sg = sigmoid(xv);
                    gv * (sg * (1.0 + xv * (1.0 - sg)))
                });
                vec![Some(dx)]
            }),
        )
    }

    /// GELU (tanh approximation).
    pub fn gelu(&self) -> Var {
        let value = self.value().map(gelu_fwd);
        let saved = vec![save_tensor(self.value())];
        Var::from_op(
            value,
            "gelu",
            vec![self.clone()],
            saved,
            Box::new(|g, s| vec![Some(t::binary_op(g, &s[0], |gv, xv| gv * gelu_bwd(xv)))]),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh_act(&self) -> Var {
        let value = self.value().map(f32::tanh);
        let saved = vec![save_tensor(&value)];
        Var::from_op(
            value,
            "tanh",
            vec![self.clone()],
            saved,
            Box::new(|g, s| vec![Some(t::binary_op(g, &s[0], |gv, yv| gv * (1.0 - yv * yv)))]),
        )
    }

    /// Element-wise exponential.
    pub fn exp(&self) -> Var {
        let value = self.value().map(f32::exp);
        let saved = vec![save_tensor(&value)];
        Var::from_op(
            value,
            "exp",
            vec![self.clone()],
            saved,
            Box::new(|g, s| vec![Some(t::mul(g, &s[0]))]),
        )
    }

    /// Element-wise natural logarithm.
    pub fn ln(&self) -> Var {
        let value = self.value().map(f32::ln);
        let saved = vec![save_tensor(self.value())];
        Var::from_op(
            value,
            "ln",
            vec![self.clone()],
            saved,
            Box::new(|g, s| vec![Some(t::div(g, &s[0]))]),
        )
    }

    /// Element-wise square root.
    pub fn sqrt_elem(&self) -> Var {
        let value = self.value().map(f32::sqrt);
        let saved = vec![save_tensor(&value)];
        Var::from_op(
            value,
            "sqrt",
            vec![self.clone()],
            saved,
            Box::new(|g, s| vec![Some(t::binary_op(g, &s[0], |gv, yv| gv / (2.0 * yv)))]),
        )
    }

    /// Element-wise square.
    pub fn square(&self) -> Var {
        let value = self.value().map(|v| v * v);
        let saved = vec![save_tensor(self.value())];
        Var::from_op(
            value,
            "square",
            vec![self.clone()],
            saved,
            Box::new(|g, s| vec![Some(t::binary_op(g, &s[0], |gv, xv| 2.0 * xv * gv))]),
        )
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements (rank-0 result).
    pub fn sum_all(&self) -> Var {
        let in_shape = self.value().shape().to_vec();
        let value = t::sum_all(self.value());
        Var::from_op(
            value,
            "sum_all",
            vec![self.clone()],
            vec![],
            Box::new(move |g, _| {
                vec![Some(Tensor::full(
                    g.item(),
                    &in_shape,
                    DType::F32,
                    g.device(),
                ))]
            }),
        )
    }

    /// Mean of all elements (rank-0 result).
    pub fn mean_all(&self) -> Var {
        let in_shape = self.value().shape().to_vec();
        let n = self.value().numel().max(1) as f32;
        let value = t::mean_all(self.value());
        Var::from_op(
            value,
            "mean_all",
            vec![self.clone()],
            vec![],
            Box::new(move |g, _| {
                vec![Some(Tensor::full(
                    g.item() / n,
                    &in_shape,
                    DType::F32,
                    g.device(),
                ))]
            }),
        )
    }

    /// Sum over one axis (removed from the shape).
    pub fn sum_axis(&self, axis: usize) -> Var {
        let in_shape = self.value().shape().to_vec();
        let value = t::sum_axis(self.value(), axis);
        Var::from_op(
            value,
            "sum_axis",
            vec![self.clone()],
            vec![],
            Box::new(move |g, _| {
                let mut keep = g.shape().to_vec();
                keep.insert(axis, 1);
                let expanded = g.reshape(&keep).broadcast_to(&in_shape).contiguous();
                vec![Some(expanded)]
            }),
        )
    }

    // ------------------------------------------------------------------
    // Fused / structured ops
    // ------------------------------------------------------------------

    /// RMS normalization over the last axis with a learned gain:
    /// `y = x / rms(x) ⊙ w`, `rms(x) = sqrt(mean(x²) + eps)`.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not 1-D of the same size as the last axis.
    pub fn rmsnorm(&self, weight: &Var, eps: f32) -> Var {
        let d = *self.value().shape().last().expect("rmsnorm needs rank>=1");
        assert_eq!(weight.value().shape(), &[d], "rmsnorm weight must be [d]");
        let x = self.value().to_vec();
        let w = weight.value().to_vec();
        let mut out = vec![0.0f32; x.len()];
        for (row, orow) in x.chunks(d).zip(out.chunks_mut(d)) {
            let ms = row.iter().map(|v| v * v).sum::<f32>() / d as f32;
            let r = 1.0 / (ms + eps).sqrt();
            for ((o, &xv), &wv) in orow.iter_mut().zip(row).zip(&w) {
                *o = xv * r * wv;
            }
        }
        edkm_tensor::runtime::record_compute(4.0 * x.len() as f64, self.value().device());
        let value = Tensor::from_vec(out, self.value().shape(), DType::F32, self.value().device());
        let saved = vec![save_tensor(self.value()), save_tensor(weight.value())];
        Var::from_op(
            value,
            "rmsnorm",
            vec![self.clone(), weight.clone()],
            saved,
            Box::new(move |g, s| {
                let x = s[0].to_vec();
                let w = s[1].to_vec();
                let gd = g.to_vec();
                let mut dx = vec![0.0f32; x.len()];
                let mut dw = vec![0.0f32; d];
                for (ri, (row, grow)) in x.chunks(d).zip(gd.chunks(d)).enumerate() {
                    let ms = row.iter().map(|v| v * v).sum::<f32>() / d as f32;
                    let r = 1.0 / (ms + eps).sqrt();
                    // dot = Σ_i g_i w_i x_i
                    let mut dot = 0.0f32;
                    for ((&gv, &wv), &xv) in grow.iter().zip(&w).zip(row) {
                        dot += gv * wv * xv;
                        // accumulate dW: x*r*g
                    }
                    let r3 = r * r * r;
                    let base = ri * d;
                    for i in 0..d {
                        dx[base + i] = grow[i] * w[i] * r - row[i] * r3 / d as f32 * dot;
                        dw[i] += row[i] * r * grow[i];
                    }
                }
                let dxt = Tensor::from_vec(dx, s[0].shape(), DType::F32, g.device());
                let dwt = Tensor::from_vec(dw, &[d], DType::F32, g.device());
                vec![Some(dxt), Some(dwt)]
            }),
        )
    }

    /// Embedding lookup: `self` is the `[vocab, d]` table, `ids` select rows.
    pub fn embedding(&self, ids: &[usize]) -> Var {
        assert_eq!(self.value().rank(), 2, "embedding table must be 2-D");
        let v = self.value().shape()[0];
        let ids_owned: Vec<usize> = ids.to_vec();
        let value = t::gather_rows(self.value(), ids);
        Var::from_op(
            value,
            "embedding",
            vec![self.clone()],
            vec![],
            Box::new(move |g, _| vec![Some(t::scatter_add_rows(g, &ids_owned, v))]),
        )
    }

    /// Mean cross-entropy of `[n, v]` logits against target class ids.
    ///
    /// Saves the softmax probabilities (the dominant activation save in LLM
    /// training).
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the number of rows.
    pub fn cross_entropy(&self, targets: &[usize]) -> Var {
        assert_eq!(
            self.value().rank(),
            2,
            "cross_entropy expects [n, v] logits"
        );
        let (n, v) = (self.value().shape()[0], self.value().shape()[1]);
        assert_eq!(targets.len(), n, "cross_entropy target count mismatch");
        let probs = t::softmax_lastdim(self.value());
        let pd = probs.to_vec();
        let mut loss = 0.0f64;
        for (i, &tg) in targets.iter().enumerate() {
            assert!(tg < v, "target {tg} out of vocab {v}");
            loss -= (pd[i * v + tg].max(1e-30) as f64).ln();
        }
        let loss = (loss / n as f64) as f32;
        let value = Tensor::scalar(loss, DType::F32, self.value().device());
        let targets_owned: Vec<usize> = targets.to_vec();
        let saved = vec![save_tensor(&probs)];
        Var::from_op(
            value,
            "cross_entropy",
            vec![self.clone()],
            saved,
            Box::new(move |g, s| {
                let scale = g.item() / n as f32;
                let mut dl = s[0].to_vec();
                for (i, &tg) in targets_owned.iter().enumerate() {
                    dl[i * v + tg] -= 1.0;
                }
                for x in &mut dl {
                    *x *= scale;
                }
                vec![Some(Tensor::from_vec(dl, &[n, v], DType::F32, g.device()))]
            }),
        )
    }

    /// Negative squared distances `[n,k]` between `self` (`[n,d]` weights)
    /// and `centroids` (`[k,d]`): the DKM attention-map logits.
    pub fn neg_sqdist(&self, centroids: &Var) -> Var {
        let value = t::neg_sqdist(self.value(), centroids.value());
        let saved = vec![save_tensor(self.value()), save_tensor(centroids.value())];
        Var::from_op(
            value,
            "neg_sqdist",
            vec![self.clone(), centroids.clone()],
            saved,
            Box::new(|g, s| {
                let (w, c) = (&s[0], &s[1]);
                // dW = -2 (rowsum(g) ⊙ w − g @ C)
                let rows = sum_lastdim_keepdim(g); // [n,1]
                let dw = t::mul_scalar(&t::sub(&t::mul(&rows, w), &t::matmul(g, c)), -2.0);
                // dC = 2 (gᵀ @ W − colsum(g) ⊙ c)
                let cols = t::sum_axis(g, 0); // [k]
                let colk = cols.reshape(&[cols.numel(), 1]); // [k,1]
                let dc = t::mul_scalar(&t::sub(&t::matmul(&g.t(), w), &t::mul(&colk, c)), 2.0);
                vec![Some(dw), Some(dc)]
            }),
        )
    }

    /// Straight-through estimator: forward takes the value of `hard`,
    /// backward passes the gradient to `self` unchanged.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn straight_through(&self, hard: Tensor) -> Var {
        assert_eq!(
            self.value().shape(),
            hard.shape(),
            "straight_through shape mismatch"
        );
        Var::from_op(
            hard,
            "straight_through",
            vec![self.clone()],
            vec![],
            Box::new(|g, _| vec![Some(g.clone())]),
        )
    }
}

// ---------------------------------------------------------------------
// Operator overloads (C-OVERLOAD: straightforward element-wise semantics).
// ---------------------------------------------------------------------

impl std::ops::Add for &Var {
    type Output = Var;
    fn add(self, rhs: &Var) -> Var {
        Var::add(self, rhs)
    }
}

impl std::ops::Sub for &Var {
    type Output = Var;
    fn sub(self, rhs: &Var) -> Var {
        Var::sub(self, rhs)
    }
}

impl std::ops::Mul for &Var {
    type Output = Var;
    fn mul(self, rhs: &Var) -> Var {
        Var::mul(self, rhs)
    }
}

impl std::ops::Div for &Var {
    type Output = Var;
    fn div(self, rhs: &Var) -> Var {
        Var::div(self, rhs)
    }
}

impl std::ops::Neg for &Var {
    type Output = Var;
    fn neg(self) -> Var {
        Var::neg(self)
    }
}

impl std::ops::Mul<f32> for &Var {
    type Output = Var;
    fn mul(self, rhs: f32) -> Var {
        self.mul_scalar(rhs)
    }
}

impl std::ops::Add<f32> for &Var {
    type Output = Var;
    fn add(self, rhs: f32) -> Var {
        self.add_scalar(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_gradients;
    use edkm_tensor::{runtime, Device};
    use proptest::prelude::*;

    fn v(data: Vec<f32>, shape: &[usize]) -> Var {
        Var::param(Tensor::from_vec(data, shape, DType::F32, Device::Cpu))
    }

    fn randn(shape: &[usize], seed: u64) -> Tensor {
        Tensor::randn(shape, DType::F32, Device::Cpu, seed)
    }

    // ---------- value tests ----------

    #[test]
    fn add_broadcast_values_and_grads() {
        runtime::reset();
        let a = v(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = v(vec![10.0, 20.0, 30.0], &[3]);
        let y = a.add(&b).sum_all();
        y.backward();
        assert_eq!(a.grad().unwrap().to_vec(), vec![1.0; 6]);
        assert_eq!(
            b.grad().unwrap().to_vec(),
            vec![2.0; 3],
            "broadcast grad must reduce"
        );
    }

    #[test]
    fn matmul_grads_known() {
        runtime::reset();
        let a = v(vec![1.0, 2.0], &[1, 2]);
        let b = v(vec![3.0, 4.0], &[2, 1]);
        let y = a.matmul(&b).sum_all();
        assert_eq!(y.value().item(), 11.0);
        y.backward();
        assert_eq!(a.grad().unwrap().to_vec(), vec![3.0, 4.0]);
        assert_eq!(b.grad().unwrap().to_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn softmax_grad_sums_to_zero() {
        runtime::reset();
        let x = v(vec![0.5, -0.5, 2.0], &[1, 3]);
        // Pick one output as loss: grad wrt logits must sum to 0.
        let y = x.softmax_lastdim().slice(1, 0, 1).sum_all();
        y.backward();
        let g = x.grad().unwrap().to_vec();
        assert!((g.iter().sum::<f32>()).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_matches_manual() {
        runtime::reset();
        let x = v(vec![2.0, 0.0, 0.0, 2.0], &[2, 2]);
        let loss = x.cross_entropy(&[0, 1]);
        // Both rows: -ln(e^2/(e^2+1))
        let expect = -(2.0f32.exp() / (2.0f32.exp() + 1.0)).ln();
        assert!((loss.value().item() - expect).abs() < 1e-5);
        loss.backward();
        let g = x.grad().unwrap().to_vec();
        // Each row sums to zero.
        assert!((g[0] + g[1]).abs() < 1e-6);
        assert!(g[0] < 0.0 && g[1] > 0.0);
    }

    #[test]
    fn embedding_scatter_grad() {
        runtime::reset();
        let table = v(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let out = table.embedding(&[2, 2, 0]);
        assert_eq!(out.value().to_vec(), vec![5.0, 6.0, 5.0, 6.0, 1.0, 2.0]);
        out.sum_all().backward();
        assert_eq!(
            table.grad().unwrap().to_vec(),
            vec![1.0, 1.0, 0.0, 0.0, 2.0, 2.0]
        );
    }

    #[test]
    fn straight_through_passes_grad() {
        runtime::reset();
        let x = v(vec![0.3, 0.7], &[2]);
        let hard = Tensor::from_vec(vec![0.0, 1.0], &[2], DType::F32, Device::Cpu);
        let y = x.straight_through(hard).mul_scalar(3.0).sum_all();
        assert_eq!(y.value().item(), 3.0);
        y.backward();
        assert_eq!(x.grad().unwrap().to_vec(), vec![3.0, 3.0]);
    }

    #[test]
    fn slice_grad_pads_zeros() {
        runtime::reset();
        let x = v(vec![1.0, 2.0, 3.0, 4.0], &[4]);
        let y = x.slice(0, 1, 2).sum_all();
        y.backward();
        assert_eq!(x.grad().unwrap().to_vec(), vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn sum_axis_grad_broadcasts() {
        runtime::reset();
        let x = v(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let y = x.sum_axis(1).mul(&v(vec![1.0, 10.0], &[2])).sum_all();
        y.backward();
        assert_eq!(
            x.grad().unwrap().to_vec(),
            vec![1.0, 1.0, 1.0, 10.0, 10.0, 10.0]
        );
    }

    #[test]
    fn rmsnorm_value_is_normalized() {
        runtime::reset();
        let x = v(vec![3.0, 4.0], &[1, 2]);
        let w = v(vec![1.0, 1.0], &[2]);
        let y = x.rmsnorm(&w, 0.0);
        let out = y.value().to_vec();
        let rms = ((9.0 + 16.0) / 2.0f32).sqrt();
        assert!((out[0] - 3.0 / rms).abs() < 1e-5);
        assert!((out[1] - 4.0 / rms).abs() < 1e-5);
    }

    #[test]
    fn operator_overloads_match_methods() {
        runtime::reset();
        let a = v(vec![1.0, 2.0], &[2]);
        let b = v(vec![3.0, 5.0], &[2]);
        assert_eq!((&a + &b).value().to_vec(), vec![4.0, 7.0]);
        assert_eq!((&a - &b).value().to_vec(), vec![-2.0, -3.0]);
        assert_eq!((&a * &b).value().to_vec(), vec![3.0, 10.0]);
        assert_eq!((&b / &a).value().to_vec(), vec![3.0, 2.5]);
        assert_eq!((-&a).value().to_vec(), vec![-1.0, -2.0]);
        assert_eq!((&a * 2.0).value().to_vec(), vec![2.0, 4.0]);
        assert_eq!((&a + 1.0).value().to_vec(), vec![2.0, 3.0]);
        // Gradients flow through operators as through methods.
        (&a * &b).sum_all().backward();
        assert_eq!(a.grad().unwrap().to_vec(), vec![3.0, 5.0]);
    }

    // ---------- gradient checks ----------

    #[test]
    fn gradcheck_binary_ops() {
        runtime::reset();
        for op in ["add", "sub", "mul", "div"] {
            let a = randn(&[2, 3], 1);
            let b = randn(&[2, 3], 2).map(|v| v + 3.0); // keep div well-conditioned
            let res = check_gradients(
                |vs| {
                    let r = match op {
                        "add" => vs[0].add(&vs[1]),
                        "sub" => vs[0].sub(&vs[1]),
                        "mul" => vs[0].mul(&vs[1]),
                        _ => vs[0].div(&vs[1]),
                    };
                    r.sum_all()
                },
                &[a, b],
                1e-2,
                2e-2,
            );
            res.unwrap_or_else(|e| panic!("{op}: {e}"));
        }
    }

    #[test]
    fn gradcheck_broadcast_ops() {
        runtime::reset();
        let a = randn(&[3, 4], 3);
        let b = randn(&[4], 4);
        check_gradients(|vs| vs[0].mul(&vs[1]).sum_all(), &[a, b], 1e-2, 2e-2).unwrap();
    }

    #[test]
    fn gradcheck_matmul() {
        runtime::reset();
        let a = randn(&[3, 4], 5);
        let b = randn(&[4, 2], 6);
        // Weighted sum output so the grad is not all-ones.
        let w = randn(&[3, 2], 7);
        check_gradients(
            |vs| {
                vs[0]
                    .matmul(&vs[1])
                    .mul(&Var::constant(w.clone()))
                    .sum_all()
            },
            &[a, b],
            1e-2,
            2e-2,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_bmm() {
        runtime::reset();
        let a = randn(&[2, 3, 4], 8);
        let b = randn(&[2, 4, 2], 9);
        check_gradients(|vs| vs[0].bmm(&vs[1]).sum_all(), &[a, b], 1e-2, 2e-2).unwrap();
    }

    #[test]
    fn gradcheck_activations() {
        runtime::reset();
        for op in ["relu", "silu", "gelu", "tanh", "exp", "square"] {
            let x = randn(&[2, 5], 11).map(|v| v + 0.1); // avoid relu kink at 0
            let w = randn(&[2, 5], 12);
            check_gradients(
                |vs| {
                    let y = match op {
                        "relu" => vs[0].relu(),
                        "silu" => vs[0].silu(),
                        "gelu" => vs[0].gelu(),
                        "tanh" => vs[0].tanh_act(),
                        "exp" => vs[0].exp(),
                        _ => vs[0].square(),
                    };
                    y.mul(&Var::constant(w.clone())).sum_all()
                },
                &[x],
                1e-2,
                3e-2,
            )
            .unwrap_or_else(|e| panic!("{op}: {e}"));
        }
    }

    #[test]
    fn gradcheck_ln_sqrt_positive_domain() {
        runtime::reset();
        let x = randn(&[6], 13).map(|v| v.abs() + 1.0);
        check_gradients(
            |vs| vs[0].ln().sum_all(),
            std::slice::from_ref(&x),
            1e-3,
            2e-2,
        )
        .unwrap();
        check_gradients(|vs| vs[0].sqrt_elem().sum_all(), &[x], 1e-3, 2e-2).unwrap();
    }

    #[test]
    fn gradcheck_softmax_and_logsoftmax() {
        runtime::reset();
        let x = randn(&[3, 4], 14);
        let w = randn(&[3, 4], 15);
        check_gradients(
            |vs| {
                vs[0]
                    .softmax_lastdim()
                    .mul(&Var::constant(w.clone()))
                    .sum_all()
            },
            std::slice::from_ref(&x),
            1e-2,
            2e-2,
        )
        .unwrap();
        check_gradients(
            |vs| {
                vs[0]
                    .log_softmax_lastdim()
                    .mul(&Var::constant(w.clone()))
                    .sum_all()
            },
            &[x],
            1e-2,
            2e-2,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_rmsnorm() {
        runtime::reset();
        let x = randn(&[3, 8], 16);
        let w = randn(&[8], 17).map(|v| v + 2.0);
        let g = randn(&[3, 8], 18);
        check_gradients(
            |vs| {
                vs[0]
                    .rmsnorm(&vs[1], 1e-5)
                    .mul(&Var::constant(g.clone()))
                    .sum_all()
            },
            &[x, w],
            1e-2,
            3e-2,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_cross_entropy() {
        runtime::reset();
        let x = randn(&[4, 5], 19);
        check_gradients(|vs| vs[0].cross_entropy(&[1, 0, 4, 2]), &[x], 1e-2, 2e-2).unwrap();
    }

    #[test]
    fn gradcheck_neg_sqdist() {
        runtime::reset();
        let w = randn(&[6, 2], 20);
        let c = randn(&[3, 2], 21);
        let g = randn(&[6, 3], 22);
        check_gradients(
            |vs| {
                vs[0]
                    .neg_sqdist(&vs[1])
                    .mul(&Var::constant(g.clone()))
                    .sum_all()
            },
            &[w, c],
            1e-2,
            3e-2,
        )
        .unwrap();
    }

    #[test]
    fn gradcheck_reductions_and_views() {
        runtime::reset();
        let x = randn(&[2, 6], 23);
        check_gradients(|vs| vs[0].mean_all(), std::slice::from_ref(&x), 1e-2, 2e-2).unwrap();
        check_gradients(
            |vs| vs[0].reshape(&[3, 4]).transpose(0, 1).square().sum_all(),
            std::slice::from_ref(&x),
            1e-2,
            2e-2,
        )
        .unwrap();
        check_gradients(
            |vs| vs[0].slice(1, 2, 3).square().sum_all(),
            &[x],
            1e-2,
            2e-2,
        )
        .unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Random small expression trees gradcheck clean.
        #[test]
        fn prop_gradcheck_composites(seed in 0u64..500) {
            runtime::reset();
            let a = randn(&[2, 3], seed);
            let b = randn(&[2, 3], seed.wrapping_add(1)).map(|v| v + 2.5);
            check_gradients(
                |vs| {
                    vs[0]
                        .mul(&vs[1])
                        .silu()
                        .add(&vs[0].square())
                        .softmax_lastdim()
                        .sum_all()
                },
                &[a, b],
                1e-2,
                5e-2,
            ).unwrap();
        }

        /// Softmax output rows stay on the simplex for any input.
        #[test]
        fn prop_softmax_var_simplex(seed in any::<u64>()) {
            runtime::reset();
            let x = Var::constant(randn(&[3, 5], seed));
            let s = x.softmax_lastdim();
            for row in s.value().to_vec().chunks(5) {
                let sum: f32 = row.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4);
            }
        }
    }
}
