//! Numeric gradient checking utilities.
//!
//! Used throughout the workspace's test suites to validate every VJP against
//! central finite differences.

use crate::var::Var;
use edkm_tensor::Tensor;

/// Central-difference numeric gradient of a scalar function of several
/// tensors, with respect to input `wrt`.
///
/// `f` must be deterministic.
pub fn numeric_gradient(
    f: &dyn Fn(&[Tensor]) -> f32,
    inputs: &[Tensor],
    wrt: usize,
    eps: f32,
) -> Vec<f32> {
    let base: Vec<Vec<f32>> = inputs.iter().map(|t| t.to_vec()).collect();
    let n = base[wrt].len();
    let mut grad = vec![0.0f32; n];
    for i in 0..n {
        let mut plus = base.clone();
        plus[wrt][i] += eps;
        let mut minus = base.clone();
        minus[wrt][i] -= eps;
        let mk = |data: &[Vec<f32>]| -> Vec<Tensor> {
            data.iter()
                .zip(inputs)
                .map(|(d, t)| Tensor::from_vec(d.clone(), t.shape(), t.dtype(), t.device()))
                .collect()
        };
        let fp = f(&mk(&plus));
        let fm = f(&mk(&minus));
        grad[i] = (fp - fm) / (2.0 * eps);
    }
    grad
}

/// Check analytic gradients of `build` (a scalar-valued graph builder)
/// against numeric gradients for every input.
///
/// Comparison uses a mixed absolute/relative criterion:
/// `|a - n| <= tol * max(1, |a|, |n|)`.
///
/// # Errors
///
/// Returns a description of the first mismatching element.
pub fn check_gradients(
    build: impl Fn(&[Var]) -> Var,
    inputs: &[Tensor],
    eps: f32,
    tol: f32,
) -> Result<(), String> {
    // Analytic gradients.
    let vars: Vec<Var> = inputs.iter().map(|t| Var::param(t.clone())).collect();
    let loss = build(&vars);
    if loss.value().numel() != 1 {
        return Err(format!(
            "build must return a scalar, got shape {:?}",
            loss.value().shape()
        ));
    }
    loss.backward();

    // Numeric.
    let eval = |ts: &[Tensor]| -> f32 {
        let vs: Vec<Var> = ts.iter().map(|t| Var::constant(t.clone())).collect();
        build(&vs).value().item()
    };

    for (wi, var) in vars.iter().enumerate() {
        let analytic = match var.grad() {
            Some(g) => g.to_vec(),
            None => vec![0.0; inputs[wi].numel()],
        };
        let numeric = numeric_gradient(&eval, inputs, wi, eps);
        for (i, (&a, &n)) in analytic.iter().zip(&numeric).enumerate() {
            let scale = 1.0f32.max(a.abs()).max(n.abs());
            if (a - n).abs() > tol * scale {
                return Err(format!(
                    "input {wi}, element {i}: analytic {a} vs numeric {n} (tol {tol})"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_tensor::{runtime, DType, Device};

    #[test]
    fn numeric_gradient_of_square() {
        runtime::reset();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3], DType::F32, Device::Cpu);
        let g = numeric_gradient(
            &|ts: &[Tensor]| ts[0].to_vec().iter().map(|v| v * v).sum(),
            &[x],
            0,
            1e-3,
        );
        for (i, v) in g.iter().enumerate() {
            assert!((v - 2.0 * (i as f32 + 1.0)).abs() < 1e-2, "g[{i}]={v}");
        }
    }

    #[test]
    fn check_gradients_accepts_correct_vjp() {
        runtime::reset();
        let x = Tensor::randn(&[4], DType::F32, Device::Cpu, 1);
        check_gradients(|vs| vs[0].square().sum_all(), &[x], 1e-3, 1e-2).unwrap();
    }

    #[test]
    fn check_gradients_rejects_nonscalar() {
        runtime::reset();
        let x = Tensor::randn(&[4], DType::F32, Device::Cpu, 2);
        let err = check_gradients(|vs| vs[0].square(), &[x], 1e-3, 1e-2).unwrap_err();
        assert!(err.contains("scalar"));
    }

    #[test]
    fn check_gradients_detects_wrong_vjp() {
        runtime::reset();
        // A "broken op": forward x^2 but gradient pretends to be identity by
        // detaching and re-adding x.
        let x = Tensor::from_vec(vec![3.0], &[1], DType::F32, Device::Cpu);
        let err = check_gradients(
            |vs| {
                vs[0]
                    .detach()
                    .square()
                    .sum_all()
                    .add(&vs[0].sum_all().mul_scalar(0.0))
            },
            &[x],
            1e-3,
            1e-2,
        );
        assert!(err.is_err(), "zero analytic grad vs 6.0 numeric must fail");
    }
}
