//! Saved-tensor hooks: the pack/unpack interception point for tensors kept
//! for the backward pass.
//!
//! This mirrors `torch.autograd.graph.saved_tensors_hooks` (reference \[2\]
//! of the paper). While a hooks object is installed on the current thread,
//! every tensor an autograd op saves is immediately handed to
//! [`SavedTensorHooks::pack`]; the packed representation is held in the graph
//! node, and [`SavedTensorHooks::unpack`] is called when the backward pass
//! needs the tensor back.
//!
//! eDKM is implemented entirely as such a hooks object (`edkm-core`): `pack`
//! offloads to CPU with marshaling/uniquification/sharding, `unpack`
//! all-gathers and reconstructs.

use edkm_tensor::Tensor;
use std::any::Any;
use std::cell::RefCell;
use std::sync::Arc;

/// Result of packing a saved tensor.
pub enum PackedTensor {
    /// The tensor kept as-is (default behaviour without hooks: it stays
    /// resident on its device, exactly like stock PyTorch).
    Inline(Tensor),
    /// Hook-specific payload; only the hooks object that produced it knows
    /// how to reconstruct the tensor.
    Custom(Box<dyn Any + Send + Sync>),
}

impl std::fmt::Debug for PackedTensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackedTensor::Inline(t) => write!(f, "PackedTensor::Inline({t:?})"),
            PackedTensor::Custom(_) => write!(f, "PackedTensor::Custom(..)"),
        }
    }
}

/// User-installable pack/unpack pair for tensors saved for backward.
///
/// Implementations must satisfy `unpack(pack(t)) == t` (same values, shape
/// and dtype; the device must be restored too so backward math runs where
/// forward math did).
pub trait SavedTensorHooks: Send + Sync {
    /// Called at forward time for every tensor an op saves.
    fn pack(&self, t: &Tensor) -> PackedTensor;
    /// Called at backward time to reconstruct a packed tensor.
    fn unpack(&self, p: &PackedTensor) -> Tensor;
    /// Diagnostic name.
    fn name(&self) -> &str {
        "saved-tensor-hooks"
    }
}

thread_local! {
    static HOOK_STACK: RefCell<Vec<Arc<dyn SavedTensorHooks>>> = const { RefCell::new(Vec::new()) };
}

/// Install `hooks` on this thread; the returned guard uninstalls them on
/// drop. Hooks nest like a stack (innermost wins), as in PyTorch.
#[must_use = "hooks are uninstalled when the guard drops"]
pub fn push_hooks(hooks: Arc<dyn SavedTensorHooks>) -> HooksGuard {
    HOOK_STACK.with(|s| s.borrow_mut().push(hooks));
    HooksGuard { _priv: () }
}

/// Explicitly pop the innermost hooks (rarely needed; prefer the guard).
pub fn pop_hooks() {
    HOOK_STACK.with(|s| {
        s.borrow_mut().pop();
    });
}

fn current_hooks() -> Option<Arc<dyn SavedTensorHooks>> {
    HOOK_STACK.with(|s| s.borrow().last().map(Arc::clone))
}

/// RAII guard returned by [`push_hooks`].
pub struct HooksGuard {
    _priv: (),
}

impl Drop for HooksGuard {
    fn drop(&mut self) {
        pop_hooks();
    }
}

impl std::fmt::Debug for HooksGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HooksGuard")
    }
}

/// A tensor saved for backward, routed through the active hooks (if any).
pub struct SavedTensor {
    packed: PackedTensor,
    hooks: Option<Arc<dyn SavedTensorHooks>>,
}

impl std::fmt::Debug for SavedTensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SavedTensor({:?}, hooks={:?})",
            self.packed,
            self.hooks.as_ref().map(|h| h.name())
        )
    }
}

impl SavedTensor {
    /// Reconstruct the tensor (calls the packing hooks' `unpack`).
    pub fn unpack(&self) -> Tensor {
        match &self.hooks {
            Some(h) => h.unpack(&self.packed),
            None => match &self.packed {
                PackedTensor::Inline(t) => t.clone(),
                PackedTensor::Custom(_) => {
                    unreachable!("custom payload without hooks cannot exist")
                }
            },
        }
    }
}

/// Save `t` for backward through the thread's current hooks.
pub fn save_tensor(t: &Tensor) -> SavedTensor {
    match current_hooks() {
        Some(h) => SavedTensor {
            packed: h.pack(t),
            hooks: Some(h),
        },
        None => SavedTensor {
            packed: PackedTensor::Inline(t.clone()),
            hooks: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_tensor::{runtime, DType, Device};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Hooks that offload every saved tensor to the CPU (the naive baseline
    /// of the paper's Table 2) and count pack/unpack calls.
    struct OffloadHooks {
        packs: AtomicUsize,
        unpacks: AtomicUsize,
    }

    struct Payload {
        cpu: Tensor,
        device: Device,
    }

    impl SavedTensorHooks for OffloadHooks {
        fn pack(&self, t: &Tensor) -> PackedTensor {
            self.packs.fetch_add(1, Ordering::Relaxed);
            PackedTensor::Custom(Box::new(Payload {
                cpu: t.to_device(Device::Cpu),
                device: t.device(),
            }))
        }
        fn unpack(&self, p: &PackedTensor) -> Tensor {
            self.unpacks.fetch_add(1, Ordering::Relaxed);
            match p {
                PackedTensor::Custom(b) => {
                    let payload = b.downcast_ref::<Payload>().expect("payload type");
                    payload.cpu.to_device(payload.device)
                }
                PackedTensor::Inline(t) => t.clone(),
            }
        }
        fn name(&self) -> &str {
            "offload"
        }
    }

    #[test]
    fn no_hooks_saves_inline() {
        runtime::reset();
        let t = Tensor::arange(4, DType::F32, Device::gpu());
        let s = save_tensor(&t);
        let back = s.unpack();
        assert_eq!(back.to_vec(), t.to_vec());
        assert_eq!(back.device(), Device::gpu());
        // Inline save shares storage — no copy happened.
        assert_eq!(back.storage_id(), t.storage_id());
    }

    #[test]
    fn hooks_pack_and_unpack_roundtrip() {
        runtime::reset();
        let h = Arc::new(OffloadHooks {
            packs: AtomicUsize::new(0),
            unpacks: AtomicUsize::new(0),
        });
        let t = Tensor::randn(&[8, 8], DType::F32, Device::gpu(), 1);
        let saved;
        {
            let _g = push_hooks(h.clone() as Arc<dyn SavedTensorHooks>);
            saved = save_tensor(&t);
        }
        assert_eq!(h.packs.load(Ordering::Relaxed), 1);
        // Unpack works after the guard dropped (hook Arc is captured).
        let back = saved.unpack();
        assert_eq!(h.unpacks.load(Ordering::Relaxed), 1);
        assert_eq!(back.to_vec(), t.to_vec());
        assert_eq!(back.device(), Device::gpu());
    }

    #[test]
    fn guard_uninstalls_hooks() {
        runtime::reset();
        let h = Arc::new(OffloadHooks {
            packs: AtomicUsize::new(0),
            unpacks: AtomicUsize::new(0),
        });
        {
            let _g = push_hooks(h.clone() as Arc<dyn SavedTensorHooks>);
        }
        let t = Tensor::arange(2, DType::F32, Device::Cpu);
        let _s = save_tensor(&t);
        assert_eq!(h.packs.load(Ordering::Relaxed), 0, "hooks must be gone");
    }

    #[test]
    fn hooks_nest_innermost_wins() {
        runtime::reset();
        let outer = Arc::new(OffloadHooks {
            packs: AtomicUsize::new(0),
            unpacks: AtomicUsize::new(0),
        });
        let inner = Arc::new(OffloadHooks {
            packs: AtomicUsize::new(0),
            unpacks: AtomicUsize::new(0),
        });
        let t = Tensor::arange(2, DType::F32, Device::Cpu);
        let _g1 = push_hooks(outer.clone() as Arc<dyn SavedTensorHooks>);
        {
            let _g2 = push_hooks(inner.clone() as Arc<dyn SavedTensorHooks>);
            let _s = save_tensor(&t);
        }
        let _s2 = save_tensor(&t);
        assert_eq!(inner.packs.load(Ordering::Relaxed), 1);
        assert_eq!(outer.packs.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn offload_hooks_move_bytes_to_cpu() {
        runtime::reset();
        let h = Arc::new(OffloadHooks {
            packs: AtomicUsize::new(0),
            unpacks: AtomicUsize::new(0),
        });
        let t = Tensor::rand(&[1024, 1024], DType::F32, Device::gpu(), 0);
        let _g = push_hooks(h as Arc<dyn SavedTensorHooks>);
        let _saved = save_tensor(&t);
        assert_eq!(runtime::cpu_live_bytes(), 4 << 20);
        assert_eq!(runtime::transfer_snapshot().d2h_bytes, 4 << 20);
    }
}
