//! `Var`: a tensor tracked by the dynamic autograd tape.

use crate::hooks::SavedTensor;
use edkm_tensor::{ops as t_ops, DType, Tensor};
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_VAR_ID: AtomicU64 = AtomicU64::new(1);

/// Unique id of a [`Var`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u64);

thread_local! {
    static GRAD_ENABLED: Cell<bool> = const { Cell::new(true) };
}

/// `true` if new ops record autograd nodes on this thread.
pub fn grad_enabled() -> bool {
    GRAD_ENABLED.with(|g| g.get())
}

/// Disable gradient recording until the returned guard drops.
///
/// Used by the DKM layer for all centroid-update iterations except the last,
/// matching the reference implementation.
#[must_use = "gradients re-enable when the guard drops"]
pub fn no_grad() -> NoGradGuard {
    let prev = GRAD_ENABLED.with(|g| g.replace(false));
    NoGradGuard { prev }
}

/// RAII guard produced by [`no_grad`].
#[derive(Debug)]
pub struct NoGradGuard {
    prev: bool,
}

impl Drop for NoGradGuard {
    fn drop(&mut self) {
        GRAD_ENABLED.with(|g| g.set(self.prev));
    }
}

/// VJP closure: `(upstream grad, unpacked saved tensors) -> grads per input`.
pub type BackwardFn = Box<dyn Fn(&Tensor, &[Tensor]) -> Vec<Option<Tensor>> + Send + Sync>;

/// Graph node recorded by a differentiable op.
pub(crate) struct Node {
    pub(crate) op: &'static str,
    pub(crate) inputs: Vec<Var>,
    pub(crate) saved: Vec<SavedTensor>,
    pub(crate) backward: BackwardFn,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Node(op={}, inputs={})", self.op, self.inputs.len())
    }
}

#[derive(Debug)]
pub(crate) struct VarInner {
    pub(crate) id: u64,
    pub(crate) value: Tensor,
    pub(crate) requires_grad: bool,
    pub(crate) grad: Mutex<Option<Tensor>>,
    pub(crate) node: Option<Node>,
}

impl Drop for VarInner {
    fn drop(&mut self) {
        // Dismantle the graph iteratively: a deep chain of Arc<VarInner>
        // would otherwise drop recursively and overflow the stack.
        let mut stack: Vec<Node> = self.node.take().into_iter().collect();
        while let Some(node) = stack.pop() {
            for input in node.inputs {
                if let Ok(mut inner) = Arc::try_unwrap(input.0) {
                    if let Some(n) = inner.node.take() {
                        stack.push(n);
                    }
                }
            }
        }
    }
}

/// A tensor participating in the autograd graph.
///
/// `Var` is a cheap `Arc` handle. Leaves created with [`Var::param`]
/// accumulate gradients into [`Var::grad`] when [`Var::backward`] runs on a
/// downstream scalar.
#[derive(Clone, Debug)]
pub struct Var(pub(crate) Arc<VarInner>);

impl Var {
    /// Trainable leaf: gradients accumulate on it.
    pub fn param(value: Tensor) -> Var {
        Var(Arc::new(VarInner {
            id: NEXT_VAR_ID.fetch_add(1, Ordering::Relaxed),
            value,
            requires_grad: true,
            grad: Mutex::new(None),
            node: None,
        }))
    }

    /// Non-trainable leaf (inputs, masks, constants).
    pub fn constant(value: Tensor) -> Var {
        Var(Arc::new(VarInner {
            id: NEXT_VAR_ID.fetch_add(1, Ordering::Relaxed),
            value,
            requires_grad: false,
            grad: Mutex::new(None),
            node: None,
        }))
    }

    /// Record a custom differentiable op.
    ///
    /// `backward` receives the upstream gradient and the unpacked `saved`
    /// tensors and must return one `Option<Tensor>` per input (shape-matched).
    /// Tensors needed at backward time must be passed through `saved` (built
    /// with [`crate::hooks::save_tensor`]) so saved-tensor hooks see them —
    /// this is the extension point `edkm-nn`'s fused RoPE and `edkm-core`'s
    /// clustering ops use.
    ///
    /// If gradients are disabled or no input requires a gradient, the node is
    /// not recorded and a constant is returned.
    pub fn custom(
        value: Tensor,
        op: &'static str,
        inputs: Vec<Var>,
        saved: Vec<SavedTensor>,
        backward: BackwardFn,
    ) -> Var {
        Var::from_op(value, op, inputs, saved, backward)
    }

    /// Internal: op result.
    pub(crate) fn from_op(
        value: Tensor,
        op: &'static str,
        inputs: Vec<Var>,
        saved: Vec<SavedTensor>,
        backward: BackwardFn,
    ) -> Var {
        let track = grad_enabled() && inputs.iter().any(|v| v.requires_grad());
        if !track {
            return Var::constant(value);
        }
        Var(Arc::new(VarInner {
            id: NEXT_VAR_ID.fetch_add(1, Ordering::Relaxed),
            value,
            requires_grad: true,
            grad: Mutex::new(None),
            node: Some(Node {
                op,
                inputs,
                saved,
                backward,
            }),
        }))
    }

    /// Unique id.
    pub fn id(&self) -> VarId {
        VarId(self.0.id)
    }

    /// The tensor value.
    pub fn value(&self) -> &Tensor {
        &self.0.value
    }

    /// `true` if gradients flow to (or through) this var.
    pub fn requires_grad(&self) -> bool {
        self.0.requires_grad
    }

    /// `true` if this is a leaf (no recorded op).
    pub fn is_leaf(&self) -> bool {
        self.0.node.is_none()
    }

    /// Name of the op that produced this var, if any.
    pub fn op_name(&self) -> Option<&'static str> {
        self.0.node.as_ref().map(|n| n.op)
    }

    /// Accumulated gradient of a leaf (cleared by [`Var::zero_grad`]).
    pub fn grad(&self) -> Option<Tensor> {
        self.0.grad.lock().clone()
    }

    /// Clear the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.0.grad.lock() = None;
    }

    /// Replace the accumulated gradient (used by gradient clipping).
    pub fn set_grad(&self, g: Option<Tensor>) {
        *self.0.grad.lock() = g;
    }

    /// Cut the graph: same value, no gradient history.
    ///
    /// The value is aliased (recorded as a provenance hop), not copied.
    pub fn detach(&self) -> Var {
        Var::constant(self.value().alias())
    }

    fn accumulate_grad(&self, g: Tensor) {
        let mut slot = self.0.grad.lock();
        *slot = Some(match slot.take() {
            Some(prev) => t_ops::add(&prev, &g),
            None => g,
        });
    }

    /// Run reverse-mode differentiation from this scalar.
    ///
    /// Gradients accumulate on every reachable leaf with
    /// `requires_grad = true`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a single-element tensor.
    pub fn backward(&self) {
        assert_eq!(
            self.value().numel(),
            1,
            "backward() requires a scalar loss, got shape {:?}",
            self.value().shape()
        );
        let seed = Tensor::ones(self.value().shape(), DType::F32, self.value().device());
        self.backward_with(seed);
    }

    /// Reverse-mode differentiation with an explicit upstream gradient.
    pub fn backward_with(&self, grad: Tensor) {
        let order = topo_order(self);
        let mut grads: HashMap<u64, Tensor> = HashMap::new();
        grads.insert(self.0.id, grad);

        for var in order.iter().rev() {
            let Some(g) = grads.remove(&var.0.id) else {
                continue;
            };
            match &var.0.node {
                None => {
                    if var.requires_grad() {
                        var.accumulate_grad(g);
                    }
                }
                Some(node) => {
                    let saved: Vec<Tensor> = node.saved.iter().map(|s| s.unpack()).collect();
                    let input_grads = (node.backward)(&g, &saved);
                    assert_eq!(
                        input_grads.len(),
                        node.inputs.len(),
                        "op {} returned {} grads for {} inputs",
                        node.op,
                        input_grads.len(),
                        node.inputs.len()
                    );
                    for (input, ig) in node.inputs.iter().zip(input_grads) {
                        let Some(ig) = ig else { continue };
                        if !input.requires_grad() {
                            continue;
                        }
                        debug_assert_eq!(
                            ig.shape(),
                            input.value().shape(),
                            "op {}: grad shape {:?} != input shape {:?}",
                            node.op,
                            ig.shape(),
                            input.value().shape()
                        );
                        match grads.entry(input.0.id) {
                            std::collections::hash_map::Entry::Occupied(mut e) => {
                                let sum = t_ops::add(e.get(), &ig);
                                e.insert(sum);
                            }
                            std::collections::hash_map::Entry::Vacant(e) => {
                                e.insert(ig);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Post-order over the graph reachable from `root` (inputs before outputs).
fn topo_order(root: &Var) -> Vec<Var> {
    let mut order = Vec::new();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut stack: Vec<(Var, bool)> = vec![(root.clone(), false)];
    while let Some((v, expanded)) = stack.pop() {
        if expanded {
            order.push(v);
            continue;
        }
        if !visited.insert(v.0.id) {
            continue;
        }
        stack.push((v.clone(), true));
        if let Some(node) = &v.0.node {
            for input in &node.inputs {
                if input.requires_grad() {
                    stack.push((input.clone(), false));
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_tensor::{runtime, Device};

    fn scalar(v: f32) -> Tensor {
        Tensor::scalar(v, DType::F32, Device::Cpu)
    }

    #[test]
    fn leaf_properties() {
        runtime::reset();
        let p = Var::param(scalar(1.0));
        assert!(p.requires_grad());
        assert!(p.is_leaf());
        assert!(p.grad().is_none());
        assert!(p.op_name().is_none());
        let c = Var::constant(scalar(2.0));
        assert!(!c.requires_grad());
    }

    #[test]
    fn simple_chain_backward() {
        runtime::reset();
        // y = (x * 3) + 2; dy/dx = 3
        let x = Var::param(scalar(5.0));
        let y = x.mul_scalar(3.0).add_scalar(2.0);
        assert_eq!(y.value().item(), 17.0);
        y.backward();
        assert_eq!(x.grad().unwrap().item(), 3.0);
    }

    #[test]
    fn diamond_accumulates() {
        runtime::reset();
        // y = x*x + x  => dy/dx = 2x + 1 = 7 at x=3
        let x = Var::param(scalar(3.0));
        let y = x.mul(&x).add(&x);
        y.backward();
        assert_eq!(x.grad().unwrap().item(), 7.0);
    }

    #[test]
    fn grad_accumulates_across_backwards() {
        runtime::reset();
        let x = Var::param(scalar(1.0));
        let y = x.mul_scalar(2.0);
        y.backward();
        let y2 = x.mul_scalar(2.0);
        y2.backward();
        assert_eq!(x.grad().unwrap().item(), 4.0);
        x.zero_grad();
        assert!(x.grad().is_none());
    }

    #[test]
    fn constants_get_no_grad() {
        runtime::reset();
        let x = Var::param(scalar(2.0));
        let c = Var::constant(scalar(10.0));
        let y = x.mul(&c);
        y.backward();
        assert_eq!(x.grad().unwrap().item(), 10.0);
        assert!(c.grad().is_none());
    }

    #[test]
    fn no_grad_suppresses_graph() {
        runtime::reset();
        let x = Var::param(scalar(2.0));
        let y;
        {
            let _g = no_grad();
            assert!(!grad_enabled());
            y = x.mul_scalar(3.0);
        }
        assert!(grad_enabled());
        assert!(y.is_leaf(), "op under no_grad must not record a node");
        assert!(!y.requires_grad());
    }

    #[test]
    fn no_grad_nests() {
        let _a = no_grad();
        {
            let _b = no_grad();
            assert!(!grad_enabled());
        }
        assert!(!grad_enabled(), "outer guard still active");
    }

    #[test]
    fn detach_cuts_graph() {
        runtime::reset();
        let x = Var::param(scalar(2.0));
        let y = x.mul_scalar(5.0).detach().mul_scalar(3.0);
        y.backward();
        assert!(x.grad().is_none(), "gradient must not flow past detach");
        assert_eq!(y.value().item(), 30.0);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_requires_scalar() {
        runtime::reset();
        let x = Var::param(Tensor::arange(3, DType::F32, Device::Cpu));
        x.backward();
    }

    #[test]
    fn backward_with_custom_seed() {
        runtime::reset();
        let x = Var::param(Tensor::arange(3, DType::F32, Device::Cpu));
        let y = x.mul_scalar(2.0);
        y.backward_with(Tensor::from_vec(
            vec![1.0, 10.0, 100.0],
            &[3],
            DType::F32,
            Device::Cpu,
        ));
        assert_eq!(x.grad().unwrap().to_vec(), vec![2.0, 20.0, 200.0]);
    }

    #[test]
    fn op_name_recorded() {
        runtime::reset();
        let x = Var::param(scalar(1.0));
        let y = x.add(&x);
        assert_eq!(y.op_name(), Some("add"));
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        runtime::reset();
        let x = Var::param(scalar(1.0));
        let mut y = x.clone();
        for _ in 0..5000 {
            y = y.add_scalar(1.0);
        }
        y.backward();
        assert_eq!(x.grad().unwrap().item(), 1.0);
    }
}
