//! Serving layer over [`PalettizedModel`]: KV-cached autoregressive
//! generation and a continuous-batching scheduler.
//!
//! The [`Generator`] drives one sequence (greedy or seeded
//! temperature/top-k sampling). The [`Scheduler`] keeps a request queue and
//! a set of in-flight sequences of *uneven* lengths: each step it admits
//! waiting requests up to the batch budget, runs one batched forward (new
//! requests contribute their whole prompt, running ones their latest
//! token — so projection GEMMs batch across everything), samples one token
//! per sequence, and retires finished requests, returning their KV-cache
//! bytes to the pool.
//!
//! Sampling state is **per request** (its own seeded RNG), and every
//! logits row depends only on its own sequence, so a request produces
//! exactly the same tokens whether it runs alone or batched with arbitrary
//! neighbours — the invariant the scheduler test suite pins.

use crate::infer::{KvCache, PalettizedModel, ServeModel};
use edkm_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

pub use crate::kv::{KvBlockConfig, KvBlockPool};

/// How to turn a logits row into the next token.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingConfig {
    /// Softmax temperature; `0.0` means greedy argmax.
    pub temperature: f32,
    /// Keep only the `top_k` most likely tokens (`0` keeps all).
    pub top_k: usize,
    /// Seed of the per-request RNG (ignored when greedy).
    pub seed: u64,
}

impl SamplingConfig {
    /// Deterministic argmax decoding.
    pub fn greedy() -> Self {
        SamplingConfig {
            temperature: 0.0,
            top_k: 0,
            seed: 0,
        }
    }

    /// Seeded temperature sampling over the full vocabulary.
    pub fn with_temperature(temperature: f32, seed: u64) -> Self {
        SamplingConfig {
            temperature,
            top_k: 0,
            seed,
        }
    }

    /// Seeded temperature sampling restricted to the `top_k` best tokens.
    pub fn with_top_k(temperature: f32, top_k: usize, seed: u64) -> Self {
        SamplingConfig {
            temperature,
            top_k,
            seed,
        }
    }

    /// `true` when this config never consumes randomness.
    pub fn is_greedy(&self) -> bool {
        self.temperature <= 0.0
    }
}

/// Pick the next token from one logits row. Greedy takes the first argmax
/// (ties break low, matching `ops::argmax_lastdim`); sampling scales by
/// temperature, keeps the top-k, softmaxes and draws from `rng`.
pub fn sample_token(row: &[f32], sampling: &SamplingConfig, rng: &mut StdRng) -> usize {
    assert!(!row.is_empty(), "empty logits row");
    if sampling.is_greedy() {
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in row.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        return best;
    }
    let mut scaled: Vec<f32> = row.iter().map(|&v| v / sampling.temperature).collect();
    if sampling.top_k > 0 && sampling.top_k < row.len() {
        // The top_k-th largest value is the cut. Everything strictly above
        // it always survives; values *equal* to the cut fill the remaining
        // budget in index order (so ties straddling the cut can never push
        // out a strictly larger logit).
        let mut sorted = scaled.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite logits"));
        let cut = sorted[sampling.top_k - 1];
        let above = scaled.iter().filter(|&&v| v > cut).count();
        let mut tie_budget = sampling.top_k - above;
        for v in scaled.iter_mut() {
            if *v > cut {
                continue;
            }
            if *v == cut && tie_budget > 0 {
                tie_budget -= 1;
            } else {
                *v = f32::NEG_INFINITY;
            }
        }
    }
    // Stable softmax, then inverse-CDF draw.
    let mx = scaled.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in scaled.iter_mut() {
        *v = (*v - mx).exp();
        sum += *v;
    }
    let u: f32 = rng.gen::<f32>() * sum;
    let mut acc = 0.0f32;
    let mut last = 0usize;
    for (i, &p) in scaled.iter().enumerate() {
        if p > 0.0 {
            acc += p;
            last = i;
            if u < acc {
                return i;
            }
        }
    }
    last // rounding fell off the end: return the last viable token
}

/// KV-cached autoregressive generation over any [`ServeModel`]
/// (a [`PalettizedModel`] or its tensor-parallel sharded counterpart).
///
/// ```
/// use edkm_core::{CompressSpec, Generator, PalettizedModel};
/// use edkm_nn::{LlamaConfig, LlamaModel};
/// use edkm_tensor::{runtime, DType, Device};
///
/// runtime::reset();
/// let dense = LlamaModel::new(LlamaConfig::tiny(), DType::Bf16, Device::Cpu, 0);
/// let mut spec = CompressSpec::with_bits(2);
/// spec.dkm.iters = 2;
/// let served = PalettizedModel::from_dense(&dense, &spec).unwrap();
/// let out = Generator::new(&served).generate_greedy(&[1, 2], 4);
/// assert_eq!(out.len(), 6); // prompt + 4 generated tokens
/// assert_eq!(&out[..2], &[1, 2]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Generator<'m, M: ServeModel = PalettizedModel> {
    model: &'m M,
}

impl<'m, M: ServeModel> Generator<'m, M> {
    /// Generator over `model`.
    pub fn new(model: &'m M) -> Self {
        Generator { model }
    }

    /// Continue `prompt` by `n_new` tokens under `sampling`. Returns the
    /// full sequence (prompt + generated).
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or `prompt.len() + n_new` exceeds the
    /// model's `max_seq`.
    pub fn generate(
        &self,
        prompt: &[usize],
        n_new: usize,
        sampling: &SamplingConfig,
    ) -> Vec<usize> {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        assert!(
            prompt.len() + n_new <= self.model.config().max_seq,
            "prompt {} + {n_new} new tokens exceed max_seq {}",
            prompt.len(),
            self.model.config().max_seq
        );
        let mut rng = StdRng::seed_from_u64(sampling.seed);
        let mut cache = self.model.new_cache();
        let mut ids = prompt.to_vec();
        if n_new == 0 {
            return ids;
        }
        let logits = self.model.prefill(prompt, &mut cache);
        let mut next = Self::last_row_token(&logits, prompt.len(), sampling, &mut rng);
        ids.push(next);
        for _ in 1..n_new {
            let logits = self.model.decode_step(&[next], &mut [&mut cache]);
            next = Self::last_row_token(&logits, 1, sampling, &mut rng);
            ids.push(next);
        }
        ids
    }

    /// Greedy continuation (sugar for [`SamplingConfig::greedy`]).
    pub fn generate_greedy(&self, prompt: &[usize], n_new: usize) -> Vec<usize> {
        self.generate(prompt, n_new, &SamplingConfig::greedy())
    }

    fn last_row_token(
        logits: &Tensor,
        rows: usize,
        sampling: &SamplingConfig,
        rng: &mut StdRng,
    ) -> usize {
        let vocab = logits.shape()[1];
        let data = logits.to_vec();
        sample_token(&data[(rows - 1) * vocab..rows * vocab], sampling, rng)
    }
}

/// One generation request submitted to the [`Scheduler`].
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Caller-chosen id, echoed in the response.
    pub id: u64,
    /// Prompt token ids (non-empty).
    pub prompt: Vec<usize>,
    /// How many tokens to generate.
    pub max_new: usize,
    /// Per-request sampling configuration.
    pub sampling: SamplingConfig,
}

/// A finished request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeResponse {
    /// The request id.
    pub id: u64,
    /// Full sequence: prompt followed by the generated continuation.
    pub tokens: Vec<usize>,
    /// Number of generated tokens.
    pub generated: usize,
}

/// An in-flight sequence.
#[derive(Debug)]
struct ActiveSeq {
    id: u64,
    tokens: Vec<usize>,
    /// Tokens to feed next step: whole prompt right after admission, the
    /// latest sample afterwards.
    next_input: Vec<usize>,
    produced: usize,
    max_new: usize,
    sampling: SamplingConfig,
    rng: StdRng,
    cache: KvCache,
}

/// Continuous-batching scheduler: admits/retires sequences of uneven
/// lengths every step and batches all projection GEMMs across whatever is
/// in flight.
///
/// KV state is paged ([`KvBlockPool`]): admission takes the *actual*
/// blocks a prompt needs right now (never a worst-case
/// `prompt + max_new` reservation), so a request is admitted as soon as a
/// retirement frees enough blocks. If the pool runs dry mid-decode, the
/// most recently admitted sequence is preempted — its blocks return to
/// the pool and its request goes back to the head of the queue. Because
/// sampling is per-request-seeded and logits rows are batch-independent,
/// a preempted request regenerates exactly the same tokens when it is
/// re-admitted.
///
/// ```
/// use edkm_core::{
///     CompressSpec, PalettizedModel, SamplingConfig, Scheduler, ServeRequest,
/// };
/// use edkm_nn::{LlamaConfig, LlamaModel};
/// use edkm_tensor::{runtime, DType, Device};
///
/// runtime::reset();
/// let dense = LlamaModel::new(LlamaConfig::tiny(), DType::Bf16, Device::Cpu, 0);
/// let mut spec = CompressSpec::with_bits(2);
/// spec.dkm.iters = 2;
/// let served = PalettizedModel::from_dense(&dense, &spec).unwrap();
/// let mut sched = Scheduler::new(&served, 2);
/// for id in 0..3 {
///     sched.submit(ServeRequest {
///         id,
///         prompt: vec![1 + id as usize],
///         max_new: 3,
///         sampling: SamplingConfig::greedy(),
///     });
/// }
/// let responses = sched.run_to_completion();
/// assert_eq!(responses.len(), 3);
/// assert!(responses.iter().all(|r| r.generated == 3));
/// // Every KV block returned to the pool at retirement.
/// assert_eq!(served.kv_pool().blocks_in_use(), 0);
/// ```
#[derive(Debug)]
pub struct Scheduler<'m, M: ServeModel = PalettizedModel> {
    model: &'m M,
    max_batch: usize,
    queue: VecDeque<ServeRequest>,
    active: Vec<ActiveSeq>,
    decode_steps: u64,
    tokens_generated: u64,
    preemptions: u64,
}

impl<'m, M: ServeModel> Scheduler<'m, M> {
    /// Scheduler over `model` admitting at most `max_batch` concurrent
    /// sequences.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is 0.
    pub fn new(model: &'m M, max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        Scheduler {
            model,
            max_batch,
            queue: VecDeque::new(),
            active: Vec::new(),
            decode_steps: 0,
            tokens_generated: 0,
            preemptions: 0,
        }
    }

    /// Enqueue a request.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or the request cannot fit `max_seq`.
    pub fn submit(&mut self, req: ServeRequest) {
        assert!(!req.prompt.is_empty(), "prompt must be non-empty");
        assert!(
            req.prompt.len() + req.max_new <= self.model.config().max_seq,
            "request {}: prompt {} + {} new tokens exceed max_seq {}",
            req.id,
            req.prompt.len(),
            req.max_new,
            self.model.config().max_seq
        );
        self.queue.push_back(req);
    }

    /// Requests waiting for admission.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Sequences currently in flight.
    pub fn active(&self) -> usize {
        self.active.len()
    }

    /// `true` when nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active.is_empty()
    }

    /// Batched forward steps executed so far.
    pub fn decode_steps(&self) -> u64 {
        self.decode_steps
    }

    /// Tokens generated so far (all requests).
    pub fn tokens_generated(&self) -> u64 {
        self.tokens_generated
    }

    /// KV-cache bytes currently charged to the pool by in-flight sequences.
    pub fn kv_live_bytes(&self) -> usize {
        self.active.iter().map(|s| s.cache.bytes()).sum()
    }

    /// Sequences preempted so far (blocks reclaimed, request requeued).
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// Requeue `seq` at the head of the queue, returning its blocks to the
    /// pool. The regenerated tokens are identical: sampling restarts from
    /// the request's own seed and rows never depend on batch composition.
    fn preempt(&mut self, seq: ActiveSeq) {
        let prompt_len = seq.tokens.len() - seq.produced;
        self.queue.push_front(ServeRequest {
            id: seq.id,
            prompt: seq.tokens[..prompt_len].to_vec(),
            max_new: seq.max_new,
            sampling: seq.sampling,
        });
        self.preemptions += 1;
        // Discarded tokens are re-generated (identically) after
        // re-admission; keep the counter equal to what callers receive.
        self.tokens_generated -= seq.produced as u64;
        drop(seq); // returns the sequence's KV blocks
    }

    /// One scheduling step: admit, run one batched forward, sample, retire.
    /// Returns the requests that finished during this step.
    ///
    /// # Panics
    ///
    /// Panics if the KV pool cannot hold even a single request's working
    /// set (one sequence running alone still starves) — the pool must be
    /// sized for at least `blocks_for(prompt + max_new)` of the largest
    /// request.
    pub fn step(&mut self) -> Vec<ServeResponse> {
        let mut finished = Vec::new();
        // Every in-flight sequence reserves its next chunk *before* any
        // admission, so a newcomer can never grab the blocks a running
        // sequence is about to need (which would admit it only to preempt
        // it in the same step, discarding its prefill). When the pool runs
        // dry, preempt from the tail (most recently admitted) until the
        // rest fit.
        let mut i = 0usize;
        while i < self.active.len() {
            let need = self.active[i].next_input.len();
            if self.active[i].cache.try_reserve(need) {
                i += 1;
                continue;
            }
            assert!(
                self.active.len() > 1,
                "KV pool too small for request {}: {} cached + {need} new tokens, pool caps at {} blocks",
                self.active[i].id,
                self.active[i].cache.len(),
                self.model.kv_pool().max_blocks()
            );
            let victim = self.active.pop().expect("non-empty active set");
            self.preempt(victim);
        }

        // Admit while there is batch budget *and* the pool has the blocks
        // each prompt actually needs now (prompt rows + the first decode
        // slot) — never a worst-case prompt+max_new reservation.
        // Zero-generation requests complete immediately without touching
        // the model.
        while self.active.len() < self.max_batch {
            let Some(req) = self.queue.pop_front() else {
                break;
            };
            if req.max_new == 0 {
                finished.push(ServeResponse {
                    id: req.id,
                    tokens: req.prompt,
                    generated: 0,
                });
                continue;
            }
            let mut cache = self.model.new_cache();
            if !cache.try_reserve(req.prompt.len() + 1) {
                assert!(
                    !self.active.is_empty(),
                    "KV pool too small for request {}: prompt {} + 1 needs {} blocks, pool caps at {}",
                    req.id,
                    req.prompt.len(),
                    self.model.kv_pool().blocks_for(req.prompt.len() + 1),
                    self.model.kv_pool().max_blocks()
                );
                // Not enough free blocks yet: keep FIFO order and retry
                // once a retirement frees some.
                self.queue.push_front(req);
                break;
            }
            self.active.push(ActiveSeq {
                id: req.id,
                tokens: req.prompt.clone(),
                next_input: req.prompt,
                produced: 0,
                max_new: req.max_new,
                sampling: req.sampling,
                rng: StdRng::seed_from_u64(req.sampling.seed),
                cache,
            });
        }
        if self.active.is_empty() {
            return finished;
        }

        // One batched forward over every in-flight sequence's new tokens.
        // Inputs are copied out (a few tokens each) so the caches can be
        // borrowed mutably at the same time.
        let inputs: Vec<Vec<usize>> = self.active.iter().map(|s| s.next_input.clone()).collect();
        let chunks: Vec<&[usize]> = inputs.iter().map(|v| v.as_slice()).collect();
        let row_ends: Vec<usize> = chunks
            .iter()
            .scan(0usize, |acc, c| {
                *acc += c.len();
                Some(*acc)
            })
            .collect();
        let mut caches: Vec<&mut KvCache> = self.active.iter_mut().map(|s| &mut s.cache).collect();
        let logits = self.model.forward_chunks(&chunks, &mut caches);
        drop(caches);
        self.decode_steps += 1;

        // Sample one token per sequence (rows map by this step's order),
        // then retire in a second pass so the row mapping stays intact.
        let vocab = self.model.config().vocab;
        let data = logits.to_vec();
        for (seq, &end) in self.active.iter_mut().zip(&row_ends) {
            let row = &data[(end - 1) * vocab..end * vocab];
            let next = sample_token(row, &seq.sampling, &mut seq.rng);
            seq.tokens.push(next);
            seq.next_input = vec![next];
            seq.produced += 1;
            self.tokens_generated += 1;
        }
        let mut i = 0usize;
        while i < self.active.len() {
            if self.active[i].produced == self.active[i].max_new {
                // `remove`, not `swap_remove`: the active set stays in
                // admission order, which is what makes tail preemption hit
                // the most recently admitted sequence.
                let seq = self.active.remove(i); // drops the KV cache
                finished.push(ServeResponse {
                    id: seq.id,
                    generated: seq.produced,
                    tokens: seq.tokens,
                });
            } else {
                i += 1;
            }
        }
        finished
    }

    /// Drive [`Scheduler::step`] until every submitted request finished.
    pub fn run_to_completion(&mut self) -> Vec<ServeResponse> {
        let mut all = Vec::new();
        while !self.is_idle() {
            all.extend(self.step());
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CompressSpec;
    use edkm_nn::{LlamaConfig, LlamaModel};
    use edkm_tensor::{runtime, DType, Device};

    fn served(bits_spec: &CompressSpec) -> PalettizedModel {
        let cfg = LlamaConfig {
            max_seq: 32,
            ..LlamaConfig::tiny()
        };
        let dense = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 42);
        PalettizedModel::from_dense(&dense, bits_spec).unwrap()
    }

    #[test]
    fn greedy_sampling_is_argmax_with_low_tie() {
        let mut rng = StdRng::seed_from_u64(0);
        let row = [0.5f32, 2.0, 2.0, -1.0];
        assert_eq!(sample_token(&row, &SamplingConfig::greedy(), &mut rng), 1);
    }

    #[test]
    fn temperature_zero_and_tiny_temperature_agree_eventually() {
        let mut rng = StdRng::seed_from_u64(1);
        let row = [0.1f32, 8.0, 0.2, 0.3];
        // At a tiny temperature the distribution collapses onto the argmax.
        for _ in 0..20 {
            assert_eq!(
                sample_token(&row, &SamplingConfig::with_temperature(1e-3, 7), &mut rng),
                1
            );
        }
    }

    #[test]
    fn top_k_filters_the_tail() {
        let mut rng = StdRng::seed_from_u64(2);
        let row = [1.0f32, 5.0, 4.0, -3.0, 2.0];
        for _ in 0..50 {
            let tok = sample_token(&row, &SamplingConfig::with_top_k(1.0, 2, 3), &mut rng);
            assert!(tok == 1 || tok == 2, "top-2 must exclude token {tok}");
        }
    }

    #[test]
    fn top_k_ties_at_the_cut_never_evict_the_argmax() {
        // Two 5.0s tie at the top-2 cut while 9.0 sits above it at a later
        // index: the strict maximum must always survive the filter, and the
        // one remaining slot goes to the first tied value.
        let mut rng = StdRng::seed_from_u64(4);
        let row = [5.0f32, 5.0, 9.0];
        let mut saw_argmax = false;
        for _ in 0..80 {
            let tok = sample_token(&row, &SamplingConfig::with_top_k(1.0, 2, 9), &mut rng);
            assert!(tok == 2 || tok == 0, "top-2 kept token {tok}");
            saw_argmax |= tok == 2;
        }
        assert!(saw_argmax, "the argmax must be sampleable");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let model = served(&CompressSpec::with_bits(3));
        let gen = Generator::new(&model);
        let s = SamplingConfig::with_top_k(0.8, 4, 123);
        let a = gen.generate(&[1, 2, 3], 10, &s);
        let b = gen.generate(&[1, 2, 3], 10, &s);
        assert_eq!(a, b, "same seed must reproduce the same tokens");
        let c = gen.generate(&[1, 2, 3], 10, &SamplingConfig::with_top_k(0.8, 4, 124));
        assert_eq!(a.len(), c.len());
    }

    #[test]
    fn generator_respects_prompt_and_length() {
        runtime::reset();
        let model = served(&CompressSpec::with_bits(3));
        let gen = Generator::new(&model);
        let out = gen.generate_greedy(&[1, 2, 3], 8);
        assert_eq!(out.len(), 11);
        assert_eq!(&out[..3], &[1, 2, 3]);
        assert!(out.iter().all(|&t| t < model.config().vocab));
        assert_eq!(gen.generate_greedy(&[4, 5], 0), vec![4, 5]);
    }

    #[test]
    fn scheduler_matches_solo_generation_exactly() {
        runtime::reset();
        let model = served(&CompressSpec::with_bits(3));
        let gen = Generator::new(&model);
        // Uneven prompts, mixed greedy and seeded sampling.
        let reqs = vec![
            ServeRequest {
                id: 1,
                prompt: vec![1, 2, 3, 4, 5],
                max_new: 9,
                sampling: SamplingConfig::greedy(),
            },
            ServeRequest {
                id: 2,
                prompt: vec![7],
                max_new: 4,
                sampling: SamplingConfig::with_temperature(0.9, 77),
            },
            ServeRequest {
                id: 3,
                prompt: vec![9, 8],
                max_new: 12,
                sampling: SamplingConfig::with_top_k(1.1, 3, 5),
            },
        ];
        let solo: Vec<Vec<usize>> = reqs
            .iter()
            .map(|r| gen.generate(&r.prompt, r.max_new, &r.sampling))
            .collect();
        let mut sched = Scheduler::new(&model, 2); // forces queueing too
        for r in &reqs {
            sched.submit(r.clone());
        }
        let mut out = sched.run_to_completion();
        out.sort_by_key(|r| r.id);
        assert_eq!(out.len(), 3);
        for (resp, want) in out.iter().zip(&solo) {
            assert_eq!(
                &resp.tokens, want,
                "request {} must not depend on batch composition",
                resp.id
            );
        }
        assert!(sched.is_idle());
        assert_eq!(sched.tokens_generated(), 9 + 4 + 12);
    }

    #[test]
    fn kv_bytes_return_to_baseline_after_retirement() {
        runtime::reset();
        let model = served(&CompressSpec::with_bits(2));
        let baseline = runtime::cpu_live_bytes();
        let mut sched = Scheduler::new(&model, 8);
        for id in 0..5u64 {
            sched.submit(ServeRequest {
                id,
                prompt: vec![1 + id as usize],
                max_new: 3 + id as usize,
                sampling: SamplingConfig::greedy(),
            });
        }
        sched.step();
        assert!(sched.kv_live_bytes() > 0, "in-flight caches are charged");
        assert!(runtime::cpu_live_bytes() > baseline);
        sched.run_to_completion();
        assert_eq!(sched.kv_live_bytes(), 0);
        assert_eq!(
            runtime::cpu_live_bytes(),
            baseline,
            "all KV bytes must drain when requests retire"
        );
    }

    #[test]
    fn zero_new_tokens_complete_without_forward() {
        runtime::reset();
        let model = served(&CompressSpec::with_bits(2));
        let mut sched = Scheduler::new(&model, 4);
        sched.submit(ServeRequest {
            id: 9,
            prompt: vec![3, 1],
            max_new: 0,
            sampling: SamplingConfig::greedy(),
        });
        let out = sched.step();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tokens, vec![3, 1]);
        assert_eq!(out[0].generated, 0);
        assert_eq!(sched.decode_steps(), 0);
    }

    #[test]
    fn bounded_pool_defers_admission_until_blocks_exist() {
        runtime::reset();
        // 4 tokens/block, room for 3 blocks: an 8-token prompt (needs
        // ceil(9/4) = 3 blocks at admission) fills the pool alone.
        let model = served(&CompressSpec::with_bits(2)).with_kv_config(KvBlockConfig {
            block_tokens: 4,
            max_blocks: 3,
        });
        let mut sched = Scheduler::new(&model, 4);
        for id in 0..2u64 {
            sched.submit(ServeRequest {
                id,
                prompt: vec![1; 8],
                max_new: 2,
                sampling: SamplingConfig::greedy(),
            });
        }
        sched.step();
        assert_eq!(sched.active(), 1, "only the first request fits the pool");
        assert_eq!(sched.queued(), 1, "the second waits for free blocks");
        let out = sched.run_to_completion();
        assert_eq!(out.len(), 2, "deferred admission must still complete");
        assert_eq!(model.kv_pool().blocks_in_use(), 0);
    }

    #[test]
    fn preemption_reclaims_blocks_and_replays_identically() {
        runtime::reset();
        let unbounded = served(&CompressSpec::with_bits(3));
        let reqs: Vec<ServeRequest> = (0..2u64)
            .map(|id| ServeRequest {
                id,
                prompt: vec![1 + id as usize, 5],
                max_new: 20,
                sampling: SamplingConfig::with_top_k(0.9, 4, 40 + id),
            })
            .collect();
        let mut free_sched = Scheduler::new(&unbounded, 2);
        for r in &reqs {
            free_sched.submit(r.clone());
        }
        let mut want = free_sched.run_to_completion();
        want.sort_by_key(|r| r.id);

        // Two 22-token sequences need 22 blocks total at 2 tokens/block;
        // 12 blocks can hold either alone but never both — the scheduler
        // must preempt, and the preempted request must regenerate the
        // exact same tokens after re-admission.
        let tight = served(&CompressSpec::with_bits(3)).with_kv_config(KvBlockConfig {
            block_tokens: 2,
            max_blocks: 12,
        });
        let mut sched = Scheduler::new(&tight, 2);
        for r in &reqs {
            sched.submit(r.clone());
        }
        let mut got = sched.run_to_completion();
        got.sort_by_key(|r| r.id);
        assert!(sched.preemptions() > 0, "the tight pool must preempt");
        assert_eq!(
            sched.tokens_generated(),
            2 * 20,
            "replayed tokens are not double-counted"
        );
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(
                g.tokens, w.tokens,
                "request {}: preemption must not change generated tokens",
                g.id
            );
        }
        assert_eq!(tight.kv_pool().blocks_in_use(), 0, "no leaked blocks");
    }

    #[test]
    #[should_panic(expected = "KV pool too small")]
    fn single_request_larger_than_the_pool_panics() {
        runtime::reset();
        let model = served(&CompressSpec::with_bits(2)).with_kv_config(KvBlockConfig {
            block_tokens: 2,
            max_blocks: 2,
        });
        let mut sched = Scheduler::new(&model, 1);
        sched.submit(ServeRequest {
            id: 0,
            prompt: vec![1; 8], // needs ceil(9/2) = 5 blocks, pool caps at 2
            max_new: 4,
            sampling: SamplingConfig::greedy(),
        });
        sched.step();
    }

    #[test]
    #[should_panic(expected = "exceed max_seq")]
    fn oversized_request_is_rejected_at_submit() {
        let model = served(&CompressSpec::with_bits(2));
        let mut sched = Scheduler::new(&model, 1);
        sched.submit(ServeRequest {
            id: 0,
            prompt: vec![1; 30],
            max_new: 30,
            sampling: SamplingConfig::greedy(),
        });
    }
}
