//! Serving layer over [`PalettizedModel`]: KV-cached autoregressive
//! generation and a continuous-batching scheduler.
//!
//! The [`Generator`] drives one sequence (greedy or seeded
//! temperature/top-k sampling). The [`Scheduler`] keeps a request queue and
//! a set of in-flight sequences of *uneven* lengths: each step it admits
//! waiting requests up to the batch budget, runs one batched forward (new
//! requests contribute their whole prompt, running ones their latest
//! token — so projection GEMMs batch across everything), samples one token
//! per sequence, and retires finished requests, returning their KV-cache
//! bytes to the pool.
//!
//! Sampling state is **per request** (its own seeded RNG), and every
//! logits row depends only on its own sequence, so a request produces
//! exactly the same tokens whether it runs alone or batched with arbitrary
//! neighbours — the invariant the scheduler test suite pins.

use crate::infer::{ChunkView, KvCache, PalettizedModel, ServeModel};
use crate::scratch::ScratchArena;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

pub use crate::kv::{KvBlockConfig, KvBlockPool};

/// How to turn a logits row into the next token.
///
/// The `Default` config is greedy argmax decoding (the same config
/// [`SamplingConfig::greedy`] returns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingConfig {
    /// Softmax temperature; `0.0` means greedy argmax.
    pub temperature: f32,
    /// Keep only the `top_k` most likely tokens (`0` keeps all).
    pub top_k: usize,
    /// Seed of the per-request RNG (ignored when greedy).
    pub seed: u64,
}

impl Default for SamplingConfig {
    /// Greedy argmax decoding.
    fn default() -> Self {
        SamplingConfig::greedy()
    }
}

impl SamplingConfig {
    /// Deterministic argmax decoding.
    #[must_use]
    pub fn greedy() -> Self {
        SamplingConfig {
            temperature: 0.0,
            top_k: 0,
            seed: 0,
        }
    }

    /// Seeded temperature sampling over the full vocabulary.
    #[must_use]
    pub fn with_temperature(temperature: f32, seed: u64) -> Self {
        SamplingConfig {
            temperature,
            top_k: 0,
            seed,
        }
    }

    /// Seeded temperature sampling restricted to the `top_k` best tokens.
    #[must_use]
    pub fn with_top_k(temperature: f32, top_k: usize, seed: u64) -> Self {
        SamplingConfig {
            temperature,
            top_k,
            seed,
        }
    }

    /// `true` when this config never consumes randomness.
    pub fn is_greedy(&self) -> bool {
        self.temperature <= 0.0
    }
}

/// Scheduling class of a request: higher classes are admitted ahead of
/// lower ones; within a class admission is FIFO by submission age.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Admitted only when nothing at `Normal` or `High` is waiting.
    Low,
    /// The default class.
    #[default]
    Normal,
    /// Admitted ahead of everything else.
    High,
}

/// Why a request stopped generating — the terminal state of every request
/// that enters the serving stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FinishReason {
    /// Generated its full `max_new` budget (also zero-budget requests).
    MaxTokens,
    /// Sampled one of its stop tokens (the stop token is included in the
    /// output; KV blocks are freed on the same step).
    StopToken,
    /// Cancelled by the caller before finishing.
    Cancelled,
    /// Its step deadline elapsed before it finished.
    DeadlineExceeded,
    /// Finished its generation (by budget or stop token) after surviving
    /// at least one preemption-and-replay.
    PreemptedThenFinished,
}

impl FinishReason {
    /// `true` for reasons that cut a request short ([`Cancelled`]
    /// / [`DeadlineExceeded`]), `false` when generation ran to its natural
    /// end.
    ///
    /// [`Cancelled`]: FinishReason::Cancelled
    /// [`DeadlineExceeded`]: FinishReason::DeadlineExceeded
    pub fn is_aborted(&self) -> bool {
        matches!(
            self,
            FinishReason::Cancelled | FinishReason::DeadlineExceeded
        )
    }
}

/// Pick the next token from one logits row. Greedy takes the first argmax
/// (ties break low, matching `ops::argmax_lastdim`); sampling scales by
/// temperature, keeps the top-k, softmaxes and draws from `rng`.
pub fn sample_token(row: &[f32], sampling: &SamplingConfig, rng: &mut StdRng) -> usize {
    assert!(!row.is_empty(), "empty logits row");
    if sampling.is_greedy() {
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in row.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        return best;
    }
    let mut scaled: Vec<f32> = row.iter().map(|&v| v / sampling.temperature).collect();
    if sampling.top_k > 0 && sampling.top_k < row.len() {
        // The top_k-th largest value is the cut. Everything strictly above
        // it always survives; values *equal* to the cut fill the remaining
        // budget in index order (so ties straddling the cut can never push
        // out a strictly larger logit).
        let mut sorted = scaled.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite logits"));
        let cut = sorted[sampling.top_k - 1];
        let above = scaled.iter().filter(|&&v| v > cut).count();
        let mut tie_budget = sampling.top_k - above;
        for v in scaled.iter_mut() {
            if *v > cut {
                continue;
            }
            if *v == cut && tie_budget > 0 {
                tie_budget -= 1;
            } else {
                *v = f32::NEG_INFINITY;
            }
        }
    }
    // Stable softmax, then inverse-CDF draw.
    let mx = scaled.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in scaled.iter_mut() {
        *v = (*v - mx).exp();
        sum += *v;
    }
    let u: f32 = rng.gen::<f32>() * sum;
    let mut acc = 0.0f32;
    let mut last = 0usize;
    for (i, &p) in scaled.iter().enumerate() {
        if p > 0.0 {
            acc += p;
            last = i;
            if u < acc {
                return i;
            }
        }
    }
    last // rounding fell off the end: return the last viable token
}

/// KV-cached autoregressive generation over any [`ServeModel`]
/// (a [`PalettizedModel`] or its tensor-parallel sharded counterpart).
///
/// ```
/// use edkm_core::{CompressSpec, Generator, PalettizedModel};
/// use edkm_nn::{LlamaConfig, LlamaModel};
/// use edkm_tensor::{runtime, DType, Device};
///
/// runtime::reset();
/// let dense = LlamaModel::new(LlamaConfig::tiny(), DType::Bf16, Device::Cpu, 0);
/// let mut spec = CompressSpec::with_bits(2);
/// spec.dkm.iters = 2;
/// let served = PalettizedModel::from_dense(&dense, &spec).unwrap();
/// let out = Generator::new(&served).generate_greedy(&[1, 2], 4);
/// assert_eq!(out.len(), 6); // prompt + 4 generated tokens
/// assert_eq!(&out[..2], &[1, 2]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Generator<'m, M: ServeModel = PalettizedModel> {
    model: &'m M,
}

impl<'m, M: ServeModel> Generator<'m, M> {
    /// Generator over `model`.
    pub fn new(model: &'m M) -> Self {
        Generator { model }
    }

    /// Continue `prompt` by `n_new` tokens under `sampling`. Returns the
    /// full sequence (prompt + generated).
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or `prompt.len() + n_new` exceeds the
    /// model's `max_seq`.
    pub fn generate(
        &self,
        prompt: &[usize],
        n_new: usize,
        sampling: &SamplingConfig,
    ) -> Vec<usize> {
        // A thin wrapper over a solo scheduler: one request, batch budget 1
        // — exactly the loop `ServeEngine` drives, run inline. Tokens are
        // identical either way because sampling is per-request-seeded and
        // logits rows never depend on batch composition.
        let mut sched = Scheduler::new(self.model, 1);
        sched.submit(ServeRequest::new(0, prompt.to_vec(), n_new, *sampling));
        let mut out = sched.run_to_completion();
        out.pop().expect("solo request completes").tokens
    }

    /// Greedy continuation (sugar for [`SamplingConfig::greedy`]).
    pub fn generate_greedy(&self, prompt: &[usize], n_new: usize) -> Vec<usize> {
        self.generate(prompt, n_new, &SamplingConfig::greedy())
    }
}

/// One generation request submitted to the [`Scheduler`].
///
/// [`ServeRequest::new`] fills the policy fields with their defaults (no
/// stop tokens, [`Priority::Normal`], no deadline); set them directly for
/// anything fancier.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Caller-chosen id, echoed in the response.
    pub id: u64,
    /// Prompt token ids (non-empty).
    pub prompt: Vec<usize>,
    /// How many tokens to generate at most.
    pub max_new: usize,
    /// Per-request sampling configuration.
    pub sampling: SamplingConfig,
    /// Token ids that end generation early when sampled (the stop token is
    /// kept in the output and the sequence retires on the same step).
    pub stop_tokens: Vec<usize>,
    /// Scheduling class: higher classes are admitted first.
    pub priority: Priority,
    /// Give up with [`FinishReason::DeadlineExceeded`] once this many
    /// scheduler steps have elapsed since submission without finishing.
    pub deadline_steps: Option<u64>,
}

impl ServeRequest {
    /// A request with default policy: no stop tokens, [`Priority::Normal`],
    /// no deadline.
    #[must_use]
    pub fn new(id: u64, prompt: Vec<usize>, max_new: usize, sampling: SamplingConfig) -> Self {
        ServeRequest {
            id,
            prompt,
            max_new,
            sampling,
            stop_tokens: Vec::new(),
            priority: Priority::Normal,
            deadline_steps: None,
        }
    }
}

/// A finished request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeResponse {
    /// The request id.
    pub id: u64,
    /// Full sequence: prompt followed by the generated continuation.
    pub tokens: Vec<usize>,
    /// Number of generated tokens.
    pub generated: usize,
    /// Why generation stopped.
    pub finish: FinishReason,
}

/// One token sampled during a [`Scheduler::step_events`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenEmission {
    /// The request that produced the token.
    pub id: u64,
    /// The sampled token id.
    pub token: usize,
    /// 0-based index among the request's generated tokens (`0` is the
    /// first token, i.e. the TTFT marker).
    pub index: usize,
}

/// Everything one scheduling step produced: freshly sampled tokens (replays
/// after a preemption are suppressed — each generated token is emitted
/// exactly once) plus the requests that reached a terminal state.
#[derive(Debug, Clone, Default)]
pub struct StepEvents {
    /// Tokens sampled this step, one per in-flight sequence that advanced
    /// past its previously emitted high-water mark.
    pub tokens: Vec<TokenEmission>,
    /// Requests that finished (any [`FinishReason`]) during this step.
    pub finished: Vec<ServeResponse>,
}

impl StepEvents {
    /// Empty both event lists, keeping their capacity — what lets a
    /// driving loop pass one `StepEvents` to
    /// [`Scheduler::step_events_into`] every step without reallocating.
    pub fn clear(&mut self) {
        self.tokens.clear();
        self.finished.clear();
    }
}

/// A queued request plus the scheduler-side bookkeeping that survives
/// preemption: its admission rank, its absolute deadline, and the tokens
/// already emitted to the caller.
#[derive(Debug)]
struct QueuedReq {
    req: ServeRequest,
    /// Monotone submission rank; FIFO tiebreak within a priority class.
    arrival: u64,
    /// Absolute `decode_steps` value at which the request expires.
    expire_at: Option<u64>,
    /// Generated tokens already emitted before a preemption (empty for a
    /// fresh submission). Replays below this mark are not re-emitted, and
    /// a terminal response produced while requeued (cancel, deadline) must
    /// still carry these tokens — the caller already received them.
    emitted: Vec<usize>,
    /// `true` once the request has been preempted at least once.
    preempted: bool,
}

impl QueuedReq {
    /// Terminal response for a request that ends while waiting in the
    /// queue: the prompt plus whatever was emitted before a preemption.
    fn into_response(self, finish: FinishReason) -> ServeResponse {
        let generated = self.emitted.len();
        let mut tokens = self.req.prompt;
        tokens.extend(self.emitted);
        ServeResponse {
            id: self.req.id,
            tokens,
            generated,
            finish,
        }
    }
}

/// An in-flight sequence.
#[derive(Debug)]
struct ActiveSeq {
    id: u64,
    tokens: Vec<usize>,
    /// Tokens to feed next step: whole prompt right after admission, the
    /// latest sample afterwards.
    next_input: Vec<usize>,
    produced: usize,
    max_new: usize,
    sampling: SamplingConfig,
    stop_tokens: Vec<usize>,
    priority: Priority,
    arrival: u64,
    expire_at: Option<u64>,
    /// Tokens already emitted to the caller; `len()` is the emit-once
    /// high-water mark. During a replay after preemption `produced` can
    /// trail `emitted.len()` — the tail is what the caller already holds.
    emitted: Vec<usize>,
    preempted: bool,
    stop_hit: bool,
    rng: StdRng,
}

impl ActiveSeq {
    /// The terminal reason for a sequence that completed its generation.
    fn natural_finish(&self) -> FinishReason {
        if self.preempted {
            FinishReason::PreemptedThenFinished
        } else if self.stop_hit {
            FinishReason::StopToken
        } else {
            FinishReason::MaxTokens
        }
    }

    /// Terminal response for a sequence cut short mid-flight (cancel,
    /// deadline). Mid-replay, `produced` may trail the emitted high-water
    /// mark; the response must still carry every token the caller already
    /// received (the replay would have regenerated them identically).
    fn into_response(self, finish: FinishReason) -> ServeResponse {
        let mut tokens = self.tokens;
        let generated = self.produced.max(self.emitted.len());
        if self.emitted.len() > self.produced {
            tokens.extend_from_slice(&self.emitted[self.produced..]);
        }
        ServeResponse {
            id: self.id,
            tokens,
            generated,
            finish,
        }
    }
}

/// Draft-model bookkeeping for one speculative sequence: the draft's own
/// KV cache plus the exact token stream already fed into it, so a
/// mis-speculation rolls the draft back to the longest common prefix with
/// the committed stream instead of re-prefilling from scratch.
#[derive(Debug)]
struct DraftSeq {
    cache: KvCache,
    fed: Vec<usize>,
}

/// The in-flight sequences, their KV caches, and (when speculative
/// decoding is on) their draft-model state, in aligned vecs (entry `i` of
/// each belongs to the same request, in admission order). Splitting the
/// caches out of [`ActiveSeq`] is what lets one step hand the model a
/// contiguous `&mut [KvCache]` slab while the per-sequence bookkeeping
/// stays independently borrowable — no per-step `Vec<&mut KvCache>` of
/// reborrows.
#[derive(Debug, Default)]
struct Flight {
    seqs: Vec<ActiveSeq>,
    caches: Vec<KvCache>,
    drafts: Vec<Option<DraftSeq>>,
}

impl Flight {
    fn len(&self) -> usize {
        debug_assert_eq!(self.seqs.len(), self.caches.len());
        debug_assert_eq!(self.seqs.len(), self.drafts.len());
        self.seqs.len()
    }

    fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    fn push(&mut self, seq: ActiveSeq, cache: KvCache) {
        self.seqs.push(seq);
        self.caches.push(cache);
        self.drafts.push(None);
    }

    /// Order-preserving removal (the active set stays in admission order,
    /// which is what makes tail preemption hit the newest sequence). Any
    /// draft state drops with the slot.
    fn remove(&mut self, i: usize) -> (ActiveSeq, KvCache) {
        self.drafts.remove(i);
        (self.seqs.remove(i), self.caches.remove(i))
    }

    fn pop(&mut self) -> Option<(ActiveSeq, KvCache)> {
        let seq = self.seqs.pop()?;
        let cache = self.caches.pop().expect("vecs stay aligned");
        self.drafts.pop().expect("vecs stay aligned");
        Some((seq, cache))
    }
}

/// Speculative-decoding state: the aggressively palettized draft model,
/// the per-step proposals it produced, and dedicated scratch so draft
/// forward shapes never thrash the target's arena.
struct SpecState {
    draft: std::sync::Arc<dyn ServeModel>,
    draft_k: usize,
    scratch: ScratchArena,
    /// Per-flight-slot proposals for the current step, rebuilt in place.
    proposals: Vec<Vec<usize>>,
    /// Per-flight-slot KV rollback length after verification (`Some` only
    /// for slots that speculated this step).
    rollbacks: Vec<Option<usize>>,
    /// Flat batch buffers for the draft forwards.
    draft_tokens: Vec<usize>,
    draft_ends: Vec<usize>,
    /// Never consumed: greedy sampling ignores randomness, but
    /// [`sample_token`] wants an RNG handle.
    rng: StdRng,
}

impl std::fmt::Debug for SpecState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpecState")
            .field("draft_k", &self.draft_k)
            .finish_non_exhaustive()
    }
}

/// Continuous-batching scheduler: admits/retires sequences of uneven
/// lengths every step and batches all projection GEMMs across whatever is
/// in flight.
///
/// KV state is paged ([`KvBlockPool`]): admission takes the *actual*
/// blocks a prompt needs right now (never a worst-case
/// `prompt + max_new` reservation), so a request is admitted as soon as a
/// retirement frees enough blocks. If the pool runs dry mid-decode, the
/// most recently admitted sequence is preempted — its blocks return to
/// the pool and its request goes back to the head of the queue. Because
/// sampling is per-request-seeded and logits rows are batch-independent,
/// a preempted request regenerates exactly the same tokens when it is
/// re-admitted.
///
/// ```
/// use edkm_core::{
///     CompressSpec, PalettizedModel, SamplingConfig, Scheduler, ServeRequest,
/// };
/// use edkm_nn::{LlamaConfig, LlamaModel};
/// use edkm_tensor::{runtime, DType, Device};
///
/// runtime::reset();
/// let dense = LlamaModel::new(LlamaConfig::tiny(), DType::Bf16, Device::Cpu, 0);
/// let mut spec = CompressSpec::with_bits(2);
/// spec.dkm.iters = 2;
/// let served = PalettizedModel::from_dense(&dense, &spec).unwrap();
/// let mut sched = Scheduler::new(&served, 2);
/// for id in 0..3 {
///     sched.submit(ServeRequest::new(
///         id,
///         vec![1 + id as usize],
///         3,
///         SamplingConfig::greedy(),
///     ));
/// }
/// let responses = sched.run_to_completion();
/// assert_eq!(responses.len(), 3);
/// assert!(responses.iter().all(|r| r.generated == 3));
/// // Every KV block returned to the pool at retirement.
/// assert_eq!(served.kv_pool().blocks_in_use(), 0);
/// ```
#[derive(Debug)]
pub struct Scheduler<'m, M: ServeModel = PalettizedModel> {
    model: &'m M,
    max_batch: usize,
    queue: VecDeque<QueuedReq>,
    flight: Flight,
    arrivals: u64,
    decode_steps: u64,
    tokens_generated: u64,
    preemptions: u64,
    prefix_hits: u64,
    prefix_tokens_reused: u64,
    spec_proposed: u64,
    spec_accepted: u64,
    /// Speculative-decoding state; `None` runs plain one-token decode.
    spec: Option<SpecState>,
    /// Reusable forward-pass scratch: after one step of a given flight
    /// shape, later steps of the same shape allocate nothing.
    scratch: ScratchArena,
    /// Scheduler-owned flat batch descriptor (every sequence's new tokens
    /// concatenated + cumulative chunk ends), rebuilt in place each step —
    /// the buffers behind the [`ChunkView`] handed to the model. The ends
    /// double as the cumulative logits row offsets at sampling time.
    flat_tokens: Vec<usize>,
    chunk_ends: Vec<usize>,
}

impl<'m, M: ServeModel> Scheduler<'m, M> {
    /// Scheduler over `model` admitting at most `max_batch` concurrent
    /// sequences.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is 0.
    pub fn new(model: &'m M, max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        Scheduler {
            model,
            max_batch,
            queue: VecDeque::new(),
            flight: Flight::default(),
            arrivals: 0,
            decode_steps: 0,
            tokens_generated: 0,
            preemptions: 0,
            prefix_hits: 0,
            prefix_tokens_reused: 0,
            spec_proposed: 0,
            spec_accepted: 0,
            spec: None,
            scratch: ScratchArena::new(),
            flat_tokens: Vec::new(),
            chunk_ends: Vec::new(),
        }
    }

    /// A scheduler that speculatively decodes greedy requests: `draft`
    /// (typically a 2-bit palettization of the same architecture) proposes
    /// up to `draft_k` tokens per step and the target model verifies them
    /// in one batched forward. Acceptance is exact — a proposal survives
    /// only if it equals the target's own greedy argmax at that position —
    /// so the emitted tokens are bit-identical to non-speculative greedy
    /// decoding; a bad draft only lowers the accepted-per-step rate.
    /// Non-greedy requests decode on the standard one-token path.
    ///
    /// The draft should draw from an **unbounded** KV pool (the default):
    /// draft cache pressure must never preempt target sequences.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or `draft_k` is 0, or if the draft's
    /// vocabulary or context length differ from the target's.
    pub fn with_speculative(
        model: &'m M,
        max_batch: usize,
        draft: std::sync::Arc<dyn ServeModel>,
        draft_k: usize,
    ) -> Self {
        assert!(draft_k > 0, "draft_k must be positive");
        assert_eq!(
            draft.config().vocab,
            model.config().vocab,
            "draft and target must share a vocabulary"
        );
        assert!(
            draft.config().max_seq >= model.config().max_seq,
            "draft max_seq must cover the target's"
        );
        let mut sched = Self::new(model, max_batch);
        sched.spec = Some(SpecState {
            draft,
            draft_k,
            scratch: ScratchArena::new(),
            proposals: Vec::new(),
            rollbacks: Vec::new(),
            draft_tokens: Vec::new(),
            draft_ends: Vec::new(),
            rng: StdRng::seed_from_u64(0),
        });
        sched
    }

    /// Current speculative draft budget, `None` when this scheduler
    /// decodes plainly.
    pub fn draft_k(&self) -> Option<usize> {
        self.spec.as_ref().map(|s| s.draft_k)
    }

    /// Retune the speculative draft budget mid-flight (clamped to ≥ 1; a
    /// no-op on a plain scheduler). Exact acceptance makes this safe at
    /// any moment: a smaller `k` only shortens the proposal walk, never
    /// changes an emitted token — the degrade ladder's cheap way to shed
    /// draft-model compute under pressure.
    pub fn set_draft_k(&mut self, k: usize) {
        if let Some(spec) = self.spec.as_mut() {
            spec.draft_k = k.max(1);
        }
    }

    /// Enqueue a request. Admission during [`Scheduler::step`] picks the
    /// highest [`Priority`] class first and is FIFO by submission age
    /// within a class; a `deadline_steps` budget starts counting now.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or the request cannot fit `max_seq`.
    pub fn submit(&mut self, req: ServeRequest) {
        assert!(!req.prompt.is_empty(), "prompt must be non-empty");
        assert!(
            req.prompt.len() + req.max_new <= self.model.config().max_seq,
            "request {}: prompt {} + {} new tokens exceed max_seq {}",
            req.id,
            req.prompt.len(),
            req.max_new,
            self.model.config().max_seq
        );
        let arrival = self.arrivals;
        self.arrivals += 1;
        let expire_at = req.deadline_steps.map(|d| self.decode_steps + d);
        self.queue.push_back(QueuedReq {
            req,
            arrival,
            expire_at,
            emitted: Vec::new(),
            preempted: false,
        });
    }

    /// Remove a request from the scheduler, wherever it is: still queued
    /// (the response carries the bare prompt) or mid-flight (its KV blocks
    /// return to the pool immediately, before any further decode step).
    /// Returns `None` if no such request is queued or active — it already
    /// finished, or was never submitted.
    ///
    /// Tokens the request generated before cancellation stay counted in
    /// [`Scheduler::tokens_generated`]: they were delivered.
    pub fn cancel(&mut self, id: u64) -> Option<ServeResponse> {
        if let Some(i) = self.queue.iter().position(|q| q.req.id == id) {
            let q = self.queue.remove(i).expect("position is in range");
            return Some(q.into_response(FinishReason::Cancelled));
        }
        let i = self.flight.seqs.iter().position(|s| s.id == id)?;
        // Removing the sequence drops its cache: blocks are freed now, not
        // on some later step.
        let (seq, cache) = self.flight.remove(i);
        drop(cache);
        Some(seq.into_response(FinishReason::Cancelled))
    }

    /// Requests waiting for admission.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Sequences currently in flight.
    pub fn active(&self) -> usize {
        self.flight.len()
    }

    /// `true` when nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.flight.is_empty()
    }

    /// Batched forward steps executed so far.
    pub fn decode_steps(&self) -> u64 {
        self.decode_steps
    }

    /// Tokens generated so far (all requests).
    pub fn tokens_generated(&self) -> u64 {
        self.tokens_generated
    }

    /// KV-cache bytes currently charged to the pool by in-flight
    /// sequences, counting each *physical* block once: a prefix block
    /// mapped read-only by several block tables contributes a single
    /// `block_bytes` no matter how many sequences share it. Without prefix
    /// sharing this equals the plain per-cache sum.
    pub fn kv_live_bytes(&self) -> usize {
        let mut owned = 0usize;
        let mut shared_ids: Vec<usize> = Vec::new();
        for c in &self.flight.caches {
            for (id, is_shared) in c.block_entries() {
                if !is_shared {
                    owned += 1;
                } else if !shared_ids.contains(&id) {
                    shared_ids.push(id);
                }
            }
        }
        (owned + shared_ids.len()) * self.model.kv_pool().block_bytes()
    }

    /// Requests admitted with a non-empty prefix-cache match.
    pub fn prefix_hits(&self) -> u64 {
        self.prefix_hits
    }

    /// Prompt tokens served straight from the prefix cache instead of
    /// being prefilled.
    pub fn prefix_tokens_reused(&self) -> u64 {
        self.prefix_tokens_reused
    }

    /// Tokens proposed by the speculative draft model so far.
    pub fn spec_proposed(&self) -> u64 {
        self.spec_proposed
    }

    /// Proposed tokens the target model accepted (always `<=`
    /// [`Scheduler::spec_proposed`]).
    pub fn spec_accepted(&self) -> u64 {
        self.spec_accepted
    }

    /// Sequences preempted so far (blocks reclaimed, request requeued).
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// The scheduler's reusable forward-pass scratch arena. Its
    /// [`ScratchArena::grows`] counter is flat across steady-state decode
    /// steps — the allocation-free contract `tests/alloc_steady_state.rs`
    /// pins.
    pub fn scratch(&self) -> &ScratchArena {
        &self.scratch
    }

    /// Requeue `seq`, returning its blocks to the pool. The regenerated
    /// tokens are identical: sampling restarts from the request's own seed
    /// and rows never depend on batch composition. The request keeps its
    /// original arrival rank (so it sorts ahead of everything that was
    /// still queued behind it) and its absolute deadline.
    fn preempt(&mut self, mut seq: ActiveSeq, cache: KvCache) {
        let prompt_len = seq.tokens.len() - seq.produced;
        let prompt = seq.tokens[..prompt_len].to_vec();
        self.queue.push_front(QueuedReq {
            req: ServeRequest {
                id: seq.id,
                prompt,
                max_new: seq.max_new,
                sampling: seq.sampling,
                stop_tokens: std::mem::take(&mut seq.stop_tokens),
                priority: seq.priority,
                deadline_steps: None, // expire_at already absolute
            },
            arrival: seq.arrival,
            expire_at: seq.expire_at,
            emitted: std::mem::take(&mut seq.emitted),
            preempted: true,
        });
        self.preemptions += 1;
        // Discarded tokens are re-generated (identically) after
        // re-admission; keep the counter equal to what callers receive.
        self.tokens_generated -= seq.produced as u64;
        drop(cache); // returns the sequence's KV blocks
    }

    /// Index of the next queue entry to admit: highest priority class
    /// first, earliest arrival within a class.
    fn next_admission(&self) -> Option<usize> {
        self.queue
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| (std::cmp::Reverse(q.req.priority), q.arrival))
            .map(|(i, _)| i)
    }

    /// Expire every queued or active request whose step deadline has
    /// passed, appending their terminal responses to `finished`. An active
    /// sequence's KV blocks return to the pool immediately.
    fn expire_deadlines(&mut self, finished: &mut Vec<ServeResponse>) {
        let now = self.decode_steps;
        let mut i = 0usize;
        while i < self.queue.len() {
            if self.queue[i].expire_at.is_some_and(|e| now >= e) {
                let q = self.queue.remove(i).expect("position is in range");
                finished.push(q.into_response(FinishReason::DeadlineExceeded));
            } else {
                i += 1;
            }
        }
        let mut i = 0usize;
        while i < self.flight.len() {
            if self.flight.seqs[i].expire_at.is_some_and(|e| now >= e) {
                // Dropping the cache returns the sequence's KV blocks.
                let (seq, cache) = self.flight.remove(i);
                drop(cache);
                finished.push(seq.into_response(FinishReason::DeadlineExceeded));
            } else {
                i += 1;
            }
        }
    }

    /// One scheduling step: admit, run one batched forward, sample, retire.
    /// Returns the requests that finished during this step; the per-token
    /// emissions are discarded (use [`Scheduler::step_events`] to stream).
    ///
    /// # Panics
    ///
    /// Panics if the KV pool cannot hold even a single request's working
    /// set (one sequence running alone still starves) — the pool must be
    /// sized for at least `blocks_for(prompt + max_new)` of the largest
    /// request.
    pub fn step(&mut self) -> Vec<ServeResponse> {
        self.step_events().finished
    }

    /// One scheduling step with per-token reporting — the streaming core
    /// [`crate::engine::ServeEngine`] drives. Expires deadlines, admits by
    /// priority, runs one batched forward, samples one token per in-flight
    /// sequence (emitting every token exactly once, replays excluded), and
    /// retires sequences that hit their budget or a stop token.
    ///
    /// # Panics
    ///
    /// Panics under the same pool-starvation condition as
    /// [`Scheduler::step`].
    pub fn step_events(&mut self) -> StepEvents {
        let mut events = StepEvents::default();
        self.step_events_into(&mut events);
        events
    }

    /// [`Scheduler::step_events`] writing into a caller-owned (and
    /// reusable) [`StepEvents`] — the entry point the engine's worker loop
    /// drives so that a steady-state decode step performs **zero** heap
    /// allocations anywhere in the scheduler: the batch descriptor, the
    /// caches, the sampled-token bookkeeping and the event lists all live
    /// in buffers that persist across steps. `events` is cleared first.
    ///
    /// # Panics
    ///
    /// Panics under the same pool-starvation condition as
    /// [`Scheduler::step`].
    pub fn step_events_into(&mut self, events: &mut StepEvents) {
        events.clear();
        // Deadlines expire before any admission or compute: a request past
        // its budget must not consume another forward pass.
        self.expire_deadlines(&mut events.finished);

        // Every in-flight sequence reserves its next chunk *before* any
        // admission, so a newcomer can never grab the blocks a running
        // sequence is about to need (which would admit it only to preempt
        // it in the same step, discarding its prefill). When the pool runs
        // dry, preempt from the tail (most recently admitted) until the
        // rest fit.
        let mut i = 0usize;
        while i < self.flight.len() {
            let need = self.flight.seqs[i].next_input.len();
            if self.flight.caches[i].try_reserve(need) {
                i += 1;
                continue;
            }
            assert!(
                self.flight.len() > 1,
                "KV pool too small for request {}: {} cached + {need} new tokens, pool caps at {} blocks",
                self.flight.seqs[i].id,
                self.flight.caches[i].len(),
                self.model.kv_pool().max_blocks()
            );
            let (victim, cache) = self.flight.pop().expect("non-empty active set");
            self.preempt(victim, cache);
        }

        // Admit while there is batch budget *and* the pool has the blocks
        // each prompt actually needs now (prompt rows + the first decode
        // slot) — never a worst-case prompt+max_new reservation. Admission
        // picks the highest priority class, FIFO within it; when the best
        // candidate does not fit, admission stops entirely (no skip-ahead:
        // a stream of small requests must not starve a large one).
        // Zero-generation requests complete immediately without touching
        // the model.
        while self.flight.len() < self.max_batch {
            let Some(i) = self.next_admission() else {
                break;
            };
            let q = self.queue.remove(i).expect("position is in range");
            if q.req.max_new == 0 {
                events.finished.push(ServeResponse {
                    id: q.req.id,
                    tokens: q.req.prompt,
                    generated: 0,
                    finish: FinishReason::MaxTokens,
                });
                continue;
            }
            let mut cache = self.model.new_cache();
            // With the prefix cache on, adopt the longest indexed prefix
            // read-only (charged once pool-wide) and prefill only the
            // suffix. The lookup is capped one token short of the prompt,
            // so the suffix forward always produces a logits row.
            let reused = self
                .model
                .kv_pool()
                .prefix_lookup(&q.req.prompt, &mut cache);
            if !cache.try_reserve(q.req.prompt.len() + 1 - reused) {
                assert!(
                    !self.flight.is_empty(),
                    "KV pool too small for request {}: prompt {} + 1 needs {} blocks, pool caps at {}",
                    q.req.id,
                    q.req.prompt.len(),
                    self.model.kv_pool().blocks_for(q.req.prompt.len() + 1),
                    self.model.kv_pool().max_blocks()
                );
                // Not enough free blocks yet: keep queue order and retry
                // once a retirement frees some. Dropping the cache releases
                // any adopted prefix references.
                self.queue.insert(i.min(self.queue.len()), q);
                break;
            }
            if reused > 0 {
                self.prefix_hits += 1;
                self.prefix_tokens_reused += reused as u64;
            }
            // Admission pre-sizes every per-sequence vec for the whole
            // generation (tokens, emitted high-water mark), so steady-state
            // pushes below never reallocate mid-flight.
            let mut tokens = Vec::with_capacity(q.req.prompt.len() + q.req.max_new);
            tokens.extend_from_slice(&q.req.prompt);
            let mut emitted = q.emitted;
            emitted.reserve(q.req.max_new.saturating_sub(emitted.len()));
            // The prefill chunk is only the un-adopted prompt suffix; the
            // forward starts writing at `cache.len()`, i.e. right after
            // the adopted prefix, so RoPE positions line up for free.
            let mut next_input = q.req.prompt;
            next_input.drain(..reused);
            self.flight.push(
                ActiveSeq {
                    id: q.req.id,
                    tokens,
                    next_input,
                    produced: 0,
                    max_new: q.req.max_new,
                    sampling: q.req.sampling,
                    stop_tokens: q.req.stop_tokens,
                    priority: q.req.priority,
                    arrival: q.arrival,
                    expire_at: q.expire_at,
                    emitted,
                    preempted: q.preempted,
                    stop_hit: false,
                    rng: StdRng::seed_from_u64(q.req.sampling.seed),
                },
                cache,
            );
        }
        if self.flight.is_empty() {
            return;
        }

        // Draft proposal phase: every greedy decode-phase sequence gets up
        // to `draft_k` continuation tokens from the low-bit draft model,
        // verified below in the same batched target forward as everything
        // else.
        if self.spec.is_some() {
            self.propose_drafts();
        }
        let (props_all, mut rollbacks) = match self.spec.as_mut() {
            Some(s) => (
                std::mem::take(&mut s.proposals),
                std::mem::take(&mut s.rollbacks),
            ),
            None => (Vec::new(), Vec::new()),
        };
        if self.spec.is_some() {
            // Reused across steps (taken from and returned to SpecState),
            // so the resize is warm after the first speculative step. The
            // plain path leaves both vecs empty — steady-state decode
            // stays allocation-free.
            rollbacks.clear();
            rollbacks.resize(self.flight.len(), None);
        }

        // One batched forward over every in-flight sequence's new tokens
        // (plus its draft proposals, if any), described by the
        // scheduler-owned flat buffers (rebuilt in place — no per-step
        // vecs) while the caches go in as one aligned slab.
        self.flat_tokens.clear();
        self.chunk_ends.clear();
        for (i, seq) in self.flight.seqs.iter().enumerate() {
            self.flat_tokens.extend_from_slice(&seq.next_input);
            if let Some(p) = props_all.get(i) {
                self.flat_tokens.extend_from_slice(p);
            }
            self.chunk_ends.push(self.flat_tokens.len());
        }
        let view = ChunkView::new(&self.flat_tokens, &self.chunk_ends);
        let data = self
            .model
            .forward_chunks_into(view, &mut self.flight.caches, &mut self.scratch);
        self.decode_steps += 1;

        // Sample per sequence (rows map by this step's order; the
        // cumulative chunk ends are exactly the logits row offsets), then
        // retire in a second pass so the row mapping stays intact. A token
        // is emitted only past the sequence's high-water mark, so
        // preemption replays never duplicate a stream.
        let vocab = self.model.config().vocab;
        let mut chunk_start = 0usize;
        for (i, (seq, &end)) in self
            .flight
            .seqs
            .iter_mut()
            .zip(&self.chunk_ends)
            .enumerate()
        {
            let props: &[usize] = props_all.get(i).map_or(&[], Vec::as_slice);
            if props.is_empty() {
                // Plain path: one sampled token from the chunk's last row.
                let row = &data[(end - 1) * vocab..end * vocab];
                let next = sample_token(row, &seq.sampling, &mut seq.rng);
                seq.tokens.push(next);
                seq.next_input.clear();
                seq.next_input.push(next);
                seq.produced += 1;
                self.tokens_generated += 1;
                if seq.produced > seq.emitted.len() {
                    events.tokens.push(TokenEmission {
                        id: seq.id,
                        token: next,
                        index: seq.produced - 1,
                    });
                    seq.emitted.push(next);
                }
                if seq.stop_tokens.contains(&next) {
                    seq.stop_hit = true;
                }
                chunk_start = end;
                continue;
            }
            // Speculative verification. The chunk was `[t, d1..dk]`, so
            // row `r` is the target's distribution *after* consuming chunk
            // token `r` — exactly the row plain greedy decode would see at
            // that position. Walk the rows in order: a proposal survives
            // only if it equals the target's own argmax (exact
            // acceptance); the first mismatching row contributes the
            // correction token instead, and a full match yields a bonus
            // token from the final row. Either way every emitted token is
            // the one non-speculative greedy decoding would have produced.
            let k = props.len();
            debug_assert_eq!(end - chunk_start, 1 + k, "verify chunk shape");
            for r in 0..=k {
                let off = chunk_start + r;
                let row = &data[off * vocab..(off + 1) * vocab];
                let next = sample_token(row, &seq.sampling, &mut seq.rng);
                let matched = props.get(r) == Some(&next);
                if matched {
                    self.spec_accepted += 1;
                }
                seq.tokens.push(next);
                seq.produced += 1;
                self.tokens_generated += 1;
                if seq.produced > seq.emitted.len() {
                    events.tokens.push(TokenEmission {
                        id: seq.id,
                        token: next,
                        index: seq.produced - 1,
                    });
                    seq.emitted.push(next);
                }
                if seq.stop_tokens.contains(&next) {
                    seq.stop_hit = true;
                }
                if seq.stop_hit || !matched {
                    break;
                }
            }
            seq.next_input.clear();
            seq.next_input
                .push(*seq.tokens.last().expect("just pushed"));
            // KV rows written for rejected proposals roll back below, so
            // the cache again holds exactly `committed - 1` positions.
            rollbacks[i] = Some(seq.tokens.len() - 1);
            chunk_start = end;
        }
        self.scratch.put(data); // logits buffer back to the arena

        for (i, rb) in rollbacks.iter().enumerate() {
            if let Some(new_len) = rb {
                self.flight.caches[i].truncate(*new_len);
            }
        }
        if let Some(s) = self.spec.as_mut() {
            s.proposals = props_all;
            s.rollbacks = rollbacks;
        }

        let model = self.model;
        if model.kv_pool().prefix_cache_enabled() {
            // Newly prefilled prompts publish their full blocks to the
            // prefix index immediately — concurrent requests sharing the
            // prefix adopt them while this sequence is still in flight,
            // which is what makes sharing cut *peak* (not just total) KV.
            for (seq, cache) in self.flight.seqs.iter().zip(self.flight.caches.iter_mut()) {
                if seq.produced == 1 {
                    model.kv_pool().prefix_insert(&seq.tokens, cache);
                }
            }
        }

        let mut i = 0usize;
        while i < self.flight.len() {
            let seq = &self.flight.seqs[i];
            if seq.produced == seq.max_new || seq.stop_hit {
                // `remove`, not `swap_remove`: the active set stays in
                // admission order, which is what makes tail preemption hit
                // the most recently admitted sequence. A stop token retires
                // the sequence on the very step that sampled it, so its KV
                // blocks go back to the pool before the next forward.
                let (seq, mut cache) = self.flight.remove(i);
                // Natural retirement publishes the whole sequence (prompt
                // + generation) to the prefix index: a later multi-turn
                // prompt extending this conversation adopts the blocks
                // wholesale. No-op while the prefix cache is off.
                model.kv_pool().prefix_insert(&seq.tokens, &mut cache);
                drop(cache); // unshared KV blocks back to the pool now
                events.finished.push(ServeResponse {
                    id: seq.id,
                    generated: seq.produced,
                    finish: seq.natural_finish(),
                    tokens: seq.tokens,
                });
            } else {
                i += 1;
            }
        }
    }

    /// Run the draft model for every greedy decode-phase sequence, filling
    /// `spec.proposals[i]` with up to `draft_k` continuation tokens per
    /// flight slot. The draft rolls back to its longest common prefix with
    /// the committed stream, catches up on unseen committed tokens in one
    /// chunk, then extends greedily one token at a time; the last proposal
    /// is never fed back (the target's verdict decides its fate).
    fn propose_drafts(&mut self) {
        let max_seq = self.model.config().max_seq;
        let n = self.flight.len();
        let spec = self.spec.as_mut().expect("speculative state");
        let SpecState {
            draft,
            draft_k,
            scratch,
            proposals,
            draft_tokens,
            draft_ends,
            rng,
            ..
        } = spec;
        let vocab = draft.config().vocab;
        proposals.clear();
        proposals.resize_with(n, Vec::new);
        for (i, slot) in proposals.iter_mut().enumerate() {
            let seq = &self.flight.seqs[i];
            // Prefill chunks and stochastic sampling take the plain path,
            // and the final budgeted token is never worth drafting.
            if !seq.sampling.is_greedy() || seq.produced == 0 {
                continue;
            }
            let rem = seq.max_new - seq.produced;
            let k = (*draft_k)
                .min(rem.saturating_sub(1))
                .min(max_seq.saturating_sub(seq.tokens.len()));
            if k == 0 {
                continue;
            }
            // The verify chunk needs target capacity for the committed
            // token plus `k` proposals; if a bounded pool cannot cover it,
            // fall back to plain decode instead of preempting anyone.
            if !self.flight.caches[i].try_reserve(1 + k) {
                continue;
            }
            let dseq = self.flight.drafts[i].get_or_insert_with(|| DraftSeq {
                cache: draft.new_cache(),
                fed: Vec::new(),
            });
            let committed = &seq.tokens;
            let mut lcp = 0usize;
            while lcp < dseq.fed.len() && lcp < committed.len() && dseq.fed[lcp] == committed[lcp] {
                lcp += 1;
            }
            if lcp < dseq.fed.len() {
                dseq.fed.truncate(lcp);
                dseq.cache.truncate(lcp);
            }
            if dseq.fed.len() >= committed.len() {
                // The draft already saw every committed token (unreachable:
                // verification always commits a token the draft never ate).
                debug_assert!(false, "draft ahead of committed stream");
                continue;
            }
            draft_tokens.clear();
            draft_tokens.extend_from_slice(&committed[dseq.fed.len()..]);
            for _ in 0..k {
                draft_ends.clear();
                draft_ends.push(draft_tokens.len());
                let view = ChunkView::new(draft_tokens, draft_ends);
                let data =
                    draft.forward_chunks_into(view, std::slice::from_mut(&mut dseq.cache), scratch);
                let row = &data[(draft_tokens.len() - 1) * vocab..draft_tokens.len() * vocab];
                let next = sample_token(row, &SamplingConfig::greedy(), rng);
                scratch.put(data);
                dseq.fed.extend_from_slice(draft_tokens);
                slot.push(next);
                draft_tokens.clear();
                draft_tokens.push(next);
            }
            self.spec_proposed += k as u64;
        }
    }

    /// Drive [`Scheduler::step`] until every submitted request finished.
    ///
    /// The responses are **sorted by request id** — a documented contract
    /// (pinned by test), not an accident of scheduling order.
    pub fn run_to_completion(&mut self) -> Vec<ServeResponse> {
        let mut all = Vec::new();
        while !self.is_idle() {
            all.extend(self.step());
        }
        all.sort_by_key(|r| r.id);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::CompressSpec;
    use edkm_nn::{LlamaConfig, LlamaModel};
    use edkm_tensor::{runtime, DType, Device};

    fn served(bits_spec: &CompressSpec) -> PalettizedModel {
        let cfg = LlamaConfig {
            max_seq: 32,
            ..LlamaConfig::tiny()
        };
        let dense = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 42);
        PalettizedModel::from_dense(&dense, bits_spec).unwrap()
    }

    #[test]
    fn greedy_sampling_is_argmax_with_low_tie() {
        let mut rng = StdRng::seed_from_u64(0);
        let row = [0.5f32, 2.0, 2.0, -1.0];
        assert_eq!(sample_token(&row, &SamplingConfig::greedy(), &mut rng), 1);
    }

    #[test]
    fn temperature_zero_and_tiny_temperature_agree_eventually() {
        let mut rng = StdRng::seed_from_u64(1);
        let row = [0.1f32, 8.0, 0.2, 0.3];
        // At a tiny temperature the distribution collapses onto the argmax.
        for _ in 0..20 {
            assert_eq!(
                sample_token(&row, &SamplingConfig::with_temperature(1e-3, 7), &mut rng),
                1
            );
        }
    }

    #[test]
    fn top_k_filters_the_tail() {
        let mut rng = StdRng::seed_from_u64(2);
        let row = [1.0f32, 5.0, 4.0, -3.0, 2.0];
        for _ in 0..50 {
            let tok = sample_token(&row, &SamplingConfig::with_top_k(1.0, 2, 3), &mut rng);
            assert!(tok == 1 || tok == 2, "top-2 must exclude token {tok}");
        }
    }

    #[test]
    fn top_k_ties_at_the_cut_never_evict_the_argmax() {
        // Two 5.0s tie at the top-2 cut while 9.0 sits above it at a later
        // index: the strict maximum must always survive the filter, and the
        // one remaining slot goes to the first tied value.
        let mut rng = StdRng::seed_from_u64(4);
        let row = [5.0f32, 5.0, 9.0];
        let mut saw_argmax = false;
        for _ in 0..80 {
            let tok = sample_token(&row, &SamplingConfig::with_top_k(1.0, 2, 9), &mut rng);
            assert!(tok == 2 || tok == 0, "top-2 kept token {tok}");
            saw_argmax |= tok == 2;
        }
        assert!(saw_argmax, "the argmax must be sampleable");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let model = served(&CompressSpec::with_bits(3));
        let gen = Generator::new(&model);
        let s = SamplingConfig::with_top_k(0.8, 4, 123);
        let a = gen.generate(&[1, 2, 3], 10, &s);
        let b = gen.generate(&[1, 2, 3], 10, &s);
        assert_eq!(a, b, "same seed must reproduce the same tokens");
        let c = gen.generate(&[1, 2, 3], 10, &SamplingConfig::with_top_k(0.8, 4, 124));
        assert_eq!(a.len(), c.len());
    }

    #[test]
    fn generator_respects_prompt_and_length() {
        runtime::reset();
        let model = served(&CompressSpec::with_bits(3));
        let gen = Generator::new(&model);
        let out = gen.generate_greedy(&[1, 2, 3], 8);
        assert_eq!(out.len(), 11);
        assert_eq!(&out[..3], &[1, 2, 3]);
        assert!(out.iter().all(|&t| t < model.config().vocab));
        assert_eq!(gen.generate_greedy(&[4, 5], 0), vec![4, 5]);
    }

    #[test]
    fn scheduler_matches_solo_generation_exactly() {
        runtime::reset();
        let model = served(&CompressSpec::with_bits(3));
        let gen = Generator::new(&model);
        // Uneven prompts, mixed greedy and seeded sampling.
        let reqs = vec![
            ServeRequest::new(1, vec![1, 2, 3, 4, 5], 9, SamplingConfig::greedy()),
            ServeRequest::new(2, vec![7], 4, SamplingConfig::with_temperature(0.9, 77)),
            ServeRequest::new(3, vec![9, 8], 12, SamplingConfig::with_top_k(1.1, 3, 5)),
        ];
        let solo: Vec<Vec<usize>> = reqs
            .iter()
            .map(|r| gen.generate(&r.prompt, r.max_new, &r.sampling))
            .collect();
        let mut sched = Scheduler::new(&model, 2); // forces queueing too
        for r in &reqs {
            sched.submit(r.clone());
        }
        let out = sched.run_to_completion();
        assert_eq!(out.len(), 3);
        for (resp, want) in out.iter().zip(&solo) {
            assert_eq!(
                &resp.tokens, want,
                "request {} must not depend on batch composition",
                resp.id
            );
            assert_eq!(resp.finish, FinishReason::MaxTokens);
        }
        assert!(sched.is_idle());
        assert_eq!(sched.tokens_generated(), 9 + 4 + 12);
    }

    #[test]
    fn kv_bytes_return_to_baseline_after_retirement() {
        runtime::reset();
        let model = served(&CompressSpec::with_bits(2));
        let baseline = runtime::cpu_live_bytes();
        let mut sched = Scheduler::new(&model, 8);
        for id in 0..5u64 {
            sched.submit(ServeRequest::new(
                id,
                vec![1 + id as usize],
                3 + id as usize,
                SamplingConfig::greedy(),
            ));
        }
        sched.step();
        assert!(sched.kv_live_bytes() > 0, "in-flight caches are charged");
        assert!(runtime::cpu_live_bytes() > baseline);
        sched.run_to_completion();
        assert_eq!(sched.kv_live_bytes(), 0);
        assert_eq!(
            runtime::cpu_live_bytes(),
            baseline,
            "all KV bytes must drain when requests retire"
        );
    }

    #[test]
    fn zero_new_tokens_complete_without_forward() {
        runtime::reset();
        let model = served(&CompressSpec::with_bits(2));
        let mut sched = Scheduler::new(&model, 4);
        sched.submit(ServeRequest::new(
            9,
            vec![3, 1],
            0,
            SamplingConfig::greedy(),
        ));
        let out = sched.step();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tokens, vec![3, 1]);
        assert_eq!(out[0].generated, 0);
        assert_eq!(out[0].finish, FinishReason::MaxTokens);
        assert_eq!(sched.decode_steps(), 0);
    }

    #[test]
    fn bounded_pool_defers_admission_until_blocks_exist() {
        runtime::reset();
        // 4 tokens/block, room for 3 blocks: an 8-token prompt (needs
        // ceil(9/4) = 3 blocks at admission) fills the pool alone.
        let model = served(&CompressSpec::with_bits(2)).with_kv_config(KvBlockConfig {
            block_tokens: 4,
            max_blocks: 3,
        });
        let mut sched = Scheduler::new(&model, 4);
        for id in 0..2u64 {
            sched.submit(ServeRequest::new(
                id,
                vec![1; 8],
                2,
                SamplingConfig::greedy(),
            ));
        }
        sched.step();
        assert_eq!(sched.active(), 1, "only the first request fits the pool");
        assert_eq!(sched.queued(), 1, "the second waits for free blocks");
        let out = sched.run_to_completion();
        assert_eq!(out.len(), 2, "deferred admission must still complete");
        assert_eq!(model.kv_pool().blocks_in_use(), 0);
    }

    #[test]
    fn preemption_reclaims_blocks_and_replays_identically() {
        runtime::reset();
        let unbounded = served(&CompressSpec::with_bits(3));
        let reqs: Vec<ServeRequest> = (0..2u64)
            .map(|id| {
                ServeRequest::new(
                    id,
                    vec![1 + id as usize, 5],
                    20,
                    SamplingConfig::with_top_k(0.9, 4, 40 + id),
                )
            })
            .collect();
        let mut free_sched = Scheduler::new(&unbounded, 2);
        for r in &reqs {
            free_sched.submit(r.clone());
        }
        let want = free_sched.run_to_completion();

        // Two 22-token sequences need 22 blocks total at 2 tokens/block;
        // 12 blocks can hold either alone but never both — the scheduler
        // must preempt, and the preempted request must regenerate the
        // exact same tokens after re-admission.
        let tight = served(&CompressSpec::with_bits(3)).with_kv_config(KvBlockConfig {
            block_tokens: 2,
            max_blocks: 12,
        });
        let mut sched = Scheduler::new(&tight, 2);
        for r in &reqs {
            sched.submit(r.clone());
        }
        let got = sched.run_to_completion();
        assert!(sched.preemptions() > 0, "the tight pool must preempt");
        assert!(
            got.iter()
                .any(|r| r.finish == FinishReason::PreemptedThenFinished),
            "the preempted request must report PreemptedThenFinished"
        );
        assert_eq!(
            sched.tokens_generated(),
            2 * 20,
            "replayed tokens are not double-counted"
        );
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(
                g.tokens, w.tokens,
                "request {}: preemption must not change generated tokens",
                g.id
            );
        }
        assert_eq!(tight.kv_pool().blocks_in_use(), 0, "no leaked blocks");
    }

    #[test]
    #[should_panic(expected = "KV pool too small")]
    fn single_request_larger_than_the_pool_panics() {
        runtime::reset();
        let model = served(&CompressSpec::with_bits(2)).with_kv_config(KvBlockConfig {
            block_tokens: 2,
            max_blocks: 2,
        });
        let mut sched = Scheduler::new(&model, 1);
        sched.submit(ServeRequest::new(
            0,
            vec![1; 8], // needs ceil(9/2) = 5 blocks, pool caps at 2
            4,
            SamplingConfig::greedy(),
        ));
        sched.step();
    }

    #[test]
    #[should_panic(expected = "exceed max_seq")]
    fn oversized_request_is_rejected_at_submit() {
        let model = served(&CompressSpec::with_bits(2));
        let mut sched = Scheduler::new(&model, 1);
        sched.submit(ServeRequest::new(
            0,
            vec![1; 30],
            30,
            SamplingConfig::greedy(),
        ));
    }
}
