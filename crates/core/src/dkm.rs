//! Differentiable K-Means weight clustering (the DKM layer the paper makes
//! memory-efficient).
//!
//! Weights attend to centroids through a softmax over negative squared
//! distances (the attention map of Fig. 1). Centroids are iteratively
//! refined Lloyd-style with gradients disabled, then one final iteration
//! runs differentiably so the task loss shapes the clustering through the
//! attention map. The clustered weight is `Ŵ = A·C*`.
//!
//! When the source weights are 16-bit and clustering is scalar, the layer
//! annotates the attention map with the weights' bit patterns so the eDKM
//! hooks can uniquify it (Section 2.2).

use crate::palettize::{GroupedPalettized, PalettizedTensor};
use crate::uniquify::{self, RowKeys};
use edkm_autograd::{no_grad, save_tensor, Var};
use edkm_tensor::{ops as t, DType, Tensor};
use std::sync::Arc;

/// Softmax over the last axis whose output storage is annotated with weight
/// bit patterns *before* it is saved for backward — so the saved-tensor
/// hooks can uniquify the attention map (the save happens inside this op).
fn softmax_annotated(x: &Var, keys: Option<RowKeys>) -> Var {
    let value = t::softmax_lastdim(x.value());
    if let Some(keys) = keys {
        uniquify::annotate(value.storage_id(), Arc::new(keys));
    }
    let saved = vec![save_tensor(&value)];
    Var::custom(
        value,
        "softmax_annotated",
        vec![x.clone()],
        saved,
        Box::new(|g, s| {
            // Identical to softmax backward: dx = s ⊙ (g − rowsum(g ⊙ s)).
            let gs = t::mul(g, &s[0]);
            let k = *gs.shape().last().expect("rank >= 1");
            let rows = gs.numel() / k;
            let row_sums = t::sum_axis(&gs.reshape(&[rows, k]), 1).reshape(&[rows, 1]);
            let g2 = g.reshape(&[rows, k]);
            let dx = t::mul(&s[0].reshape(&[rows, k]), &t::sub(&g2, &row_sums));
            vec![Some(dx.reshape(s[0].shape()))]
        }),
    )
}

/// Centroid initialization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DkmInit {
    /// Quantile midpoints of the weight distribution (deterministic; the
    /// default — matches how palettization toolchains seed k-means).
    Quantile,
    /// k-means++ style greedy farthest-point seeding (deterministic given
    /// the seed).
    KmeansPlusPlus {
        /// Seed for the first centroid pick.
        seed: u64,
    },
    /// `k` evenly spaced points across the weight range.
    UniformRange,
}

/// DKM hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DkmConfig {
    /// Palette bit width; `k = 2^bits` centroids.
    pub bits: u8,
    /// Clustering dimensionality (1 = scalar clustering, the paper's
    /// setting; >1 clusters d-dimensional weight blocks).
    pub cluster_dim: usize,
    /// Softmax temperature τ (scale-free: distances are normalized by the
    /// weight variance).
    pub temperature: f32,
    /// Maximum centroid-update iterations.
    pub iters: usize,
    /// Early-stop tolerance on centroid movement.
    pub tol: f32,
    /// Centroid initialization strategy.
    pub init: DkmInit,
}

impl DkmConfig {
    /// Default configuration for a given bit width (scalar clustering,
    /// τ = 0.05, up to 8 iterations, quantile init).
    pub fn with_bits(bits: u8) -> Self {
        assert!((1..=8).contains(&bits), "bits must be in 1..=8");
        DkmConfig {
            bits,
            cluster_dim: 1,
            temperature: 0.05,
            iters: 8,
            tol: 1e-4,
            init: DkmInit::Quantile,
        }
    }

    /// Vector-clustering configuration: `2^bits` centroids of dimension
    /// `dim`, i.e. `bits / dim` effective bits per weight. With `dim = 2`
    /// and 4-bit palettes this reaches 2 bits/weight — below what scalar
    /// clustering can express (the multi-dimensional extension of the DKM
    /// paper).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=8` or `dim` is 0.
    pub fn with_vector(bits: u8, dim: usize) -> Self {
        assert!(dim >= 1, "cluster_dim must be >= 1");
        DkmConfig {
            cluster_dim: dim,
            ..DkmConfig::with_bits(bits)
        }
    }

    /// Number of centroids `|C| = 2^bits`.
    pub fn k(&self) -> usize {
        1usize << self.bits
    }

    /// Index bits amortized over the weights of one block:
    /// `bits / cluster_dim` (2.0 for 4-bit palettes of 2-element blocks).
    /// The palette (LUT) cost is excluded, matching how the paper quotes
    /// "3 bit/weight".
    pub fn effective_bits_per_weight(&self) -> f64 {
        f64::from(self.bits) / self.cluster_dim as f64
    }
}

impl Default for DkmConfig {
    fn default() -> Self {
        DkmConfig::with_bits(3) // the paper's headline configuration
    }
}

/// Result of clustering one weight tensor.
#[derive(Debug)]
pub struct DkmOutput {
    /// Differentiable soft-clustered weights, same shape as the input.
    pub soft: Var,
    /// Final centroids `[k, cluster_dim]`.
    pub centroids: Tensor,
    /// Lloyd iterations actually run before the differentiable one.
    pub iterations_run: usize,
}

/// The train-time weight clustering layer.
#[derive(Debug, Clone)]
pub struct DkmLayer {
    config: DkmConfig,
}

impl DkmLayer {
    /// Layer with the given configuration.
    pub fn new(config: DkmConfig) -> Self {
        DkmLayer { config }
    }

    /// The configuration.
    pub fn config(&self) -> &DkmConfig {
        &self.config
    }

    /// Centroid init per the configured [`DkmInit`] strategy.
    fn init_centroids(&self, w: &Tensor) -> Tensor {
        let d = self.config.cluster_dim;
        let k = self.config.k();
        let data = w.to_vec();
        let n = data.len() / d;
        let c: Vec<f32> = match self.config.init {
            DkmInit::Quantile => {
                // Sort row indices by first component; sample quantile
                // midpoints.
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| {
                    data[a * d]
                        .partial_cmp(&data[b * d])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let mut c = Vec::with_capacity(k * d);
                for j in 0..k {
                    let pos = (((j as f64 + 0.5) / k as f64) * n as f64) as usize;
                    let row = order[pos.min(n - 1)];
                    c.extend_from_slice(&data[row * d..(row + 1) * d]);
                }
                c
            }
            DkmInit::KmeansPlusPlus { seed } => {
                // Greedy farthest-point: start from a seeded row, then pick
                // the row with maximal distance to its nearest centroid.
                let mut c: Vec<f32> = Vec::with_capacity(k * d);
                let first = (seed as usize) % n;
                c.extend_from_slice(&data[first * d..(first + 1) * d]);
                let mut nearest = vec![f32::INFINITY; n];
                for _ in 1..k {
                    let last = &c[c.len() - d..];
                    let mut best = 0usize;
                    let mut best_d = -1.0f32;
                    for i in 0..n {
                        let row = &data[i * d..(i + 1) * d];
                        let dist: f32 =
                            row.iter().zip(last).map(|(&a, &b)| (a - b) * (a - b)).sum();
                        if dist < nearest[i] {
                            nearest[i] = dist;
                        }
                        if nearest[i] > best_d {
                            best_d = nearest[i];
                            best = i;
                        }
                    }
                    c.extend_from_slice(&data[best * d..(best + 1) * d]);
                }
                c
            }
            DkmInit::UniformRange => {
                // Per component: k evenly spaced values over [min, max].
                let mut c = vec![0.0f32; k * d];
                for comp in 0..d {
                    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
                    for i in 0..n {
                        let v = data[i * d + comp];
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    for j in 0..k {
                        let t = (j as f32 + 0.5) / k as f32;
                        c[j * d + comp] = lo + t * (hi - lo);
                    }
                }
                c
            }
        };
        Tensor::from_vec(c, &[k, d], DType::F32, w.device())
    }

    /// Attention sharpness: 1 / (τ · var(w)), detached.
    fn logit_scale(&self, w: &Tensor) -> f32 {
        let data = w.to_vec();
        let n = data.len().max(1) as f32;
        let mean: f32 = data.iter().sum::<f32>() / n;
        let var: f32 = data.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        1.0 / (self.config.temperature * var.max(1e-12))
    }

    /// Differentiably cluster `w`, returning soft weights with the same
    /// shape plus the final centroids.
    ///
    /// # Panics
    ///
    /// Panics if `w.numel()` is not divisible by `cluster_dim`.
    pub fn cluster(&self, w: &Var) -> DkmOutput {
        let shape = w.value().shape().to_vec();
        let d = self.config.cluster_dim;
        let numel = w.value().numel();
        assert_eq!(
            numel % d,
            0,
            "numel {numel} not divisible by cluster_dim {d}"
        );
        let n = numel / d;
        let k = self.config.k();

        let w2 = w.reshape(&[n, d]);
        let wt = w2.value().clone();
        let scale = self.logit_scale(&wt);

        // Lloyd iterations, detached (the reference DKM detaches all but the
        // final iteration).
        let mut c = self.init_centroids(&wt);
        let mut iterations_run = 0;
        {
            let _ng = no_grad();
            for _ in 0..self.config.iters.saturating_sub(1) {
                let logits = t::mul_scalar(&t::neg_sqdist(&wt, &c), scale);
                let a = t::softmax_lastdim(&logits);
                let num = t::matmul(&a.t(), &wt); // [k, d]
                let den = t::add_scalar(&t::sum_axis(&a, 0).reshape(&[k, 1]), 1e-8);
                let c_new = t::div(&num, &den);
                let moved = t::max_abs_diff(&c_new, &c);
                c = c_new;
                iterations_run += 1;
                if moved < self.config.tol {
                    break;
                }
            }
        }

        // Final differentiable iteration: attention map + centroid update +
        // soft assignment, all on the tape. The attention map is annotated
        // with the weights' bit patterns (when 16-bit, scalar) so the hooks
        // can uniquify every save of it.
        let c_const = Var::constant(c);
        let logits = w2.neg_sqdist(&c_const).mul_scalar(scale);
        let keys = if d <= uniquify::MAX_KEY_DIM && w.value().dtype().is_16bit() {
            w2.value()
                .bits16()
                .ok()
                .map(|patterns| RowKeys::blocks(&patterns, d))
        } else {
            None
        };
        let a = softmax_annotated(&logits, keys); // the big [n, k] attention map

        let num = a.t().matmul(&w2); // [k, d] — saves Aᵀ (a view of A)
        let den = a.sum_axis(0).reshape(&[k, 1]).add_scalar(1e-8);
        let c_star = num.div(&den);
        let soft = a.matmul(&c_star).reshape(&shape); // saves A again

        DkmOutput {
            centroids: c_star.value().clone(),
            soft,
            iterations_run,
        }
    }

    /// Cluster a plain tensor (no gradient tracking).
    pub fn cluster_tensor(&self, w: &Tensor) -> DkmOutput {
        self.cluster(&Var::constant(w.clone()))
    }

    /// Hard-assign `w` to its nearest centroids and pack into a palettized
    /// tensor (the deployment artifact: LUT + n-bit indices).
    pub fn palettize(&self, w: &Tensor) -> PalettizedTensor {
        let out = self.cluster_tensor(w);
        PalettizedTensor::from_nearest(w, &out.centroids, self.config.bits, self.config.cluster_dim)
    }

    /// Palettize a `[rows, cols]` matrix with one independently clustered
    /// LUT per group of `rows_per_group` consecutive rows (per-grouped-
    /// channel palettization; `0` means one group for the whole matrix).
    /// The last group may be smaller.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not rank 2 or a group's element count is not
    /// divisible by `cluster_dim`.
    pub fn palettize_grouped(&self, w: &Tensor, rows_per_group: usize) -> GroupedPalettized {
        assert_eq!(w.rank(), 2, "grouped palettization expects [rows, cols]");
        let rows = w.shape()[0];
        let g = if rows_per_group == 0 || rows_per_group > rows {
            rows
        } else {
            rows_per_group
        };
        let mut groups = Vec::with_capacity(rows.div_ceil(g));
        let mut start = 0;
        while start < rows {
            let len = g.min(rows - start);
            let slab = w.slice(0, start, len).contiguous();
            groups.push(self.palettize(&slab));
            start += len;
        }
        GroupedPalettized::from_parts(groups, g, w.shape().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_autograd::check_gradients;
    use edkm_tensor::{runtime, Device};

    fn layer(bits: u8) -> DkmLayer {
        DkmLayer::new(DkmConfig::with_bits(bits))
    }

    #[test]
    fn config_k() {
        assert_eq!(DkmConfig::with_bits(3).k(), 8);
        assert_eq!(DkmConfig::with_bits(1).k(), 2);
        assert_eq!(DkmConfig::default().bits, 3);
    }

    #[test]
    #[should_panic(expected = "bits must be")]
    fn zero_bits_panics() {
        DkmConfig::with_bits(0);
    }

    #[test]
    fn clusters_to_few_values() {
        runtime::reset();
        let w = Tensor::randn(&[32, 16], DType::F32, Device::Cpu, 0).map(|v| v * 0.02);
        let out = layer(2).cluster_tensor(&w);
        assert_eq!(out.soft.value().shape(), &[32, 16]);
        assert_eq!(out.centroids.shape(), &[4, 1]);
        // Soft weights concentrate near centroids: hardening must be close.
        let hard = layer(2).palettize(&w).decode();
        let unique: std::collections::HashSet<u32> =
            hard.to_vec().iter().map(|v| v.to_bits()).collect();
        assert!(
            unique.len() <= 4,
            "at most k distinct values, got {}",
            unique.len()
        );
    }

    #[test]
    fn two_well_separated_groups_are_found() {
        runtime::reset();
        // Values tightly packed around -1 and +1: 1-bit clustering must put
        // centroids near ±1.
        let mut data = vec![];
        for i in 0..64 {
            data.push(if i % 2 == 0 {
                -1.0 + 0.001 * (i as f32) / 64.0
            } else {
                1.0 - 0.001 * (i as f32) / 64.0
            });
        }
        let w = Tensor::from_vec(data, &[64], DType::F32, Device::Cpu);
        let out = layer(1).cluster_tensor(&w);
        let mut c = out.centroids.to_vec();
        c.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((c[0] + 1.0).abs() < 0.05, "low centroid {}", c[0]);
        assert!((c[1] - 1.0).abs() < 0.05, "high centroid {}", c[1]);
        assert!(out.iterations_run >= 1);
    }

    #[test]
    fn soft_weights_reduce_quantization_error_vs_extremes() {
        runtime::reset();
        let w = Tensor::randn(&[256], DType::F32, Device::Cpu, 1).map(|v| v * 0.02);
        let out = layer(3).cluster_tensor(&w);
        let err = t::max_abs_diff(out.soft.value(), &w);
        // 8 centroids over ~±0.06: soft error well under the full range.
        assert!(err < 0.02, "soft clustering error too large: {err}");
    }

    #[test]
    fn gradients_flow_to_weights() {
        runtime::reset();
        let w = Var::param(Tensor::randn(&[16, 4], DType::F32, Device::Cpu, 2).map(|v| v * 0.02));
        let out = layer(2).cluster(&w);
        out.soft.sum_all().backward();
        let g = w
            .grad()
            .expect("weights must receive gradients through DKM");
        assert_eq!(g.shape(), &[16, 4]);
        assert!(t::l2_norm(&g) > 0.0);
    }

    #[test]
    fn gradcheck_final_differentiable_iteration() {
        // The full layer is not numerically checkable (the Lloyd iterations
        // and quantile init are detached by design, exactly as in DKM), so
        // we check the differentiable part in isolation: attention map →
        // centroid update → soft assignment, against *fixed* centroids.
        runtime::reset();
        let w = Tensor::randn(&[12, 1], DType::F32, Device::Cpu, 3);
        let c = Tensor::from_vec(vec![-1.0, -0.2, 0.4, 1.2], &[4, 1], DType::F32, Device::Cpu);
        check_gradients(
            |vs| {
                let c_const = Var::constant(c.clone());
                let a = vs[0].neg_sqdist(&c_const).mul_scalar(2.0).softmax_lastdim();
                let num = a.t().matmul(&vs[0]);
                let den = a.sum_axis(0).reshape(&[4, 1]).add_scalar(1e-8);
                a.matmul(&num.div(&den)).square().sum_all()
            },
            &[w],
            1e-3,
            5e-2,
        )
        .unwrap();
    }

    #[test]
    fn annotated_softmax_matches_plain_softmax_gradients() {
        runtime::reset();
        let x = Tensor::randn(&[6, 4], DType::F32, Device::Cpu, 9);
        let weight = Tensor::randn(&[6, 4], DType::F32, Device::Cpu, 10);
        // Values equal.
        let a = super::softmax_annotated(&Var::constant(x.clone()), None);
        let b = Var::constant(x.clone()).softmax_lastdim();
        assert!(t::allclose(a.value(), b.value(), 1e-7));
        // Gradients equal.
        let grad_of = |annotated: bool| -> Vec<f32> {
            let v = Var::param(x.clone());
            let s = if annotated {
                super::softmax_annotated(&v, None)
            } else {
                v.softmax_lastdim()
            };
            s.mul(&Var::constant(weight.clone())).sum_all().backward();
            v.grad().unwrap().to_vec()
        };
        let ga = grad_of(true);
        let gb = grad_of(false);
        for (x, y) in ga.iter().zip(&gb) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn bf16_scalar_clustering_annotates_attention_map() {
        runtime::reset();
        uniquify::clear_annotations();
        let w = Var::param(Tensor::randn(&[64], DType::Bf16, Device::Cpu, 4).map(|v| v * 0.02));
        let _out = layer(3).cluster(&w);
        assert_eq!(
            uniquify::annotation_count(),
            1,
            "clustering a 16-bit weight must annotate its attention map"
        );
        uniquify::clear_annotations();
    }

    #[test]
    fn f32_clustering_does_not_annotate() {
        runtime::reset();
        uniquify::clear_annotations();
        let w = Var::param(Tensor::randn(&[64], DType::F32, Device::Cpu, 5));
        let _out = layer(3).cluster(&w);
        assert_eq!(uniquify::annotation_count(), 0);
    }

    #[test]
    fn with_vector_sub_bit_accounting() {
        let cfg = DkmConfig::with_vector(4, 2);
        assert_eq!(cfg.k(), 16);
        assert_eq!(cfg.cluster_dim, 2);
        assert!((cfg.effective_bits_per_weight() - 2.0).abs() < 1e-12);
        assert!((DkmConfig::with_bits(3).effective_bits_per_weight() - 3.0).abs() < 1e-12);
        // 4-bit palette over 4-element blocks: 1 bit/weight.
        assert!((DkmConfig::with_vector(4, 4).effective_bits_per_weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bf16_vector_clustering_annotates_block_keys() {
        runtime::reset();
        uniquify::clear_annotations();
        let w = Var::param(Tensor::randn(&[64], DType::Bf16, Device::Cpu, 8).map(|v| v * 0.02));
        let _out = DkmLayer::new(DkmConfig::with_vector(3, 2)).cluster(&w);
        assert_eq!(
            uniquify::annotation_count(),
            1,
            "vector clustering of 16-bit weights must annotate block keys"
        );
        uniquify::clear_annotations();
    }

    #[test]
    fn vector_gradients_flow_and_match_hooked_run() {
        use crate::hooks::{EdkmConfig, EdkmHooks};
        use edkm_autograd::push_hooks;
        use edkm_autograd::SavedTensorHooks;
        // Exactness of eDKM must extend to the vector path: gradients with
        // full hooks installed equal gradients without, bit for bit.
        let run = |hooked: bool| -> Vec<f32> {
            runtime::reset();
            uniquify::clear_annotations();
            let w = Var::param(
                Tensor::randn(&[16, 4], DType::Bf16, Device::gpu(), 13).map(|v| v * 0.02),
            );
            let lay = DkmLayer::new(DkmConfig::with_vector(3, 2));
            let hooks = Arc::new(EdkmHooks::new(EdkmConfig::full(4)));
            let _g = hooked.then(|| push_hooks(hooks as Arc<dyn SavedTensorHooks>));
            let out = lay.cluster(&w);
            out.soft.square().sum_all().backward();
            w.grad().unwrap().to_vec()
        };
        assert_eq!(run(true), run(false));
        uniquify::clear_annotations();
    }

    #[test]
    fn vector_clustering_dim2() {
        runtime::reset();
        let lay = DkmLayer::new(DkmConfig {
            bits: 2,
            cluster_dim: 2,
            temperature: 0.1,
            iters: 5,
            tol: 1e-5,
            init: DkmInit::Quantile,
        });
        let w = Tensor::randn(&[16, 4], DType::F32, Device::Cpu, 6);
        let out = lay.cluster_tensor(&w);
        assert_eq!(out.centroids.shape(), &[4, 2]);
        assert_eq!(out.soft.value().shape(), &[16, 4]);
    }

    #[test]
    fn all_init_strategies_produce_valid_centroids() {
        runtime::reset();
        let w = Tensor::randn(&[512], DType::F32, Device::Cpu, 7).map(|v| v * 0.02);
        for init in [
            DkmInit::Quantile,
            DkmInit::KmeansPlusPlus { seed: 3 },
            DkmInit::UniformRange,
        ] {
            let lay = DkmLayer::new(DkmConfig {
                init,
                ..DkmConfig::with_bits(3)
            });
            let out = lay.cluster_tensor(&w);
            assert_eq!(out.centroids.shape(), &[8, 1], "{init:?}");
            // Soft clustering with 8 centroids over ~N(0, 0.02): the max
            // error stays a small fraction of the ±0.06 weight range.
            let err = t::max_abs_diff(out.soft.value(), &w);
            assert!(err < 0.05, "{init:?} error {err}");
        }
    }

    #[test]
    fn uniform_init_spans_the_range() {
        runtime::reset();
        let w = Tensor::from_vec(
            (0..100).map(|i| i as f32 / 100.0).collect(),
            &[100],
            DType::F32,
            Device::Cpu,
        );
        let lay = DkmLayer::new(DkmConfig {
            init: DkmInit::UniformRange,
            iters: 1, // inspect near-initial centroids
            ..DkmConfig::with_bits(2)
        });
        let out = lay.cluster_tensor(&w);
        let mut c = out.centroids.to_vec();
        c.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(c[0] < 0.3 && c[3] > 0.7, "centroids must span: {c:?}");
    }

    #[test]
    fn kmeanspp_separates_distinct_modes() {
        runtime::reset();
        // Four tight modes: farthest-point seeding must land in all four.
        let mut data = Vec::new();
        for i in 0..200 {
            data.push([-3.0f32, -1.0, 1.0, 3.0][i % 4] + 0.001 * (i as f32 / 200.0));
        }
        let w = Tensor::from_vec(data, &[200], DType::F32, Device::Cpu);
        let lay = DkmLayer::new(DkmConfig {
            init: DkmInit::KmeansPlusPlus { seed: 0 },
            ..DkmConfig::with_bits(2)
        });
        let out = lay.cluster_tensor(&w);
        let mut c = out.centroids.to_vec();
        c.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (ci, target) in c.iter().zip([-3.0f32, -1.0, 1.0, 3.0]) {
            assert!((ci - target).abs() < 0.1, "centroids {c:?}");
        }
    }

    #[test]
    fn lower_temperature_hardens_soft_weights() {
        runtime::reset();
        // Sharper attention (smaller τ) concentrates each weight's mass on
        // its nearest centroid, so the soft output sits closer to the hard
        // (palettized) assignment — the mechanism behind τ-annealing.
        let w = Tensor::randn(&[512], DType::F32, Device::Cpu, 21).map(|v| v * 0.02);
        // Mean gap, not max: weights sitting exactly between two centroids
        // keep 50/50 attention at any τ, so the max is τ-insensitive.
        let gap = |temp: f32| {
            let lay = DkmLayer::new(DkmConfig {
                temperature: temp,
                ..DkmConfig::with_bits(3)
            });
            let out = lay.cluster_tensor(&w);
            let hard = PalettizedTensor::from_nearest(&w, &out.centroids, 3, 1).decode();
            let (s, h) = (out.soft.value().to_vec(), hard.to_vec());
            s.iter().zip(&h).map(|(a, b)| (a - b).abs()).sum::<f32>() / s.len() as f32
        };
        let (sharp, diffuse) = (gap(0.005), gap(0.5));
        assert!(
            sharp < diffuse / 2.0,
            "τ=0.005 mean gap {sharp} must be far below τ=0.5 gap {diffuse}"
        );
    }

    #[test]
    fn early_stop_on_converged_clusters() {
        runtime::reset();
        // All-equal weights converge after the first update.
        let w = Tensor::full(0.5, &[128], DType::F32, Device::Cpu);
        let out = layer(2).cluster_tensor(&w);
        assert!(out.iterations_run <= 2, "ran {}", out.iterations_run);
    }
}
