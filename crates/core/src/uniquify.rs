//! Weight uniquification (Section 2.2, Fig. 3 of the paper) — plus the
//! vector-clustering extension.
//!
//! 16-bit weights have at most 2^16 distinct bit patterns, so two weights
//! with the same pattern receive *identical* attention rows. The dense
//! `|W| × |C|` attention map therefore decomposes exactly into
//!
//! * an **attention table** with one row per unique pattern
//!   (`O(|C|)` per row, ≤ 65 536 rows), and
//! * an **index list** of `O(|W|)` 16-bit offsets into the table —
//!   the paper uses the weight's bit value itself as the offset idea; we
//!   store dense table row ids, which is the same size and collision-free.
//!
//! The DKM layer [`annotate`]s each attention map's storage with the bit
//! patterns of its source weights; the eDKM hooks consult the annotation at
//! pack time.
//!
//! ## Vector clustering (extension beyond the paper)
//!
//! With vector DKM (`cluster_dim = d > 1`) each attention-map row belongs to
//! a *block* of `d` weights, keyed by the concatenation of the block's `d`
//! 16-bit patterns. The key space is `2^(16·d)`, so the ≤ 65 536-row bound —
//! and with it the u16 index — no longer holds. The wide path
//! ([`uniquify_wide`]) emits u32 indices and the caller is expected to fall
//! back to a dense offload when the observed unique-block count makes the
//! decomposition unprofitable (see `StoredEntry::build`).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use edkm_tensor::StorageId;

/// Maximum clustering dimensionality for which block keys fit in a `u64`
/// (4 × 16-bit patterns).
pub const MAX_KEY_DIM: usize = 4;

/// Row keys of an attention map: one key per row, derived from the 16-bit
/// patterns of the source weights.
///
/// For scalar clustering (the paper's setting) each key is one pattern; for
/// vector clustering each key packs the block's `dim ≤ 4` patterns into a
/// `u64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowKeys {
    keys: Vec<u64>,
    dim: usize,
}

impl RowKeys {
    /// Scalar keys: one 16-bit pattern per map row (Section 2.2).
    pub fn scalar(patterns: Vec<u16>) -> Self {
        RowKeys {
            keys: patterns.into_iter().map(u64::from).collect(),
            dim: 1,
        }
    }

    /// Block keys: pack each consecutive group of `dim` patterns into one
    /// key (vector-clustering extension).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is 0 or exceeds [`MAX_KEY_DIM`], or if
    /// `patterns.len()` is not divisible by `dim`.
    pub fn blocks(patterns: &[u16], dim: usize) -> Self {
        assert!(
            (1..=MAX_KEY_DIM).contains(&dim),
            "block key dim must be in 1..={MAX_KEY_DIM}, got {dim}"
        );
        assert_eq!(
            patterns.len() % dim,
            0,
            "{} patterns do not split into blocks of {dim}",
            patterns.len()
        );
        let keys = patterns
            .chunks_exact(dim)
            .map(|blk| blk.iter().fold(0u64, |acc, &p| (acc << 16) | u64::from(p)))
            .collect();
        RowKeys { keys, dim }
    }

    /// The packed keys, one per map row.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Patterns per key (the clustering dimensionality).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of map rows keyed.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` if no rows are keyed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// `true` for scalar (paper-setting) keys, whose unique count is bounded
    /// by 2^16 and whose index list fits in u16.
    pub fn is_scalar(&self) -> bool {
        self.dim == 1
    }
}

thread_local! {
    static ANNOTATIONS: RefCell<HashMap<u64, Arc<RowKeys>>> = RefCell::new(HashMap::new());
}

/// Attach row keys to the storage of an attention-map tensor.
pub fn annotate(storage: StorageId, keys: Arc<RowKeys>) {
    ANNOTATIONS.with(|a| a.borrow_mut().insert(storage.0, keys));
}

/// Row keys previously attached to `storage`, if any.
pub fn annotation(storage: StorageId) -> Option<Arc<RowKeys>> {
    ANNOTATIONS.with(|a| a.borrow().get(&storage.0).cloned())
}

/// Drop all annotations (call between training steps).
pub fn clear_annotations() {
    ANNOTATIONS.with(|a| a.borrow_mut().clear());
}

/// Number of live annotations (diagnostics).
pub fn annotation_count() -> usize {
    ANNOTATIONS.with(|a| a.borrow().len())
}

/// Index element of a uniquified map (u16 for the paper's scalar path,
/// u32 for the vector-clustering extension).
trait IndexElem: Copy {
    fn from_usize(v: usize) -> Option<Self>;
    fn to_usize(self) -> usize;
}

impl IndexElem for u16 {
    fn from_usize(v: usize) -> Option<Self> {
        u16::try_from(v).ok()
    }
    fn to_usize(self) -> usize {
        usize::from(self)
    }
}

impl IndexElem for u32 {
    fn from_usize(v: usize) -> Option<Self> {
        u32::try_from(v).ok()
    }
    fn to_usize(self) -> usize {
        self as usize
    }
}

fn uniquify_generic<I: IndexElem>(
    dense: &[f32],
    keys: &[u64],
    k: usize,
) -> (Vec<f32>, Vec<I>, usize) {
    assert_eq!(dense.len(), keys.len() * k, "dense map size mismatch");
    let mut row_of_key: HashMap<u64, I> = HashMap::new();
    let mut table: Vec<f32> = Vec::new();
    let mut index: Vec<I> = Vec::with_capacity(keys.len());
    for (i, &key) in keys.iter().enumerate() {
        let row = &dense[i * k..(i + 1) * k];
        match row_of_key.get(&key) {
            Some(&r) => {
                let at = r.to_usize() * k;
                debug_assert_eq!(
                    &table[at..at + k],
                    row,
                    "rows sharing key {key:#x} must be identical"
                );
                index.push(r);
            }
            None => {
                let r = I::from_usize(table.len() / k)
                    .unwrap_or_else(|| panic!("unique rows overflow the index type at row {i}"));
                row_of_key.insert(key, r);
                table.extend_from_slice(row);
                index.push(r);
            }
        }
    }
    let u = table.len() / k;
    (table, index, u)
}

/// Exact decomposition of a dense `[n, k]` row-major map whose rows repeat
/// per `keys`: returns `(table, index, unique_rows)` with
/// `table[index[i]·k .. +k] == dense[i·k .. +k]` bitwise.
///
/// This is the paper's scalar path: unique rows are bounded by the 2^16
/// pattern space, so indices are u16.
///
/// # Panics
///
/// Panics if `dense.len() != keys.len() · k` or if more than 65 536 unique
/// rows appear (impossible for scalar 16-bit keys).
pub fn uniquify(dense: &[f32], keys: &[u64], k: usize) -> (Vec<f32>, Vec<u16>, usize) {
    uniquify_generic::<u16>(dense, keys, k)
}

/// [`uniquify`] with u32 indices for block keys (vector-clustering
/// extension), whose unique count may exceed 2^16.
///
/// # Panics
///
/// Panics if `dense.len() != keys.len() · k`.
pub fn uniquify_wide(dense: &[f32], keys: &[u64], k: usize) -> (Vec<f32>, Vec<u32>, usize) {
    uniquify_generic::<u32>(dense, keys, k)
}

/// Inverse of [`uniquify`]: expand `(table, index)` back to the dense map.
///
/// # Panics
///
/// Panics if any index is out of table range.
pub fn reconstruct(table: &[f32], index: &[u16], k: usize) -> Vec<f32> {
    let u = table.len() / k;
    let mut out = Vec::with_capacity(index.len() * k);
    for &r in index {
        assert!((r as usize) < u, "index {r} out of table ({u} rows)");
        out.extend_from_slice(&table[r as usize * k..(r as usize + 1) * k]);
    }
    out
}

/// Inverse of [`uniquify_wide`].
///
/// # Panics
///
/// Panics if any index is out of table range.
pub fn reconstruct_wide(table: &[f32], index: &[u32], k: usize) -> Vec<f32> {
    let u = table.len() / k;
    let mut out = Vec::with_capacity(index.len() * k);
    for &r in index {
        assert!((r as usize) < u, "index {r} out of table ({u} rows)");
        out.extend_from_slice(&table[r as usize * k..(r as usize + 1) * k]);
    }
    out
}

/// Compression ratio of the uniquified form over the dense form, in bytes
/// (dense f32 vs f32 table + u16 indices).
pub fn compression_ratio(n: usize, k: usize, u: usize) -> f64 {
    let dense = (n * k * 4) as f64;
    let uniq = (u * k * 4 + n * 2) as f64;
    dense / uniq.max(1.0)
}

/// Compression ratio of the *wide* (u32-indexed) uniquified form over the
/// dense form. Below 1.0 the decomposition is unprofitable and callers
/// should offload densely instead.
pub fn compression_ratio_wide(n: usize, k: usize, u: usize) -> f64 {
    let dense = (n * k * 4) as f64;
    let uniq = (u * k * 4 + n * 4) as f64;
    dense / uniq.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_worked_example() {
        // Fig. 3: w_i and w_k share bit value BA45; w_j has CB1F. Their
        // attention rows collapse into a 2-row table.
        let keys = RowKeys::scalar(vec![0xBA45u16, 0xCB1F, 0xBA45]);
        let dense = vec![
            0.9, 0.05, 0.05, // w_i
            0.1, 0.8, 0.1, // w_j
            0.9, 0.05, 0.05, // w_k == w_i
        ];
        let (table, index, u) = uniquify(&dense, keys.keys(), 3);
        assert_eq!(u, 2);
        assert_eq!(table.len(), 6);
        assert_eq!(index, vec![0, 1, 0]);
        assert_eq!(reconstruct(&table, &index, 3), dense);
    }

    #[test]
    fn all_unique_rows_give_no_compression() {
        let keys = RowKeys::scalar(vec![1u16, 2, 3]);
        let dense = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let (table, index, u) = uniquify(&dense, keys.keys(), 2);
        assert_eq!(u, 3);
        assert_eq!(table, dense);
        assert_eq!(index, vec![0, 1, 2]);
    }

    #[test]
    fn all_same_key_gives_single_row() {
        let keys = RowKeys::scalar(vec![7u16; 100]);
        let dense: Vec<f32> = std::iter::repeat_n([0.25f32, 0.75], 100)
            .flatten()
            .collect();
        let (table, index, u) = uniquify(&dense, keys.keys(), 2);
        assert_eq!(u, 1);
        assert_eq!(table, vec![0.25, 0.75]);
        assert!(index.iter().all(|&i| i == 0));
    }

    #[test]
    fn block_keys_pack_consecutive_patterns() {
        let rk = RowKeys::blocks(&[0xBA45, 0xCB1F, 0xBA45, 0xCB1F, 0x0001, 0x0002], 2);
        assert_eq!(rk.dim(), 2);
        assert_eq!(rk.len(), 3);
        assert!(!rk.is_scalar());
        assert_eq!(rk.keys()[0], 0xBA45_CB1F);
        assert_eq!(rk.keys()[1], 0xBA45_CB1F);
        assert_eq!(rk.keys()[2], 0x0001_0002);
    }

    #[test]
    fn blocks_of_dim_one_equal_scalar() {
        let pats = vec![5u16, 9, 5];
        assert_eq!(RowKeys::blocks(&pats, 1), RowKeys::scalar(pats));
    }

    #[test]
    #[should_panic(expected = "block key dim")]
    fn blocks_reject_dim_over_max() {
        RowKeys::blocks(&[0u16; 10], 5);
    }

    #[test]
    #[should_panic(expected = "do not split")]
    fn blocks_reject_ragged_patterns() {
        RowKeys::blocks(&[0u16; 7], 2);
    }

    #[test]
    fn wide_uniquify_roundtrips_blocks() {
        let rk = RowKeys::blocks(&[1, 2, 3, 4, 1, 2, 5, 6], 2);
        // Rows must be functions of the key: rows 0 and 2 share key (1,2).
        let dense = vec![
            0.7, 0.3, // (1,2)
            0.2, 0.8, // (3,4)
            0.7, 0.3, // (1,2) again
            0.5, 0.5, // (5,6)
        ];
        let (table, index, u) = uniquify_wide(&dense, rk.keys(), 2);
        assert_eq!(u, 3);
        assert_eq!(index, vec![0, 1, 0, 2]);
        assert_eq!(reconstruct_wide(&table, &index, 2), dense);
    }

    #[test]
    fn ratio_formula() {
        // n=65536 scalar weights, k=8, u=1000 uniques.
        let r = compression_ratio(65536, 8, 1000);
        let dense = 65536.0 * 8.0 * 4.0;
        let uniq = 1000.0 * 8.0 * 4.0 + 65536.0 * 2.0;
        assert!((r - dense / uniq).abs() < 1e-9);
        assert!(r > 10.0);
    }

    #[test]
    fn wide_ratio_flags_unprofitable_decompositions() {
        // Every block unique: table == dense plus index overhead.
        assert!(compression_ratio_wide(1000, 8, 1000) < 1.0);
        // Few unique blocks: strongly profitable.
        assert!(compression_ratio_wide(1000, 8, 16) > 5.0);
    }

    #[test]
    fn annotation_registry_roundtrip() {
        clear_annotations();
        let id = StorageId(987654);
        assert!(annotation(id).is_none());
        annotate(id, Arc::new(RowKeys::scalar(vec![1, 2, 3])));
        assert_eq!(annotation(id).unwrap().keys(), &[1, 2, 3]);
        assert_eq!(annotation_count(), 1);
        clear_annotations();
        assert!(annotation(id).is_none());
        assert_eq!(annotation_count(), 0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn bad_sizes_panic() {
        uniquify(&[1.0, 2.0], &[1, 2, 3], 2);
    }

    #[test]
    #[should_panic(expected = "out of table")]
    fn reconstruct_rejects_bad_index() {
        reconstruct(&[1.0, 2.0], &[5], 2);
    }

    #[test]
    #[should_panic(expected = "out of table")]
    fn reconstruct_wide_rejects_bad_index() {
        reconstruct_wide(&[1.0, 2.0], &[9], 2);
    }

    proptest! {
        /// reconstruct(uniquify(x)) == x bitwise, for maps whose rows are
        /// functions of their keys.
        #[test]
        fn prop_roundtrip(n in 1usize..300, k in 1usize..9, nkeys in 1u16..40) {
            // Build a map where row i depends only on key i % nkeys.
            let patterns: Vec<u16> = (0..n).map(|i| (i as u16) % nkeys).collect();
            let rk = RowKeys::scalar(patterns);
            let dense: Vec<f32> = rk
                .keys()
                .iter()
                .flat_map(|&key| (0..k).map(move |j| (key as f32) * 10.0 + j as f32))
                .collect();
            let (table, index, u) = uniquify(&dense, rk.keys(), k);
            prop_assert!(u <= (nkeys as usize).min(n));
            prop_assert_eq!(reconstruct(&table, &index, k), dense);
            prop_assert_eq!(index.len(), n);
            prop_assert_eq!(table.len(), u * k);
        }

        /// The table never exceeds 65 536 rows (u16 index soundness).
        #[test]
        fn prop_table_bound(n in 1usize..2000, k in 1usize..5) {
            let patterns: Vec<u16> = (0..n).map(|i| (i * 2654435761usize) as u16).collect();
            let rk = RowKeys::scalar(patterns);
            let dense: Vec<f32> = rk
                .keys()
                .iter()
                .flat_map(|&key| (0..k).map(move |j| key as f32 + j as f32))
                .collect();
            let (table, _, u) = uniquify(&dense, rk.keys(), k);
            prop_assert!(u <= 65536);
            prop_assert_eq!(table.len(), u * k);
        }

        /// Wide path: roundtrip holds for block keys of any dim 1..=4.
        #[test]
        fn prop_wide_roundtrip(
            nblocks in 1usize..150,
            k in 1usize..6,
            dim in 1usize..5,
            modulo in 1u16..20,
        ) {
            let patterns: Vec<u16> =
                (0..nblocks * dim).map(|i| (i as u16) % modulo).collect();
            let rk = RowKeys::blocks(&patterns, dim);
            let dense: Vec<f32> = rk
                .keys()
                .iter()
                .flat_map(|&key| {
                    (0..k).map(move |j| (key % 1023) as f32 + j as f32)
                })
                .collect();
            let (table, index, u) = uniquify_wide(&dense, rk.keys(), k);
            prop_assert!(u <= nblocks);
            prop_assert_eq!(reconstruct_wide(&table, &index, k), dense);
        }
    }
}
