//! The eDKM saved-tensor hooks: offload + marshal + uniquify + shard.
//!
//! This is the paper's system, assembled: every tensor autograd saves for
//! backward is packed here. Configuration bits correspond one-to-one to the
//! columns of Table 2 (M = marshaling, U = uniquification, S = sharding);
//! with all three off the hooks still *offload* (the naive CPU-offload
//! baseline of the first table row).

use crate::marshal::{apply_invariant, EdkmPacked, MarshalRegistry, StoredEntry};
use crate::uniquify;
use edkm_autograd::{PackedTensor, SavedTensorHooks};
use edkm_dist::LearnerGroup;
use edkm_tensor::{runtime, Tensor};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Which eDKM optimizations are active (a row of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdkmConfig {
    /// Offload saved tensors to CPU at all (paper baseline: always true;
    /// `false` keeps tensors resident like stock training).
    pub offload: bool,
    /// M: cross-device tensor marshaling (registry + graph walk).
    pub marshal: bool,
    /// U: weight uniquification of annotated attention maps.
    pub uniquify: bool,
    /// S: shard the big payload component over the learner group.
    pub shard: bool,
    /// Number of learners `|L|` (paper: 8).
    pub learners: usize,
    /// Graph-walk depth (paper: 4 hops suffice).
    pub hop_limit: usize,
    /// Don't shard buffers smaller than this many elements.
    pub min_shard_elems: usize,
}

impl Default for EdkmConfig {
    fn default() -> Self {
        EdkmConfig::full(8)
    }
}

impl EdkmConfig {
    /// Naive CPU offloading: the first row of Table 2.
    pub fn baseline() -> Self {
        EdkmConfig {
            offload: true,
            marshal: false,
            uniquify: false,
            shard: false,
            learners: 8,
            hop_limit: 4,
            min_shard_elems: 1024,
        }
    }

    /// Marshaling only (row "M").
    pub fn marshal_only() -> Self {
        EdkmConfig {
            marshal: true,
            ..Self::baseline()
        }
    }

    /// Marshaling + uniquification (row "M+U").
    pub fn marshal_uniquify() -> Self {
        EdkmConfig {
            marshal: true,
            uniquify: true,
            ..Self::baseline()
        }
    }

    /// Marshaling + sharding (row "M+S").
    pub fn marshal_shard() -> Self {
        EdkmConfig {
            marshal: true,
            shard: true,
            ..Self::baseline()
        }
    }

    /// All techniques (row "M+U+S" — full eDKM).
    pub fn full(learners: usize) -> Self {
        EdkmConfig {
            offload: true,
            marshal: true,
            uniquify: true,
            shard: true,
            learners,
            hop_limit: 4,
            min_shard_elems: 1024,
        }
    }

    /// Table 2-style row label ("—", "M", "M+U", "M+S", "M+U+S").
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.marshal {
            parts.push("M");
        }
        if self.uniquify {
            parts.push("U");
        }
        if self.shard {
            parts.push("S");
        }
        if parts.is_empty() {
            "—".to_string()
        } else {
            parts.join("+")
        }
    }
}

/// Pack/unpack counters.
#[derive(Debug, Default)]
pub struct HookStats {
    packs: AtomicUsize,
    direct_hits: AtomicUsize,
    walk_hits: AtomicUsize,
    misses: AtomicUsize,
    unpacks: AtomicUsize,
    cache_hits: AtomicUsize,
    offloaded_bytes: AtomicUsize,
}

/// Snapshot of [`HookStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HookStatsSnapshot {
    /// Total pack calls.
    pub packs: usize,
    /// Same-storage registry hits.
    pub direct_hits: usize,
    /// Graph-walk hits (different storage, ≤ hop_limit away).
    pub walk_hits: usize,
    /// Entries actually offloaded.
    pub misses: usize,
    /// Total unpack calls.
    pub unpacks: usize,
    /// Unpacks served from the reconstruction cache.
    pub cache_hits: usize,
    /// CPU bytes stored by misses (this learner).
    pub offloaded_bytes: usize,
}

impl HookStatsSnapshot {
    /// Fraction of packs that avoided a copy.
    pub fn dedup_rate(&self) -> f64 {
        if self.packs == 0 {
            return 0.0;
        }
        (self.direct_hits + self.walk_hits) as f64 / self.packs as f64
    }
}

/// The eDKM [`SavedTensorHooks`] implementation.
///
/// Create one per training step (the registry's lifetime is the forward+
/// backward of one step, like the paper's implementation) and install with
/// [`edkm_autograd::push_hooks`].
#[derive(Debug)]
pub struct EdkmHooks {
    config: EdkmConfig,
    registry: MarshalRegistry,
    group: LearnerGroup,
    stats: HookStats,
}

impl EdkmHooks {
    /// Hooks with the given configuration.
    pub fn new(config: EdkmConfig) -> Self {
        EdkmHooks {
            config,
            registry: MarshalRegistry::new(),
            group: LearnerGroup::new(config.learners.max(1)),
            stats: HookStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &EdkmConfig {
        &self.config
    }

    /// Counter snapshot.
    pub fn stats(&self) -> HookStatsSnapshot {
        HookStatsSnapshot {
            packs: self.stats.packs.load(Ordering::Relaxed),
            direct_hits: self.stats.direct_hits.load(Ordering::Relaxed),
            walk_hits: self.stats.walk_hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            unpacks: self.stats.unpacks.load(Ordering::Relaxed),
            cache_hits: self.stats.cache_hits.load(Ordering::Relaxed),
            offloaded_bytes: self.stats.offloaded_bytes.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct storages offloaded so far.
    pub fn registry_len(&self) -> usize {
        self.registry.len()
    }

    fn packed(
        entry: Arc<StoredEntry>,
        base_layout: edkm_tensor::Layout,
        replay: Vec<edkm_tensor::InvariantOp>,
        expect_shape: Vec<usize>,
    ) -> PackedTensor {
        PackedTensor::Custom(Box::new(EdkmPacked {
            entry,
            base_layout,
            replay,
            expect_shape,
        }))
    }
}

impl SavedTensorHooks for EdkmHooks {
    fn pack(&self, t: &Tensor) -> PackedTensor {
        self.stats.packs.fetch_add(1, Ordering::Relaxed);
        if !self.config.offload {
            return PackedTensor::Inline(t.clone());
        }
        let sid = t.storage_id();

        if self.config.marshal {
            // Same storage already offloaded? (Fig. 2 (b): reuse y0.)
            if let Some(entry) = self.registry.get(sid) {
                self.stats.direct_hits.fetch_add(1, Ordering::Relaxed);
                return Self::packed(entry, t.layout().clone(), vec![], t.shape().to_vec());
            }
            // Walk the forward graph through invariant ops (≤ hop_limit).
            for (hop, (ops, anc)) in t
                .meta()
                .ancestors(self.config.hop_limit)
                .into_iter()
                .enumerate()
            {
                runtime::record_walk(hop + 1);
                if let Some(entry) = self.registry.get(anc.storage_id) {
                    self.stats.walk_hits.fetch_add(1, Ordering::Relaxed);
                    return Self::packed(entry, anc.layout.clone(), ops, t.shape().to_vec());
                }
            }
        }

        // Miss: offload the storage.
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let keys = if self.config.uniquify {
            uniquify::annotation(sid)
        } else {
            None
        };
        let storage_elems = t.storage().len();
        let shard_group = if self.config.shard
            && self.group.n_learners() > 1
            && storage_elems >= self.config.min_shard_elems
        {
            Some(self.group)
        } else {
            None
        };
        let entry = Arc::new(StoredEntry::build(t, keys.as_deref(), shard_group));
        self.stats
            .offloaded_bytes
            .fetch_add(entry.local_bytes(), Ordering::Relaxed);
        if self.config.marshal {
            self.registry.insert(sid, Arc::clone(&entry));
        }
        Self::packed(entry, t.layout().clone(), vec![], t.shape().to_vec())
    }

    fn unpack(&self, p: &PackedTensor) -> Tensor {
        self.stats.unpacks.fetch_add(1, Ordering::Relaxed);
        let packed = match p {
            PackedTensor::Inline(t) => return t.clone(),
            PackedTensor::Custom(b) => b
                .downcast_ref::<EdkmPacked>()
                .expect("EdkmHooks can only unpack its own payloads"),
        };
        let (storage_t, cached) = packed.entry.reconstruct_storage();
        if cached {
            self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        let mut out = storage_t.view_with_layout(packed.base_layout.clone());
        for op in &packed.replay {
            out = apply_invariant(&out, op);
        }
        debug_assert_eq!(
            out.shape(),
            &packed.expect_shape[..],
            "marshaled reconstruction produced the wrong view"
        );
        out
    }

    fn name(&self) -> &str {
        "edkm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_tensor::ops::allclose;
    use edkm_tensor::{DType, Device};

    fn gpu_tensor(shape: &[usize], seed: u64) -> Tensor {
        Tensor::randn(shape, DType::F32, Device::gpu(), seed)
    }

    #[test]
    fn labels_match_table2_rows() {
        assert_eq!(EdkmConfig::baseline().label(), "—");
        assert_eq!(EdkmConfig::marshal_only().label(), "M");
        assert_eq!(EdkmConfig::marshal_uniquify().label(), "M+U");
        assert_eq!(EdkmConfig::marshal_shard().label(), "M+S");
        assert_eq!(EdkmConfig::full(8).label(), "M+U+S");
        assert_eq!(EdkmConfig::default(), EdkmConfig::full(8));
    }

    #[test]
    fn baseline_duplicates_views_marshal_deduplicates() {
        // The Table 1 scenario driven through the hooks.
        runtime::reset();
        let x0 = Tensor::rand(&[1024, 1024], DType::F32, Device::gpu(), 0);
        let x1 = x0.reshape(&[1024 * 1024, 1]);

        // Without marshaling: two independent 4 MB copies.
        {
            let h = EdkmHooks::new(EdkmConfig::baseline());
            let _p0 = h.pack(&x0);
            let _p1 = h.pack(&x1);
            assert_eq!(runtime::cpu_live_bytes(), 8 << 20);
            assert_eq!(h.stats().misses, 2);
        }
        runtime::reset();
        let x0 = Tensor::rand(&[1024, 1024], DType::F32, Device::gpu(), 0);
        let x1 = x0.reshape(&[1024 * 1024, 1]);
        // With marshaling: one copy plus a reference.
        {
            let h = EdkmHooks::new(EdkmConfig::marshal_only());
            let _p0 = h.pack(&x0);
            let _p1 = h.pack(&x1);
            assert_eq!(runtime::cpu_live_bytes(), 4 << 20);
            let s = h.stats();
            assert_eq!(s.misses, 1);
            assert_eq!(s.direct_hits, 1);
            assert!(s.dedup_rate() > 0.49);
        }
    }

    #[test]
    fn unpack_restores_values_device_and_shape() {
        runtime::reset();
        let h = EdkmHooks::new(EdkmConfig::marshal_only());
        let t = gpu_tensor(&[8, 8], 1);
        let p = h.pack(&t);
        let back = h.unpack(&p);
        assert_eq!(back.shape(), &[8, 8]);
        assert_eq!(back.device(), Device::gpu());
        assert!(allclose(&back, &t, 0.0));
    }

    #[test]
    fn transposed_view_hits_and_reconstructs() {
        runtime::reset();
        let h = EdkmHooks::new(EdkmConfig::marshal_only());
        let a = gpu_tensor(&[4, 6], 2);
        let at = a.transpose(0, 1);
        let _pa = h.pack(&a);
        let pat = h.pack(&at);
        assert_eq!(h.stats().direct_hits, 1, "same storage must hit directly");
        let back = h.unpack(&pat);
        assert_eq!(back.shape(), &[6, 4]);
        assert!(allclose(&back, &at.contiguous(), 0.0));
    }

    #[test]
    fn contiguous_copy_found_by_graph_walk() {
        runtime::reset();
        let h = EdkmHooks::new(EdkmConfig::marshal_only());
        let a = gpu_tensor(&[4, 6], 3);
        let at = a.transpose(0, 1);
        let ac = at.contiguous(); // new storage, 1 invariant hop from `at`
        let _p = h.pack(&at);
        let pc = h.pack(&ac);
        let s = h.stats();
        assert_eq!(s.walk_hits, 1, "contiguous() must be found via the walk");
        assert_eq!(s.misses, 1);
        let back = h.unpack(&pc);
        assert_eq!(back.shape(), &[6, 4]);
        assert!(allclose(&back, &ac, 0.0));
    }

    #[test]
    fn hop_limit_zero_disables_walk() {
        runtime::reset();
        let mut cfg = EdkmConfig::marshal_only();
        cfg.hop_limit = 0;
        let h = EdkmHooks::new(cfg);
        let a = gpu_tensor(&[4, 6], 4);
        let ac = a.transpose(0, 1).contiguous();
        let _p = h.pack(&a);
        let _pc = h.pack(&ac);
        assert_eq!(h.stats().walk_hits, 0);
        assert_eq!(h.stats().misses, 2);
    }

    #[test]
    fn multi_hop_chain_within_limit() {
        runtime::reset();
        let h = EdkmHooks::new(EdkmConfig::marshal_only());
        let a = gpu_tensor(&[2, 3, 4], 5);
        // 3 hops: transpose -> contiguous -> reshape
        let b = a.transpose(0, 2).contiguous().reshape(&[24]);
        let _pa = h.pack(&a);
        let pb = h.pack(&b);
        assert_eq!(h.stats().walk_hits, 1);
        let back = h.unpack(&pb);
        assert!(allclose(&back, &b, 0.0));
    }

    #[test]
    fn uniquify_only_applies_to_annotated_storages() {
        runtime::reset();
        let h = EdkmHooks::new(EdkmConfig::marshal_uniquify());
        // Unannotated tensor: dense offload.
        let t = gpu_tensor(&[64, 8], 6);
        let _p = h.pack(&t);
        assert_eq!(runtime::cpu_live_bytes(), 64 * 8 * 4);

        // Annotated map with few unique rows: compressed offload.
        runtime::reset();
        let keys: Vec<u16> = (0..64u16).map(|i| i % 4).collect();
        let rows: Vec<f32> = keys
            .iter()
            .flat_map(|&k| (0..8).map(move |j| k as f32 + j as f32))
            .collect();
        let map = Tensor::from_vec(rows, &[64, 8], DType::F32, Device::gpu());
        uniquify::annotate(map.storage_id(), Arc::new(uniquify::RowKeys::scalar(keys)));
        let h = EdkmHooks::new(EdkmConfig::marshal_uniquify());
        let p = h.pack(&map);
        // table 4×8×4B = 128B + index 64×2B = 128B << dense 2048B.
        assert_eq!(runtime::cpu_live_bytes(), 256);
        let back = h.unpack(&p);
        assert!(allclose(&back, &map, 0.0));
        uniquify::clear_annotations();
    }

    #[test]
    fn sharding_respects_min_elems() {
        runtime::reset();
        let mut cfg = EdkmConfig::marshal_shard();
        cfg.min_shard_elems = 1000;
        let h = EdkmHooks::new(cfg);
        let small = gpu_tensor(&[10], 7);
        let big = gpu_tensor(&[4000], 8);
        let _ps = h.pack(&small);
        let cpu_after_small = runtime::cpu_live_bytes();
        assert_eq!(cpu_after_small, 40, "small tensors are not sharded");
        let _pb = h.pack(&big);
        assert_eq!(
            runtime::cpu_live_bytes() - cpu_after_small,
            4000 * 4 / 8,
            "big tensors keep 1/8 locally"
        );
    }

    #[test]
    fn unpack_memoizes_reconstruction() {
        runtime::reset();
        let h = EdkmHooks::new(EdkmConfig::marshal_only());
        let t = gpu_tensor(&[32, 32], 9);
        let p1 = h.pack(&t);
        let p2 = h.pack(&t.reshape(&[1024]));
        let _a = h.unpack(&p1);
        let h2d_once = runtime::transfer_snapshot().h2d_bytes;
        let _b = h.unpack(&p2);
        assert_eq!(
            runtime::transfer_snapshot().h2d_bytes,
            h2d_once,
            "second unpack must reuse the cached reconstruction"
        );
        assert_eq!(h.stats().cache_hits, 1);
        assert_eq!(h.stats().unpacks, 2);
    }

    #[test]
    fn no_offload_mode_keeps_tensors_inline() {
        runtime::reset();
        let mut cfg = EdkmConfig::baseline();
        cfg.offload = false;
        let h = EdkmHooks::new(cfg);
        let t = gpu_tensor(&[100], 10);
        let p = h.pack(&t);
        assert_eq!(runtime::cpu_live_bytes(), 0);
        let back = h.unpack(&p);
        assert_eq!(back.storage_id(), t.storage_id());
    }

    #[test]
    fn end_to_end_gradients_identical_with_and_without_edkm() {
        use edkm_autograd::{push_hooks, Var};
        // The optimization must be *exact*: same gradients bit-for-bit.
        let grad_with = {
            runtime::reset();
            let w = Var::param(Tensor::randn(&[8, 8], DType::F32, Device::gpu(), 11));
            let x = Var::constant(Tensor::randn(&[4, 8], DType::F32, Device::gpu(), 12));
            let hooks = Arc::new(EdkmHooks::new(EdkmConfig::full(4)));
            {
                let _g = push_hooks(hooks as Arc<dyn SavedTensorHooks>);
                let y = x.matmul(&w.t()).silu().square().sum_all();
                y.backward();
            }
            w.grad().unwrap().to_vec()
        };
        let grad_without = {
            runtime::reset();
            let w = Var::param(Tensor::randn(&[8, 8], DType::F32, Device::gpu(), 11));
            let x = Var::constant(Tensor::randn(&[4, 8], DType::F32, Device::gpu(), 12));
            let y = x.matmul(&w.t()).silu().square().sum_all();
            y.backward();
            w.grad().unwrap().to_vec()
        };
        assert_eq!(grad_with, grad_without);
    }
}
