//! Table 2 reproduction harness: memory/runtime ablation of M, U and S.
//!
//! The paper measures the train-time memory footprint and forward+backward
//! runtime of **one attention layer** of the LLaMA-7B decoder stack under
//! 3-bit DKM clustering, toggling marshaling (M), uniquification (U) and
//! sharding (S). This module reruns exactly that experiment on the
//! simulated substrate: real byte accounting, modeled seconds.

use crate::dkm::{DkmConfig, DkmLayer};
use crate::hooks::{EdkmConfig, EdkmHooks, HookStatsSnapshot};
use crate::uniquify;
use edkm_autograd::{push_hooks, SavedTensorHooks, Var};
use edkm_nn::CausalSelfAttention;
use edkm_tensor::{runtime, DType, Device, Tensor};
use std::sync::Arc;

/// Geometry of the measured attention layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AblationSetup {
    /// Residual width (paper: 4096; simulation default: 256).
    pub d_model: usize,
    /// Attention heads.
    pub n_heads: usize,
    /// Sequence length of the probe batch.
    pub seq: usize,
    /// Probe batch size.
    pub batch: usize,
    /// Palette bits (paper: 3).
    pub bits: u8,
    /// DKM clustering dimensionality (paper: 1 = scalar; >1 exercises the
    /// vector extension, where uniquification must fall back to dense
    /// offloads on high-entropy block keys).
    pub cluster_dim: usize,
    /// DKM iterations during the probe.
    pub dkm_iters: usize,
    /// Model PCIe copies as overlapped with compute (the paper's runtime
    /// regime — see [`edkm_tensor::CostModel::overlap_pcie`]).
    pub overlap_pcie: bool,
}

impl Default for AblationSetup {
    fn default() -> Self {
        AblationSetup {
            d_model: 256,
            n_heads: 8,
            seq: 16,
            batch: 1,
            bits: 3,
            cluster_dim: 1,
            dkm_iters: 3,
            overlap_pcie: false,
        }
    }
}

impl AblationSetup {
    /// A tiny setup for unit tests.
    pub fn tiny() -> Self {
        AblationSetup {
            d_model: 32,
            n_heads: 2,
            seq: 4,
            batch: 1,
            bits: 3,
            cluster_dim: 1,
            dkm_iters: 2,
            overlap_pcie: false,
        }
    }
}

/// One measured row of Table 2.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Config label ("—", "M", "M+U", "M+S", "M+U+S").
    pub label: String,
    /// Whether M/U/S were active.
    pub config: EdkmConfig,
    /// Peak CPU bytes of offloaded saved tensors (per learner).
    pub peak_cpu_bytes: usize,
    /// Simulated forward+backward seconds.
    pub sim_seconds: f64,
    /// GPU→CPU traffic in bytes.
    pub d2h_bytes: usize,
    /// CPU→GPU traffic in bytes.
    pub h2d_bytes: usize,
    /// Hook counters.
    pub stats: HookStatsSnapshot,
}

impl AblationRow {
    /// Memory in MB (the paper's unit).
    pub fn memory_mb(&self) -> f64 {
        self.peak_cpu_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// Run one fwd+bwd of a DKM-clustered attention layer under `config` and
/// measure CPU peak / simulated time / traffic.
pub fn run_one(setup: &AblationSetup, config: EdkmConfig) -> AblationRow {
    runtime::reset();
    if setup.overlap_pcie {
        runtime::set_cost_model(edkm_tensor::CostModel {
            overlap_pcie: true,
            ..edkm_tensor::CostModel::default()
        });
    }
    let device = Device::gpu();

    // Weights in bf16 (the paper trains in brainfloat16) so uniquification
    // sees ≤ 2^16 patterns.
    let attn = CausalSelfAttention::new(
        "ablation.attn",
        setup.d_model,
        setup.n_heads,
        10000.0,
        DType::Bf16,
        device,
        7,
    );
    let x = Var::constant(Tensor::randn(
        &[setup.batch * setup.seq, setup.d_model],
        DType::F32,
        device,
        11,
    ));

    let mut dkm_cfg = DkmConfig::with_vector(setup.bits, setup.cluster_dim.max(1));
    dkm_cfg.iters = setup.dkm_iters;
    let dkm = DkmLayer::new(dkm_cfg);

    uniquify::clear_annotations();
    let hooks = Arc::new(EdkmHooks::new(config));
    let stats_handle = Arc::clone(&hooks);

    // Scope the measurement to the forward+backward pass.
    runtime::reset_peak(Device::Cpu);
    runtime::clock().reset();
    runtime::ledger().reset();

    {
        let _guard = push_hooks(hooks as Arc<dyn SavedTensorHooks>);
        let hook = |_name: &str, w: &Var| -> Var { dkm.cluster(w).soft };
        let y = attn.forward(&x, setup.batch, setup.seq, Some(&hook));
        let loss = y.square().mean_all();
        loss.backward();

        let row = AblationRow {
            label: config.label(),
            config,
            peak_cpu_bytes: runtime::peak_bytes(Device::Cpu),
            sim_seconds: runtime::sim_seconds(),
            d2h_bytes: runtime::transfer_snapshot().d2h_bytes,
            h2d_bytes: runtime::transfer_snapshot().h2d_bytes,
            stats: stats_handle.stats(),
        };
        uniquify::clear_annotations();
        row
    }
}

/// Run the five Table 2 rows: baseline, M, M+U, M+S, M+U+S.
pub fn run_table2(setup: &AblationSetup, learners: usize) -> Vec<AblationRow> {
    let mk = |mut c: EdkmConfig| {
        c.learners = learners;
        c
    };
    vec![
        run_one(setup, mk(EdkmConfig::baseline())),
        run_one(setup, mk(EdkmConfig::marshal_only())),
        run_one(setup, mk(EdkmConfig::marshal_uniquify())),
        run_one(setup, mk(EdkmConfig::marshal_shard())),
        run_one(setup, mk(EdkmConfig::full(learners))),
    ]
}

/// Render rows in the paper's Table 2 format (memory, reduction, runtime).
pub fn render_table2(rows: &[AblationRow]) -> String {
    let base = rows.first().map(|r| r.peak_cpu_bytes).unwrap_or(0) as f64;
    let mut out = String::new();
    out.push_str("| M | U | S | Memory (MB) | Reduction (x) | Runtime (sim s) |\n");
    out.push_str("|---|---|---|-------------|---------------|------------------|\n");
    for r in rows {
        let tick = |b: bool| if b { "✓" } else { " " };
        out.push_str(&format!(
            "| {} | {} | {} | {:.2} | {:.1} | {:.3} |\n",
            tick(r.config.marshal),
            tick(r.config.uniquify),
            tick(r.config.shard),
            r.memory_mb(),
            base / r.peak_cpu_bytes.max(1) as f64,
            r.sim_seconds,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_have_expected_labels() {
        let rows = run_table2(&AblationSetup::tiny(), 4);
        let labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, vec!["—", "M", "M+U", "M+S", "M+U+S"]);
    }

    #[test]
    fn marshaling_reduces_memory() {
        let setup = AblationSetup::tiny();
        let base = run_one(&setup, EdkmConfig::baseline());
        let m = run_one(&setup, EdkmConfig::marshal_only());
        assert!(base.peak_cpu_bytes > 0);
        assert!(
            m.peak_cpu_bytes < base.peak_cpu_bytes,
            "M must reduce memory: {} vs {}",
            m.peak_cpu_bytes,
            base.peak_cpu_bytes
        );
        assert!(m.stats.direct_hits + m.stats.walk_hits > 0);
        // Marshaling also reduces offload traffic.
        assert!(m.d2h_bytes < base.d2h_bytes);
    }

    #[test]
    fn full_edkm_orders_like_paper() {
        // Memory must shrink with each added technique. Note: whether M+U+S
        // beats M+S depends on scale — the replicated attention table is
        // O(u·|C|), negligible against the O(|W|) index list only when
        // |W| ≫ u (true at LLaMA scale and at the bench's d_model=512, not
        // at this unit-test scale). The full paper ordering is asserted by
        // the `table2` bench binary and recorded in EXPERIMENTS.md.
        let setup = AblationSetup {
            d_model: 64,
            n_heads: 4,
            seq: 8,
            batch: 1,
            bits: 3,
            cluster_dim: 1,
            dkm_iters: 2,
            overlap_pcie: false,
        };
        let rows = run_table2(&setup, 8);
        let mem: Vec<usize> = rows.iter().map(|r| r.peak_cpu_bytes).collect();
        assert!(mem[0] > mem[1], "base > M: {mem:?}");
        assert!(mem[1] > mem[2], "M > M+U: {mem:?}");
        assert!(mem[1] > mem[3], "M > M+S: {mem:?}");
        assert!(mem[2] > mem[4], "M+U > M+U+S: {mem:?}");
        // Total reduction is large (paper: ~130x at LLaMA-7B scale).
        let reduction = mem[0] as f64 / mem[4] as f64;
        assert!(
            reduction > 5.0,
            "combined reduction too small: {reduction:.1}x"
        );
    }

    #[test]
    fn uniquification_gain_is_scalar_specific() {
        // The paper's U trick rests on the 2^16 pattern bound, which block
        // keys (vector clustering) break: random bf16 blocks are nearly
        // all-unique, so the wide path's adaptive fallback stores densely
        // and U buys (almost) nothing — while never costing anything.
        let scalar = AblationSetup::tiny();
        let vector = AblationSetup {
            cluster_dim: 2,
            ..AblationSetup::tiny()
        };
        let s_m = run_one(&scalar, EdkmConfig::marshal_only());
        let s_mu = run_one(&scalar, EdkmConfig::marshal_uniquify());
        let v_m = run_one(&vector, EdkmConfig::marshal_only());
        let v_mu = run_one(&vector, EdkmConfig::marshal_uniquify());
        assert!(
            s_mu.peak_cpu_bytes < s_m.peak_cpu_bytes,
            "scalar U must compress: {} vs {}",
            s_mu.peak_cpu_bytes,
            s_m.peak_cpu_bytes
        );
        assert!(
            v_mu.peak_cpu_bytes <= v_m.peak_cpu_bytes,
            "the fallback must never make U worse than M alone"
        );
        let scalar_gain = s_m.peak_cpu_bytes as f64 / s_mu.peak_cpu_bytes as f64;
        let vector_gain = v_m.peak_cpu_bytes as f64 / v_mu.peak_cpu_bytes as f64;
        assert!(
            scalar_gain > vector_gain,
            "U's gain must shrink on block keys: scalar {scalar_gain:.2}x vs vector {vector_gain:.2}x"
        );
    }

    #[test]
    fn sharding_adds_runtime_overhead() {
        let setup = AblationSetup::tiny();
        let m = run_one(&setup, EdkmConfig::marshal_only());
        let ms = run_one(
            &setup,
            EdkmConfig {
                min_shard_elems: 1, // force sharding even at tiny scale
                ..EdkmConfig::marshal_shard()
            },
        );
        assert!(
            ms.sim_seconds > m.sim_seconds,
            "all-gather must cost simulated time: {} vs {}",
            ms.sim_seconds,
            m.sim_seconds
        );
    }

    #[test]
    fn render_table_contains_all_rows() {
        let rows = run_table2(&AblationSetup::tiny(), 2);
        let s = render_table2(&rows);
        assert_eq!(s.lines().count(), 2 + 5);
        assert!(s.contains("Reduction"));
    }
}
