//! Backend-pluggable launch layer for the tiled LUT-GEMM kernel.
//!
//! [`super::kernel::TiledLutKernel`] owns the *data* (palette LUT, the
//! structure-of-arrays tile-repacked index stream); this module owns the
//! *execution*. A GEMM call is described by a borrowed [`LutGemmArgs`]
//! descriptor — typed views over the LUT, packed-index tiles, activations
//! and output, plus an explicit `lanes` vectorization factor, in the
//! spirit of CubeCL-style `TensorArg::from_raw_parts` launch arguments —
//! and consumed by a [`KernelBackend`]. Three backends register:
//!
//! - **scalar** — the tiled, tile-parallel kernel with one scalar
//!   accumulator chain processed per output row at a time: the
//!   bit-identity *oracle* every other backend is tested against.
//! - **vectorized** — fixed-width lane groups of 4/8/16 f32 output rows.
//!   Lanes are assigned **across output rows**, so each lane owns one
//!   output element's complete ascending-`j` accumulator chain and no
//!   floating-point reduction ever crosses lanes: every lane width is
//!   bit-identical to the serial oracle *by construction*, at every
//!   thread count. The structure-of-arrays index layout (all `L` lane
//!   indices of a column adjacent) lets the per-lane indexed adds
//!   autovectorize. Tail rows (`rows % L`) are covered by a fixed
//!   lane-halving descent `L → L/2 → … → 1`, so the execution tree is
//!   deterministic by construction, not by accident of the optimizer.
//!   The default lane width probes `std::arch` at runtime
//!   ([`detected_lanes`]): avx512f → 16, avx2 → 8, everything else
//!   (including non-x86) → 4 — a deterministic fallback order; all
//!   widths are portable safe Rust, so any width runs on any CPU.
//! - **sim** — a GPU-style launch model: the output tiles form a grid of
//!   thread blocks scheduled in waves over [`SIM_SMS`] simulated
//!   multiprocessors; launch overhead and the idle-slot cost of partial
//!   waves are charged to the runtime ledger ([`sim_stats`] exposes the
//!   occupancy telemetry). The math delegates to the scalar path, so the
//!   results stay bit-identical — this backend is the seam for a real
//!   GPU path, not a performance claim.
//!
//! The process-wide default backend is resolved once from the
//! `EDKM_KERNEL_BACKEND` environment variable (`scalar`, `vectorized`,
//! `vec4`, `vec8`, `vec16`, `sim`) or CLI override
//! ([`set_default_backend`]), falling back to `vectorized` with the
//! detected lane width. Because every backend is bit-identical, switching
//! backends can never change served tokens — only throughput.

use super::kernel::{
    block_base, chunk_cols, tile_rows, IN_CHUNK, PROD_K_MAX, PROD_TABLE_MAX_FLOATS, TILE_OUT,
};
use crate::scratch::ScratchArena;
use edkm_tensor::{runtime, Device};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Borrowed 2-D view over a dense f32 tensor, built from raw parts
/// (data + shape) the way launch-descriptor ABIs pass tensor arguments.
#[derive(Debug, Clone, Copy)]
pub struct TensorArg<'a> {
    data: &'a [f32],
    shape: [usize; 2],
}

impl<'a> TensorArg<'a> {
    /// Wrap `data` as a row-major `[shape[0], shape[1]]` view.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal `shape[0] · shape[1]`.
    pub fn from_raw_parts(data: &'a [f32], shape: [usize; 2]) -> Self {
        assert_eq!(data.len(), shape[0] * shape[1], "tensor arg shape mismatch");
        TensorArg { data, shape }
    }

    /// The underlying row-major element slice.
    pub fn data(&self) -> &'a [f32] {
        self.data
    }

    /// Rows (`shape[0]`).
    pub fn rows(&self) -> usize {
        self.shape[0]
    }

    /// Columns (`shape[1]`).
    pub fn cols(&self) -> usize {
        self.shape[1]
    }
}

/// Borrowed mutable 2-D view over a dense f32 output tensor.
#[derive(Debug)]
pub struct TensorArgMut<'a> {
    data: &'a mut [f32],
    shape: [usize; 2],
}

impl<'a> TensorArgMut<'a> {
    /// Wrap `data` as a row-major `[shape[0], shape[1]]` output view.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal `shape[0] · shape[1]`.
    pub fn from_raw_parts(data: &'a mut [f32], shape: [usize; 2]) -> Self {
        assert_eq!(data.len(), shape[0] * shape[1], "tensor arg shape mismatch");
        TensorArgMut { data, shape }
    }

    /// Rows (`shape[0]`).
    pub fn rows(&self) -> usize {
        self.shape[0]
    }

    /// Columns (`shape[1]`).
    pub fn cols(&self) -> usize {
        self.shape[1]
    }

    /// Consume the view, releasing the underlying mutable slice.
    pub fn into_data(self) -> &'a mut [f32] {
        self.data
    }
}

/// Borrowed view over the tile-repacked palette-index stream at its
/// storage width (`u8` for k ≤ 256, `u16` up to the lossless 2¹⁶
/// palette).
#[derive(Debug, Clone, Copy)]
pub enum IdxArg<'a> {
    /// 8-bit indices.
    U8(&'a [u8]),
    /// 16-bit indices.
    U16(&'a [u16]),
}

impl IdxArg<'_> {
    /// Number of packed indices in the stream.
    pub fn len(&self) -> usize {
        match self {
            IdxArg::U8(v) => v.len(),
            IdxArg::U16(v) => v.len(),
        }
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Storage width of one index, in bits.
    pub fn width_bits(&self) -> u8 {
        match self {
            IdxArg::U8(_) => 8,
            IdxArg::U16(_) => 16,
        }
    }
}

/// The launch descriptor one LUT-GEMM call is made of: typed views over
/// the palette LUT (`[k, 1]`), the tile-repacked index stream, the
/// activations (`[n, in]`) and the output (`[n, out]`), plus the
/// vectorization factor the caller requests. Built by
/// [`super::kernel::TiledLutKernel::launch_args`].
#[derive(Debug)]
pub struct LutGemmArgs<'a> {
    /// Palette centroids, `[k, 1]`.
    pub lut: TensorArg<'a>,
    /// Tile-repacked indices (structure-of-arrays within each block).
    pub idx: IdxArg<'a>,
    /// Activations, `[n, in]` row-major.
    pub x: TensorArg<'a>,
    /// Output, `[n, out]` row-major.
    pub out: TensorArgMut<'a>,
    /// Requested vectorization factor (1 for scalar execution).
    pub lanes: u8,
}

/// One execution strategy for the LUT-GEMM. Every implementation must be
/// bit-identical to [`super::kernel::TiledLutKernel::forward_serial_into`]
/// — backends trade throughput, never results.
pub trait KernelBackend: Send + Sync {
    /// Stable identifier (`"scalar"`, `"vectorized"`, `"sim"`).
    fn name(&self) -> &'static str;

    /// Lane width this backend executes with (1 for scalar paths).
    fn lanes(&self) -> u8;

    /// Run the GEMM described by `args`, drawing scratch from `arena`.
    fn launch(&self, args: LutGemmArgs<'_>, arena: &mut ScratchArena);
}

// ---------------------------------------------------------------------------
// Shared tiled execution body
// ---------------------------------------------------------------------------

/// One tile's GEMM at lane width `L`: for every batch row, stream the
/// `(t, c)` index blocks chunk by chunk, carrying `TILE_OUT` accumulators
/// across chunks. `L` output rows advance together; each keeps its own
/// accumulator chain in ascending-`j` order (bit-identical to serial),
/// and the structure-of-arrays block layout makes the `L` index reads of
/// one column a single contiguous run. Tail rows take the fixed
/// lane-halving descent `L/2 → … → 1`.
#[allow(clippy::too_many_arguments)] // internal hot loop, not API
fn tile_gemm_lanes<I: Copy + Into<usize>, const L: usize>(
    lut: &[f32],
    k: usize,
    out_features: usize,
    in_features: usize,
    idx: &[I],
    x: &[f32],
    n: usize,
    prod: &[f32],
    use_prod: bool,
    t: usize,
    n_chunks: usize,
    tile_out: &mut [f32],
) {
    let rows = tile_rows(out_features, t);
    for i in 0..n {
        let mut acc = [0.0f32; TILE_OUT];
        for c in 0..n_chunks {
            let cols = chunk_cols(in_features, c);
            let base = block_base(out_features, in_features, t, c);
            let blk = &idx[base..base + rows * cols];
            if use_prod {
                let slab = &prod[i * k * in_features + c * IN_CHUNK * k..][..k * cols];
                let mut r = 0usize;
                while r + L <= rows {
                    // A private lane buffer keeps the L accumulators in
                    // registers across the whole chunk.
                    let mut lane = [0.0f32; L];
                    lane.copy_from_slice(&acc[r..r + L]);
                    for (j, line) in slab.chunks_exact(k).enumerate() {
                        let idxs = &blk[j * rows + r..j * rows + r + L];
                        for (a, &ci) in lane.iter_mut().zip(idxs) {
                            *a += line[ci.into()];
                        }
                    }
                    acc[r..r + L].copy_from_slice(&lane);
                    r += L;
                }
                // Fixed lane-halving descent over the tail rows: widths
                // L/2, L/4, …, 1 in that order (rows % L in binary).
                let mut w = L / 2;
                while w >= 1 {
                    if r + w <= rows {
                        for (j, line) in slab.chunks_exact(k).enumerate() {
                            let idxs = &blk[j * rows + r..j * rows + r + w];
                            for (a, &ci) in acc[r..r + w].iter_mut().zip(idxs) {
                                *a += line[ci.into()];
                            }
                        }
                        r += w;
                    }
                    w /= 2;
                }
            } else {
                // Rich-palette inline multiply: the identical f32s, no
                // product table.
                let xc = &x[i * in_features + c * IN_CHUNK..][..cols];
                let lut = &lut[..k];
                let mut r = 0usize;
                while r + L <= rows {
                    let mut lane = [0.0f32; L];
                    lane.copy_from_slice(&acc[r..r + L]);
                    for (j, &xv) in xc.iter().enumerate() {
                        let idxs = &blk[j * rows + r..j * rows + r + L];
                        for (a, &ci) in lane.iter_mut().zip(idxs) {
                            *a += lut[ci.into()] * xv;
                        }
                    }
                    acc[r..r + L].copy_from_slice(&lane);
                    r += L;
                }
                let mut w = L / 2;
                while w >= 1 {
                    if r + w <= rows {
                        for (j, &xv) in xc.iter().enumerate() {
                            let idxs = &blk[j * rows + r..j * rows + r + w];
                            for (a, &ci) in acc[r..r + w].iter_mut().zip(idxs) {
                                *a += lut[ci.into()] * xv;
                            }
                        }
                        r += w;
                    }
                    w /= 2;
                }
            }
        }
        tile_out[i * TILE_OUT..][..rows].copy_from_slice(&acc[..rows]);
    }
}

/// The full tiled execution at lane width `L`: stage the activation-side
/// LUT product tables, fan the output tiles across worker threads (fixed
/// tile ownership, so results cannot depend on the thread count), and
/// scatter the tile-major staging back to row-major.
fn run_tiled<const L: usize>(args: LutGemmArgs<'_>, arena: &mut ScratchArena) {
    let LutGemmArgs {
        lut, idx, x, out, ..
    } = args;
    let (n, in_features) = (x.rows(), x.cols());
    let out_features = out.cols();
    let k = lut.rows();
    let lut = lut.data();
    let x = x.data();
    let out = out.into_data();
    if n == 0 || out_features == 0 {
        return;
    }
    let n_tiles = out_features.div_ceil(TILE_OUT);
    let n_chunks = in_features.div_ceil(IN_CHUNK);

    // Activation-side LUT precompute: prod[i][c][j][cent] = lut[cent] ·
    // x[i, c·IN_CHUNK + j], contiguous per (i, c) slab, j-major so one
    // column's k candidates share a cache line. Only worth the k·in
    // multiplies for palettes small enough that the table stays
    // cache-resident, and only up to a whole-table size cap (the table
    // scales with the batch); the inline fallback computes the identical
    // f32s either way.
    let use_prod =
        k <= PROD_K_MAX && in_features > 0 && n * k * in_features <= PROD_TABLE_MAX_FLOATS;
    let prod = if use_prod {
        let mut prod = arena.take(n * k * in_features);
        for i in 0..n {
            let xrow = &x[i * in_features..(i + 1) * in_features];
            let slab_row = &mut prod[i * k * in_features..];
            for c in 0..n_chunks {
                let cols = chunk_cols(in_features, c);
                let slab = &mut slab_row[c * IN_CHUNK * k..];
                let xc = &xrow[c * IN_CHUNK..c * IN_CHUNK + cols];
                for (j, &xv) in xc.iter().enumerate() {
                    for (p, &l) in slab[j * k..(j + 1) * k].iter_mut().zip(lut) {
                        *p = l * xv;
                    }
                }
            }
        }
        prod
    } else {
        Vec::new() // inline path: no table, and no arena checkout
    };

    // Tile-major staging: one `n × TILE_OUT` slab per tile (fixed stride
    // so each par chunk is exactly one tile), scattered back to row-major
    // afterwards.
    let mut tmp = arena.take(n_tiles * n * TILE_OUT);
    {
        let prod_ref: &[f32] = &prod;
        tmp.par_chunks_mut(n * TILE_OUT)
            .enumerate()
            .for_each(|(t, tile_out)| match idx {
                IdxArg::U8(v) => tile_gemm_lanes::<u8, L>(
                    lut,
                    k,
                    out_features,
                    in_features,
                    v,
                    x,
                    n,
                    prod_ref,
                    use_prod,
                    t,
                    n_chunks,
                    tile_out,
                ),
                IdxArg::U16(v) => tile_gemm_lanes::<u16, L>(
                    lut,
                    k,
                    out_features,
                    in_features,
                    v,
                    x,
                    n,
                    prod_ref,
                    use_prod,
                    t,
                    n_chunks,
                    tile_out,
                ),
            });
    }
    for t in 0..n_tiles {
        let rows = tile_rows(out_features, t);
        for i in 0..n {
            let src = &tmp[t * n * TILE_OUT + i * TILE_OUT..][..rows];
            out[i * out_features + t * TILE_OUT..][..rows].copy_from_slice(src);
        }
    }
    arena.put(prod); // zero-capacity inline-path Vec is dropped, not pooled
    arena.put(tmp);
}

// ---------------------------------------------------------------------------
// Backends
// ---------------------------------------------------------------------------

/// The scalar-tiled oracle: one accumulator chain per output row,
/// processed one row at a time. Still tiled and tile-parallel — only the
/// row grouping is scalar.
#[derive(Debug)]
pub struct ScalarBackend;

impl KernelBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn lanes(&self) -> u8 {
        1
    }

    fn launch(&self, args: LutGemmArgs<'_>, arena: &mut ScratchArena) {
        run_tiled::<1>(args, arena);
    }
}

/// The explicitly vectorized CPU backend at a fixed lane width
/// (4, 8 or 16 f32 output rows per group). Portable safe Rust — any
/// width runs on any CPU; [`detected_lanes`] picks the default.
#[derive(Debug)]
pub struct VectorizedBackend {
    lanes: u8,
}

impl KernelBackend for VectorizedBackend {
    fn name(&self) -> &'static str {
        "vectorized"
    }

    fn lanes(&self) -> u8 {
        self.lanes
    }

    fn launch(&self, args: LutGemmArgs<'_>, arena: &mut ScratchArena) {
        match self.lanes {
            4 => run_tiled::<4>(args, arena),
            8 => run_tiled::<8>(args, arena),
            _ => run_tiled::<16>(args, arena),
        }
    }
}

/// Simulated multiprocessors in the GPU-style launch model.
pub const SIM_SMS: u64 = 16;

/// Fixed host-side cost charged to the ledger per simulated launch, in
/// flop-equivalents (kernel dispatch, argument marshaling).
pub const SIM_LAUNCH_OVERHEAD_FLOPS: f64 = 4096.0;

/// GPU-style launch model: the output tiles form the grid, scheduled in
/// waves over [`SIM_SMS`] simulated multiprocessors. Each launch charges
/// the runtime ledger the fixed launch overhead plus the idle-slot cost
/// of the final partial wave (the occupancy loss a real device would
/// eat). The math delegates to the scalar path, so results stay
/// bit-identical; the grid/occupancy telemetry accumulates in
/// [`sim_stats`]. This is the seam for a later real GPU backend.
#[derive(Debug)]
pub struct SimBackend {
    launches: AtomicU64,
    tiles: AtomicU64,
    wave_slots: AtomicU64,
}

impl KernelBackend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn lanes(&self) -> u8 {
        1
    }

    fn launch(&self, args: LutGemmArgs<'_>, arena: &mut ScratchArena) {
        let n = args.x.rows();
        let out_features = args.out.cols();
        let in_features = args.x.cols();
        let k = args.lut.rows();
        let tiles = out_features.div_ceil(TILE_OUT) as u64;
        if tiles > 0 && n > 0 {
            let waves = tiles.div_ceil(SIM_SMS);
            let slots = waves * SIM_SMS;
            self.launches.fetch_add(1, Ordering::Relaxed);
            self.tiles.fetch_add(tiles, Ordering::Relaxed);
            self.wave_slots.fetch_add(slots, Ordering::Relaxed);
            // Idle slots of the last partial wave sit on work the grid
            // paid for but didn't use: charge one tile's work per slot.
            let per_tile = (n * TILE_OUT * (in_features + k)) as f64;
            let overhead = SIM_LAUNCH_OVERHEAD_FLOPS + (slots - tiles) as f64 * per_tile;
            runtime::record_compute(overhead, Device::Cpu);
        }
        run_tiled::<1>(args, arena);
    }
}

/// Accumulated grid telemetry of the [`SimBackend`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStats {
    /// Simulated kernel launches.
    pub launches: u64,
    /// Total thread-block tiles across all launches.
    pub tiles: u64,
    /// Total SM slots across all waves (tiles plus idle slots).
    pub wave_slots: u64,
}

impl SimStats {
    /// Achieved occupancy: tiles over wave slots (1.0 = every SM busy in
    /// every wave; 0.0 when nothing launched).
    pub fn occupancy(&self) -> f64 {
        if self.wave_slots == 0 {
            0.0
        } else {
            self.tiles as f64 / self.wave_slots as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Registry and selection
// ---------------------------------------------------------------------------

static SCALAR: ScalarBackend = ScalarBackend;
static VEC4: VectorizedBackend = VectorizedBackend { lanes: 4 };
static VEC8: VectorizedBackend = VectorizedBackend { lanes: 8 };
static VEC16: VectorizedBackend = VectorizedBackend { lanes: 16 };
static SIM: SimBackend = SimBackend {
    launches: AtomicU64::new(0),
    tiles: AtomicU64::new(0),
    wave_slots: AtomicU64::new(0),
};

static REGISTRY: [&dyn KernelBackend; 5] = [&SCALAR, &VEC4, &VEC8, &VEC16, &SIM];

/// Every registered backend (scalar oracle, the three vectorized lane
/// widths, the simulated launch). Parity suites iterate this.
pub fn registry() -> &'static [&'static dyn KernelBackend] {
    &REGISTRY
}

/// Snapshot of the [`SimBackend`]'s accumulated grid telemetry.
pub fn sim_stats() -> SimStats {
    SimStats {
        launches: SIM.launches.load(Ordering::Relaxed),
        tiles: SIM.tiles.load(Ordering::Relaxed),
        wave_slots: SIM.wave_slots.load(Ordering::Relaxed),
    }
}

/// The lane width the vectorized backend defaults to on this machine,
/// probed from `std::arch` in a deterministic fallback order: avx512f →
/// 16, avx2 → 8, anything else (including non-x86) → 4.
pub fn detected_lanes() -> u8 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            16
        } else if std::arch::is_x86_feature_detected!("avx2") {
            8
        } else {
            4
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        4
    }
}

/// Comma-joined list of the SIMD capabilities detected on this CPU
/// (empty on targets without runtime feature detection) — recorded into
/// bench JSON so trajectories across heterogeneous runners stay
/// interpretable.
pub fn cpu_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut have = Vec::new();
        if std::arch::is_x86_feature_detected!("avx512f") {
            have.push("avx512f");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            have.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            have.push("fma");
        }
        if std::arch::is_x86_feature_detected!("sse4.2") {
            have.push("sse4.2");
        }
        have.join(",")
    }
    #[cfg(target_arch = "aarch64")]
    {
        "neon".to_string()
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        String::new()
    }
}

const SEL_UNSET: u8 = 0;
const SEL_SCALAR: u8 = 1;
const SEL_VEC4: u8 = 2;
const SEL_VEC8: u8 = 3;
const SEL_VEC16: u8 = 4;
const SEL_SIM: u8 = 5;

static SELECTED: AtomicU8 = AtomicU8::new(SEL_UNSET);

fn vec_code(lanes: u8) -> u8 {
    match lanes {
        16 => SEL_VEC16,
        8 => SEL_VEC8,
        _ => SEL_VEC4,
    }
}

fn code_of(name: &str) -> Result<u8, String> {
    match name {
        "scalar" => Ok(SEL_SCALAR),
        "vectorized" | "vec" | "auto" => Ok(vec_code(detected_lanes())),
        "vec4" => Ok(SEL_VEC4),
        "vec8" => Ok(SEL_VEC8),
        "vec16" => Ok(SEL_VEC16),
        "sim" => Ok(SEL_SIM),
        other => Err(format!(
            "unknown kernel backend '{other}' (expected scalar|vectorized|vec4|vec8|vec16|sim)"
        )),
    }
}

fn backend_of(code: u8) -> &'static dyn KernelBackend {
    match code {
        SEL_SCALAR => &SCALAR,
        SEL_VEC4 => &VEC4,
        SEL_VEC8 => &VEC8,
        SEL_VEC16 => &VEC16,
        SEL_SIM => &SIM,
        _ => backend_of(vec_code(detected_lanes())),
    }
}

/// Look up a backend by selector name without changing the process
/// default (`scalar`, `vectorized`/`vec`/`auto`, `vec4`, `vec8`,
/// `vec16`, `sim`). Bench sweeps and tests use this with
/// [`super::kernel::TiledLutKernel::launch_with`].
///
/// # Errors
///
/// Returns the accepted selector list when `name` is not one of them.
pub fn backend_by_name(name: &str) -> Result<&'static dyn KernelBackend, String> {
    code_of(name).map(backend_of)
}

/// Override the process-default backend (CLI `--backend`). Accepts the
/// same selectors as [`backend_by_name`].
///
/// # Errors
///
/// Returns the accepted selector list when `name` is not one of them.
pub fn set_default_backend(name: &str) -> Result<(), String> {
    let code = code_of(name)?;
    SELECTED.store(code, Ordering::Relaxed);
    Ok(())
}

/// Resolve an `EDKM_KERNEL_BACKEND`-style value (`None` = variable unset)
/// into a selector code plus the warning to surface when the value was
/// not a recognized selector. Pure, so the warn-and-fall-back contract is
/// unit-testable without touching the process-wide selection.
fn resolve_env_selector(raw: Option<&str>) -> (u8, Option<String>) {
    match raw {
        None => (vec_code(detected_lanes()), None),
        Some(v) => match code_of(v) {
            Ok(code) => (code, None),
            Err(e) => (
                vec_code(detected_lanes()),
                Some(format!(
                    "warning: EDKM_KERNEL_BACKEND: {e}; using vectorized"
                )),
            ),
        },
    }
}

/// The backend serving [`super::kernel::TiledLutKernel::forward_into`].
/// Resolved once: an explicit [`set_default_backend`] wins, else the
/// `EDKM_KERNEL_BACKEND` environment variable, else `vectorized` at the
/// detected lane width. An unrecognized environment value warns once and
/// falls back to the vectorized default.
pub fn default_backend() -> &'static dyn KernelBackend {
    let mut code = SELECTED.load(Ordering::Relaxed);
    if code == SEL_UNSET {
        let env = std::env::var("EDKM_KERNEL_BACKEND").ok();
        let (resolved, warning) = resolve_env_selector(env.as_deref());
        if let Some(w) = warning {
            eprintln!("{w}");
        }
        code = resolved;
        SELECTED.store(code, Ordering::Relaxed);
    }
    backend_of(code)
}

///`(name, lanes)` of the current default backend — what `StatsSnapshot`
/// and the serve readout report.
pub fn active() -> (&'static str, u8) {
    let b = default_backend();
    (b.name(), b.lanes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_exposes_all_backends() {
        let names: Vec<_> = registry().iter().map(|b| (b.name(), b.lanes())).collect();
        assert_eq!(
            names,
            [
                ("scalar", 1),
                ("vectorized", 4),
                ("vectorized", 8),
                ("vectorized", 16),
                ("sim", 1)
            ]
        );
    }

    #[test]
    fn backend_lookup_accepts_every_selector_and_rejects_typos() {
        for (sel, name) in [
            ("scalar", "scalar"),
            ("vectorized", "vectorized"),
            ("vec", "vectorized"),
            ("auto", "vectorized"),
            ("vec4", "vectorized"),
            ("vec8", "vectorized"),
            ("vec16", "vectorized"),
            ("sim", "sim"),
        ] {
            assert_eq!(backend_by_name(sel).unwrap().name(), name, "{sel}");
        }
        assert!(backend_by_name("gpu").is_err());
        assert!(backend_by_name("").is_err());
    }

    #[test]
    fn detected_lanes_is_a_registered_width() {
        assert!([4u8, 8, 16].contains(&detected_lanes()));
        // And the auto selector resolves to exactly that width.
        assert_eq!(backend_by_name("auto").unwrap().lanes(), detected_lanes());
    }

    #[test]
    fn env_selector_resolves_valid_values_silently() {
        let (code, warning) = resolve_env_selector(Some("scalar"));
        assert_eq!(backend_of(code).name(), "scalar");
        assert!(warning.is_none());
        let (code, warning) = resolve_env_selector(None);
        assert_eq!(backend_of(code).name(), "vectorized");
        assert_eq!(backend_of(code).lanes(), detected_lanes());
        assert!(warning.is_none());
    }

    #[test]
    fn invalid_env_selector_warns_and_falls_back_to_default() {
        let (code, warning) = resolve_env_selector(Some("bogus-backend"));
        assert_eq!(backend_of(code).name(), "vectorized");
        assert_eq!(backend_of(code).lanes(), detected_lanes());
        let w = warning.expect("invalid value must warn");
        assert!(w.contains("EDKM_KERNEL_BACKEND"), "{w}");
        assert!(w.contains("bogus-backend"), "{w}");
        assert!(w.contains("using vectorized"), "{w}");
    }

    #[test]
    fn sim_occupancy_is_well_defined() {
        let s = SimStats::default();
        assert_eq!(s.occupancy(), 0.0);
        let s = SimStats {
            launches: 1,
            tiles: 24,
            wave_slots: 32,
        };
        assert!((s.occupancy() - 0.75).abs() < 1e-12);
    }
}
