//! Palettized inference: run a linear projection *directly* from the
//! compressed representation (LUT + packed indices), the way the paper's
//! target accelerators consume weight-clustered models ("a lookup table and
//! a list of low-precision indices … consumed by modern inference
//! accelerators").
//!
//! For scalar clustering the matvec `y = x Wᵀ` factors through the palette:
//! each output element is `Σ_j lut[idx[row, j]] · x_j`, and because the
//! LUT has only `k` distinct values the products `lut[c] · x_j` can be
//! materialized **once per input chunk** and re-read by index — every
//! multiply in the GEMM becomes an add. The cache-blocked, register-tiled
//! implementation of that trick lives in [`kernel::TiledLutKernel`]; this
//! module wires it into whole-model serving.

pub mod kernel;
pub mod launch;

pub use crate::kv::KvCache;
use crate::kv::{KvBlockConfig, KvBlockPool};
use crate::palettize::{AffineQuantized, PalettizedTensor};
use crate::pipeline::{CompressSpec, CompressedModel, CompressedTensor, CompressionPipeline};
use crate::scratch::{self, ScratchArena};
use edkm_dist::{LearnerGroup, ShardWorkers};
use edkm_nn::attention::{attend_cached_rows, rope_tables, KvRowView};
use edkm_nn::{LlamaConfig, LlamaModel};
use edkm_tensor::{runtime, DType, Device, Tensor};
use kernel::TiledLutKernel;
use std::sync::Arc;

/// Multiply-accumulate count below which [`PalettizedLinear::forward_batch`]
/// stays on the serial path (mirrors the kernel threshold in
/// `edkm_tensor::ops`): spawning workers costs more than it saves on small
/// layers.
const PAR_WORK_THRESHOLD: usize = 1 << 17;

/// A linear layer evaluated straight from its palettized weights.
///
/// Construction performs the kernel's one-time tile repack; every forward
/// entry point then runs the same ascending-`j` single-accumulator math,
/// so serial, tiled and whole-model paths agree bit for bit.
#[derive(Debug, Clone)]
pub struct PalettizedLinear {
    weights: PalettizedTensor,
    out_features: usize,
    in_features: usize,
    /// Tile-repacked indices + activation-LUT GEMM (cached for speed).
    kernel: TiledLutKernel,
}

impl PalettizedLinear {
    /// Wrap a palettized `[out, in]` scalar-clustered weight.
    ///
    /// # Panics
    ///
    /// Panics if the palette is not 2-D scalar-clustered.
    pub fn new(weights: PalettizedTensor) -> Self {
        assert_eq!(
            weights.shape().len(),
            2,
            "palettized linear expects [out, in]"
        );
        assert_eq!(
            weights.cluster_dim(),
            1,
            "palette must be scalar-clustered (cluster_dim = 1)"
        );
        let (out_features, in_features) = (weights.shape()[0], weights.shape()[1]);
        let kernel = TiledLutKernel::from_palette(&weights);
        PalettizedLinear {
            weights,
            out_features,
            in_features,
            kernel,
        }
    }

    /// Output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// The compressed weights.
    pub fn weights(&self) -> &PalettizedTensor {
        &self.weights
    }

    /// The tile-repacked GEMM kernel.
    pub fn kernel(&self) -> &TiledLutKernel {
        &self.kernel
    }

    /// Serialized parameter bytes of this layer.
    pub fn size_bytes(&self) -> usize {
        self.weights.size_bytes()
    }

    /// The LUT-GEMM cost model charged by every forward entry point: `|W|`
    /// index-gathered adds plus the `k·in` activation-table multiplies,
    /// identical across serial/tiled/batch so the simulated clock cannot
    /// tell the paths apart. Tensor entry points charge the input's
    /// device; the slice-level [`PalettizedLinear::forward_rows`] path is
    /// the CPU serving decoder's and charges the CPU ledger.
    fn charge(&self, n: usize, device: Device) {
        runtime::record_compute(
            (n * self.out_features * (self.in_features + self.weights.k())) as f64,
            device,
        );
    }

    /// Run the kernel without charging (shared by every entry point).
    /// Tiny problems take the serial oracle directly (the tiled launch's
    /// staging overhead dominates below the threshold); everything else
    /// dispatches through the process-selected
    /// [`launch::KernelBackend`] — bit-identical either way.
    fn run_rows(&self, x: &[f32], n: usize, out: &mut [f32], arena: &mut ScratchArena) {
        let work = n * self.out_features * (self.in_features + self.weights.k());
        if work < PAR_WORK_THRESHOLD {
            self.kernel.forward_serial_into(x, n, out);
        } else {
            self.kernel.forward_into(x, n, out, arena);
        }
    }

    /// `y = x Wᵀ` for `x: [n, in]` via the tiled LUT-GEMM. Delegates to
    /// [`PalettizedLinear::forward_batch`] — there is exactly one LUT-GEMM
    /// inner loop in this type, and both entry points charge the ledger
    /// identically.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[n, in]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.forward_batch(x)
    }

    /// Reference single-threaded LUT-GEMM. Public so benchmarks can pin
    /// the serial baseline; charges the ledger exactly like
    /// [`PalettizedLinear::forward_batch`] and produces bit-identical
    /// results.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[n, in]`.
    pub fn forward_serial(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 2, "input must be [n, in]");
        assert_eq!(x.shape()[1], self.in_features, "input width mismatch");
        let n = x.shape()[0];
        let xd = x.to_vec();
        let mut out = vec![0.0f32; n * self.out_features];
        self.kernel.forward_serial_into(&xd, n, &mut out);
        self.charge(n, x.device());
        Tensor::from_vec(out, &[n, self.out_features], DType::F32, x.device())
    }

    /// Slice-level forward: `out[i, :] = x[i, :] Wᵀ`, scratch drawn from
    /// `arena` — the allocation-free entry point the serving decoder
    /// drives. Work below the parallel threshold runs the serial loop;
    /// either way the result is bit-identical and the ledger charge the
    /// same.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `n · in` long or `out` is not `n · out` long.
    pub fn forward_rows(&self, x: &[f32], n: usize, out: &mut [f32], arena: &mut ScratchArena) {
        self.run_rows(x, n, out, arena);
        self.charge(n, Device::Cpu);
    }

    /// Batched `y = x Wᵀ` for `x: [n, in]` through the cache-blocked tiled
    /// kernel (worker threads over output tiles past the work threshold,
    /// serial below it). Bit-identical to
    /// [`PalettizedLinear::forward_serial`] at every thread count; every
    /// FLOP is charged once to the caller's runtime.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[n, in]`.
    pub fn forward_batch(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 2, "input must be [n, in]");
        assert_eq!(x.shape()[1], self.in_features, "input width mismatch");
        let n = x.shape()[0];
        let xd = x.to_vec();
        let mut out = vec![0.0f32; n * self.out_features];
        scratch::with_thread_scratch(|arena| self.run_rows(&xd, n, &mut out, arena));
        self.charge(n, x.device());
        Tensor::from_vec(out, &[n, self.out_features], DType::F32, x.device())
    }
}

// ---------------------------------------------------------------------
// Tensor-parallel sharded projections.
// ---------------------------------------------------------------------

/// Any projection the serving decoder can run: evaluated straight from
/// palettized storage, unsharded ([`PalettizedLinear`]) or partitioned
/// over a learner group ([`ShardedPalettizedLinear`]).
pub trait LutProjection {
    /// Output features.
    fn out_features(&self) -> usize;
    /// Input features.
    fn in_features(&self) -> usize;
    /// Serialized parameter bytes.
    fn size_bytes(&self) -> usize;
    /// Batched `y = x Wᵀ` for `x: [n, in]`.
    fn forward_batch(&self, x: &Tensor) -> Tensor;
    /// Slice-level batched forward with scratch from `arena` — the
    /// allocation-free path the serving decoder drives.
    fn forward_rows(&self, x: &[f32], n: usize, out: &mut [f32], arena: &mut ScratchArena);
}

impl LutProjection for PalettizedLinear {
    fn out_features(&self) -> usize {
        PalettizedLinear::out_features(self)
    }
    fn in_features(&self) -> usize {
        PalettizedLinear::in_features(self)
    }
    fn size_bytes(&self) -> usize {
        PalettizedLinear::size_bytes(self)
    }
    fn forward_batch(&self, x: &Tensor) -> Tensor {
        PalettizedLinear::forward_batch(self, x)
    }
    fn forward_rows(&self, x: &[f32], n: usize, out: &mut [f32], arena: &mut ScratchArena) {
        PalettizedLinear::forward_rows(self, x, n, out, arena)
    }
}

/// How a [`ShardedPalettizedLinear`] splits its weight over the group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Shard *output* features (weight rows). Every learner sees the full
    /// input and produces a feature slice; the combine is an all-gather
    /// along the feature axis. Each output element is computed by exactly
    /// one learner over the full input row, so results are bit-identical
    /// to the unsharded GEMM — the partition sharded serving uses.
    Column,
    /// Shard *input* features (weight columns). Every learner produces a
    /// full-width partial product over its column slice; the combine is a
    /// rank-ordered all-reduce sum. Float summation order differs from the
    /// unsharded kernel, so results agree only to rounding.
    Row,
}

/// A palettized projection partitioned over an [`edkm_dist::LearnerGroup`]:
/// each learner keeps the full LUT plus the tile-repacked indices of its
/// own shard (shards repack their local tiles at construction), shard
/// GEMMs run on worker threads, and the combine pays the collective
/// through [`runtime::record_all_gather`].
///
/// Shard execution reuses a persistent [`ShardWorkers`] pool when one is
/// attached ([`ShardedPalettizedLinear::with_pool`] — what
/// [`PalettizedModel::shard`] does for every projection of a model), so
/// serving does not re-spawn worker threads on every projection call.
/// Small GEMMs, single-learner groups and single-core hosts run the shards
/// inline; results are bit-identical on every path.
#[derive(Debug, Clone)]
pub struct ShardedPalettizedLinear {
    shards: Arc<Vec<PalettizedLinear>>,
    group: LearnerGroup,
    partition: Partition,
    out_features: usize,
    in_features: usize,
    pool: Option<Arc<ShardWorkers>>,
}

impl ShardedPalettizedLinear {
    /// Column-parallel shard of a `[out, in]` scalar palette: learner `r`
    /// keeps output rows `shard_range(r)`.
    ///
    /// # Panics
    ///
    /// Panics if the palette is not 2-D scalar-clustered.
    pub fn column(weights: &PalettizedTensor, group: LearnerGroup) -> Self {
        Self::build(weights, group, Partition::Column)
    }

    /// Row-parallel shard of a `[out, in]` scalar palette: learner `r`
    /// keeps input columns `shard_range(r)`.
    ///
    /// # Panics
    ///
    /// Panics if the palette is not 2-D scalar-clustered.
    pub fn row(weights: &PalettizedTensor, group: LearnerGroup) -> Self {
        Self::build(weights, group, Partition::Row)
    }

    /// Run shard GEMMs on `pool`'s persistent worker threads instead of
    /// spawning scoped threads per call. Results are unchanged; only the
    /// dispatch cost differs.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<ShardWorkers>) -> Self {
        self.pool = Some(pool);
        self
    }

    fn build(weights: &PalettizedTensor, group: LearnerGroup, partition: Partition) -> Self {
        assert_eq!(weights.shape().len(), 2, "sharded linear expects [out, in]");
        assert_eq!(weights.cluster_dim(), 1, "sharded linear is scalar-only");
        let (out, inp) = (weights.shape()[0], weights.shape()[1]);
        let indices = weights.indices();
        let lut = weights.lut();
        let bits = weights.bits();
        let shards = match partition {
            Partition::Column => {
                let spec = group.shard_spec(out);
                (0..group.n_learners())
                    .map(|r| {
                        let rows = spec.shard_range(r);
                        let shard_idx = &indices[rows.start * inp..rows.end * inp];
                        PalettizedLinear::new(PalettizedTensor::from_lut_indices(
                            lut.to_vec(),
                            shard_idx,
                            bits,
                            1,
                            vec![rows.len(), inp],
                        ))
                    })
                    .collect()
            }
            Partition::Row => {
                let spec = group.shard_spec(inp);
                (0..group.n_learners())
                    .map(|r| {
                        let cols = spec.shard_range(r);
                        let mut shard_idx = Vec::with_capacity(out * cols.len());
                        for row in 0..out {
                            shard_idx.extend_from_slice(
                                &indices[row * inp + cols.start..row * inp + cols.end],
                            );
                        }
                        PalettizedLinear::new(PalettizedTensor::from_lut_indices(
                            lut.to_vec(),
                            &shard_idx,
                            bits,
                            1,
                            vec![out, cols.len()],
                        ))
                    })
                    .collect()
            }
        };
        ShardedPalettizedLinear {
            shards: Arc::new(shards),
            group,
            partition,
            out_features: out,
            in_features: inp,
            pool: None,
        }
    }

    /// The per-learner shard projections, rank order.
    pub fn shards(&self) -> &[PalettizedLinear] {
        &self.shards
    }

    /// The partition axis.
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// The learner group this projection is partitioned over.
    pub fn group(&self) -> LearnerGroup {
        self.group
    }

    /// Run `f(rank)` for every shard, collecting results in rank order.
    ///
    /// Three execution modes, all producing identical bits:
    /// * **inline** — single-learner groups, GEMMs below the parallel work
    ///   threshold, or single-core hosts (parallel shards cannot win
    ///   wall-clock there, and per-call thread churn was the measured
    ///   shard-sweep slowdown; see EXPERIMENTS.md);
    /// * **persistent pool** — a [`ShardWorkers`] attached via
    ///   [`ShardedPalettizedLinear::with_pool`]: jobs are dispatched to
    ///   long-lived workers, no spawns;
    /// * **scoped spawn** — the fallback for pool-less multi-core callers.
    ///
    /// Every mode binds the caller's runtime, so shard FLOPs and
    /// allocations land in the shared ledgers exactly once.
    fn run_shards<F>(&self, work: usize, f: F) -> Vec<Vec<f32>>
    where
        F: Fn(usize) -> Vec<f32> + Send + Sync + 'static,
    {
        let n = self.group.n_learners();
        if n == 1 || work < PAR_WORK_THRESHOLD {
            return (0..n).map(f).collect();
        }
        if let Some(pool) = &self.pool {
            return pool.run(n, f);
        }
        if rayon::current_num_threads() == 1 {
            // No pool and no spare cores: scoped spawns would be pure
            // overhead (the measured shard-sweep slowdown; EXPERIMENTS.md).
            return (0..n).map(f).collect();
        }
        let rt = runtime::current();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|r| {
                    let rt = rt.clone();
                    let f = &f;
                    s.spawn(move || {
                        let _g = runtime::bind(&rt);
                        f(r)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard GEMM thread panicked"))
                .collect()
        })
    }

    /// Slice-level sharded forward; see
    /// [`ShardedPalettizedLinear::forward_batch`]. The collectives
    /// allocate their gather buffers (a property of the simulated network,
    /// not the kernel), so unlike the unsharded path this one is not
    /// allocation-free; `arena` is accepted for interface uniformity.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `n · in` long or `out` is not `n · out` long.
    pub fn forward_rows(&self, x: &[f32], n: usize, out: &mut [f32], _arena: &mut ScratchArena) {
        assert_eq!(x.len(), n * self.in_features, "x must be [n, in]");
        assert_eq!(out.len(), n * self.out_features, "out must be [n, out]");
        let k = self
            .shards
            .iter()
            .map(|s| s.weights().k())
            .max()
            .unwrap_or(0);
        let work = n * self.out_features * (self.in_features + k);
        match self.partition {
            Partition::Column => {
                let shards = Arc::clone(&self.shards);
                let xs: Arc<Vec<f32>> = Arc::new(x.to_vec());
                let outs = self.run_shards(work, move |r| {
                    let shard = &shards[r];
                    let mut y = vec![0.0f32; n * shard.out_features()];
                    scratch::with_thread_scratch(|a| shard.forward_rows(&xs, n, &mut y, a));
                    y
                });
                // Pay the ring all-gather, then splice each learner's
                // feature slice back into full-width rows.
                let gathered = self.group.all_gather(&outs);
                let mut col0 = 0usize;
                let mut base = 0usize;
                for shard in self.shards.iter() {
                    let w = shard.out_features();
                    for i in 0..n {
                        out[i * self.out_features + col0..i * self.out_features + col0 + w]
                            .copy_from_slice(&gathered[base + i * w..base + (i + 1) * w]);
                    }
                    col0 += w;
                    base += n * w;
                }
            }
            Partition::Row => {
                let spec = self.group.shard_spec(self.in_features);
                let shards = Arc::clone(&self.shards);
                let xs: Arc<Vec<f32>> = Arc::new(x.to_vec());
                let in_features = self.in_features;
                let parts = self.run_shards(work, move |r| {
                    let cols = spec.shard_range(r);
                    let w = cols.len();
                    let mut slab = Vec::with_capacity(n * w);
                    for i in 0..n {
                        slab.extend_from_slice(
                            &xs[i * in_features + cols.start..i * in_features + cols.end],
                        );
                    }
                    let shard = &shards[r];
                    let mut y = vec![0.0f32; n * shard.out_features()];
                    scratch::with_thread_scratch(|a| shard.forward_rows(&slab, n, &mut y, a));
                    y
                });
                out.copy_from_slice(&self.group.all_reduce_sum(&parts));
            }
        }
    }

    /// Sharded `y = x Wᵀ` for `x: [n, in]`: shard GEMMs run on worker
    /// threads (persistent pool when attached), then the group combine
    /// (feature all-gather for [`Partition::Column`], rank-ordered
    /// all-reduce for [`Partition::Row`]) pays simulated network time.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[n, in]`.
    pub fn forward_batch(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 2, "input must be [n, in]");
        assert_eq!(x.shape()[1], self.in_features, "input width mismatch");
        let n = x.shape()[0];
        let xd = x.to_vec();
        let mut out = vec![0.0f32; n * self.out_features];
        scratch::with_thread_scratch(|arena| self.forward_rows(&xd, n, &mut out, arena));
        Tensor::from_vec(out, &[n, self.out_features], DType::F32, x.device())
    }
}

impl LutProjection for ShardedPalettizedLinear {
    fn out_features(&self) -> usize {
        self.out_features
    }
    fn in_features(&self) -> usize {
        self.in_features
    }
    fn size_bytes(&self) -> usize {
        self.shards.iter().map(PalettizedLinear::size_bytes).sum()
    }
    fn forward_batch(&self, x: &Tensor) -> Tensor {
        ShardedPalettizedLinear::forward_batch(self, x)
    }
    fn forward_rows(&self, x: &[f32], n: usize, out: &mut [f32], arena: &mut ScratchArena) {
        ShardedPalettizedLinear::forward_rows(self, x, n, out, arena)
    }
}

// ---------------------------------------------------------------------
// Whole-model compressed inference.
// ---------------------------------------------------------------------

/// RMSNorm epsilon, matching `edkm_nn::RmsNorm`.
const RMS_EPS: f32 = 1e-5;

/// RoPE base, matching `edkm_nn::LlamaModel`.
const ROPE_THETA: f32 = 10000.0;

/// Error constructing a [`PalettizedModel`] from a compressed container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The container has no entry with this parameter name.
    MissingParam(String),
    /// The entry kind cannot be served from compressed form.
    Unsupported(String),
    /// An entry's shape disagrees with the model config.
    Shape(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::MissingParam(n) => write!(f, "compressed model lacks parameter {n}"),
            ServeError::Unsupported(m) => write!(f, "unsupported for serving: {m}"),
            ServeError::Shape(m) => write!(f, "shape mismatch: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Read view of one layer of a paged [`KvCache`] — what the shared
/// attention kernel ([`attend_cached_rows`]) reads rows through. Runs of
/// consecutive positions inside one KV block surface as a single
/// contiguous slice ([`KvRowView::k_rows`]), so the attention inner loop
/// walks the cache block-at-a-time instead of resolving the block table
/// per row.
struct LayerView<'a> {
    cache: &'a KvCache,
    layer: usize,
}

impl KvRowView for LayerView<'_> {
    fn k_row(&self, pos: usize) -> &[f32] {
        self.cache.k_row(self.layer, pos)
    }
    fn v_row(&self, pos: usize) -> &[f32] {
        self.cache.v_row(self.layer, pos)
    }
    fn k_rows(&self, pos: usize) -> &[f32] {
        self.cache.k_rows_from(self.layer, pos)
    }
    fn v_rows(&self, pos: usize) -> &[f32] {
        self.cache.v_rows_from(self.layer, pos)
    }
}

/// Embedding storage of a compressed model: affine-quantized (the paper's
/// 8-bit embeddings) or dense 16-bit values (the lossless config).
#[derive(Debug, Clone)]
enum EmbedStore {
    Affine(AffineQuantized),
    Dense { values: Vec<f32> },
}

impl EmbedStore {
    fn write_row(&self, id: usize, out: &mut [f32]) {
        match self {
            EmbedStore::Affine(a) => a.decode_row_into(id, out),
            EmbedStore::Dense { values } => {
                let d = out.len();
                out.copy_from_slice(&values[id * d..(id + 1) * d]);
            }
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            EmbedStore::Affine(a) => a.size_bytes(),
            EmbedStore::Dense { values } => crate::palettize::native16_size_bytes(values.len()),
        }
    }
}

/// One decoder layer served from compressed storage, generic over the
/// projection kind (unsharded or tensor-parallel).
#[derive(Debug, Clone)]
struct PalettizedLayer<P> {
    input_norm: Vec<f32>,
    q: P,
    k: P,
    v: P,
    o: P,
    post_norm: Vec<f32>,
    gate: P,
    up: P,
    down: P,
}

impl<P> PalettizedLayer<P> {
    fn projections(&self) -> [&P; 7] {
        [
            &self.q, &self.k, &self.v, &self.o, &self.gate, &self.up, &self.down,
        ]
    }

    fn map<Q>(&self, f: &impl Fn(&P) -> Q) -> PalettizedLayer<Q> {
        PalettizedLayer {
            input_norm: self.input_norm.clone(),
            q: f(&self.q),
            k: f(&self.k),
            v: f(&self.v),
            o: f(&self.o),
            post_norm: self.post_norm.clone(),
            gate: f(&self.gate),
            up: f(&self.up),
            down: f(&self.down),
        }
    }
}

/// The shared decoder engine behind [`PalettizedModel`] and
/// [`ShardedPalettizedModel`]: everything except the projection kind.
#[derive(Debug, Clone)]
struct DecoderParts<P> {
    config: LlamaConfig,
    embed: EmbedStore,
    layers: Vec<PalettizedLayer<P>>,
    final_norm: Vec<f32>,
    lm_head: P,
    cos: Vec<f32>,
    sin: Vec<f32>,
    device: Device,
    kv_pool: Arc<KvBlockPool>,
}

/// A whole LLaMA-style decoder whose every projection runs straight from
/// `PalettizedTensor` storage via the tiled LUT-GEMM kernel — the model an
/// accelerator would execute from the shipped artifact. Weights never
/// decompress to dense matrices; only the norm gains and (optionally) the
/// embedding table live as raw 16-bit-equivalent values, exactly the split
/// the paper ships.
#[derive(Debug, Clone)]
pub struct PalettizedModel {
    parts: DecoderParts<PalettizedLinear>,
}

/// A [`PalettizedModel`] partitioned over an [`edkm_dist::LearnerGroup`]
/// for tensor-parallel serving: every projection is column-sharded
/// ([`Partition::Column`] — LUT + tile-repacked indices per learner),
/// shard GEMMs run on a persistent worker pool shared by the whole model,
/// and each projection's feature all-gather is charged through
/// [`runtime::record_all_gather`] so the cost model covers serving
/// collectives. Column partitioning keeps every output element on exactly
/// one learner, so logits are **bit-identical** to the unsharded model at
/// any shard count (`tests/sharded_parity.rs`).
///
/// ```
/// use edkm_core::{CompressSpec, PalettizedModel};
/// use edkm_dist::LearnerGroup;
/// use edkm_nn::{LlamaConfig, LlamaModel};
/// use edkm_tensor::{runtime, DType, Device};
///
/// runtime::reset();
/// let dense = LlamaModel::new(LlamaConfig::tiny(), DType::Bf16, Device::Cpu, 0);
/// let mut spec = CompressSpec::with_bits(2);
/// spec.dkm.iters = 2;
/// let served = PalettizedModel::from_dense(&dense, &spec).unwrap();
/// let sharded = served.shard(LearnerGroup::new(2));
///
/// let mut c0 = served.new_cache();
/// let mut c1 = sharded.new_cache();
/// let a = served.prefill(&[1, 2, 3], &mut c0);
/// let b = sharded.prefill(&[1, 2, 3], &mut c1);
/// assert_eq!(a.to_vec(), b.to_vec()); // bit-identical logits
/// ```
#[derive(Debug, Clone)]
pub struct ShardedPalettizedModel {
    parts: DecoderParts<ShardedPalettizedLinear>,
    group: LearnerGroup,
}

fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

/// RMS-normalize each `gain.len()`-wide row of `x` into `out` (identical
/// accumulation order to `Var::rmsnorm`, so serving matches training-side
/// numerics). Charges 4 FLOPs per element like the tensor op it replaced.
fn rmsnorm_rows_into(x: &[f32], gain: &[f32], out: &mut [f32], device: Device) {
    let d = gain.len();
    debug_assert_eq!(x.len(), out.len());
    for (row, orow) in x.chunks(d).zip(out.chunks_mut(d)) {
        let ms = row.iter().map(|v| v * v).sum::<f32>() / d as f32;
        let r = 1.0 / (ms + RMS_EPS).sqrt();
        for ((o, &xv), &wv) in orow.iter_mut().zip(row).zip(gain) {
            *o = xv * r * wv;
        }
    }
    runtime::record_compute(4.0 * x.len() as f64, device);
}

/// Rotate one `[h·hd]` projection row at absolute position `p` (GPT-NeoX
/// half-split, same math as `edkm_nn::attention::rope`).
fn rope_row(row: &mut [f32], n_heads: usize, hd: usize, cos: &[f32], sin: &[f32], p: usize) {
    let half = hd / 2;
    let tb = p * half;
    for head in 0..n_heads {
        let base = head * hd;
        for i in 0..half {
            let (c, s) = (cos[tb + i], sin[tb + i]);
            let x1 = row[base + i];
            let x2 = row[base + half + i];
            row[base + i] = x1 * c - x2 * s;
            row[base + half + i] = x1 * s + x2 * c;
        }
    }
}

impl PalettizedModel {
    /// Build from a compressed container plus the architecture config.
    ///
    /// # Errors
    ///
    /// Returns a [`ServeError`] if a parameter is missing, has the wrong
    /// shape, or is stored in a form the serving engine cannot run from
    /// (vector palettes and per-group LUTs are export-only today).
    pub fn from_compressed(
        compressed: &CompressedModel,
        config: LlamaConfig,
    ) -> Result<Self, ServeError> {
        let find = |name: &str| -> Result<&CompressedTensor, ServeError> {
            compressed
                .entries()
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, e)| e)
                .ok_or_else(|| ServeError::MissingParam(name.to_string()))
        };
        let proj = |name: &str, out: usize, inp: usize| -> Result<PalettizedLinear, ServeError> {
            match find(name)? {
                CompressedTensor::Palettized(p) => {
                    if p.cluster_dim() != 1 {
                        return Err(ServeError::Unsupported(format!(
                            "{name}: vector palette (cluster_dim {})",
                            p.cluster_dim()
                        )));
                    }
                    if p.shape() != [out, inp] {
                        return Err(ServeError::Shape(format!(
                            "{name}: palette is {:?}, config wants [{out}, {inp}]",
                            p.shape()
                        )));
                    }
                    Ok(PalettizedLinear::new(p.clone()))
                }
                CompressedTensor::PalettizedGrouped(_) => {
                    Err(ServeError::Unsupported(format!("{name}: per-group LUTs")))
                }
                _ => Err(ServeError::Unsupported(format!(
                    "{name}: expected a palettized projection"
                ))),
            }
        };
        let norm = |name: &str, d: usize| -> Result<Vec<f32>, ServeError> {
            match find(name)? {
                CompressedTensor::Native { values, shape } => {
                    if shape != &[d] {
                        return Err(ServeError::Shape(format!(
                            "{name}: norm is {shape:?}, config wants [{d}]"
                        )));
                    }
                    Ok(values.clone())
                }
                _ => Err(ServeError::Unsupported(format!(
                    "{name}: norm gains must be stored natively"
                ))),
            }
        };

        let d = config.d_model;
        let embed = match find("embed_tokens")? {
            CompressedTensor::Affine(a) => {
                if a.rows() != config.vocab || a.cols() != d {
                    return Err(ServeError::Shape(format!(
                        "embed_tokens: affine is [{}, {}], config wants [{}, {d}]",
                        a.rows(),
                        a.cols(),
                        config.vocab
                    )));
                }
                EmbedStore::Affine(a.clone())
            }
            CompressedTensor::Native { values, shape } => {
                if shape != &[config.vocab, d] {
                    return Err(ServeError::Shape(format!(
                        "embed_tokens: table is {shape:?}, config wants [{}, {d}]",
                        config.vocab
                    )));
                }
                EmbedStore::Dense {
                    values: values.clone(),
                }
            }
            _ => {
                return Err(ServeError::Unsupported(
                    "embed_tokens: expected affine or native storage".into(),
                ))
            }
        };

        let mut layers = Vec::with_capacity(config.n_layers);
        for i in 0..config.n_layers {
            let p = format!("layers.{i}");
            layers.push(PalettizedLayer {
                input_norm: norm(&format!("{p}.input_norm"), d)?,
                q: proj(&format!("{p}.attn.q_proj"), d, d)?,
                k: proj(&format!("{p}.attn.k_proj"), d, d)?,
                v: proj(&format!("{p}.attn.v_proj"), d, d)?,
                o: proj(&format!("{p}.attn.o_proj"), d, d)?,
                post_norm: norm(&format!("{p}.post_norm"), d)?,
                gate: proj(&format!("{p}.mlp.gate_proj"), config.d_ff, d)?,
                up: proj(&format!("{p}.mlp.up_proj"), config.d_ff, d)?,
                down: proj(&format!("{p}.mlp.down_proj"), d, config.d_ff)?,
            });
        }

        let hd = d / config.n_heads;
        let (cos, sin) = rope_tables(config.max_seq, hd, ROPE_THETA);
        let device = Device::Cpu;
        Ok(PalettizedModel {
            parts: DecoderParts {
                embed,
                layers,
                final_norm: norm("final_norm", d)?,
                lm_head: proj("lm_head", config.vocab, d)?,
                cos,
                sin,
                kv_pool: KvBlockPool::new(
                    KvBlockConfig::default(),
                    config.n_layers,
                    config.d_model,
                    device,
                ),
                config,
                device,
            },
        })
    }

    /// Export `model` under `spec` (no training) and wrap the result for
    /// serving.
    ///
    /// # Errors
    ///
    /// Returns a [`ServeError`] if the spec produces entries the engine
    /// cannot serve (vector palettes, per-group LUTs).
    pub fn from_dense(model: &LlamaModel, spec: &CompressSpec) -> Result<Self, ServeError> {
        // Pre-validate lossless exports so the export's own panic (a weight
        // matrix with more distinct values than the 2^16-entry palette, e.g.
        // a large f32 model) surfaces here as a typed error instead.
        for name in model.clusterable_names() {
            if spec.bits_for(&name) < 16 {
                continue;
            }
            let (_, var) = model
                .named_params()
                .into_iter()
                .find(|(n, _)| *n == name)
                .expect("clusterable name is a parameter");
            let distinct: std::collections::HashSet<u32> =
                var.value().to_vec().iter().map(|v| v.to_bits()).collect();
            if distinct.len() > 1 << 16 {
                return Err(ServeError::Unsupported(format!(
                    "{name}: {} distinct values exceed the 2^16-entry lossless \
                     palette (use <= 15 bits or 16-bit source weights)",
                    distinct.len()
                )));
            }
        }
        let compressed = CompressionPipeline::new(spec.clone()).export(model);
        Self::from_compressed(&compressed, *model.config())
    }

    /// Partition every projection of this model over `group` for
    /// tensor-parallel serving (column shards; see
    /// [`ShardedPalettizedModel`]). All projections share one persistent
    /// [`ShardWorkers`] pool, so serving never re-spawns shard threads per
    /// call. The sharded model draws from its own fresh default KV pool.
    pub fn shard(&self, group: LearnerGroup) -> ShardedPalettizedModel {
        let pool = (group.n_learners() > 1).then(|| ShardWorkers::new(group.n_learners()));
        ShardedPalettizedModel {
            parts: self.parts.map_projections(|p| {
                let sharded = ShardedPalettizedLinear::column(p.weights(), group);
                match &pool {
                    Some(pool) => sharded.with_pool(Arc::clone(pool)),
                    None => sharded,
                }
            }),
            group,
        }
    }

    /// Replace the model's KV block pool (paging granularity and physical
    /// block cap). Call before handing out caches; existing caches keep
    /// draining into the pool they were drawn from.
    pub fn with_kv_config(mut self, cfg: KvBlockConfig) -> Self {
        self.parts.replace_kv_pool(cfg);
        self
    }

    /// Enable (or disable) prefix sharing on this model's KV pool: the
    /// scheduler then indexes finished prefixes by token ids and admits
    /// later prompts against the longest cached match. Apply *after*
    /// [`PalettizedModel::with_kv_config`] — replacing the pool resets the
    /// flag.
    #[must_use]
    pub fn with_prefix_cache(self, enabled: bool) -> Self {
        self.parts.kv_pool.set_prefix_cache(enabled);
        self
    }

    /// An aggressively palettized draft of `model` for speculative
    /// decoding: same architecture and vocabulary, compressed at
    /// `draft_bits` (2 is the sweet spot the HPCA paper's palette economics
    /// make uniquely cheap) with a light DKM schedule — proposal quality
    /// only affects the accepted-per-step rate, never output tokens. The
    /// draft keeps its own default (unbounded) KV pool, as
    /// [`crate::Scheduler::with_speculative`] requires.
    ///
    /// # Errors
    ///
    /// Returns a [`ServeError`] under the same conditions as
    /// [`PalettizedModel::from_dense`].
    pub fn draft_from_dense(model: &LlamaModel, draft_bits: u8) -> Result<Self, ServeError> {
        let mut spec = CompressSpec::with_bits(draft_bits);
        spec.dkm.iters = spec.dkm.iters.min(2);
        Self::from_dense(model, &spec)
    }

    /// Architecture config.
    pub fn config(&self) -> &LlamaConfig {
        &self.parts.config
    }

    /// The shared paged KV block pool caches draw from.
    pub fn kv_pool(&self) -> &Arc<KvBlockPool> {
        &self.parts.kv_pool
    }

    /// Serialized bytes of all served parameters (palettes + norms + embed).
    pub fn size_bytes(&self) -> usize {
        self.parts.size_bytes()
    }

    /// A fresh empty KV cache for one sequence.
    pub fn new_cache(&self) -> KvCache {
        self.parts.new_cache()
    }

    /// Run one forward chunk per sequence — the continuous-batching core.
    ///
    /// `chunks[i]` holds the *new* tokens of sequence `i` (a whole prompt at
    /// prefill, one token at decode) entering at position `caches[i].len()`;
    /// every projection GEMM is batched across all chunks' rows while
    /// attention stays per-sequence against its own cache. Returns logits
    /// `[Σ chunk lens, vocab]`, rows grouped chunk by chunk.
    ///
    /// Each row's values depend only on its own sequence, never on what it
    /// was batched with — the property the scheduler invariant tests pin.
    ///
    /// # Panics
    ///
    /// Panics on empty/oversized chunks, chunk/cache count mismatch,
    /// out-of-vocabulary ids, or an exhausted KV block pool (the scheduler
    /// reserves blocks before stepping, so it never trips this).
    pub fn forward_chunks(&self, chunks: &[&[usize]], caches: &mut [KvCache]) -> Tensor {
        self.parts.forward_chunks(chunks, caches)
    }

    /// Prefill one sequence's prompt, returning logits `[len, vocab]`.
    pub fn prefill(&self, ids: &[usize], cache: &mut KvCache) -> Tensor {
        self.forward_chunks(&[ids], std::slice::from_mut(cache))
    }

    /// One batched decode step: `tokens[i]` is sequence `i`'s newest token.
    /// Returns logits `[tokens.len(), vocab]`.
    pub fn decode_step(&self, tokens: &[usize], caches: &mut [KvCache]) -> Tensor {
        self.parts.decode_step(tokens, caches)
    }
}

impl ShardedPalettizedModel {
    /// Build from a compressed container, sharding every projection over
    /// `group`.
    ///
    /// # Errors
    ///
    /// Returns a [`ServeError`] under the same conditions as
    /// [`PalettizedModel::from_compressed`].
    pub fn from_compressed(
        compressed: &CompressedModel,
        config: LlamaConfig,
        group: LearnerGroup,
    ) -> Result<Self, ServeError> {
        Ok(PalettizedModel::from_compressed(compressed, config)?.shard(group))
    }

    /// Export `model` under `spec` and shard the result over `group`.
    ///
    /// # Errors
    ///
    /// Returns a [`ServeError`] under the same conditions as
    /// [`PalettizedModel::from_dense`].
    pub fn from_dense(
        model: &LlamaModel,
        spec: &CompressSpec,
        group: LearnerGroup,
    ) -> Result<Self, ServeError> {
        Ok(PalettizedModel::from_dense(model, spec)?.shard(group))
    }

    /// The learner group serving is partitioned over.
    pub fn group(&self) -> LearnerGroup {
        self.group
    }

    /// Replace the model's KV block pool; see
    /// [`PalettizedModel::with_kv_config`].
    pub fn with_kv_config(mut self, cfg: KvBlockConfig) -> Self {
        self.parts.replace_kv_pool(cfg);
        self
    }

    /// Enable (or disable) prefix sharing on this model's KV pool; see
    /// [`PalettizedModel::with_prefix_cache`].
    #[must_use]
    pub fn with_prefix_cache(self, enabled: bool) -> Self {
        self.parts.kv_pool.set_prefix_cache(enabled);
        self
    }

    /// Architecture config.
    pub fn config(&self) -> &LlamaConfig {
        &self.parts.config
    }

    /// The shared paged KV block pool caches draw from.
    pub fn kv_pool(&self) -> &Arc<KvBlockPool> {
        &self.parts.kv_pool
    }

    /// Serialized bytes of all served parameters. Slightly above the
    /// unsharded model: every learner carries a full copy of each LUT.
    pub fn size_bytes(&self) -> usize {
        self.parts.size_bytes()
    }

    /// A fresh empty KV cache for one sequence.
    pub fn new_cache(&self) -> KvCache {
        self.parts.new_cache()
    }

    /// Batched forward over per-sequence chunks; see
    /// [`PalettizedModel::forward_chunks`]. Logits are bit-identical to the
    /// unsharded model's for any shard count.
    pub fn forward_chunks(&self, chunks: &[&[usize]], caches: &mut [KvCache]) -> Tensor {
        self.parts.forward_chunks(chunks, caches)
    }

    /// Prefill one sequence's prompt, returning logits `[len, vocab]`.
    pub fn prefill(&self, ids: &[usize], cache: &mut KvCache) -> Tensor {
        self.forward_chunks(&[ids], std::slice::from_mut(cache))
    }

    /// One batched decode step; see [`PalettizedModel::decode_step`].
    pub fn decode_step(&self, tokens: &[usize], caches: &mut [KvCache]) -> Tensor {
        self.parts.decode_step(tokens, caches)
    }
}

/// Borrowed flat descriptor of a continuous batch: all sequences' new
/// tokens concatenated, with cumulative chunk end offsets — chunk `g` is
/// `tokens[ends[g-1]..ends[g]]` (starting at 0). The launch-descriptor
/// idiom of the scheduler hot path: both slices live in scheduler-owned
/// reusable buffers, so describing a step allocates nothing (unlike a
/// `Vec<&[usize]>` of per-chunk refs, which must be rebuilt every step).
#[derive(Debug, Clone, Copy)]
pub struct ChunkView<'a> {
    tokens: &'a [usize],
    ends: &'a [usize],
}

impl<'a> ChunkView<'a> {
    /// Wrap `tokens` split at cumulative `ends`.
    ///
    /// # Panics
    ///
    /// Panics if `ends` is not non-decreasing or its last entry does not
    /// cover `tokens` exactly.
    pub fn new(tokens: &'a [usize], ends: &'a [usize]) -> Self {
        let mut prev = 0usize;
        for &e in ends {
            assert!(e >= prev, "chunk ends must be non-decreasing");
            prev = e;
        }
        assert_eq!(prev, tokens.len(), "chunk ends must cover all tokens");
        ChunkView { tokens, ends }
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether the batch holds no chunks.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Total new tokens across all chunks.
    pub fn total_tokens(&self) -> usize {
        self.tokens.len()
    }

    /// Chunk `g`'s token slice.
    pub fn chunk(&self, g: usize) -> &'a [usize] {
        let start = if g == 0 { 0 } else { self.ends[g - 1] };
        &self.tokens[start..self.ends[g]]
    }

    /// Iterate the chunk slices in order.
    pub fn iter(&self) -> impl Iterator<Item = &'a [usize]> + '_ {
        (0..self.len()).map(|g| self.chunk(g))
    }
}

/// The serving surface [`crate::serve::Generator`],
/// [`crate::serve::Scheduler`] and [`crate::engine::ServeEngine`] drive —
/// implemented by [`PalettizedModel`] and [`ShardedPalettizedModel`], so
/// single-worker and tensor-parallel serving share one
/// generation/scheduling stack.
///
/// `Send + Sync` are explicit supertraits: the engine moves the model onto
/// its worker thread, and the sharded model fans shard GEMMs out to worker
/// threads through `&self`.
pub trait ServeModel: Send + Sync {
    /// Architecture config.
    fn config(&self) -> &LlamaConfig;
    /// The paged KV block pool sequences draw from.
    fn kv_pool(&self) -> &Arc<KvBlockPool>;
    /// A fresh empty KV cache for one sequence.
    fn new_cache(&self) -> KvCache;
    /// Batched forward over per-sequence chunks; see
    /// [`PalettizedModel::forward_chunks`].
    fn forward_chunks(&self, chunks: &[&[usize]], caches: &mut [KvCache]) -> Tensor;

    /// Batched forward over a flat [`ChunkView`] returning the raw logits
    /// buffer (`[Σ chunk lens · vocab]`, rows grouped chunk by chunk),
    /// with every temporary drawn from `arena` — the allocation-free path
    /// [`crate::serve::Scheduler`] drives every step. The caller should
    /// hand the returned buffer back via [`ScratchArena::put`] once
    /// consumed.
    fn forward_chunks_into(
        &self,
        view: ChunkView<'_>,
        caches: &mut [KvCache],
        arena: &mut ScratchArena,
    ) -> Vec<f32> {
        let _ = arena; // default goes through the Tensor path
        let chunks: Vec<&[usize]> = view.iter().collect();
        self.forward_chunks(&chunks, caches).to_vec()
    }

    /// Prefill one sequence's prompt, returning logits `[len, vocab]`.
    fn prefill(&self, ids: &[usize], cache: &mut KvCache) -> Tensor {
        self.forward_chunks(&[ids], std::slice::from_mut(cache))
    }

    /// One batched decode step: `tokens[i]` is sequence `i`'s newest token.
    fn decode_step(&self, tokens: &[usize], caches: &mut [KvCache]) -> Tensor {
        let chunks: Vec<&[usize]> = tokens.chunks(1).collect();
        self.forward_chunks(&chunks, caches)
    }
}

impl ServeModel for PalettizedModel {
    fn config(&self) -> &LlamaConfig {
        PalettizedModel::config(self)
    }
    fn kv_pool(&self) -> &Arc<KvBlockPool> {
        PalettizedModel::kv_pool(self)
    }
    fn new_cache(&self) -> KvCache {
        PalettizedModel::new_cache(self)
    }
    fn forward_chunks(&self, chunks: &[&[usize]], caches: &mut [KvCache]) -> Tensor {
        PalettizedModel::forward_chunks(self, chunks, caches)
    }
    fn forward_chunks_into(
        &self,
        view: ChunkView<'_>,
        caches: &mut [KvCache],
        arena: &mut ScratchArena,
    ) -> Vec<f32> {
        self.parts.forward_chunks_into(view, caches, arena)
    }
}

impl ServeModel for ShardedPalettizedModel {
    fn config(&self) -> &LlamaConfig {
        ShardedPalettizedModel::config(self)
    }
    fn kv_pool(&self) -> &Arc<KvBlockPool> {
        ShardedPalettizedModel::kv_pool(self)
    }
    fn new_cache(&self) -> KvCache {
        ShardedPalettizedModel::new_cache(self)
    }
    fn forward_chunks(&self, chunks: &[&[usize]], caches: &mut [KvCache]) -> Tensor {
        ShardedPalettizedModel::forward_chunks(self, chunks, caches)
    }
    fn forward_chunks_into(
        &self,
        view: ChunkView<'_>,
        caches: &mut [KvCache],
        arena: &mut ScratchArena,
    ) -> Vec<f32> {
        self.parts.forward_chunks_into(view, caches, arena)
    }
}

impl<P> DecoderParts<P> {
    /// Clone everything but the projections, mapping each through `f`
    /// (how a model is resharded). The result draws from a fresh default
    /// KV pool.
    fn map_projections<Q>(&self, f: impl Fn(&P) -> Q) -> DecoderParts<Q> {
        DecoderParts {
            config: self.config,
            embed: self.embed.clone(),
            layers: self.layers.iter().map(|l| l.map(&f)).collect(),
            final_norm: self.final_norm.clone(),
            lm_head: f(&self.lm_head),
            cos: self.cos.clone(),
            sin: self.sin.clone(),
            device: self.device,
            kv_pool: KvBlockPool::new(
                KvBlockConfig::default(),
                self.config.n_layers,
                self.config.d_model,
                self.device,
            ),
        }
    }

    fn replace_kv_pool(&mut self, cfg: KvBlockConfig) {
        self.kv_pool =
            KvBlockPool::new(cfg, self.config.n_layers, self.config.d_model, self.device);
    }

    fn new_cache(&self) -> KvCache {
        KvCache::new(Arc::clone(&self.kv_pool))
    }
}

/// The per-step scratch set of the decoder forward, all checked out of one
/// [`ScratchArena`] and returned on drop of the call — named so the
/// checkout/return pairing is auditable in one place.
struct ForwardScratch {
    /// Residual stream, `[n, d]`.
    x: Vec<f32>,
    /// Norm output feeding the projections, `[n, d]`.
    h: Vec<f32>,
    /// Q/K/V projection outputs, `[n, d]` each.
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    /// Attention context, `[n, d]`.
    ctx: Vec<f32>,
    /// Projection output folded into the residual, `[n, d]`.
    proj: Vec<f32>,
    /// MLP gate/up activations, `[n, d_ff]` each.
    gate: Vec<f32>,
    up: Vec<f32>,
    /// Attention score scratch, `[max_seq]`.
    scores: Vec<f32>,
}

impl ForwardScratch {
    fn take(arena: &mut ScratchArena, n: usize, d: usize, d_ff: usize, max_seq: usize) -> Self {
        ForwardScratch {
            x: arena.take(n * d),
            h: arena.take(n * d),
            q: arena.take(n * d),
            k: arena.take(n * d),
            v: arena.take(n * d),
            ctx: arena.take(n * d),
            proj: arena.take(n * d),
            gate: arena.take(n * d_ff),
            up: arena.take(n * d_ff),
            scores: arena.take(max_seq),
        }
    }

    fn put(self, arena: &mut ScratchArena) {
        for buf in [
            self.x,
            self.h,
            self.q,
            self.k,
            self.v,
            self.ctx,
            self.proj,
            self.gate,
            self.up,
            self.scores,
        ] {
            arena.put(buf);
        }
    }
}

impl<P: LutProjection> DecoderParts<P> {
    fn size_bytes(&self) -> usize {
        let norms = crate::palettize::native16_size_bytes(
            self.final_norm.len()
                + self
                    .layers
                    .iter()
                    .map(|l| l.input_norm.len() + l.post_norm.len())
                    .sum::<usize>(),
        );
        self.embed.size_bytes()
            + norms
            + self.lm_head.size_bytes()
            + self
                .layers
                .iter()
                .map(|l| {
                    l.projections()
                        .iter()
                        .map(|p| p.size_bytes())
                        .sum::<usize>()
                })
                .sum::<usize>()
    }

    /// `Tensor`-returning wrapper over the arena path, for callers outside
    /// the scheduler loop (parity tests, examples, one-shot prefills).
    fn forward_chunks(&self, chunks: &[&[usize]], caches: &mut [KvCache]) -> Tensor {
        // Flatten the per-chunk refs into the ChunkView descriptor the
        // arena path consumes (callers off the hot path can afford the
        // two temporary vecs; the scheduler builds its view from
        // reusable buffers instead).
        let mut tokens = Vec::new();
        let mut ends = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            tokens.extend_from_slice(chunk);
            ends.push(tokens.len());
        }
        let n_total = tokens.len();
        let logits = scratch::with_thread_scratch(|arena| {
            self.forward_chunks_into(ChunkView::new(&tokens, &ends), caches, arena)
        });
        Tensor::from_vec(
            logits,
            &[n_total, self.config.vocab],
            DType::F32,
            self.device,
        )
    }

    /// The batched decoder forward over raw slices: every temporary comes
    /// from `arena`, so a steady-state decode step (same flight shape as
    /// the previous step) performs zero heap allocations in this path. The
    /// returned logits buffer belongs to the arena; hand it back with
    /// [`ScratchArena::put`].
    fn forward_chunks_into(
        &self,
        view: ChunkView<'_>,
        caches: &mut [KvCache],
        arena: &mut ScratchArena,
    ) -> Vec<f32> {
        assert_eq!(view.len(), caches.len(), "one cache per chunk");
        assert!(!view.is_empty(), "at least one chunk");
        let d = self.config.d_model;
        let h = self.config.n_heads;
        let hd = d / h;
        let n_total = view.total_tokens();
        // Per-chunk cache starts and per-row RoPE positions come from the
        // arena's index pool — the last per-step bookkeeping the decoder
        // used to allocate.
        let mut starts = arena.take_idx(view.len());
        for (g, chunk) in view.iter().enumerate() {
            let cache = &mut caches[g];
            assert!(!chunk.is_empty(), "empty chunk");
            assert!(
                cache.len() + chunk.len() <= self.config.max_seq,
                "sequence too long: {} cached + {} new > {}",
                cache.len(),
                chunk.len(),
                self.config.max_seq
            );
            assert!(
                cache.try_reserve(chunk.len()),
                "KV block pool exhausted: {} more tokens need {} blocks, {} free",
                chunk.len(),
                self.kv_pool.blocks_for(cache.len() + chunk.len()),
                self.kv_pool.free_blocks()
            );
            starts[g] = cache.len();
        }
        let mut pos = arena.take_idx(n_total);
        let mut prow = 0usize;
        for (g, chunk) in view.iter().enumerate() {
            for i in 0..chunk.len() {
                pos[prow] = starts[g] + i;
                prow += 1;
            }
        }

        let mut s = ForwardScratch::take(arena, n_total, d, self.config.d_ff, self.config.max_seq);

        // Embed all new tokens: [n_total, d].
        let mut row = 0usize;
        for chunk in view.iter() {
            for &id in chunk {
                assert!(id < self.config.vocab, "id {id} out of vocabulary");
                self.embed.write_row(id, &mut s.x[row * d..(row + 1) * d]);
                row += 1;
            }
        }

        for (li, layer) in self.layers.iter().enumerate() {
            rmsnorm_rows_into(&s.x, &layer.input_norm, &mut s.h, self.device);
            layer.q.forward_rows(&s.h, n_total, &mut s.q, arena);
            layer.k.forward_rows(&s.h, n_total, &mut s.k, arena);
            layer.v.forward_rows(&s.h, n_total, &mut s.v, arena);
            for (r, &p) in pos.iter().enumerate() {
                rope_row(&mut s.q[r * d..(r + 1) * d], h, hd, &self.cos, &self.sin, p);
                rope_row(&mut s.k[r * d..(r + 1) * d], h, hd, &self.cos, &self.sin, p);
            }

            // Attention: per sequence against its own cache, rows read
            // through the block table a whole block at a time
            // (`attend_cached_rows` walks [`KvRowView::k_rows`] runs; the
            // accumulation order matches the monolithic layout, so the
            // kernel is bit-stable in the storage geometry).
            s.ctx.fill(0.0);
            let mut flops = 0.0f64;
            let mut base = 0usize;
            for (g, chunk) in view.iter().enumerate() {
                let n = chunk.len();
                caches[g].write_rows(
                    li,
                    starts[g],
                    &s.k[base * d..(base + n) * d],
                    &s.v[base * d..(base + n) * d],
                );
                let layer_view = LayerView {
                    cache: &caches[g],
                    layer: li,
                };
                flops += attend_cached_rows(
                    &s.q[base * d..(base + n) * d],
                    starts[g],
                    h,
                    hd,
                    &layer_view,
                    &mut s.ctx[base * d..(base + n) * d],
                    &mut s.scores,
                );
                base += n;
            }
            runtime::record_compute(flops, self.device);

            layer.o.forward_rows(&s.ctx, n_total, &mut s.proj, arena);
            for (xv, &pv) in s.x.iter_mut().zip(&s.proj) {
                *xv += pv;
            }
            runtime::record_compute(s.x.len() as f64, self.device);

            rmsnorm_rows_into(&s.x, &layer.post_norm, &mut s.h, self.device);
            layer.gate.forward_rows(&s.h, n_total, &mut s.gate, arena);
            layer.up.forward_rows(&s.h, n_total, &mut s.up, arena);
            // SwiGLU: gate · silu, then the elementwise product with up
            // (same per-element order as the tensor ops it replaced).
            for (g, &u) in s.gate.iter_mut().zip(&s.up) {
                *g = (*g * sigmoid(*g)) * u;
            }
            runtime::record_compute(2.0 * s.gate.len() as f64, self.device);
            layer
                .down
                .forward_rows(&s.gate, n_total, &mut s.proj, arena);
            for (xv, &pv) in s.x.iter_mut().zip(&s.proj) {
                *xv += pv;
            }
            runtime::record_compute(s.x.len() as f64, self.device);
        }
        for (g, chunk) in view.iter().enumerate() {
            caches[g].commit(chunk.len());
        }
        arena.put_idx(starts);
        arena.put_idx(pos);

        rmsnorm_rows_into(&s.x, &self.final_norm, &mut s.h, self.device);
        let mut logits = arena.take(n_total * self.config.vocab);
        self.lm_head.forward_rows(&s.h, n_total, &mut logits, arena);
        s.put(arena);
        logits
    }

    fn decode_step(&self, tokens: &[usize], caches: &mut [KvCache]) -> Tensor {
        let chunks: Vec<&[usize]> = tokens.chunks(1).collect();
        self.forward_chunks(&chunks, caches)
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::dkm::{DkmConfig, DkmLayer};
    use edkm_tensor::{ops as t, Device};

    fn palettized_pair(seed: u64) -> (Tensor, PalettizedLinear) {
        runtime::reset();
        let w = Tensor::randn(&[12, 20], DType::Bf16, Device::Cpu, seed).map(|v| v * 0.05);
        let dkm = DkmLayer::new(DkmConfig::with_bits(3));
        let pal = dkm.palettize(&w);
        (w, PalettizedLinear::new(pal))
    }

    #[test]
    fn forward_matches_decoded_matmul_exactly() {
        let (_w, lin) = palettized_pair(0);
        let x = Tensor::randn(&[5, 20], DType::F32, Device::Cpu, 1);
        let direct = lin.forward(&x);
        let decoded = lin.weights().decode();
        let reference = t::matmul(&x, &decoded.t());
        assert!(
            t::max_abs_diff(&direct, &reference) < 1e-4,
            "LUT-GEMM must match dense matmul on the decoded weights"
        );
        assert_eq!(direct.shape(), &[5, 12]);
    }

    #[test]
    fn forward_approximates_original_weights() {
        let (w, lin) = palettized_pair(2);
        let x = Tensor::randn(&[4, 20], DType::F32, Device::Cpu, 3);
        let approx = lin.forward(&x);
        let exact = t::matmul(&x, &w.t());
        // 3-bit clustering: close but not exact.
        let rel = t::max_abs_diff(&approx, &exact) / t::l2_norm(&exact).max(1e-9);
        assert!(rel < 0.5, "palettized forward too far off: {rel}");
        assert!(
            t::max_abs_diff(&approx, &exact) > 0.0,
            "must not be bit-identical"
        );
    }

    #[test]
    fn accessors() {
        let (_w, lin) = palettized_pair(4);
        assert_eq!(lin.out_features(), 12);
        assert_eq!(lin.in_features(), 20);
        assert!(lin.size_bytes() < 12 * 20 * 2, "smaller than bf16");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_input_width_panics() {
        let (_w, lin) = palettized_pair(5);
        let x = Tensor::zeros(&[2, 7], DType::F32, Device::Cpu);
        lin.forward(&x);
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let (_w, lin) = palettized_pair(6);
        let x = Tensor::zeros(&[3, 20], DType::F32, Device::Cpu);
        assert!(lin.forward(&x).to_vec().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn forward_batch_is_bit_identical_to_forward() {
        let (_w, lin) = palettized_pair(7);
        // Small batch (serial fallback) and large batch (threaded path).
        for n in [33usize, 512] {
            let x = Tensor::randn(&[n, 20], DType::F32, Device::Cpu, 8);
            assert_eq!(
                lin.forward(&x).to_vec(),
                lin.forward_batch(&x).to_vec(),
                "threaded LUT-GEMM must match the serial loop bit for bit"
            );
        }
    }

    #[test]
    fn zero_output_features_yield_empty_result() {
        runtime::reset();
        let w = Tensor::zeros(&[0, 5], DType::F32, Device::Cpu);
        let centroids = Tensor::from_vec(vec![0.0, 1.0], &[2, 1], DType::F32, Device::Cpu);
        let lin = PalettizedLinear::new(crate::palettize::PalettizedTensor::from_nearest(
            &w, &centroids, 1, 1,
        ));
        let x = Tensor::randn(&[3, 5], DType::F32, Device::Cpu, 0);
        assert_eq!(lin.forward(&x).shape(), &[3, 0]);
        assert_eq!(lin.forward_batch(&x).shape(), &[3, 0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn forward_batch_wrong_width_panics() {
        let (_w, lin) = palettized_pair(9);
        lin.forward_batch(&Tensor::zeros(&[2, 7], DType::F32, Device::Cpu));
    }

    #[test]
    fn forward_delegates_to_batch_path_with_identical_ledger_charges() {
        runtime::reset(); // bind this thread to a private runtime/clock
        let (_w, lin) = palettized_pair(12);
        // Below and above the parallel threshold.
        for n in [3usize, 512] {
            let x = Tensor::randn(&[n, 20], DType::F32, Device::Cpu, 13);
            let t0 = runtime::sim_seconds();
            let a = lin.forward(&x);
            let forward_cost = runtime::sim_seconds() - t0;
            let t1 = runtime::sim_seconds();
            let b = lin.forward_batch(&x);
            let batch_cost = runtime::sim_seconds() - t1;
            let t2 = runtime::sim_seconds();
            let c = lin.forward_serial(&x);
            let serial_cost = runtime::sim_seconds() - t2;
            assert_eq!(a.to_vec(), b.to_vec(), "n={n}: outputs must be identical");
            assert_eq!(a.to_vec(), c.to_vec(), "n={n}: serial reference matches");
            // The clock advances by the same integer-nanosecond quantum for
            // all three entry points (1e-12 absorbs f64 readout rounding).
            assert!(
                (forward_cost - batch_cost).abs() < 1e-12,
                "n={n}: same ledger charge: {forward_cost} vs {batch_cost}"
            );
            assert!(
                (forward_cost - serial_cost).abs() < 1e-12,
                "n={n}: same ledger charge: {forward_cost} vs {serial_cost}"
            );
            assert!(forward_cost > 0.0);
        }
    }

    fn tiny_bf16_model() -> edkm_nn::LlamaModel {
        edkm_nn::LlamaModel::new(edkm_nn::LlamaConfig::tiny(), DType::Bf16, Device::Cpu, 21)
    }

    #[test]
    fn lossless_palettized_model_matches_dense_logits() {
        runtime::reset();
        let dense = tiny_bf16_model();
        let served = PalettizedModel::from_dense(&dense, &CompressSpec::lossless()).unwrap();
        let ids = [1usize, 5, 2, 9];
        let full = dense.logits(&ids, 1, ids.len(), None);
        let mut cache = served.new_cache();
        let got = served.prefill(&ids, &mut cache);
        assert_eq!(got.shape(), full.value().shape());
        let diff = t::max_abs_diff(&got, full.value());
        // Same weights bit-for-bit; only the LUT-GEMM accumulation order
        // differs from the dense matmul.
        assert!(diff < 1e-4, "lossless serving drifted: {diff}");
        assert_eq!(cache.len(), ids.len());
    }

    #[test]
    fn decode_rows_are_independent_of_batch_composition() {
        runtime::reset();
        let dense = tiny_bf16_model();
        let served = PalettizedModel::from_dense(&dense, &CompressSpec::with_bits(3)).unwrap();
        // Two sequences with different prompts.
        let (p_a, p_b) = ([1usize, 2, 3], [4usize, 5]);
        let mut solo_a = served.new_cache();
        let mut solo_b = served.new_cache();
        served.prefill(&p_a, &mut solo_a);
        served.prefill(&p_b, &mut solo_b);
        let a_alone = served.decode_step(&[7], std::slice::from_mut(&mut solo_a));
        let b_alone = served.decode_step(&[8], std::slice::from_mut(&mut solo_b));
        // Same state, decoded batched.
        let mut bats = [served.new_cache(), served.new_cache()];
        served.forward_chunks(&[&p_a, &p_b], &mut bats);
        let both = served.decode_step(&[7, 8], &mut bats);
        let bv = both.to_vec();
        let vocab = served.config().vocab;
        assert_eq!(
            &bv[..vocab],
            &a_alone.to_vec()[..],
            "row A depends on A only"
        );
        assert_eq!(
            &bv[vocab..],
            &b_alone.to_vec()[..],
            "row B depends on B only"
        );
    }

    #[test]
    fn kv_cache_bytes_are_pool_charged_and_freed() {
        runtime::reset();
        let dense = tiny_bf16_model();
        let served = PalettizedModel::from_dense(&dense, &CompressSpec::with_bits(2)).unwrap();
        let baseline = runtime::cpu_live_bytes();
        {
            let mut cache = served.new_cache();
            served.prefill(&[1, 2, 3, 4], &mut cache);
            // Paged: charged at block granularity, exactly the blocks the
            // sequence's table holds.
            let pool = served.kv_pool();
            let expect = pool.blocks_for(4) * pool.block_bytes();
            assert_eq!(cache.bytes(), expect);
            assert_eq!(cache.block_table().len(), pool.blocks_for(4));
            assert_eq!(cache.len(), 4);
            assert_eq!(pool.blocks_in_use(), pool.blocks_for(4));
            assert!(runtime::cpu_live_bytes() >= baseline + expect);
        }
        assert_eq!(
            runtime::cpu_live_bytes(),
            baseline,
            "retiring the cache must return its bytes to the pool"
        );
        assert_eq!(served.kv_pool().blocks_in_use(), 0);
    }

    #[test]
    fn small_kv_blocks_charge_less_than_worst_case() {
        runtime::reset();
        let dense = tiny_bf16_model();
        let served = PalettizedModel::from_dense(&dense, &CompressSpec::with_bits(2))
            .unwrap()
            .with_kv_config(KvBlockConfig {
                block_tokens: 2,
                max_blocks: 0,
            });
        let mut cache = served.new_cache();
        served.prefill(&[1, 2, 3], &mut cache);
        // 3 tokens at 2 tokens/block: 2 blocks, not a max_seq reservation.
        assert_eq!(cache.block_table().len(), 2);
        let monolithic_worst =
            2 * served.config().n_layers * served.config().max_seq * served.config().d_model * 4;
        assert!(cache.bytes() < monolithic_worst);
    }

    #[test]
    fn from_compressed_reports_typed_errors() {
        runtime::reset();
        let dense = tiny_bf16_model();
        let cfg = *dense.config();
        let compressed = CompressionPipeline::new(CompressSpec::with_bits(2)).export(&dense);
        // Missing parameter.
        let mut entries = compressed.entries().to_vec();
        entries.retain(|(n, _)| n != "lm_head");
        let err = PalettizedModel::from_compressed(&CompressedModel::from_entries(entries), cfg)
            .unwrap_err();
        assert_eq!(err, ServeError::MissingParam("lm_head".into()));
        // Vector palettes are export-only.
        let mut spec = CompressSpec::vector(4, 2);
        spec.dkm.iters = 2;
        let vec_exported = CompressionPipeline::new(spec).export(&dense);
        match PalettizedModel::from_compressed(&vec_exported, cfg) {
            Err(ServeError::Unsupported(m)) => assert!(m.contains("vector")),
            other => panic!("expected Unsupported, got {other:?}"),
        }
        // Wrong architecture.
        let mut bigger = cfg;
        bigger.d_model *= 2;
        bigger.n_heads *= 2;
        match PalettizedModel::from_compressed(&compressed, bigger) {
            Err(ServeError::Shape(_)) => {}
            other => panic!("expected Shape error, got {other:?}"),
        }
        assert!(ServeError::MissingParam("x".into())
            .to_string()
            .contains("x"));
    }

    #[test]
    fn from_dense_rejects_overrich_lossless_palette_with_typed_error() {
        runtime::reset();
        // An f32 model large enough that one projection has > 2^16 distinct
        // values: the lossless u16 palette cannot represent it, and the
        // builder must say so instead of panicking mid-export.
        let cfg = edkm_nn::LlamaConfig {
            vocab: 16,
            d_model: 64,
            n_heads: 2,
            n_layers: 1,
            d_ff: 1100, // gate_proj: 1100 × 64 = 70400 random f32 values
            max_seq: 8,
        };
        let dense = edkm_nn::LlamaModel::new(cfg, DType::F32, Device::Cpu, 77);
        match PalettizedModel::from_dense(&dense, &CompressSpec::lossless()) {
            Err(ServeError::Unsupported(m)) => {
                assert!(m.contains("distinct values"), "got: {m}")
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn forward_batch_accounts_every_flop_exactly_once_across_threads() {
        use std::sync::Arc;

        // Reference: one forward_batch on one thread.
        runtime::reset();
        let (_w, lin) = palettized_pair(10); // resets the runtime again
        let lin = Arc::new(lin);
        // Batch 512 clears PAR_WORK_THRESHOLD, so every call below also
        // fans out its own worker threads.
        runtime::reset_peak(Device::Cpu);
        let t0 = runtime::sim_seconds();
        let allocs0 = runtime::pool(Device::Cpu).alloc_count();
        // The measured unit matches what each thread below does: allocate
        // the input, run the batch, drop both.
        let x = Tensor::randn(&[512, 20], DType::F32, Device::Cpu, 11);
        drop(lin.forward_batch(&x));
        drop(x);
        let one_call_seconds = runtime::sim_seconds() - t0;
        let one_call_allocs = runtime::pool(Device::Cpu).alloc_count() - allocs0;
        assert!(one_call_seconds > 0.0);

        // Four threads, all bound to one fresh runtime, each running the
        // same forward_batch (which itself fans out worker threads). The
        // shared ledgers must account exactly 4× one call: no lost updates,
        // no double counting, no bytes left behind.
        let rt = edkm_tensor::runtime::Runtime::new();
        let workers = 4;
        std::thread::scope(|s| {
            for _ in 0..workers {
                let lin = Arc::clone(&lin);
                let rt = rt.clone();
                s.spawn(move || {
                    let _g = runtime::bind(&rt);
                    let x = Tensor::randn(&[512, 20], DType::F32, Device::Cpu, 11);
                    drop(lin.forward_batch(&x));
                });
            }
        });
        let _g = runtime::bind(&rt);
        // The clock advance per call is a deterministic nanosecond quantum,
        // so 4 concurrent calls must land on exactly 4x one call.
        assert!(
            (runtime::sim_seconds() - workers as f64 * one_call_seconds).abs() < 1e-12,
            "compute ledger lost or duplicated work: {} vs {}",
            runtime::sim_seconds(),
            workers as f64 * one_call_seconds
        );
        // Every input + output allocation of every thread hit the shared
        // pool (one x + one output per call), and every byte drained.
        assert_eq!(
            runtime::pool(Device::Cpu).alloc_count(),
            workers * one_call_allocs,
            "pool must see each thread's allocations exactly once"
        );
        assert_eq!(runtime::cpu_live_bytes(), 0, "all buffers must drain");
    }

    #[test]
    fn column_sharded_linear_is_bit_identical_to_unsharded() {
        runtime::reset();
        let (_w, lin) = palettized_pair(20);
        let x = Tensor::randn(&[6, 20], DType::F32, Device::Cpu, 21);
        let want = lin.forward_batch(&x).to_vec();
        // Uneven shards, and more learners than output rows (empty tails).
        for learners in [1usize, 2, 4, 5, 13] {
            let sharded =
                ShardedPalettizedLinear::column(lin.weights(), LearnerGroup::new(learners));
            assert_eq!(sharded.partition(), Partition::Column);
            assert_eq!(sharded.shards().len(), learners);
            assert_eq!(LutProjection::out_features(&sharded), 12);
            let got = sharded.forward_batch(&x);
            assert_eq!(got.shape(), &[6, 12]);
            assert_eq!(
                got.to_vec(),
                want,
                "{learners} column shards must not change a single bit"
            );
        }
    }

    #[test]
    fn row_sharded_linear_matches_within_rounding() {
        runtime::reset();
        let (_w, lin) = palettized_pair(22);
        let x = Tensor::randn(&[4, 20], DType::F32, Device::Cpu, 23);
        let want = lin.forward_batch(&x);
        for learners in [1usize, 2, 3] {
            let sharded = ShardedPalettizedLinear::row(lin.weights(), LearnerGroup::new(learners));
            assert_eq!(sharded.partition(), Partition::Row);
            let got = sharded.forward_batch(&x);
            assert_eq!(got.shape(), want.shape());
            let diff = t::max_abs_diff(&got, &want);
            assert!(
                diff < 1e-4,
                "{learners} row shards drifted past rounding: {diff}"
            );
            if learners == 1 {
                assert_eq!(got.to_vec(), want.to_vec(), "one shard is the identity");
            }
        }
    }

    #[test]
    fn sharded_forward_charges_the_collective_to_the_clock() {
        runtime::reset();
        let (_w, lin) = palettized_pair(24);
        let x = Tensor::randn(&[3, 20], DType::F32, Device::Cpu, 25);
        let t0 = runtime::sim_seconds();
        lin.forward_batch(&x);
        let unsharded_cost = runtime::sim_seconds() - t0;
        let sharded = ShardedPalettizedLinear::column(lin.weights(), LearnerGroup::new(4));
        let t1 = runtime::sim_seconds();
        sharded.forward_batch(&x);
        let sharded_cost = runtime::sim_seconds() - t1;
        assert!(
            sharded_cost > unsharded_cost,
            "shard GEMM FLOPs plus the all-gather must exceed the \
             unsharded cost: {sharded_cost} vs {unsharded_cost}"
        );
    }

    #[test]
    fn pool_backed_shards_are_bit_identical_to_unsharded() {
        runtime::reset();
        // A GEMM big enough to clear the parallel threshold, forced onto a
        // persistent ShardWorkers pool: the pool dispatch path must change
        // nothing — not one bit — relative to the unsharded kernel, and
        // the shard FLOPs must land on the caller's clock.
        let w = Tensor::randn(&[256, 256], DType::Bf16, Device::Cpu, 50).map(|v| v * 0.05);
        let dkm = crate::dkm::DkmLayer::new(DkmConfig::with_bits(3));
        let lin = PalettizedLinear::new(dkm.palettize(&w));
        let x = Tensor::randn(&[8, 256], DType::F32, Device::Cpu, 51);
        let want = lin.forward_batch(&x).to_vec();
        for learners in [2usize, 4] {
            let pooled =
                ShardedPalettizedLinear::column(lin.weights(), LearnerGroup::new(learners))
                    .with_pool(edkm_dist::ShardWorkers::new(learners));
            let t0 = runtime::sim_seconds();
            let got = pooled.forward_batch(&x);
            assert!(
                runtime::sim_seconds() > t0,
                "pool jobs must charge the caller's runtime"
            );
            assert_eq!(
                got.to_vec(),
                want,
                "{learners} pool-backed shards must not change a single bit"
            );
        }
    }

    #[test]
    fn sharded_model_shares_the_generation_stack() {
        runtime::reset();
        let dense = tiny_bf16_model();
        let spec = CompressSpec::with_bits(3);
        let base = PalettizedModel::from_dense(&dense, &spec).unwrap();
        let sharded = base.shard(LearnerGroup::new(2));
        assert_eq!(sharded.group().n_learners(), 2);
        assert!(
            sharded.size_bytes() > base.size_bytes(),
            "each learner carries a full LUT copy"
        );
        // Same logits through the ServeModel surface.
        let ids = [1usize, 4, 2];
        let mut c0 = base.new_cache();
        let mut c1 = sharded.new_cache();
        let a = base.prefill(&ids, &mut c0);
        let b = sharded.prefill(&ids, &mut c1);
        assert_eq!(a.to_vec(), b.to_vec(), "sharded logits are bit-identical");
        assert_eq!(c0.len(), c1.len());
    }
}
