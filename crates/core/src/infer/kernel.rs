//! Cache-blocked, register-tiled LUT-GEMM kernel.
//!
//! [`TiledLutKernel`] is the single inner loop behind every palettized
//! projection. It rewrites the naive "unpack an index, look up a centroid,
//! multiply" GEMM as three mechanical transformations, in the spirit of
//! LUT-GEMM-style sub-4-bit kernels that amortize palette lookups through
//! precomputed partial products:
//!
//! 1. **Tile repack.** At construction, the palette's bit-packed indices
//!    are unpacked once and re-laid-out into contiguous *tiles*:
//!    [`TILE_OUT`] output rows × [`IN_CHUNK`] input columns per block,
//!    stored at the narrowest width that holds the palette (`u8` for
//!    k ≤ 256, `u16` above). Within a block the indices are
//!    **structure-of-arrays** (column-major: all of column `j`'s row
//!    indices adjacent), so a backend processing `L` output rows at once
//!    reads its `L` lane indices as one contiguous run — the same repack
//!    serves every lane width, and the hot loop streams a `(tile, chunk)`
//!    block sequentially with no per-element bit extraction.
//!
//! 2. **Activation-side LUT precompute.** For each batch row, the products
//!    `prod[c][j] = lut[c] · x[j]` are materialized once per input chunk
//!    (`k · in` multiplies, amortized over all `out` output rows). The
//!    GEMM inner loop then *gathers by index and adds*: every multiply
//!    becomes an add. Because `prod[c][j]` is exactly the f32 the naive
//!    kernel would have computed inline, the gather path is bit-identical
//!    to the multiply path — which is also why palettes too rich for a
//!    table ([`PROD_K_MAX`], e.g. the lossless 2¹⁶ palette) can fall back
//!    to the inline multiply without changing a single output bit.
//!
//! 3. **Deterministic tile parallelism.** Worker threads split the *output
//!    tiles*, never the reduction: each output element is accumulated by
//!    exactly one thread, left to right over the input (a single
//!    accumulator carried across chunks in ascending-`j` order). Results
//!    are therefore bit-identical to [`TiledLutKernel::forward_serial_into`]
//!    at every thread count — the determinism argument in DESIGN.md §11–12.
//!
//! The GEMM itself runs behind the pluggable backend layer in
//! [`super::launch`]: [`TiledLutKernel::forward_into`] builds a
//! [`super::launch::LutGemmArgs`] descriptor over this kernel's views and
//! dispatches it to the process-selected [`super::launch::KernelBackend`]
//! (scalar oracle, explicitly vectorized lanes, or the simulated GPU-style
//! launch). Every backend preserves the accumulation order (`acc +=
//! lut[idx[r, j]] · x[j]` for ascending `j`, one accumulator per output
//! element) — the same order a dense row-times-matrixᵀ dot product uses —
//! so the kernel agrees with a dense matmul over the decoded weights to
//! rounding, and with itself exactly, no matter which backend serves.

use super::launch::{self, IdxArg, LutGemmArgs, TensorArg, TensorArgMut};
use crate::palettize::PalettizedTensor;
use crate::scratch::ScratchArena;

/// Output rows per tile — the unit of parallel work ownership.
pub const TILE_OUT: usize = 16;

/// Input columns per chunk: sized so one activation-LUT slab
/// (`k · IN_CHUNK` floats) stays L1/L2-resident for sub-4-bit palettes.
pub const IN_CHUNK: usize = 512;

/// Largest palette for which the activation-side product table pays for
/// itself. Richer palettes (up to the lossless 2¹⁶ entries) use the
/// bit-identical inline-multiply fallback.
pub const PROD_K_MAX: usize = 64;

/// Cap on the activation-LUT table size (`n · k · in` floats ≈ 16 MB).
/// The table grows with the batch, so an unbounded large prefill would
/// pin an arbitrarily large arena buffer; past the cap the kernel falls
/// back to the inline multiply, which is bit-identical.
pub const PROD_TABLE_MAX_FLOATS: usize = 1 << 22;

/// Tile-repacked index storage at the narrowest sufficient width.
#[derive(Debug, Clone)]
enum TileIdx {
    /// Palettes with k ≤ 256 entries.
    U8(Vec<u8>),
    /// Palettes up to the lossless 2¹⁶ entries.
    U16(Vec<u16>),
}

/// The tiled LUT-GEMM kernel for one scalar-clustered `[out, in]` palette.
///
/// Construction performs the one-time tile repack; [`forward_into`] and
/// [`forward_serial_into`] run the GEMM with bit-identical results (the
/// serial entry point exists so benchmarks can pin the single-threaded
/// reference, and is the oracle every registered backend is tested
/// against).
///
/// [`forward_into`]: TiledLutKernel::forward_into
/// [`forward_serial_into`]: TiledLutKernel::forward_serial_into
#[derive(Debug, Clone)]
pub struct TiledLutKernel {
    lut: Vec<f32>,
    k: usize,
    out_features: usize,
    in_features: usize,
    idx: TileIdx,
}

/// Rows in tile `t` (the last tile may be short).
#[inline]
pub(crate) fn tile_rows(out_features: usize, t: usize) -> usize {
    TILE_OUT.min(out_features - t * TILE_OUT)
}

/// Columns in chunk `c` (the last chunk may be short).
#[inline]
pub(crate) fn chunk_cols(in_features: usize, c: usize) -> usize {
    IN_CHUNK.min(in_features - c * IN_CHUNK)
}

/// Offset of the `(t, c)` index block inside the repacked stream: all of
/// tile `t`'s earlier rows-times-full-width, plus this tile's rows times
/// the columns of earlier chunks. Within a block, the index of `(row r,
/// col j)` lives at `j · rows + r` — the structure-of-arrays layout every
/// lane width reads contiguously.
#[inline]
pub(crate) fn block_base(out_features: usize, in_features: usize, t: usize, c: usize) -> usize {
    t * TILE_OUT * in_features + tile_rows(out_features, t) * c * IN_CHUNK
}

impl TiledLutKernel {
    /// Repack `weights` (scalar-clustered, `[out, in]`) into tiled form.
    ///
    /// # Panics
    ///
    /// Panics if the palette is not a 2-D scalar palette.
    pub fn from_palette(weights: &PalettizedTensor) -> Self {
        assert_eq!(weights.shape().len(), 2, "kernel expects [out, in]");
        assert_eq!(weights.cluster_dim(), 1, "kernel is scalar-clustered");
        let (out_features, in_features) = (weights.shape()[0], weights.shape()[1]);
        let flat = weights.indices();
        let k = weights.k();
        let n_tiles = out_features.div_ceil(TILE_OUT);
        let n_chunks = in_features.div_ceil(IN_CHUNK);
        // Permute row-major [out, in] into (tile, chunk, col, row) blocks —
        // column-major within each block, so the `L` lane indices of any
        // row group are one contiguous run regardless of the lane width.
        let mut order = Vec::with_capacity(flat.len());
        for t in 0..n_tiles {
            for c in 0..n_chunks {
                let cols = chunk_cols(in_features, c);
                let rows = tile_rows(out_features, t);
                for j in 0..cols {
                    for r in 0..rows {
                        let row = t * TILE_OUT + r;
                        order.push(flat[row * in_features + c * IN_CHUNK + j]);
                    }
                }
            }
        }
        debug_assert_eq!(order.len(), flat.len());
        let idx = if k <= 1 << 8 {
            TileIdx::U8(order.iter().map(|&v| v as u8).collect())
        } else {
            TileIdx::U16(order.iter().map(|&v| v as u16).collect())
        };
        TiledLutKernel {
            lut: weights.lut().to_vec(),
            k,
            out_features,
            in_features,
            idx,
        }
    }

    /// Output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Palette entries.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Bytes of the repacked index stream plus the LUT — the kernel's
    /// resident footprint.
    pub fn resident_bytes(&self) -> usize {
        let idx = match &self.idx {
            TileIdx::U8(v) => v.len(),
            TileIdx::U16(v) => v.len() * 2,
        };
        idx + self.lut.len() * 4
    }

    /// Reconstruct the row-major `[out, in]` index stream (undoes the tile
    /// permutation; for tests and export).
    pub fn row_major_indices(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.out_features * self.in_features];
        let n_tiles = self.out_features.div_ceil(TILE_OUT);
        let n_chunks = self.in_features.div_ceil(IN_CHUNK);
        for t in 0..n_tiles {
            for c in 0..n_chunks {
                let cols = chunk_cols(self.in_features, c);
                let rows = tile_rows(self.out_features, t);
                let base = block_base(self.out_features, self.in_features, t, c);
                for j in 0..cols {
                    for r in 0..rows {
                        let row = t * TILE_OUT + r;
                        out[row * self.in_features + c * IN_CHUNK + j] = match &self.idx {
                            TileIdx::U8(v) => u32::from(v[base + j * rows + r]),
                            TileIdx::U16(v) => u32::from(v[base + j * rows + r]),
                        };
                    }
                }
            }
        }
        out
    }

    /// Single-threaded reference GEMM: `out[i, r] = Σ_j lut[idx[r, j]] ·
    /// x[i, j]`, ascending `j`, one accumulator per element. Every
    /// registered backend is bit-identical to this loop at every lane
    /// width and thread count — the oracle of the launch layer.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `n · in` long or `out` is not `n · out` long.
    pub fn forward_serial_into(&self, x: &[f32], n: usize, out: &mut [f32]) {
        self.check_shapes(x, n, out);
        let n_tiles = self.out_features.div_ceil(TILE_OUT);
        let n_chunks = self.in_features.div_ceil(IN_CHUNK);
        match &self.idx {
            TileIdx::U8(idx) => self.serial_rows(idx, x, n, out, n_tiles, n_chunks),
            TileIdx::U16(idx) => self.serial_rows(idx, x, n, out, n_tiles, n_chunks),
        }
    }

    fn serial_rows<I: Copy + Into<usize>>(
        &self,
        idx: &[I],
        x: &[f32],
        n: usize,
        out: &mut [f32],
        n_tiles: usize,
        n_chunks: usize,
    ) {
        for i in 0..n {
            let xrow = &x[i * self.in_features..(i + 1) * self.in_features];
            let orow = &mut out[i * self.out_features..(i + 1) * self.out_features];
            for t in 0..n_tiles {
                let rows = tile_rows(self.out_features, t);
                for r in 0..rows {
                    let mut acc = 0.0f32;
                    for c in 0..n_chunks {
                        let cols = chunk_cols(self.in_features, c);
                        let base = block_base(self.out_features, self.in_features, t, c);
                        let xc = &xrow[c * IN_CHUNK..c * IN_CHUNK + cols];
                        for (j, &xv) in xc.iter().enumerate() {
                            acc += self.lut[idx[base + j * rows + r].into()] * xv;
                        }
                    }
                    orow[t * TILE_OUT + r] = acc;
                }
            }
        }
    }

    /// Borrowed launch descriptor over this kernel's views — the typed
    /// argument bundle a [`super::launch::KernelBackend`] consumes.
    /// `lanes` records the vectorization factor the caller asks for.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `n · in` long or `out` is not `n · out` long.
    pub fn launch_args<'a>(
        &'a self,
        x: &'a [f32],
        n: usize,
        out: &'a mut [f32],
        lanes: u8,
    ) -> LutGemmArgs<'a> {
        self.check_shapes(x, n, out);
        let idx = match &self.idx {
            TileIdx::U8(v) => IdxArg::U8(v),
            TileIdx::U16(v) => IdxArg::U16(v),
        };
        LutGemmArgs {
            lut: TensorArg::from_raw_parts(&self.lut, [self.k, 1]),
            idx,
            x: TensorArg::from_raw_parts(x, [n, self.in_features]),
            out: TensorArgMut::from_raw_parts(out, [n, self.out_features]),
            lanes,
        }
    }

    /// The tiled GEMM through the process-selected backend
    /// ([`super::launch::default_backend`]): activation-LUT tables per
    /// `(batch row, chunk)`, index-gather accumulation, worker threads
    /// over output tiles. Scratch (the product tables and the tile-major
    /// staging buffer) comes from `arena`; steady-state calls of one shape
    /// allocate nothing.
    ///
    /// Bit-identical to [`TiledLutKernel::forward_serial_into`] no matter
    /// which backend is selected.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `n · in` long or `out` is not `n · out` long.
    pub fn forward_into(&self, x: &[f32], n: usize, out: &mut [f32], arena: &mut ScratchArena) {
        let backend = launch::default_backend();
        self.launch_with(backend, x, n, out, arena);
    }

    /// Run the GEMM on an explicit `backend` (bench sweeps and the
    /// backend-parity test suites; serving goes through
    /// [`TiledLutKernel::forward_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `n · in` long or `out` is not `n · out` long.
    pub fn launch_with(
        &self,
        backend: &dyn launch::KernelBackend,
        x: &[f32],
        n: usize,
        out: &mut [f32],
        arena: &mut ScratchArena,
    ) {
        if n == 0 || self.out_features == 0 {
            self.check_shapes(x, n, out);
            return;
        }
        backend.launch(self.launch_args(x, n, out, backend.lanes()), arena);
    }

    fn check_shapes(&self, x: &[f32], n: usize, out: &[f32]) {
        assert_eq!(x.len(), n * self.in_features, "x must be [n, in]");
        assert_eq!(out.len(), n * self.out_features, "out must be [n, out]");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_tensor::{runtime, DType, Device, Tensor};

    fn kernel(out: usize, inp: usize, k: usize, seed: u64) -> (PalettizedTensor, TiledLutKernel) {
        runtime::reset();
        let bits = (usize::BITS - (k - 1).max(1).leading_zeros()).max(1) as u8;
        let w = Tensor::randn(&[out, inp], DType::F32, Device::Cpu, seed);
        let lut: Vec<f32> = (0..k).map(|i| (i as f32 - k as f32 / 2.0) * 0.03).collect();
        let c = Tensor::from_vec(lut, &[k, 1], DType::F32, Device::Cpu);
        let p = PalettizedTensor::from_nearest(&w, &c, bits, 1);
        let kern = TiledLutKernel::from_palette(&p);
        (p, kern)
    }

    fn xbuf(n: usize, inp: usize, seed: u64) -> Vec<f32> {
        Tensor::randn(&[n.max(1), inp.max(1)], DType::F32, Device::Cpu, seed).to_vec()[..n * inp]
            .to_vec()
    }

    /// Independent reference: ascending-j single-accumulator gather.
    fn reference(p: &PalettizedTensor, x: &[f32], n: usize) -> Vec<f32> {
        let (out, inp) = (p.shape()[0], p.shape()[1]);
        let idx = p.indices();
        let lut = p.lut();
        let mut y = vec![0.0f32; n * out];
        for i in 0..n {
            for r in 0..out {
                let mut acc = 0.0f32;
                for j in 0..inp {
                    acc += lut[idx[r * inp + j] as usize] * x[i * inp + j];
                }
                y[i * out + r] = acc;
            }
        }
        y
    }

    #[test]
    fn repack_round_trips_the_index_stream() {
        for (out, inp) in [(1, 1), (16, 512), (17, 513), (40, 100), (100, 7)] {
            let (p, kern) = kernel(out, inp, 8, out as u64);
            assert_eq!(kern.row_major_indices(), p.indices(), "[{out}, {inp}]");
        }
    }

    #[test]
    fn tiled_matches_serial_and_reference_bit_for_bit() {
        for (out, inp, n) in [
            (16, 512, 4),   // exact tile/chunk multiples
            (17, 513, 3),   // one past the boundary on both axes
            (5, 33, 1),     // batch 1, sub-tile geometry
            (130, 1030, 2), // several tiles and chunks with tails
        ] {
            let (p, kern) = kernel(out, inp, 8, (out + inp) as u64);
            let x = xbuf(n, inp, 9);
            let want = reference(&p, &x, n);
            let mut serial = vec![0.0f32; n * out];
            kern.forward_serial_into(&x, n, &mut serial);
            assert_eq!(serial, want, "serial [{out}, {inp}] batch {n}");
            let mut arena = ScratchArena::new();
            let mut tiled = vec![0.0f32; n * out];
            kern.forward_into(&x, n, &mut tiled, &mut arena);
            assert_eq!(tiled, want, "tiled [{out}, {inp}] batch {n}");
        }
    }

    #[test]
    fn every_registered_backend_matches_the_oracle() {
        for (out, inp, n) in [(17, 513, 3), (40, 100, 2), (7, 9, 1)] {
            let (_p, kern) = kernel(out, inp, 8, (out * 7 + inp) as u64);
            let x = xbuf(n, inp, 21);
            let mut want = vec![0.0f32; n * out];
            kern.forward_serial_into(&x, n, &mut want);
            for backend in launch::registry() {
                let mut arena = ScratchArena::new();
                let mut got = vec![0.0f32; n * out];
                kern.launch_with(*backend, &x, n, &mut got, &mut arena);
                assert_eq!(
                    got,
                    want,
                    "backend {} lanes {} on [{out}, {inp}] batch {n}",
                    backend.name(),
                    backend.lanes()
                );
            }
        }
    }

    #[test]
    fn rich_palette_takes_the_inline_path_and_still_matches() {
        // k > PROD_K_MAX forces the inline-multiply fallback and u16
        // storage past 256 entries.
        for k in [PROD_K_MAX + 1, 300] {
            let (p, kern) = kernel(24, 70, k, 5);
            assert!(kern.resident_bytes() > 0);
            let x = xbuf(3, 70, 6);
            let want = reference(&p, &x, 3);
            let mut arena = ScratchArena::new();
            let mut tiled = vec![0.0f32; 3 * 24];
            kern.forward_into(&x, 3, &mut tiled, &mut arena);
            assert_eq!(tiled, want, "k={k}");
        }
    }

    #[test]
    fn one_entry_palette_is_rank_one() {
        let (p, kern) = kernel(10, 20, 1, 7);
        let x = xbuf(2, 20, 8);
        let mut arena = ScratchArena::new();
        let mut y = vec![0.0f32; 2 * 10];
        kern.forward_into(&x, 2, &mut y, &mut arena);
        assert_eq!(y, reference(&p, &x, 2));
        assert_eq!(kern.k(), 1);
    }

    #[test]
    fn steady_state_calls_do_not_grow_the_arena() {
        let (_p, kern) = kernel(64, 600, 8, 11);
        let mut arena = ScratchArena::new();
        let x = xbuf(4, 600, 12);
        let mut y = vec![0.0f32; 4 * 64];
        kern.forward_into(&x, 4, &mut y, &mut arena);
        let grows = arena.grows();
        for _ in 0..5 {
            kern.forward_into(&x, 4, &mut y, &mut arena);
        }
        assert_eq!(arena.grows(), grows, "warm calls must not allocate");
        assert_eq!(kern.out_features(), 64);
        assert_eq!(kern.in_features(), 600);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (_p, kern) = kernel(8, 8, 4, 13);
        let mut arena = ScratchArena::new();
        kern.forward_into(&[], 0, &mut [], &mut arena);
    }
}
