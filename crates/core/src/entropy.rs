//! Entropy coding of palette indices (extension beyond the paper).
//!
//! Fixed-width packing charges `bits` per index even when the cluster
//! assignment distribution is skewed. Deep Compression (Han et al., ICLR'16
//! — reference \[8\] of the paper) showed that Huffman-coding the index
//! stream recovers most of that slack. This module implements a canonical
//! Huffman coder over the `u32` index alphabet produced by
//! [`crate::palettize::PalettizedTensor`], so the deployment pipeline can
//! report (and ship) the entropy-coded size.
//!
//! The coder is *canonical*: only the per-symbol code lengths are stored
//! (`k` bytes), and both sides reconstruct identical codebooks from them.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Maximum canonical code length the coder will emit. Depth grows like a
/// Fibonacci sequence in the worst case, so 48 bits already requires more
/// index occurrences than any model in this workspace can produce.
pub const MAX_CODE_LEN: u8 = 48;

/// Error produced when decoding a corrupt entropy-coded stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The bitstream ended before `n` symbols were decoded.
    Truncated,
    /// A prefix was read that no canonical code starts with.
    BadPrefix,
    /// The stored code lengths do not form a valid prefix code.
    BadLengths,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "bitstream truncated"),
            DecodeError::BadPrefix => write!(f, "invalid code prefix"),
            DecodeError::BadLengths => write!(f, "code lengths are not a prefix code"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// LSB-first bit writer.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final byte (0..8).
    fill: u8,
}

impl BitWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the low `len` bits of `code`, LSB first.
    pub fn push(&mut self, code: u64, len: u8) {
        debug_assert!(len <= 64);
        for i in 0..len {
            let bit = ((code >> i) & 1) as u8;
            if self.fill == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.len() - 1;
            self.bytes[last] |= bit << self.fill;
            self.fill = (self.fill + 1) % 8;
        }
    }

    /// Total bits written.
    pub fn bit_len(&self) -> usize {
        if self.fill == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.fill as usize
        }
    }

    /// Finish and return the byte buffer (final byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// LSB-first bit reader over a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Reader starting at the first bit of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Next bit, or `None` at end of stream.
    pub fn next_bit(&mut self) -> Option<u8> {
        let byte = self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (self.pos % 8)) & 1;
        self.pos += 1;
        Some(bit)
    }

    /// Bits consumed so far.
    pub fn bits_read(&self) -> usize {
        self.pos
    }
}

/// A canonical Huffman code over the alphabet `0..lengths.len()`.
///
/// Symbols with length 0 do not occur in the stream. Construction sorts by
/// `(length, symbol)` and assigns consecutive codes — both encoder and
/// decoder derive the same codebook from the lengths alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffmanCode {
    lengths: Vec<u8>,
    /// Per-symbol canonical code (MSB-first value), valid where length > 0.
    codes: Vec<u64>,
}

impl HuffmanCode {
    /// Build the optimal code for `freqs[symbol]` occurrence counts.
    ///
    /// Symbols with zero frequency get length 0 (absent). If only one
    /// symbol occurs it gets a 1-bit code.
    ///
    /// # Panics
    ///
    /// Panics if `freqs` is empty or all-zero, or if the optimal code would
    /// exceed [`MAX_CODE_LEN`].
    pub fn from_frequencies(freqs: &[u64]) -> Self {
        assert!(!freqs.is_empty(), "alphabet must be non-empty");
        let present: Vec<usize> = (0..freqs.len()).filter(|&s| freqs[s] > 0).collect();
        assert!(!present.is_empty(), "at least one symbol must occur");

        let mut lengths = vec![0u8; freqs.len()];
        if present.len() == 1 {
            lengths[present[0]] = 1;
            return Self::from_lengths(lengths).expect("single-symbol code is valid");
        }

        // Huffman tree via a min-heap of (weight, node). Ties broken by
        // node id for determinism.
        #[derive(PartialEq, Eq, PartialOrd, Ord)]
        struct Node {
            weight: u64,
            id: usize,
        }
        let mut heap: BinaryHeap<Reverse<Node>> = BinaryHeap::new();
        // children[id] = Some((left, right)) for internal nodes.
        let mut children: Vec<Option<(usize, usize)>> = vec![None; present.len()];
        let mut symbol_of: Vec<Option<usize>> = present.iter().map(|&s| Some(s)).collect();
        for (id, &s) in present.iter().enumerate() {
            heap.push(Reverse(Node {
                weight: freqs[s],
                id,
            }));
        }
        while heap.len() > 1 {
            let a = heap.pop().expect("len > 1").0;
            let b = heap.pop().expect("len > 1").0;
            let id = children.len();
            children.push(Some((a.id, b.id)));
            symbol_of.push(None);
            heap.push(Reverse(Node {
                weight: a.weight + b.weight,
                id,
            }));
        }
        // Depth-first assign lengths.
        let root = heap.pop().expect("non-empty heap").0.id;
        let mut stack = vec![(root, 0u8)];
        while let Some((id, depth)) = stack.pop() {
            match children[id] {
                Some((l, r)) => {
                    assert!(depth < MAX_CODE_LEN, "code length exceeds {MAX_CODE_LEN}");
                    stack.push((l, depth + 1));
                    stack.push((r, depth + 1));
                }
                None => {
                    let s = symbol_of[id].expect("leaf carries a symbol");
                    lengths[s] = depth.max(1);
                }
            }
        }
        Self::from_lengths(lengths).expect("Huffman lengths satisfy Kraft")
    }

    /// Rebuild the canonical code from per-symbol lengths (the serialized
    /// form). Returns an error if the lengths over-fill the prefix space.
    pub fn from_lengths(lengths: Vec<u8>) -> Result<Self, DecodeError> {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        if max_len == 0 || max_len > MAX_CODE_LEN {
            return Err(DecodeError::BadLengths);
        }
        // Kraft sum must not exceed 1.
        let mut kraft: u128 = 0;
        for &l in &lengths {
            if l > 0 {
                kraft += 1u128 << (MAX_CODE_LEN - l) as u32;
            }
        }
        if kraft > 1u128 << MAX_CODE_LEN as u32 {
            return Err(DecodeError::BadLengths);
        }
        // Canonical assignment: sort by (length, symbol).
        let mut order: Vec<usize> = (0..lengths.len()).filter(|&s| lengths[s] > 0).collect();
        order.sort_by_key(|&s| (lengths[s], s));
        let mut codes = vec![0u64; lengths.len()];
        let mut code: u64 = 0;
        let mut prev_len = 0u8;
        for &s in &order {
            code <<= lengths[s] - prev_len;
            codes[s] = code;
            code += 1;
            prev_len = lengths[s];
        }
        Ok(HuffmanCode { lengths, codes })
    }

    /// Per-symbol code lengths (the serialized representation).
    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }

    /// Code length of `symbol` in bits (0 if absent).
    pub fn len_of(&self, symbol: usize) -> u8 {
        self.lengths[symbol]
    }

    /// Encode `symbols` into an LSB-first bitstream.
    ///
    /// # Panics
    ///
    /// Panics if a symbol is out of alphabet or has no code.
    pub fn encode(&self, symbols: &[u32]) -> Vec<u8> {
        let mut w = BitWriter::new();
        for &s in symbols {
            let s = s as usize;
            let len = self.lengths[s];
            assert!(len > 0, "symbol {s} has no code");
            // Emit MSB-first within the code so canonical decode works.
            let code = self.codes[s];
            for i in (0..len).rev() {
                w.push((code >> i) & 1, 1);
            }
        }
        w.into_bytes()
    }

    /// Decode exactly `n` symbols from `bytes`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] if the stream ends early,
    /// [`DecodeError::BadPrefix`] if an impossible prefix appears.
    pub fn decode(&self, bytes: &[u8], n: usize) -> Result<Vec<u32>, DecodeError> {
        // first_code[l] / first_sym[l]: canonical decode tables.
        let max_len = self.lengths.iter().copied().max().unwrap_or(0) as usize;
        let mut count = vec![0usize; max_len + 1];
        for &l in &self.lengths {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        let mut order: Vec<usize> = (0..self.lengths.len())
            .filter(|&s| self.lengths[s] > 0)
            .collect();
        order.sort_by_key(|&s| (self.lengths[s], s));
        let mut first_code = vec![0u64; max_len + 2];
        let mut first_index = vec![0usize; max_len + 2];
        let mut code = 0u64;
        let mut idx = 0usize;
        for l in 1..=max_len {
            first_code[l] = code;
            first_index[l] = idx;
            code = (code + count[l] as u64) << 1;
            idx += count[l];
        }

        let mut r = BitReader::new(bytes);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mut acc = 0u64;
            let mut len = 0usize;
            loop {
                let bit = r.next_bit().ok_or(DecodeError::Truncated)?;
                acc = (acc << 1) | u64::from(bit);
                len += 1;
                if len > max_len {
                    return Err(DecodeError::BadPrefix);
                }
                if count[len] > 0 {
                    let offset = acc.wrapping_sub(first_code[len]);
                    if offset < count[len] as u64 {
                        out.push(order[first_index[len] + offset as usize] as u32);
                        break;
                    }
                }
            }
        }
        Ok(out)
    }
}

/// An entropy-coded index stream: canonical code lengths + payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntropyCoded {
    code: HuffmanCode,
    payload: Vec<u8>,
    payload_bits: usize,
    n: usize,
}

impl EntropyCoded {
    /// Huffman-code `indices` over the alphabet `0..k`.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or contains a value `>= k`.
    pub fn encode(indices: &[u32], k: usize) -> Self {
        assert!(!indices.is_empty(), "cannot entropy-code an empty stream");
        let mut freqs = vec![0u64; k];
        for &i in indices {
            freqs[i as usize] += 1;
        }
        let code = HuffmanCode::from_frequencies(&freqs);
        let payload_bits = indices
            .iter()
            .map(|&s| code.len_of(s as usize) as usize)
            .sum();
        let payload = code.encode(indices);
        EntropyCoded {
            code,
            payload,
            payload_bits,
            n: indices.len(),
        }
    }

    /// Decode back to the exact index stream.
    ///
    /// # Errors
    ///
    /// Propagates [`DecodeError`] on corrupt payloads.
    pub fn decode(&self) -> Result<Vec<u32>, DecodeError> {
        self.code.decode(&self.payload, self.n)
    }

    /// Number of encoded symbols.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if no symbols are encoded (construction forbids this).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The canonical code.
    pub fn code(&self) -> &HuffmanCode {
        &self.code
    }

    /// Serialized bytes: payload + one length byte per alphabet symbol
    /// + an 8-byte symbol count.
    pub fn size_bytes(&self) -> usize {
        self.payload.len() + self.code.lengths().len() + 8
    }

    /// Mean code length in exact bits per symbol (no byte padding).
    pub fn bits_per_symbol(&self) -> f64 {
        self.payload_bits as f64 / self.n as f64
    }
}

/// Shannon entropy (bits/symbol) of an index stream over alphabet `0..k` —
/// the lower bound no prefix code can beat.
pub fn index_entropy_bits(indices: &[u32], k: usize) -> f64 {
    if indices.is_empty() {
        return 0.0;
    }
    let mut freqs = vec![0u64; k];
    for &i in indices {
        freqs[i as usize] += 1;
    }
    let n = indices.len() as f64;
    freqs
        .iter()
        .filter(|&&f| f > 0)
        .map(|&f| {
            let p = f as f64 / n;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bitio_roundtrip() {
        let mut w = BitWriter::new();
        w.push(0b1011, 4);
        w.push(0b1, 1);
        w.push(0b110010, 6);
        assert_eq!(w.bit_len(), 11);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut got = 0u64;
        for i in 0..11 {
            got |= u64::from(r.next_bit().unwrap()) << i;
        }
        assert_eq!(got & 0xF, 0b1011);
        assert_eq!((got >> 4) & 1, 1);
        assert_eq!(got >> 5, 0b110010);
        assert_eq!(r.bits_read(), 11);
    }

    #[test]
    fn skewed_stream_beats_fixed_width() {
        // 3-bit palette (k=8) but 90% of assignments hit symbol 0.
        let mut idx = vec![0u32; 900];
        for i in 0..100 {
            idx.push(1 + (i % 7) as u32);
        }
        let ec = EntropyCoded::encode(&idx, 8);
        assert_eq!(ec.decode().unwrap(), idx);
        let fixed_bits = idx.len() * 3;
        let huff_bits = ec.bits_per_symbol() * idx.len() as f64;
        assert!(
            huff_bits < 0.6 * fixed_bits as f64,
            "huffman {huff_bits} vs fixed {fixed_bits}"
        );
        // And never below the entropy bound.
        let h = index_entropy_bits(&idx, 8);
        assert!(ec.bits_per_symbol() >= h - 1e-9);
        assert!(ec.bits_per_symbol() <= h + 1.0, "within 1 bit of entropy");
    }

    #[test]
    fn uniform_stream_matches_fixed_width() {
        let idx: Vec<u32> = (0..4096).map(|i| (i % 8) as u32).collect();
        let ec = EntropyCoded::encode(&idx, 8);
        assert_eq!(ec.decode().unwrap(), idx);
        // Uniform over 8 symbols: exactly 3 bits/symbol.
        assert!((ec.bits_per_symbol() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn single_symbol_stream() {
        let idx = vec![5u32; 64];
        let ec = EntropyCoded::encode(&idx, 8);
        assert_eq!(ec.decode().unwrap(), idx);
        assert!(
            (ec.bits_per_symbol() - 1.0).abs() < 1e-9,
            "degenerate code is 1 bit"
        );
    }

    #[test]
    fn two_symbols() {
        let idx = vec![0u32, 1, 0, 0, 1, 0];
        let ec = EntropyCoded::encode(&idx, 2);
        assert_eq!(ec.decode().unwrap(), idx);
        assert!((ec.bits_per_symbol() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn canonical_code_is_deterministic_from_lengths() {
        let freqs = vec![50u64, 20, 20, 5, 5];
        let a = HuffmanCode::from_frequencies(&freqs);
        let b = HuffmanCode::from_lengths(a.lengths().to_vec()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let idx: Vec<u32> = (0..100).map(|i| (i % 4) as u32).collect();
        let ec = EntropyCoded::encode(&idx, 4);
        let mut bad = ec.clone();
        bad.payload.truncate(1);
        assert_eq!(bad.decode(), Err(DecodeError::Truncated));
    }

    #[test]
    fn invalid_lengths_are_rejected() {
        // Three 1-bit codes over-fill the prefix space.
        assert_eq!(
            HuffmanCode::from_lengths(vec![1, 1, 1]),
            Err(DecodeError::BadLengths)
        );
        // All-zero lengths are meaningless.
        assert_eq!(
            HuffmanCode::from_lengths(vec![0, 0]),
            Err(DecodeError::BadLengths)
        );
    }

    #[test]
    fn entropy_of_uniform_and_point_masses() {
        let uniform: Vec<u32> = (0..256).map(|i| (i % 4) as u32).collect();
        assert!((index_entropy_bits(&uniform, 4) - 2.0).abs() < 1e-12);
        let point = vec![3u32; 100];
        assert_eq!(index_entropy_bits(&point, 4), 0.0);
        assert_eq!(index_entropy_bits(&[], 4), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn empty_stream_panics() {
        EntropyCoded::encode(&[], 4);
    }

    proptest! {
        /// decode(encode(x)) == x for arbitrary index streams.
        #[test]
        fn prop_roundtrip(idx in prop::collection::vec(0u32..16, 1..500)) {
            let ec = EntropyCoded::encode(&idx, 16);
            prop_assert_eq!(ec.decode().unwrap(), idx);
        }

        /// Huffman is optimal-prefix: within 1 bit of entropy, never below.
        #[test]
        fn prop_entropy_bounds(idx in prop::collection::vec(0u32..8, 10..400)) {
            let ec = EntropyCoded::encode(&idx, 8);
            let h = index_entropy_bits(&idx, 8);
            let b = ec.bits_per_symbol();
            prop_assert!(b >= h - 1e-9, "below entropy: {} < {}", b, h);
            prop_assert!(b <= h + 1.0 + 1e-9, "more than 1 bit over entropy: {} > {}", b, h);
        }

        /// Huffman never does worse than fixed-width packing (plus the
        /// degenerate 1-symbol case where fixed width would be 0 bits).
        #[test]
        fn prop_never_worse_than_fixed(idx in prop::collection::vec(0u32..32, 32..400)) {
            let ec = EntropyCoded::encode(&idx, 32);
            prop_assert!(ec.bits_per_symbol() <= 5.0 + 1e-9);
        }
    }
}
