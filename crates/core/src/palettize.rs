//! Deployment codecs: palettized (LUT + n-bit indices) and affine-quantized
//! tensors.
//!
//! Weight clustering compresses "into a lookup table and a list of
//! low-precision indices to the lookup table, which can be consumed by
//! modern inference accelerators" (Section 2 of the paper). The palette LUT
//! is stored at 16 bits/entry; indices are bit-packed. Embeddings are
//! compressed separately with 8-bit affine quantization (Section 3: "we
//! also compressed the embedding layers with 8 bits").

use edkm_tensor::{dtype, DType, Device, Tensor};

/// Pack `bits`-wide values into bytes, LSB-first.
///
/// # Panics
///
/// Panics if `bits` is 0 or > 16, or any value needs more than `bits` bits.
pub fn pack_bits(values: &[u32], bits: u8) -> Vec<u8> {
    assert!((1..=16).contains(&bits), "bits must be in 1..=16");
    let mut out = Vec::with_capacity((values.len() * bits as usize).div_ceil(8));
    let mut acc: u32 = 0;
    let mut nbits: u32 = 0;
    for &v in values {
        assert!(v < (1u32 << bits), "value {v} does not fit in {bits} bits");
        acc |= v << nbits;
        nbits += bits as u32;
        while nbits >= 8 {
            out.push((acc & 0xff) as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push((acc & 0xff) as u8);
    }
    out
}

/// Inverse of [`pack_bits`].
pub fn unpack_bits(bytes: &[u8], bits: u8, n: usize) -> Vec<u32> {
    assert!((1..=16).contains(&bits), "bits must be in 1..=16");
    let mut out = Vec::with_capacity(n);
    let mut acc: u32 = 0;
    let mut nbits: u32 = 0;
    let mut iter = bytes.iter();
    let mask = (1u32 << bits) - 1;
    while out.len() < n {
        while nbits < bits as u32 {
            acc |= (*iter.next().expect("not enough packed bytes") as u32) << nbits;
            nbits += 8;
        }
        out.push(acc & mask);
        acc >>= bits;
        nbits -= bits as u32;
    }
    out
}

/// A weight tensor compressed to a LUT and bit-packed indices.
#[derive(Debug, Clone)]
pub struct PalettizedTensor {
    lut: Vec<f32>,
    packed: Vec<u8>,
    bits: u8,
    k: usize,
    cluster_dim: usize,
    shape: Vec<usize>,
}

impl PalettizedTensor {
    /// Palettize `w` by nearest-centroid assignment against `centroids`
    /// (`[k, cluster_dim]`).
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent or `k > 2^bits`.
    pub fn from_nearest(w: &Tensor, centroids: &Tensor, bits: u8, cluster_dim: usize) -> Self {
        assert_eq!(centroids.rank(), 2, "centroids must be [k, d]");
        assert_eq!(centroids.shape()[1], cluster_dim, "centroid dim mismatch");
        let k = centroids.shape()[0];
        assert!(k <= (1usize << bits), "{k} centroids exceed {bits} bits");
        let data = w.to_vec();
        assert_eq!(data.len() % cluster_dim, 0, "numel not divisible by dim");
        let lut = centroids.to_vec();
        let n = data.len() / cluster_dim;
        let mut indices = Vec::with_capacity(n);
        for i in 0..n {
            let row = &data[i * cluster_dim..(i + 1) * cluster_dim];
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for j in 0..k {
                let c = &lut[j * cluster_dim..(j + 1) * cluster_dim];
                let d: f32 = row.iter().zip(c).map(|(&a, &b)| (a - b) * (a - b)).sum();
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            indices.push(best as u32);
        }
        let packed = pack_bits(&indices, bits);
        PalettizedTensor {
            lut,
            packed,
            bits,
            k,
            cluster_dim,
            shape: w.shape().to_vec(),
        }
    }

    /// Lossless palettization: the LUT is the sorted set of *distinct*
    /// values in `w` and every index resolves to the exact original bit
    /// pattern — the "u16 case" of 16-bit source weights, whose ≤ 2¹⁶
    /// distinct values always fit a 16-bit index. Decoding reproduces `w`
    /// bit for bit, which is what pins compressed serving against the dense
    /// model in the parity suite.
    ///
    /// # Panics
    ///
    /// Panics if `w` has more than 2¹⁶ distinct values (not 16-bit source
    /// data).
    pub fn lossless(w: &Tensor) -> Self {
        let data = w.to_vec();
        let mut distinct: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
        distinct.sort_unstable();
        distinct.dedup();
        let k = distinct.len();
        assert!(
            k <= 1 << 16,
            "{k} distinct values exceed the 2^16-entry lossless palette"
        );
        let lut: Vec<f32> = distinct.iter().map(|&b| f32::from_bits(b)).collect();
        let indices: Vec<u32> = data
            .iter()
            .map(|v| distinct.binary_search(&v.to_bits()).expect("in LUT") as u32)
            .collect();
        let packed = pack_bits(&indices, 16);
        PalettizedTensor {
            lut,
            packed,
            bits: 16,
            k,
            cluster_dim: 1,
            shape: w.shape().to_vec(),
        }
    }

    /// Rebuild a palettized tensor from an explicit LUT and *unpacked*
    /// indices — how tensor-parallel serving carves one palette into
    /// per-shard artifacts (each shard keeps the full LUT and packs only
    /// its own index rows).
    ///
    /// # Panics
    ///
    /// Panics if the LUT is not `[k, cluster_dim]`-shaped for `k ≤ 2^bits`,
    /// an index is out of range, or `indices.len() · cluster_dim` disagrees
    /// with `shape`.
    pub fn from_lut_indices(
        lut: Vec<f32>,
        indices: &[u32],
        bits: u8,
        cluster_dim: usize,
        shape: Vec<usize>,
    ) -> Self {
        assert!(cluster_dim > 0, "cluster_dim must be positive");
        assert_eq!(lut.len() % cluster_dim, 0, "LUT must be [k, cluster_dim]");
        let k = lut.len() / cluster_dim;
        assert!(k <= (1usize << bits), "{k} centroids exceed {bits} bits");
        assert_eq!(
            indices.len() * cluster_dim,
            shape.iter().product::<usize>(),
            "indices must cover the shape"
        );
        assert!(
            indices.iter().all(|&i| (i as usize) < k),
            "index out of LUT range"
        );
        let packed = pack_bits(indices, bits);
        PalettizedTensor {
            lut,
            packed,
            bits,
            k,
            cluster_dim,
            shape,
        }
    }

    /// Palette bit width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of LUT entries.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Original tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Clustering dimensionality (scalars per LUT entry).
    pub fn cluster_dim(&self) -> usize {
        self.cluster_dim
    }

    /// Effective index bits per weight: `bits / cluster_dim` (LUT cost
    /// excluded, as the paper quotes "3 bit/weight").
    pub fn bits_per_weight(&self) -> f64 {
        f64::from(self.bits) / self.cluster_dim as f64
    }

    /// The lookup table, row-major `[k, cluster_dim]`.
    pub fn lut(&self) -> &[f32] {
        &self.lut
    }

    /// Unpacked hard assignments.
    pub fn indices(&self) -> Vec<u32> {
        let n = self.shape.iter().product::<usize>() / self.cluster_dim;
        unpack_bits(&self.packed, self.bits, n)
    }

    /// Serialized size: packed indices + 16-bit LUT entries.
    pub fn size_bytes(&self) -> usize {
        self.packed.len() + self.lut.len() * 2
    }

    /// Huffman-code the index stream (extension: Deep Compression's final
    /// stage). The result decodes back to exactly [`Self::indices`].
    pub fn entropy_coded(&self) -> crate::entropy::EntropyCoded {
        crate::entropy::EntropyCoded::encode(&self.indices(), self.k)
    }

    /// Serialized size with Huffman-coded indices instead of fixed-width
    /// packing: payload + code lengths + 16-bit LUT entries. At most
    /// marginally above [`Self::size_bytes`] (uniform assignments), often
    /// well below it (skewed assignments).
    pub fn entropy_size_bytes(&self) -> usize {
        self.entropy_coded().size_bytes() + self.lut.len() * 2
    }

    /// Decode back to a dense CPU tensor.
    pub fn decode(&self) -> Tensor {
        let idx = self.indices();
        let mut out = Vec::with_capacity(idx.len() * self.cluster_dim);
        for &i in &idx {
            let c = &self.lut[i as usize * self.cluster_dim..(i as usize + 1) * self.cluster_dim];
            out.extend_from_slice(c);
        }
        Tensor::from_vec(out, &self.shape, DType::F32, Device::Cpu)
    }
}

/// A weight matrix palettized with one LUT per group of consecutive rows
/// (CoreML's "per-grouped-channel" palettization granularity; the LUT
/// analogue of GPTQ's `g128` group size).
///
/// Projections whose output channels differ in scale lose accuracy under a
/// single whole-matrix palette; per-group LUTs localize the codebook at a
/// cost of `(rows / rows_per_group − 1)` extra LUTs.
#[derive(Debug, Clone)]
pub struct GroupedPalettized {
    groups: Vec<PalettizedTensor>,
    rows_per_group: usize,
    shape: Vec<usize>,
}

impl GroupedPalettized {
    /// Reassemble from parts (deserialization).
    ///
    /// # Panics
    ///
    /// Panics if the group shapes do not tile `shape`'s rows.
    pub fn from_parts(
        groups: Vec<PalettizedTensor>,
        rows_per_group: usize,
        shape: Vec<usize>,
    ) -> Self {
        assert_eq!(shape.len(), 2, "grouped palettization is for matrices");
        let total_rows: usize = groups.iter().map(|g| g.shape()[0]).sum();
        assert_eq!(total_rows, shape[0], "groups must tile the rows");
        GroupedPalettized {
            groups,
            rows_per_group,
            shape,
        }
    }

    /// The per-group palettized slabs, in row order.
    pub fn groups(&self) -> &[PalettizedTensor] {
        &self.groups
    }

    /// Rows per group (the last group may be smaller).
    pub fn rows_per_group(&self) -> usize {
        self.rows_per_group
    }

    /// Original matrix shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Palette bit width (uniform across groups).
    pub fn bits(&self) -> u8 {
        self.groups[0].bits()
    }

    /// Serialized size: sum of the per-group palettes and indices.
    pub fn size_bytes(&self) -> usize {
        self.groups.iter().map(|g| g.size_bytes()).sum()
    }

    /// Serialized size with Huffman-coded per-group index streams.
    pub fn entropy_size_bytes(&self) -> usize {
        self.groups.iter().map(|g| g.entropy_size_bytes()).sum()
    }

    /// Decode back to the dense matrix.
    pub fn decode(&self) -> Tensor {
        let cols = self.shape[1];
        let mut out = Vec::with_capacity(self.shape[0] * cols);
        for g in &self.groups {
            out.extend(g.decode().to_vec());
        }
        Tensor::from_vec(out, &self.shape, DType::F32, Device::Cpu)
    }
}

/// Per-row 8-bit (or fewer) affine quantization: `v ≈ scale·q + zero`.
#[derive(Debug, Clone)]
pub struct AffineQuantized {
    q: Vec<u8>,
    scales: Vec<f32>,
    zeros: Vec<f32>,
    bits: u8,
    rows: usize,
    cols: usize,
}

impl AffineQuantized {
    /// Quantize a 2-D tensor row-wise to `bits ≤ 8`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not 2-D or `bits` is 0 or > 8.
    pub fn encode(t: &Tensor, bits: u8) -> Self {
        assert!((1..=8).contains(&bits), "affine bits must be 1..=8");
        assert_eq!(t.rank(), 2, "affine quantization expects [rows, cols]");
        let (rows, cols) = (t.shape()[0], t.shape()[1]);
        let data = t.to_vec();
        let levels = ((1u32 << bits) - 1) as f32;
        let mut q = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        let mut zeros = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            let lo = row.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let scale = if hi > lo { (hi - lo) / levels } else { 1.0 };
            scales.push(scale);
            zeros.push(lo);
            for &v in row {
                let code = ((v - lo) / scale).round().clamp(0.0, levels) as u8;
                q.push(code);
            }
        }
        AffineQuantized {
            q,
            scales,
            zeros,
            bits,
            rows,
            cols,
        }
    }

    /// Bit width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Serialized size: codes (packed at `bits`) + per-row scale/zero at 16
    /// bits each.
    pub fn size_bytes(&self) -> usize {
        (self.q.len() * self.bits as usize).div_ceil(8) + self.rows * 4
    }

    /// Decode a single row (identical math to [`AffineQuantized::decode`],
    /// without materializing the whole table — the embedding-lookup path of
    /// compressed serving).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn decode_row(&self, r: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        self.decode_row_into(r, &mut out);
        out
    }

    /// Decode row `r` into a caller-provided buffer — the allocation-free
    /// variant [`decode_row`](AffineQuantized::decode_row) wraps, used by
    /// the serving embed path so steady-state decode never allocates per
    /// token.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range or `out` is not `cols` long.
    pub fn decode_row_into(&self, r: usize, out: &mut [f32]) {
        assert!(r < self.rows, "row {r} out of {} rows", self.rows);
        assert_eq!(out.len(), self.cols, "out must hold one row");
        let (s, z) = (self.scales[r], self.zeros[r]);
        for (o, &c) in out
            .iter_mut()
            .zip(&self.q[r * self.cols..(r + 1) * self.cols])
        {
            *o = s * c as f32 + z;
        }
    }

    /// Decode back to a dense CPU tensor.
    pub fn decode(&self) -> Tensor {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            let (s, z) = (self.scales[r], self.zeros[r]);
            for c in 0..self.cols {
                out.push(s * self.q[r * self.cols + c] as f32 + z);
            }
        }
        Tensor::from_vec(out, &[self.rows, self.cols], DType::F32, Device::Cpu)
    }

    /// Worst-case absolute rounding error of row `r` (half a step).
    pub fn row_error_bound(&self, r: usize) -> f32 {
        self.scales[r] * 0.5
    }
}

/// Bytes of a tensor stored raw at 16 bits/element (the "native" format for
/// parts that are not compressed, e.g. norm gains).
pub fn native16_size_bytes(numel: usize) -> usize {
    let _ = dtype::f32_to_bf16(0.0); // anchor the dtype module as the authority
    numel * 2
}

// ---------------------------------------------------------------------
// Wire codecs (used by `crate::serialize`).
// ---------------------------------------------------------------------

use crate::serialize::{put_f32, put_u32, put_u64, DecodeError, Reader};

impl PalettizedTensor {
    /// Append the wire encoding to `out`.
    pub(crate) fn write_to(&self, out: &mut Vec<u8>) {
        out.push(self.bits);
        put_u32(out, self.k as u32);
        put_u32(out, self.cluster_dim as u32);
        out.push(self.shape.len() as u8);
        for &d in &self.shape {
            put_u32(out, d as u32);
        }
        for &v in &self.lut {
            put_f32(out, v);
        }
        put_u64(out, self.packed.len() as u64);
        out.extend_from_slice(&self.packed);
    }

    /// Decode the wire encoding.
    pub(crate) fn read_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let bits = r.u8()?;
        let k = r.u32()? as usize;
        let cluster_dim = r.u32()? as usize;
        let rank = r.u8()? as usize;
        let shape: Vec<usize> = (0..rank)
            .map(|_| Ok(r.u32()? as usize))
            .collect::<Result<_, DecodeError>>()?;
        let lut: Vec<f32> = (0..k * cluster_dim)
            .map(|_| r.f32())
            .collect::<Result<_, DecodeError>>()?;
        let packed_len = r.u64()? as usize;
        let packed = r.bytes(packed_len)?;
        Ok(PalettizedTensor {
            lut,
            packed,
            bits,
            k,
            cluster_dim,
            shape,
        })
    }
}

impl AffineQuantized {
    /// Append the wire encoding to `out`.
    pub(crate) fn write_to(&self, out: &mut Vec<u8>) {
        out.push(self.bits);
        put_u32(out, self.rows as u32);
        put_u32(out, self.cols as u32);
        out.extend_from_slice(&self.q);
        for &s in &self.scales {
            put_f32(out, s);
        }
        for &z in &self.zeros {
            put_f32(out, z);
        }
    }

    /// Decode the wire encoding.
    pub(crate) fn read_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let bits = r.u8()?;
        let rows = r.u32()? as usize;
        let cols = r.u32()? as usize;
        let q = r.bytes(rows * cols)?;
        let scales: Vec<f32> = (0..rows).map(|_| r.f32()).collect::<Result<_, _>>()?;
        let zeros: Vec<f32> = (0..rows).map(|_| r.f32()).collect::<Result<_, _>>()?;
        Ok(AffineQuantized {
            q,
            scales,
            zeros,
            bits,
            rows,
            cols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_tensor::runtime;
    use proptest::prelude::*;

    #[test]
    fn pack_unpack_3bit_known() {
        let vals = vec![0u32, 1, 2, 3, 4, 5, 6, 7];
        let packed = pack_bits(&vals, 3);
        assert_eq!(packed.len(), 3); // 24 bits
        assert_eq!(unpack_bits(&packed, 3, 8), vals);
    }

    #[test]
    fn pack_handles_partial_final_byte() {
        let vals = vec![1u32, 1, 1];
        let packed = pack_bits(&vals, 3); // 9 bits -> 2 bytes
        assert_eq!(packed.len(), 2);
        assert_eq!(unpack_bits(&packed, 3, 3), vals);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn pack_rejects_oversized_values() {
        pack_bits(&[8], 3);
    }

    #[test]
    fn palettize_roundtrip_values_come_from_lut() {
        runtime::reset();
        let w = Tensor::randn(&[16, 8], DType::F32, Device::Cpu, 0);
        let c = Tensor::from_vec(vec![-0.5, 0.0, 0.5, 1.0], &[4, 1], DType::F32, Device::Cpu);
        let p = PalettizedTensor::from_nearest(&w, &c, 2, 1);
        assert_eq!(p.bits(), 2);
        assert_eq!(p.k(), 4);
        assert_eq!(p.shape(), &[16, 8]);
        let d = p.decode();
        assert_eq!(d.shape(), &[16, 8]);
        for v in d.to_vec() {
            assert!(
                [-0.5, 0.0, 0.5, 1.0].contains(&v),
                "decoded value {v} not in LUT"
            );
        }
    }

    #[test]
    fn palettize_picks_nearest() {
        runtime::reset();
        let w = Tensor::from_vec(vec![0.1, 0.9, -0.6], &[3], DType::F32, Device::Cpu);
        let c = Tensor::from_vec(vec![-0.5, 0.0, 1.0], &[3, 1], DType::F32, Device::Cpu);
        let p = PalettizedTensor::from_nearest(&w, &c, 2, 1);
        assert_eq!(p.decode().to_vec(), vec![0.0, 1.0, -0.5]);
        assert_eq!(p.indices(), vec![1, 2, 0]);
    }

    #[test]
    fn size_formula_3bit() {
        runtime::reset();
        let w = Tensor::randn(&[64, 64], DType::F32, Device::Cpu, 1);
        let c = Tensor::zeros(&[8, 1], DType::F32, Device::Cpu);
        let p = PalettizedTensor::from_nearest(&w, &c, 3, 1);
        // 4096 indices × 3 bits = 1536 bytes; LUT 8 × 2 bytes.
        assert_eq!(p.size_bytes(), 1536 + 16);
        // ~5.3x smaller than bf16.
        let ratio = (4096.0 * 2.0) / p.size_bytes() as f64;
        assert!(ratio > 5.0, "3-bit ratio {ratio}");
    }

    #[test]
    fn grouped_palettize_beats_single_lut_on_scale_outlier_rows() {
        use crate::dkm::{DkmConfig, DkmLayer};
        runtime::reset();
        // Rows at two very different scales: a single 8-entry LUT has to
        // cover both ranges, per-group LUTs localize.
        let mut data = Vec::new();
        for r in 0..16 {
            let scale = if r < 8 { 1.0 } else { 0.01 };
            for c in 0..32 {
                data.push(scale * ((r * 32 + c) as f32 * 0.173).sin());
            }
        }
        let w = Tensor::from_vec(data.clone(), &[16, 32], DType::F32, Device::Cpu);
        let dkm = DkmLayer::new(DkmConfig::with_bits(3));
        // Error on the small-scale rows (the back half), where a shared
        // palette starves the codebook.
        let small_mse = |t: &Tensor| -> f32 {
            data[8 * 32..]
                .iter()
                .zip(&t.to_vec()[8 * 32..])
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        };
        let single_small = small_mse(&dkm.palettize(&w).decode());
        let grouped = dkm.palettize_grouped(&w, 8);
        assert_eq!(grouped.groups().len(), 2);
        let dec = grouped.decode();
        let grouped_small = small_mse(&dec);
        assert!(
            grouped_small < single_small / 4.0,
            "per-group LUTs must rescue the small rows: {grouped_small} vs {single_small}"
        );
        // And overall the grouped form is no worse.
        let total = |t: &Tensor| -> f32 {
            data.iter()
                .zip(t.to_vec())
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        };
        assert!(total(&dec) <= total(&dkm.palettize(&w).decode()));
        // Cost: one extra LUT (8 entries × 2 B).
        assert_eq!(grouped.size_bytes(), dkm.palettize(&w).size_bytes() + 8 * 2);
    }

    #[test]
    fn grouped_palettize_handles_ragged_last_group() {
        use crate::dkm::{DkmConfig, DkmLayer};
        runtime::reset();
        let w = Tensor::randn(&[10, 4], DType::F32, Device::Cpu, 11);
        let g = DkmLayer::new(DkmConfig::with_bits(2)).palettize_grouped(&w, 4);
        assert_eq!(g.groups().len(), 3); // 4 + 4 + 2 rows
        assert_eq!(g.groups()[2].shape(), &[2, 4]);
        assert_eq!(g.decode().shape(), &[10, 4]);
        assert_eq!(g.rows_per_group(), 4);
        assert_eq!(g.bits(), 2);
    }

    #[test]
    fn grouped_with_zero_rows_equals_whole_matrix() {
        use crate::dkm::{DkmConfig, DkmLayer};
        runtime::reset();
        let w = Tensor::randn(&[8, 8], DType::F32, Device::Cpu, 12);
        let dkm = DkmLayer::new(DkmConfig::with_bits(3));
        let single = dkm.palettize(&w);
        let grouped = dkm.palettize_grouped(&w, 0);
        assert_eq!(grouped.groups().len(), 1);
        assert_eq!(grouped.decode().to_vec(), single.decode().to_vec());
        assert_eq!(grouped.size_bytes(), single.size_bytes());
    }

    #[test]
    #[should_panic(expected = "must tile")]
    fn grouped_from_parts_validates_tiling() {
        runtime::reset();
        let w = Tensor::randn(&[4, 4], DType::F32, Device::Cpu, 13);
        let c = Tensor::zeros(&[4, 1], DType::F32, Device::Cpu);
        let p = PalettizedTensor::from_nearest(&w, &c, 2, 1);
        GroupedPalettized::from_parts(vec![p], 4, vec![8, 4]); // 4 rows != 8
    }

    #[test]
    fn lossless_palette_decodes_bit_exactly() {
        runtime::reset();
        // bf16 source data: ≤ 2^16 distinct values by construction.
        let w = Tensor::randn(&[24, 16], DType::Bf16, Device::Cpu, 31);
        let p = PalettizedTensor::lossless(&w);
        assert_eq!(p.bits(), 16);
        assert!(p.k() <= 24 * 16);
        assert_eq!(
            p.decode().to_vec(),
            w.to_vec(),
            "lossless palette must reproduce every bit"
        );
        // Round-trips through the wire format exactly (f32 LUT entries).
        let mut buf = Vec::new();
        p.write_to(&mut buf);
        let back = PalettizedTensor::read_from(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back.decode().to_vec(), w.to_vec());
        assert_eq!(back.k(), p.k());
    }

    #[test]
    fn affine_decode_row_matches_full_decode() {
        runtime::reset();
        let t = Tensor::randn(&[6, 10], DType::F32, Device::Cpu, 8);
        let q = AffineQuantized::encode(&t, 8);
        let full = q.decode().to_vec();
        for r in 0..6 {
            assert_eq!(q.decode_row(r), &full[r * 10..(r + 1) * 10]);
        }
        assert_eq!(q.rows(), 6);
        assert_eq!(q.cols(), 10);
    }

    #[test]
    fn affine_roundtrip_error_bound() {
        runtime::reset();
        let t = Tensor::randn(&[8, 32], DType::F32, Device::Cpu, 2);
        let q = AffineQuantized::encode(&t, 8);
        let d = q.decode();
        let orig = t.to_vec();
        let dec = d.to_vec();
        for r in 0..8 {
            let bound = q.row_error_bound(r) + 1e-6;
            for c in 0..32 {
                let err = (orig[r * 32 + c] - dec[r * 32 + c]).abs();
                assert!(err <= bound, "row {r}: err {err} > bound {bound}");
            }
        }
        assert_eq!(q.bits(), 8);
    }

    #[test]
    fn affine_8bit_size() {
        runtime::reset();
        let t = Tensor::randn(&[10, 100], DType::F32, Device::Cpu, 3);
        let q = AffineQuantized::encode(&t, 8);
        assert_eq!(q.size_bytes(), 1000 + 40);
    }

    #[test]
    fn affine_constant_row_is_exact() {
        runtime::reset();
        let t = Tensor::full(3.25, &[2, 16], DType::F32, Device::Cpu);
        let q = AffineQuantized::encode(&t, 8);
        assert_eq!(q.decode().to_vec(), vec![3.25; 32]);
    }

    #[test]
    fn native16_size() {
        assert_eq!(native16_size_bytes(100), 200);
    }

    proptest! {
        /// pack/unpack round-trips for every width 1..=16.
        #[test]
        fn prop_pack_roundtrip(bits in 1u8..=16, n in 0usize..200, seed in any::<u64>()) {
            let mask = (1u32 << bits) - 1;
            let vals: Vec<u32> = (0..n)
                .map(|i| {
                    let mixed = seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add((i as u64).wrapping_mul(1442695040888963407));
                    ((mixed >> 33) as u32) & mask
                })
                .collect();
            let packed = pack_bits(&vals, bits);
            prop_assert_eq!(unpack_bits(&packed, bits, n), vals);
            prop_assert_eq!(packed.len(), (n * bits as usize).div_ceil(8));
        }

        /// Palettized decode only produces LUT values and never increases size.
        #[test]
        fn prop_palettize_closed_under_lut(n in 1usize..100, seed in any::<u64>()) {
            runtime::reset();
            let w = Tensor::randn(&[n], DType::F32, Device::Cpu, seed);
            let c = Tensor::from_vec(vec![-1.0, 0.0, 1.0, 2.0], &[4, 1], DType::F32, Device::Cpu);
            let p = PalettizedTensor::from_nearest(&w, &c, 2, 1);
            let lut = [-1.0f32, 0.0, 1.0, 2.0];
            for v in p.decode().to_vec() {
                prop_assert!(lut.contains(&v));
            }
            prop_assert!(p.size_bytes() <= n.div_ceil(4) + 8 + 1);
        }

        /// Affine quantization error stays within half a step everywhere.
        #[test]
        fn prop_affine_error_bound(rows in 1usize..6, cols in 2usize..40, seed in any::<u64>(), bits in 2u8..=8) {
            runtime::reset();
            let t = Tensor::randn(&[rows, cols], DType::F32, Device::Cpu, seed);
            let q = AffineQuantized::encode(&t, bits);
            let dec = q.decode().to_vec();
            let orig = t.to_vec();
            for r in 0..rows {
                let bound = q.row_error_bound(r) + 1e-5;
                for c in 0..cols {
                    prop_assert!((orig[r * cols + c] - dec[r * cols + c]).abs() <= bound);
                }
            }
        }
    }
}
