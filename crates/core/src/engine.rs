//! Streaming serve-engine façade: a [`ServeEngine`] owns the
//! continuous-batching [`Scheduler`] loop on a background worker thread,
//! and cheap cloneable [`EngineHandle`]s are what clients talk to.
//!
//! The request surface is a typed [`Request`] builder (prompt, sampling,
//! token budget, stop tokens, [`Priority`], optional deadline-in-steps).
//! Submission returns a [`RequestId`] plus a [`TokenStream`] that yields
//! incremental [`TokenEvent`]s — the first token, every decode token, then
//! one terminal event carrying the full [`ServeResponse`] with its typed
//! [`FinishReason`]. Admission is bounded: [`EngineHandle::try_submit`]
//! refuses when the engine is full, [`EngineHandle::submit`] blocks until
//! capacity frees up. [`EngineHandle::cancel`] removes a request wherever
//! it is — its KV blocks return to the pool before the next decode step,
//! and once `cancel` returns, the request will never emit another token.
//!
//! ## Thread model
//!
//! One worker thread owns the model and the scheduler; it binds the
//! runtime of the thread that called [`ServeEngine::new`], so every FLOP
//! and KV byte lands in the same ledgers as inline serving. Handles and
//! worker meet at a mutex-protected inbox (submissions, cancellations,
//! shutdown) with a condvar for wakeups; tokens travel back over
//! per-request channels, so a slow consumer never blocks the decode loop.
//! A dropped [`TokenStream`] auto-cancels its request on the next step.
//!
//! Because sampling is per-request-seeded and logits rows never depend on
//! batch composition, the streamed tokens are **bit-identical** to what
//! [`Scheduler::run_to_completion`] returns for the same requests — the
//! parity `tests/engine_stream.rs` pins, including under forced
//! preemption (replayed tokens are emitted exactly once).

use crate::infer::ServeModel;
use crate::serve::{
    FinishReason, Priority, SamplingConfig, Scheduler, ServeRequest, ServeResponse, StepEvents,
};
use edkm_tensor::runtime;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Engine-assigned identifier of one submitted request: echoed in every
/// [`ServeResponse`] (as its raw `u64`) and the key [`EngineHandle::cancel`]
/// takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(u64);

impl RequestId {
    /// The raw id, as it appears in [`ServeResponse::id`].
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// Default token budget of a [`Request`] when
/// [`Request::max_new_tokens`] is not called.
pub const DEFAULT_MAX_NEW_TOKENS: usize = 16;

/// A typed generation request, built fluently and handed to
/// [`EngineHandle::submit`] / [`EngineHandle::try_submit`].
///
/// Defaults: greedy sampling, [`DEFAULT_MAX_NEW_TOKENS`] new tokens, no
/// stop tokens, [`Priority::Normal`], no deadline.
#[derive(Debug, Clone)]
pub struct Request {
    prompt: Vec<usize>,
    max_new: usize,
    sampling: SamplingConfig,
    stop_tokens: Vec<usize>,
    priority: Priority,
    deadline_steps: Option<u64>,
}

impl Request {
    /// A request for `prompt` with default policy.
    #[must_use]
    pub fn new(prompt: Vec<usize>) -> Self {
        Request {
            prompt,
            max_new: DEFAULT_MAX_NEW_TOKENS,
            sampling: SamplingConfig::default(),
            stop_tokens: Vec::new(),
            priority: Priority::Normal,
            deadline_steps: None,
        }
    }

    /// Generate at most `n` new tokens.
    #[must_use]
    pub fn max_new_tokens(mut self, n: usize) -> Self {
        self.max_new = n;
        self
    }

    /// Sample under `sampling` instead of greedy argmax.
    #[must_use]
    pub fn sampling(mut self, sampling: SamplingConfig) -> Self {
        self.sampling = sampling;
        self
    }

    /// End generation when any of `tokens` is sampled (the stop token is
    /// kept in the output; KV blocks free on the same step).
    #[must_use]
    pub fn stop_tokens(mut self, tokens: Vec<usize>) -> Self {
        self.stop_tokens = tokens;
        self
    }

    /// Add one stop token.
    #[must_use]
    pub fn stop_token(mut self, token: usize) -> Self {
        self.stop_tokens.push(token);
        self
    }

    /// Scheduling class; [`Priority::High`] requests are admitted ahead of
    /// FIFO age.
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Give up with [`FinishReason::DeadlineExceeded`] once `steps`
    /// scheduler steps have elapsed since submission without finishing.
    #[must_use]
    pub fn deadline_steps(mut self, steps: u64) -> Self {
        self.deadline_steps = Some(steps);
        self
    }

    /// The prompt tokens this request will be prefilled with.
    pub fn prompt(&self) -> &[usize] {
        &self.prompt
    }

    /// The token budget ([`Request::max_new_tokens`]).
    pub fn max_new(&self) -> usize {
        self.max_new
    }

    /// The scheduling class this request was built with — what a router's
    /// admission policy (e.g. a degrade ladder shedding low-priority
    /// traffic) keys on.
    pub fn priority_class(&self) -> Priority {
        self.priority
    }

    fn into_serve(self, id: u64) -> ServeRequest {
        ServeRequest {
            id,
            prompt: self.prompt,
            max_new: self.max_new,
            sampling: self.sampling,
            stop_tokens: self.stop_tokens,
            priority: self.priority,
            deadline_steps: self.deadline_steps,
        }
    }
}

/// One event on a request's [`TokenStream`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenEvent {
    /// A freshly generated token. `index` 0 is the first token (the TTFT
    /// marker); replays after a preemption are never re-emitted.
    Token {
        /// 0-based position among the request's generated tokens.
        index: usize,
        /// The sampled token id.
        token: usize,
    },
    /// The terminal event: the request reached a [`FinishReason`]. No
    /// further events follow.
    Finished(ServeResponse),
}

impl TokenEvent {
    /// The token id, for [`TokenEvent::Token`] events.
    pub fn token(&self) -> Option<usize> {
        match self {
            TokenEvent::Token { token, .. } => Some(*token),
            TokenEvent::Finished(_) => None,
        }
    }

    /// The finish reason, for the terminal event.
    pub fn finish_reason(&self) -> Option<FinishReason> {
        match self {
            TokenEvent::Token { .. } => None,
            TokenEvent::Finished(r) => Some(r.finish),
        }
    }
}

/// Receiving end of one request's token stream.
///
/// Iterate it (blocking) to consume [`TokenEvent`]s as the worker produces
/// them; iteration ends after the terminal [`TokenEvent::Finished`].
/// Dropping the stream early cancels the request on the engine's next
/// step, freeing its KV blocks.
#[derive(Debug)]
pub struct TokenStream {
    id: RequestId,
    rx: mpsc::Receiver<TokenEvent>,
    done: bool,
}

impl TokenStream {
    /// The id of the request this stream belongs to.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Block for the next event; `None` after the terminal event (or if
    /// the engine died without finishing the request).
    pub fn next_event(&mut self) -> Option<TokenEvent> {
        if self.done {
            return None;
        }
        match self.rx.recv() {
            Ok(ev) => {
                if matches!(ev, TokenEvent::Finished(_)) {
                    self.done = true;
                }
                Some(ev)
            }
            Err(_) => {
                self.done = true;
                None
            }
        }
    }

    /// Wait at most `timeout` for the next event. Unlike
    /// [`TokenStream::next_event`], a timeout is distinguishable from the
    /// stream ending — routers hedging on a straggler threshold need that
    /// distinction.
    pub fn poll_event(&mut self, timeout: std::time::Duration) -> StreamPoll {
        if self.done {
            return StreamPoll::Ended;
        }
        match self.rx.recv_timeout(timeout) {
            Ok(ev) => {
                if matches!(ev, TokenEvent::Finished(_)) {
                    self.done = true;
                }
                StreamPoll::Event(ev)
            }
            Err(mpsc::RecvTimeoutError::Timeout) => StreamPoll::TimedOut,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                self.done = true;
                StreamPoll::Ended
            }
        }
    }

    /// Like [`TokenStream::next_event`], but give up after `timeout` with
    /// a typed error instead of blocking forever — the consumer-side guard
    /// against a wedged replica that stopped producing without
    /// disconnecting.
    ///
    /// # Errors
    ///
    /// [`RecvTimeout::TimedOut`] if nothing arrived in time (the stream is
    /// still live and may be polled again); [`RecvTimeout::Ended`] if the
    /// stream is over — terminal event already consumed, or the engine
    /// died without finishing the request.
    pub fn recv_timeout(
        &mut self,
        timeout: std::time::Duration,
    ) -> Result<TokenEvent, RecvTimeout> {
        match self.poll_event(timeout) {
            StreamPoll::Event(ev) => Ok(ev),
            StreamPoll::TimedOut => Err(RecvTimeout::TimedOut),
            StreamPoll::Ended => Err(RecvTimeout::Ended),
        }
    }

    /// Drain the stream to its terminal event and return the full
    /// [`ServeResponse`]. `None` only if the engine worker died before
    /// finishing the request.
    pub fn wait(&mut self) -> Option<ServeResponse> {
        while let Some(ev) = self.next_event() {
            if let TokenEvent::Finished(resp) = ev {
                return Some(resp);
            }
        }
        None
    }
}

impl Iterator for TokenStream {
    type Item = TokenEvent;

    fn next(&mut self) -> Option<TokenEvent> {
        self.next_event()
    }
}

/// Outcome of one [`TokenStream::poll_event`] wait.
#[derive(Debug)]
pub enum StreamPoll {
    /// An event arrived within the timeout.
    Event(TokenEvent),
    /// Nothing arrived within the timeout; the stream is still live.
    TimedOut,
    /// The stream is over: the terminal event was already consumed, or the
    /// engine died without finishing the request.
    Ended,
}

/// Why a [`TokenStream::recv_timeout`] wait returned no event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeout {
    /// Nothing arrived within the timeout; the stream is still live.
    TimedOut,
    /// The stream is over: the terminal event was already consumed, or the
    /// engine died without finishing the request.
    Ended,
}

impl std::fmt::Display for RecvTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeout::TimedOut => write!(f, "token stream timed out"),
            RecvTimeout::Ended => write!(f, "token stream ended"),
        }
    }
}

impl std::error::Error for RecvTimeout {}

/// Typed result of [`EngineHandle::cancel`]: cancellation is an idempotent
/// no-op on a request that already reached a terminal event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The request was live (queued or mid-flight) and is now cancelled;
    /// its stream receives a terminal [`FinishReason::Cancelled`] event.
    Cancelled,
    /// The request had already finished (or was never submitted): nothing
    /// changed, its stream already holds a terminal event. Repeating the
    /// call returns this again — cancel is an idempotent no-op here.
    AlreadyFinished,
}

impl CancelOutcome {
    /// `true` if this call is the one that cancelled the request.
    pub fn was_cancelled(self) -> bool {
        matches!(self, CancelOutcome::Cancelled)
    }
}

impl std::fmt::Display for CancelOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelOutcome::Cancelled => write!(f, "request cancelled"),
            CancelOutcome::AlreadyFinished => write!(f, "request had already finished"),
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded admission queue is at capacity
    /// ([`EngineHandle::try_submit`] only; [`EngineHandle::submit`] blocks
    /// instead).
    Full,
    /// The engine is shutting down and accepts no new work.
    ShutDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => write!(f, "engine admission queue is full"),
            SubmitError::ShutDown => write!(f, "engine is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Wall-clock duration one injected stall step burns in the worker loop
/// (see [`EngineHandle::inject_stall`]).
pub const STALL_TICK: std::time::Duration = std::time::Duration::from_millis(1);

/// Upper bucket bounds (inclusive, in scheduler steps) of the TTFT
/// histogram; one overflow bucket follows the last bound.
pub const TTFT_BUCKET_BOUNDS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Histogram of time-to-first-token, measured in scheduler steps between a
/// request's submission and its first emitted token (deterministic, unlike
/// wall time).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TtftHistogram {
    counts: [u64; TTFT_BUCKET_BOUNDS.len() + 1],
}

impl TtftHistogram {
    /// Record one first-token latency of `steps` scheduler steps.
    pub fn record(&mut self, steps: u64) {
        let i = TTFT_BUCKET_BOUNDS
            .iter()
            .position(|&b| steps <= b)
            .unwrap_or(TTFT_BUCKET_BOUNDS.len());
        self.counts[i] += 1;
    }

    /// Bucket counts; entry `i` counts latencies `≤ TTFT_BUCKET_BOUNDS[i]`
    /// (the final entry is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total first tokens recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Point-in-time view of the engine, refreshed by the worker after every
/// scheduling step (and before terminal events are delivered, so stats
/// read after a stream finished already cover that request).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Requests admitted into the engine over its lifetime. At drain
    /// (every stream terminal) `finished + cancelled + expired` equals
    /// this — the accounting invariant the proptest suite pins.
    pub submitted: u64,
    /// [`EngineHandle::try_submit`] refusals at capacity — the engine's
    /// backpressure-rejection count.
    pub rejected_full: u64,
    /// Requests waiting for admission (handle inbox + scheduler queue).
    pub queued: usize,
    /// Sequences currently in flight.
    pub active: usize,
    /// Tokens generated so far, all requests.
    pub tokens_generated: u64,
    /// Batched forward steps executed so far.
    pub decode_steps: u64,
    /// Sequences preempted so far (blocks reclaimed, replayed later).
    pub preemptions: u64,
    /// Requests that finished naturally (budget or stop token).
    pub finished: u64,
    /// Requests cancelled (explicitly or by a dropped stream).
    pub cancelled: u64,
    /// Requests that hit their step deadline.
    pub expired: u64,
    /// KV-cache bytes currently charged by in-flight sequences.
    pub kv_live_bytes: usize,
    /// High-water mark of `kv_live_bytes` over the engine's lifetime.
    pub kv_peak_bytes: usize,
    /// Forward-scratch checkouts served by the scheduler's arena.
    pub scratch_checkouts: u64,
    /// Forward-scratch checkouts that had to allocate. Flat across
    /// steady-state decode — the allocation-free decode contract.
    pub scratch_grows: u64,
    /// Time-to-first-token histogram, in scheduler steps.
    pub ttft_steps: TtftHistogram,
    /// Name of the LUT-GEMM kernel backend serving the forward passes
    /// (`"scalar"`, `"vectorized"`, `"sim"`; empty until first published).
    pub kernel_backend: &'static str,
    /// Lane width of the serving backend (1 for scalar paths).
    pub kernel_lanes: u8,
    /// Requests admitted with a non-empty prefix-cache match.
    pub prefix_hits: u64,
    /// Prompt tokens served from the prefix cache instead of prefilled.
    pub prefix_tokens_reused: u64,
    /// Tokens proposed by the speculative draft model.
    pub spec_proposed: u64,
    /// Proposed tokens accepted by target verification (`<=`
    /// `spec_proposed` always).
    pub spec_accepted: u64,
}

impl StatsSnapshot {
    /// Dimensionless load figure for cross-replica comparison: in-flight
    /// work (`queued + active`) plus the fraction of this engine's own
    /// observed peak KV footprint currently live (`0.0` before any KV was
    /// charged). Higher means busier; a router comparing replicas of the
    /// same fleet can rank them by this single number — whole units are
    /// requests, the fractional part is KV pressure, so queue depth always
    /// dominates.
    pub fn utilization(&self) -> f64 {
        let kv = if self.kv_peak_bytes == 0 {
            0.0
        } else {
            self.kv_live_bytes as f64 / self.kv_peak_bytes as f64
        };
        (self.queued + self.active) as f64 + kv.min(1.0)
    }
}

impl std::fmt::Display for StatsSnapshot {
    /// Compact one-line readout for router debugging and bench logs:
    /// `q2 a4 | 312 tok / 87 steps | kv 4096/8192 B | fin 5 can 1 exp 0`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "q{} a{} | {} tok / {} steps | kv {}/{} B | fin {} can {} exp {}",
            self.queued,
            self.active,
            self.tokens_generated,
            self.decode_steps,
            self.kv_live_bytes,
            self.kv_peak_bytes,
            self.finished,
            self.cancelled,
            self.expired
        )
    }
}

/// Sizing of a [`ServeEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Concurrent sequences the scheduler may keep in flight.
    pub max_batch: usize,
    /// Bound on requests inside the engine at once (queued + active):
    /// [`EngineHandle::try_submit`] refuses past it,
    /// [`EngineHandle::submit`] blocks until a terminal event frees a slot.
    pub queue_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch: 8,
            queue_capacity: 256,
        }
    }
}

/// A pending submission: the request plus the sending half of its stream.
type PendingReq = (ServeRequest, mpsc::Sender<TokenEvent>);

/// Handle-to-worker mailbox.
#[derive(Debug)]
struct Inbox {
    pending: VecDeque<PendingReq>,
    /// Cancellation requests as `(ticket, request id)`. Tickets are unique
    /// per `cancel` call, so two concurrent cancels of the same id each
    /// get their own acknowledgement (exactly one sees `true`).
    cancels: Vec<(u64, u64)>,
    /// Worker acknowledgements, keyed by ticket.
    cancel_results: HashMap<u64, bool>,
    /// Ids submitted and not yet terminal; its size is the in-flight count
    /// the admission capacity bounds.
    live: HashSet<u64>,
    next_id: u64,
    next_ticket: u64,
    shutdown: bool,
    /// Drain mode: refuse new admissions but let everything in flight run
    /// to its terminal event (a router's graceful replica retirement).
    draining: bool,
    /// Kill mode: the worker aborts at its next inbox visit without
    /// delivering terminal events — in-flight streams disconnect, KV
    /// blocks free as the scheduler drops (a simulated replica crash).
    kill: bool,
    /// Channel-drop fault: at its next inbox visit the worker severs every
    /// live token stream without a terminal event (senders dropped, KV
    /// freed) but stays alive — the router sees disconnects and fails the
    /// requests over, while the replica keeps serving new work.
    drop_streams: bool,
    /// Pending speculative draft-budget retune, applied by the worker at
    /// its next inbox visit (degrade-ladder knob; no-op on plain engines).
    set_draft_k: Option<usize>,
}

#[derive(Debug)]
struct Shared {
    inbox: Mutex<Inbox>,
    cv: Condvar,
    stats: Mutex<StatsSnapshot>,
    capacity: usize,
    max_seq: usize,
    /// Lifetime admissions (monotone; folded into every published
    /// snapshot).
    submitted: AtomicU64,
    /// Lifetime `try_submit` capacity refusals.
    rejected_full: AtomicU64,
    /// Outstanding injected stall steps (slow-replica fault): while
    /// positive, the worker burns one per iteration sleeping instead of
    /// decoding. One relaxed load per step when zero — the chaos-off cost.
    stall_steps: AtomicU64,
}

impl Shared {
    /// Lock order is always inbox → stats; never the reverse.
    fn lock_inbox(&self) -> MutexGuard<'_, Inbox> {
        self.inbox.lock().expect("engine worker panicked")
    }
}

/// Cheap cloneable client of a [`ServeEngine`]: submit requests, cancel
/// them, read stats. All methods are safe to call from any thread.
#[derive(Debug, Clone)]
pub struct EngineHandle {
    shared: Arc<Shared>,
}

impl EngineHandle {
    /// Submit `request`, blocking while the engine is at
    /// [`EngineConfig::queue_capacity`]. Returns the engine-assigned id and
    /// the request's token stream.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShutDown`] once [`ServeEngine::shutdown`] began.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or `prompt + max_new_tokens` exceeds
    /// the model's `max_seq` (same contract as [`Scheduler::submit`]).
    pub fn submit(&self, request: Request) -> Result<(RequestId, TokenStream), SubmitError> {
        self.validate(&request);
        let mut inbox = self.shared.lock_inbox();
        loop {
            if inbox.shutdown || inbox.draining {
                return Err(SubmitError::ShutDown);
            }
            if inbox.live.len() < self.shared.capacity {
                break;
            }
            inbox = self.shared.cv.wait(inbox).expect("engine worker panicked");
        }
        Ok(self.admit(&mut inbox, request))
    }

    /// Submit `request` without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] at capacity, [`SubmitError::ShutDown`] once
    /// shutdown began.
    ///
    /// # Panics
    ///
    /// Same contract as [`EngineHandle::submit`].
    pub fn try_submit(&self, request: Request) -> Result<(RequestId, TokenStream), SubmitError> {
        self.validate(&request);
        let mut inbox = self.shared.lock_inbox();
        if inbox.shutdown || inbox.draining {
            return Err(SubmitError::ShutDown);
        }
        if inbox.live.len() >= self.shared.capacity {
            self.shared.rejected_full.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Full);
        }
        Ok(self.admit(&mut inbox, request))
    }

    fn validate(&self, request: &Request) {
        assert!(!request.prompt.is_empty(), "prompt must be non-empty");
        assert!(
            request.prompt.len() + request.max_new <= self.shared.max_seq,
            "prompt {} + {} new tokens exceed max_seq {}",
            request.prompt.len(),
            request.max_new,
            self.shared.max_seq
        );
    }

    fn admit(&self, inbox: &mut Inbox, request: Request) -> (RequestId, TokenStream) {
        let id = inbox.next_id;
        inbox.next_id += 1;
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        inbox.pending.push_back((request.into_serve(id), tx));
        inbox.live.insert(id);
        self.shared.cv.notify_all();
        (
            RequestId(id),
            TokenStream {
                id: RequestId(id),
                rx,
                done: false,
            },
        )
    }

    /// Cancel a request wherever it is: still queued, or mid-flight (its
    /// KV blocks return to the pool before the next decode step). Blocks
    /// until the worker acknowledges, so once `cancel` returns the request
    /// will never emit another token; its stream receives a terminal
    /// [`FinishReason::Cancelled`] event carrying whatever was generated.
    ///
    /// Cancelling a request that already finished (or was never submitted)
    /// is an **idempotent no-op**: nothing changes, its stream already
    /// holds a terminal event, and the call returns
    /// [`CancelOutcome::AlreadyFinished`] — on every repeat too. Exactly
    /// one call can ever observe [`CancelOutcome::Cancelled`] for a given
    /// request, even under concurrent cancels (`tests/engine_stream.rs`
    /// pins both properties).
    pub fn cancel(&self, id: RequestId) -> CancelOutcome {
        let mut inbox = self.shared.lock_inbox();
        if !inbox.live.contains(&id.0) {
            return CancelOutcome::AlreadyFinished;
        }
        let ticket = inbox.next_ticket;
        inbox.next_ticket += 1;
        inbox.cancels.push((ticket, id.0));
        self.shared.cv.notify_all();
        loop {
            if let Some(found) = inbox.cancel_results.remove(&ticket) {
                return if found {
                    CancelOutcome::Cancelled
                } else {
                    CancelOutcome::AlreadyFinished
                };
            }
            inbox = self.shared.cv.wait(inbox).expect("engine worker panicked");
        }
    }

    /// Requests inside the engine right now (queued + active).
    pub fn in_flight(&self) -> usize {
        self.shared.lock_inbox().live.len()
    }

    /// Put the engine in drain mode: every further submit is refused with
    /// [`SubmitError::ShutDown`], while everything already in flight runs
    /// to its terminal event. The hook a fronting router uses to retire a
    /// replica gracefully — once [`EngineHandle::in_flight`] reaches 0 the
    /// replica is empty and can be shut down or respawned. Idempotent.
    pub fn drain(&self) {
        let mut inbox = self.shared.lock_inbox();
        inbox.draining = true;
        self.shared.cv.notify_all();
    }

    /// Whether [`EngineHandle::drain`] (or shutdown) was called: no new
    /// admissions will be accepted.
    pub fn is_draining(&self) -> bool {
        let inbox = self.shared.lock_inbox();
        inbox.draining || inbox.shutdown
    }

    /// Inject `steps` stalled decode steps — the slow-replica fault. The
    /// worker burns one stalled step per loop iteration (sleeping
    /// [`STALL_TICK`] instead of decoding), so in-flight streams stop
    /// producing while the engine stays alive and cancellable: exactly the
    /// wedge signature a supervisor detects through snapshot staleness.
    /// Additive across calls; a no-op engine-side once the balance drains.
    pub fn inject_stall(&self, steps: u64) {
        self.shared.stall_steps.fetch_add(steps, Ordering::Relaxed);
        self.shared.cv.notify_all();
    }

    /// Injected stall steps not yet burned by the worker.
    pub fn stalled_steps(&self) -> u64 {
        self.shared.stall_steps.load(Ordering::Relaxed)
    }

    /// Retune the speculative draft budget (clamped to ≥ 1 by the
    /// scheduler; a no-op on engines without a draft model). Applied by
    /// the worker at its next inbox visit. Exact acceptance keeps token
    /// streams bit-identical across any retune — only the accepted-per-
    /// step rate moves — so the degrade ladder can shed draft compute
    /// mid-flight without disturbing in-flight requests.
    pub fn set_draft_k(&self, k: usize) {
        let mut inbox = self.shared.lock_inbox();
        inbox.set_draft_k = Some(k);
        self.shared.cv.notify_all();
    }

    /// Sever every live token stream — the router↔replica channel-drop
    /// fault. At its next inbox visit the worker drops all per-request
    /// senders **without** terminal events (consumers see a disconnect,
    /// exactly as if the replica died), cancels the underlying sequences so
    /// their KV blocks return to the pool, and keeps serving new work.
    /// Returns the number of streams that were live when the fault landed.
    pub fn drop_streams(&self) -> usize {
        let mut inbox = self.shared.lock_inbox();
        let live = inbox.live.len();
        inbox.drop_streams = true;
        self.shared.cv.notify_all();
        live
    }

    /// The latest [`StatsSnapshot`], refreshed by the worker after every
    /// scheduling step.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared
            .stats
            .lock()
            .expect("engine worker panicked")
            .clone()
    }
}

/// The streaming serving engine: owns a [`ServeModel`] and its
/// [`Scheduler`] on a background worker thread; clients interact through
/// [`EngineHandle`]s.
///
/// Dropping the engine (or calling [`ServeEngine::shutdown`]) stops
/// admissions, drains every in-flight request to its terminal event, and
/// joins the worker.
///
/// ```
/// use edkm_core::engine::{EngineConfig, Request, ServeEngine, TokenEvent};
/// use edkm_core::{CompressSpec, FinishReason, PalettizedModel, SamplingConfig};
/// use edkm_nn::{LlamaConfig, LlamaModel};
/// use edkm_tensor::{runtime, DType, Device};
///
/// runtime::reset();
/// let dense = LlamaModel::new(LlamaConfig::tiny(), DType::Bf16, Device::Cpu, 0);
/// let mut spec = CompressSpec::with_bits(2);
/// spec.dkm.iters = 2;
/// let served = PalettizedModel::from_dense(&dense, &spec).unwrap();
///
/// let engine = ServeEngine::new(served, EngineConfig::default());
/// let handle = engine.handle();
/// let (_id, mut stream) = handle
///     .submit(Request::new(vec![1, 2]).max_new_tokens(4))
///     .unwrap();
/// // Tokens arrive incrementally; the final event carries the response.
/// let events: Vec<TokenEvent> = stream.by_ref().collect();
/// assert_eq!(events.len(), 5); // 4 tokens + the terminal event
/// assert_eq!(
///     events.last().unwrap().finish_reason(),
///     Some(FinishReason::MaxTokens)
/// );
/// assert!(handle.stats().tokens_generated >= 4);
/// engine.shutdown();
/// ```
#[derive(Debug)]
pub struct ServeEngine {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl ServeEngine {
    /// Spawn the worker thread over `model`. The worker binds the calling
    /// thread's runtime, so all serving FLOPs and KV bytes charge the same
    /// ledgers as inline use of the scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch` or `config.queue_capacity` is 0.
    pub fn new<M: ServeModel + 'static>(model: M, config: EngineConfig) -> Self {
        Self::spawn(model, config, None)
    }

    /// [`ServeEngine::new`] with speculative decoding: `draft` proposes up
    /// to `draft_k` tokens per step for every greedy request and the
    /// target verifies them in the same batched forward, with exact
    /// acceptance — token streams stay bit-identical to a plain engine.
    /// See [`Scheduler::with_speculative`] for the contract details.
    ///
    /// # Panics
    ///
    /// Panics if any sizing field is 0 or the draft's vocabulary/context
    /// mismatch the target's.
    pub fn with_speculative<M: ServeModel + 'static>(
        model: M,
        config: EngineConfig,
        draft: Arc<dyn ServeModel>,
        draft_k: usize,
    ) -> Self {
        Self::spawn(model, config, Some((draft, draft_k)))
    }

    fn spawn<M: ServeModel + 'static>(
        model: M,
        config: EngineConfig,
        spec: Option<(Arc<dyn ServeModel>, usize)>,
    ) -> Self {
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.queue_capacity > 0, "queue_capacity must be positive");
        let shared = Arc::new(Shared {
            inbox: Mutex::new(Inbox {
                pending: VecDeque::new(),
                cancels: Vec::new(),
                cancel_results: HashMap::new(),
                live: HashSet::new(),
                next_id: 0,
                next_ticket: 0,
                shutdown: false,
                draining: false,
                kill: false,
                drop_streams: false,
                set_draft_k: None,
            }),
            cv: Condvar::new(),
            stats: Mutex::new(StatsSnapshot::default()),
            capacity: config.queue_capacity,
            max_seq: model.config().max_seq,
            submitted: AtomicU64::new(0),
            rejected_full: AtomicU64::new(0),
            stall_steps: AtomicU64::new(0),
        });
        let worker_shared = Arc::clone(&shared);
        let rt = runtime::current();
        let worker = std::thread::Builder::new()
            .name("edkm-serve-engine".into())
            .spawn(move || {
                let _g = runtime::bind(&rt);
                worker_loop(model, worker_shared, config.max_batch, spec);
            })
            .expect("spawn engine worker");
        ServeEngine {
            shared,
            worker: Some(worker),
        }
    }

    /// A new client handle (cheap; clone freely across threads).
    pub fn handle(&self) -> EngineHandle {
        EngineHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stop accepting requests, drain everything in flight to its terminal
    /// event, and join the worker.
    ///
    /// # Panics
    ///
    /// Propagates a worker panic (e.g. a KV pool too small for a single
    /// request — the same condition that panics [`Scheduler::step`]).
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        if let Some(worker) = self.worker.take() {
            if let Err(panic) = worker.join() {
                std::panic::resume_unwind(panic);
            }
        }
    }

    fn begin_shutdown(&self) {
        let mut inbox = self.shared.lock_inbox();
        inbox.shutdown = true;
        self.shared.cv.notify_all();
    }

    /// Abrupt termination — a simulated replica crash. Unlike
    /// [`ServeEngine::shutdown`], in-flight requests get **no** terminal
    /// event: the worker stops at its next inbox visit (within one
    /// scheduling step), every live stream disconnects
    /// ([`TokenStream::next_event`] returns `None`), queued-but-unadmitted
    /// requests are discarded, and all KV blocks return to the pool as the
    /// scheduler drops. A fronting router observes the disconnects and
    /// re-submits the affected requests to surviving replicas.
    ///
    /// Blocked [`EngineHandle::submit`] / [`EngineHandle::cancel`] callers
    /// are woken and return [`SubmitError::ShutDown`] /
    /// [`CancelOutcome::AlreadyFinished`] respectively. Worker panics are
    /// swallowed (the engine is being declared dead regardless).
    pub fn kill(mut self) {
        {
            let mut inbox = self.shared.lock_inbox();
            inbox.kill = true;
            inbox.shutdown = true;
            self.shared.cv.notify_all();
        }
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(worker) = self.worker.take() {
            // Swallow worker panics during drop (a panicking drop aborts);
            // `shutdown()` is the propagating path.
            let _ = worker.join();
        }
    }
}

/// Worker-local tallies folded into each published [`StatsSnapshot`].
#[derive(Default)]
struct Tallies {
    finished: u64,
    cancelled: u64,
    expired: u64,
    kv_peak: usize,
    ttft: TtftHistogram,
}

fn publish_stats<M: ServeModel>(
    shared: &Shared,
    sched: &Scheduler<'_, M>,
    pending: usize,
    tallies: &Tallies,
) {
    let (kernel_backend, kernel_lanes) = crate::infer::launch::active();
    let mut stats = shared.stats.lock().expect("stats lock");
    *stats = StatsSnapshot {
        submitted: shared.submitted.load(Ordering::Relaxed),
        rejected_full: shared.rejected_full.load(Ordering::Relaxed),
        queued: pending + sched.queued(),
        active: sched.active(),
        tokens_generated: sched.tokens_generated(),
        decode_steps: sched.decode_steps(),
        preemptions: sched.preemptions(),
        finished: tallies.finished,
        cancelled: tallies.cancelled,
        expired: tallies.expired,
        kv_live_bytes: sched.kv_live_bytes(),
        kv_peak_bytes: tallies.kv_peak,
        scratch_checkouts: sched.scratch().checkouts(),
        scratch_grows: sched.scratch().grows(),
        ttft_steps: tallies.ttft.clone(),
        kernel_backend,
        kernel_lanes,
        prefix_hits: sched.prefix_hits(),
        prefix_tokens_reused: sched.prefix_tokens_reused(),
        spec_proposed: sched.spec_proposed(),
        spec_accepted: sched.spec_accepted(),
    };
}

fn worker_loop<M: ServeModel>(
    model: M,
    shared: Arc<Shared>,
    max_batch: usize,
    spec: Option<(Arc<dyn ServeModel>, usize)>,
) {
    let mut sched = match spec {
        Some((draft, draft_k)) => Scheduler::with_speculative(&model, max_batch, draft, draft_k),
        None => Scheduler::new(&model, max_batch),
    };
    let mut streams: HashMap<u64, mpsc::Sender<TokenEvent>> = HashMap::new();
    let mut submit_step: HashMap<u64, u64> = HashMap::new();
    let mut tallies = Tallies::default();
    // One event buffer for the life of the worker: `step_events_into`
    // clears and refills it each step, so steady-state stepping performs
    // no per-step event allocations.
    let mut events = StepEvents::default();

    'serve: loop {
        // Phase 1 — drain the inbox (cancellations first, so a cancel
        // issued against a queued submission wins; then new submissions),
        // sleeping on the condvar while there is nothing to do.
        {
            let mut inbox = shared.lock_inbox();
            loop {
                if inbox.kill {
                    // Crash teardown: acknowledge blocked cancellers (the
                    // request is as finished as it will ever get), discard
                    // queued submissions (dropping their senders
                    // disconnects the streams), and forget live ids so
                    // capacity-blocked submitters wake into ShutDown.
                    let cancels: Vec<(u64, u64)> = inbox.cancels.drain(..).collect();
                    for (ticket, _) in cancels {
                        inbox.cancel_results.insert(ticket, false);
                    }
                    inbox.pending.clear();
                    inbox.live.clear();
                    shared.cv.notify_all();
                    break 'serve;
                }
                if inbox.drop_streams {
                    // Channel-drop fault: sever every live stream with no
                    // terminal event — queued submissions are discarded and
                    // in-flight sequences cancelled (KV freed) while the
                    // worker keeps running. Consumers observe a disconnect
                    // exactly as on a kill; the engine itself stays
                    // routable. Severed requests count as cancelled so the
                    // `finished + cancelled + expired == submitted`
                    // invariant still closes at drain.
                    inbox.drop_streams = false;
                    while let Some((req, _tx)) = inbox.pending.pop_front() {
                        inbox.live.remove(&req.id);
                        tallies.cancelled += 1;
                    }
                    let ids: Vec<u64> = streams.keys().copied().collect();
                    for id in ids {
                        if sched.cancel(id).is_some() {
                            tallies.cancelled += 1;
                        }
                        streams.remove(&id);
                        submit_step.remove(&id);
                        inbox.live.remove(&id);
                    }
                    shared.cv.notify_all();
                }
                if let Some(k) = inbox.set_draft_k.take() {
                    sched.set_draft_k(k);
                }
                let cancels: Vec<(u64, u64)> = inbox.cancels.drain(..).collect();
                let acked = !cancels.is_empty();
                for (ticket, id) in cancels {
                    let resp = if let Some(pos) = inbox.pending.iter().position(|(r, _)| r.id == id)
                    {
                        let (req, tx) = inbox.pending.remove(pos).expect("position in range");
                        streams.insert(id, tx);
                        Some(ServeResponse {
                            id,
                            tokens: req.prompt,
                            generated: 0,
                            finish: FinishReason::Cancelled,
                        })
                    } else {
                        sched.cancel(id)
                    };
                    let found = resp.is_some();
                    if let Some(resp) = resp {
                        if let Some(tx) = streams.remove(&id) {
                            let _ = tx.send(TokenEvent::Finished(resp));
                        }
                        submit_step.remove(&id);
                        inbox.live.remove(&id);
                        tallies.cancelled += 1;
                    }
                    inbox.cancel_results.insert(ticket, found);
                }
                while let Some((req, tx)) = inbox.pending.pop_front() {
                    submit_step.insert(req.id, sched.decode_steps());
                    streams.insert(req.id, tx);
                    sched.submit(req);
                }
                if acked {
                    shared.cv.notify_all();
                }
                if !sched.is_idle() {
                    break;
                }
                publish_stats(&shared, &sched, inbox.pending.len(), &tallies);
                if inbox.shutdown {
                    break 'serve;
                }
                inbox = shared.cv.wait(inbox).expect("inbox lock");
            }
        }

        // Phase 2 — one scheduling step into the reusable event buffer.
        // An injected stall burns this iteration sleeping instead: streams
        // stop producing, stats stop moving, the replica wedges — the
        // chaos path is one relaxed load when no stall is pending.
        if shared.stall_steps.load(Ordering::Relaxed) > 0 {
            shared.stall_steps.fetch_sub(1, Ordering::Relaxed);
            std::thread::sleep(STALL_TICK);
            continue 'serve;
        }
        sched.step_events_into(&mut events);
        tallies.kv_peak = tallies.kv_peak.max(sched.kv_live_bytes());
        for t in &events.tokens {
            if t.index == 0 {
                if let Some(&s0) = submit_step.get(&t.id) {
                    tallies.ttft.record(sched.decode_steps().saturating_sub(s0));
                }
            }
        }
        for resp in &events.finished {
            if resp.finish == FinishReason::DeadlineExceeded {
                tallies.expired += 1;
            } else {
                tallies.finished += 1;
            }
        }

        // Phase 3 — publish stats BEFORE delivering terminal events, so a
        // client that saw its stream finish reads stats that include it.
        publish_stats(&shared, &sched, 0, &tallies);

        // Phase 4 — deliver. A send error means the client dropped its
        // stream: cancel the request so its KV blocks go back to the pool.
        let mut dropped: Vec<u64> = Vec::new();
        for t in &events.tokens {
            if let Some(tx) = streams.get(&t.id) {
                if tx
                    .send(TokenEvent::Token {
                        index: t.index,
                        token: t.token,
                    })
                    .is_err()
                {
                    dropped.push(t.id);
                }
            }
        }
        let mut terminals: Vec<u64> = Vec::with_capacity(events.finished.len());
        for resp in events.finished.drain(..) {
            let id = resp.id;
            if let Some(tx) = streams.remove(&id) {
                let _ = tx.send(TokenEvent::Finished(resp));
            }
            submit_step.remove(&id);
            terminals.push(id);
        }
        for &id in &dropped {
            if sched.cancel(id).is_some() {
                tallies.cancelled += 1;
                streams.remove(&id);
                submit_step.remove(&id);
                terminals.push(id);
            }
        }
        if !terminals.is_empty() {
            let mut inbox = shared.lock_inbox();
            for id in terminals {
                inbox.live.remove(&id);
            }
            shared.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_is_zero_for_an_idle_engine() {
        assert_eq!(StatsSnapshot::default().utilization(), 0.0);
    }

    #[test]
    fn utilization_counts_inflight_work_in_whole_units() {
        let s = StatsSnapshot {
            queued: 2,
            active: 3,
            ..StatsSnapshot::default()
        };
        assert_eq!(s.utilization(), 5.0);
    }

    #[test]
    fn utilization_adds_kv_pressure_as_a_fraction() {
        let s = StatsSnapshot {
            active: 1,
            kv_live_bytes: 512,
            kv_peak_bytes: 1024,
            ..StatsSnapshot::default()
        };
        assert_eq!(s.utilization(), 1.5);
        // KV pressure can never outrank a whole queued request, even if a
        // racy read pairs a fresh live figure with a stale peak.
        let racy = StatsSnapshot {
            kv_live_bytes: 2048,
            kv_peak_bytes: 1024,
            ..StatsSnapshot::default()
        };
        assert_eq!(racy.utilization(), 1.0);
    }

    #[test]
    fn display_is_one_compact_line() {
        let s = StatsSnapshot {
            queued: 2,
            active: 4,
            tokens_generated: 312,
            decode_steps: 87,
            kv_live_bytes: 4096,
            kv_peak_bytes: 8192,
            finished: 5,
            cancelled: 1,
            ..StatsSnapshot::default()
        };
        let line = s.to_string();
        assert_eq!(
            line,
            "q2 a4 | 312 tok / 87 steps | kv 4096/8192 B | fin 5 can 1 exp 0"
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn snapshots_compare_by_value() {
        let a = StatsSnapshot {
            submitted: 3,
            ..StatsSnapshot::default()
        };
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, StatsSnapshot::default());
    }
}
