//! Binary serialization of compressed models — the artifact that actually
//! ships to a device (the paper's "2.5 GB" number is a file size).
//!
//! The format is a simple little-endian tagged container:
//!
//! ```text
//! magic "EDKM" | u16 version | u32 n_entries
//! entry := u16 name_len | name | u8 tag | payload
//!   tag 0 (palettized): u8 bits | u32 k | u32 dim | shape | lut f32s | u64 packed_len | packed
//!   tag 1 (affine):     u8 bits | u32 rows | u32 cols | codes | scales | zeros
//!   tag 2 (native16):   shape | u16 bf16 bit patterns
//!   tag 3 (grouped):    u32 rows_per_group | shape | u32 n_groups | groups
//! shape := u8 rank | u32 dims…
//! trailer := u64 FNV-1a of every preceding byte (v2)
//! ```
//!
//! The v2 trailer makes corruption detection total: a truncated or
//! bit-flipped buffer fails the checksum *before* any entry is parsed, so
//! decoding returns a typed [`DecodeError`] on arbitrary corruption — never
//! a panic and never a silently misread model.

use crate::palettize::{AffineQuantized, GroupedPalettized, PalettizedTensor};
use crate::pipeline::{CompressedModel, CompressedTensor};
use edkm_tensor::dtype;

const MAGIC: &[u8; 4] = b"EDKM";
const VERSION: u16 = 2;

/// 64-bit FNV-1a over `data` (the container's integrity trailer).
fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Error decoding a serialized model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Truncated or malformed payload.
    Truncated,
    /// Unknown entry tag.
    BadTag(u8),
    /// The integrity trailer does not match the payload (bit corruption).
    BadChecksum,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not an eDKM model file"),
            DecodeError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::Truncated => write!(f, "unexpected end of data"),
            DecodeError::BadTag(t) => write!(f, "unknown entry tag {t}"),
            DecodeError::BadChecksum => write!(f, "integrity checksum mismatch"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------
// Little-endian wire helpers.
// ---------------------------------------------------------------------

pub(crate) struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.data.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub(crate) fn f32(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_bits(self.u32()?))
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<Vec<u8>, DecodeError> {
        Ok(self.take(n)?.to_vec())
    }

    pub(crate) fn is_done(&self) -> bool {
        self.pos == self.data.len()
    }
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f32(out: &mut Vec<u8>, v: f32) {
    put_u32(out, v.to_bits());
}

fn put_shape(out: &mut Vec<u8>, shape: &[usize]) {
    out.push(shape.len() as u8);
    for &d in shape {
        put_u32(out, d as u32);
    }
}

fn read_shape(r: &mut Reader<'_>) -> Result<Vec<usize>, DecodeError> {
    let rank = r.u8()? as usize;
    (0..rank).map(|_| Ok(r.u32()? as usize)).collect()
}

// ---------------------------------------------------------------------
// Model container.
// ---------------------------------------------------------------------

impl CompressedModel {
    /// Serialize to the on-disk byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u16(&mut out, VERSION);
        put_u32(&mut out, self.entries().len() as u32);
        for (name, entry) in self.entries() {
            put_u16(&mut out, name.len() as u16);
            out.extend_from_slice(name.as_bytes());
            match entry {
                CompressedTensor::Palettized(p) => {
                    out.push(0);
                    p.write_to(&mut out);
                }
                CompressedTensor::Affine(a) => {
                    out.push(1);
                    a.write_to(&mut out);
                }
                CompressedTensor::Native { values, shape } => {
                    out.push(2);
                    put_shape(&mut out, shape);
                    for &v in values {
                        put_u16(&mut out, dtype::f32_to_bf16(v));
                    }
                }
                CompressedTensor::PalettizedGrouped(g) => {
                    out.push(3);
                    put_u32(&mut out, g.rows_per_group() as u32);
                    put_shape(&mut out, g.shape());
                    put_u32(&mut out, g.groups().len() as u32);
                    for grp in g.groups() {
                        grp.write_to(&mut out);
                    }
                }
            }
        }
        let trailer = fnv1a(&out);
        put_u64(&mut out, trailer);
        out
    }

    /// Decode from the on-disk byte format.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input: any truncation or bit
    /// flip fails the integrity trailer (checked before entries are parsed)
    /// or one of the structural checks — decoding never panics.
    pub fn from_bytes(data: &[u8]) -> Result<CompressedModel, DecodeError> {
        let mut r = Reader::new(data);
        if r.bytes(4)? != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        // Verify the integrity trailer before trusting any length field.
        if data.len() < 4 + 2 + 8 {
            return Err(DecodeError::Truncated);
        }
        let payload_end = data.len() - 8;
        let stored = u64::from_le_bytes(data[payload_end..].try_into().expect("8 bytes"));
        if fnv1a(&data[..payload_end]) != stored {
            return Err(DecodeError::BadChecksum);
        }
        let mut r = Reader::new(&data[..payload_end]);
        let _ = r.bytes(4 + 2); // past magic + version, already checked
        let n = r.u32()? as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let name_len = r.u16()? as usize;
            let name = String::from_utf8(r.bytes(name_len)?).map_err(|_| DecodeError::Truncated)?;
            let tag = r.u8()?;
            let entry = match tag {
                0 => CompressedTensor::Palettized(PalettizedTensor::read_from(&mut r)?),
                1 => CompressedTensor::Affine(AffineQuantized::read_from(&mut r)?),
                2 => {
                    let shape = read_shape(&mut r)?;
                    let numel: usize = shape.iter().product();
                    let values = (0..numel)
                        .map(|_| Ok(dtype::bf16_to_f32(r.u16()?)))
                        .collect::<Result<Vec<f32>, DecodeError>>()?;
                    CompressedTensor::Native { values, shape }
                }
                3 => {
                    let rows_per_group = r.u32()? as usize;
                    let shape = read_shape(&mut r)?;
                    let n_groups = r.u32()? as usize;
                    let groups = (0..n_groups)
                        .map(|_| PalettizedTensor::read_from(&mut r))
                        .collect::<Result<Vec<_>, _>>()?;
                    if shape.len() != 2
                        || groups.iter().map(|g| g.shape()[0]).sum::<usize>() != shape[0]
                    {
                        return Err(DecodeError::Truncated);
                    }
                    CompressedTensor::PalettizedGrouped(GroupedPalettized::from_parts(
                        groups,
                        rows_per_group,
                        shape,
                    ))
                }
                t => return Err(DecodeError::BadTag(t)),
            };
            entries.push((name, entry));
        }
        if !r.is_done() {
            return Err(DecodeError::Truncated); // trailing garbage
        }
        Ok(CompressedModel::from_entries(entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{CompressSpec, CompressionPipeline};
    use edkm_nn::{LlamaConfig, LlamaModel};
    use edkm_tensor::{runtime, DType, Device};

    fn model_and_compressed() -> (LlamaModel, CompressedModel) {
        runtime::reset();
        let model = LlamaModel::new(LlamaConfig::tiny(), DType::Bf16, Device::Cpu, 0);
        let pipeline = CompressionPipeline::new(CompressSpec::with_bits(3));
        let compressed = pipeline.export(&model);
        (model, compressed)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (_m, compressed) = model_and_compressed();
        let bytes = compressed.to_bytes();
        let back = CompressedModel::from_bytes(&bytes).unwrap();
        assert_eq!(back.entries().len(), compressed.entries().len());
        for ((n1, e1), (n2, e2)) in compressed.entries().iter().zip(back.entries()) {
            assert_eq!(n1, n2);
            assert_eq!(e1.decode_values(), e2.decode_values(), "entry {n1}");
            assert_eq!(e1.size_bytes(), e2.size_bytes());
        }
    }

    #[test]
    fn file_size_tracks_size_bytes() {
        let (_m, compressed) = model_and_compressed();
        let bytes = compressed.to_bytes();
        let logical = compressed.size_bytes();
        // Physical file = logical payload + bounded header/metadata overhead
        // (palette LUTs are stored at f32 on disk for exactness; size_bytes
        // accounts them at 16 bits as an accelerator would pack them).
        assert!(bytes.len() >= logical);
        assert!(
            bytes.len() < logical * 2 + 4096,
            "file {} vs logical {}",
            bytes.len(),
            logical
        );
    }

    #[test]
    fn decoded_file_restores_a_model() {
        let (model, compressed) = model_and_compressed();
        let bytes = compressed.to_bytes();
        let back = CompressedModel::from_bytes(&bytes).unwrap();
        let target = LlamaModel::new(*model.config(), model.dtype(), model.device(), 5);
        back.apply_to(&target);
        // Spot-check: projections carry at most 8 distinct values.
        let w = target.layers()[0].projections()[0]
            .weight()
            .value()
            .to_vec();
        let uniq: std::collections::HashSet<u32> = w.iter().map(|v| v.to_bits()).collect();
        assert!(uniq.len() <= 8);
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(
            CompressedModel::from_bytes(b"NOPE\x01\x00").err(),
            Some(DecodeError::BadMagic)
        );
    }

    #[test]
    fn rejects_bad_version() {
        let mut data = b"EDKM".to_vec();
        put_u16(&mut data, 99);
        put_u32(&mut data, 0);
        assert_eq!(
            CompressedModel::from_bytes(&data).err(),
            Some(DecodeError::BadVersion(99))
        );
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let (_m, compressed) = model_and_compressed();
        let bytes = compressed.to_bytes();
        // Chop at several points; every prefix must fail cleanly.
        for cut in [3usize, 6, 10, bytes.len() / 2, bytes.len() - 1] {
            let r = CompressedModel::from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes must not decode");
        }
        // Trailing garbage shifts the trailer: checksum mismatch.
        let mut padded = bytes.clone();
        padded.push(0xFF);
        assert_eq!(
            CompressedModel::from_bytes(&padded).err(),
            Some(DecodeError::BadChecksum)
        );
    }

    #[test]
    fn rejects_any_single_bit_flip() {
        let (_m, compressed) = model_and_compressed();
        let bytes = compressed.to_bytes();
        // Flip one bit at a spread of positions, covering the header, the
        // entry payloads and the trailer itself; every flip must surface as
        // a typed error (magic/version damage included), never a panic or a
        // silent misread.
        let stride = (bytes.len() / 97).max(1);
        for byte_idx in (0..bytes.len()).step_by(stride) {
            let mut bad = bytes.clone();
            bad[byte_idx] ^= 1 << (byte_idx % 8);
            assert!(
                CompressedModel::from_bytes(&bad).is_err(),
                "bit flip at byte {byte_idx} must be detected"
            );
        }
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::BadMagic.to_string().contains("eDKM"));
        assert!(DecodeError::BadVersion(7).to_string().contains('7'));
        assert!(DecodeError::BadTag(9).to_string().contains('9'));
        assert!(DecodeError::Truncated.to_string().contains("end"));
        assert!(DecodeError::BadChecksum.to_string().contains("checksum"));
    }
}
