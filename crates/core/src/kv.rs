//! Paged KV-cache pool: fixed-size token blocks, a free-list allocator and
//! per-sequence block tables — the vLLM-style storage layout that lets the
//! continuous-batching scheduler admit by *actual free blocks* instead of
//! reserving worst-case sequence lengths.
//!
//! A [`KvBlockPool`] owns a bounded (or unbounded) population of
//! [`KvBlock`]s. Each block stores `block_tokens` positions of rotated K and
//! V rows for *every* decoder layer, so one block table per sequence covers
//! the whole model. Blocks are checked out of the pool when a sequence
//! grows past a block boundary and return to the free list when the
//! sequence retires; buffer memory is recycled across sequences.
//!
//! **Ledger conservation invariant:** exactly the blocks currently checked
//! out are charged to the device pool (`block_bytes` each, charged at
//! checkout, freed at return). Free-listed blocks are uncharged, so
//! `runtime::cpu_live_bytes()` returns to its baseline once every sequence
//! retires — the property `tests/paged_kv.rs` pins over arbitrary
//! admit/generate/retire interleavings.

use edkm_tensor::pool::PoolCell;
use edkm_tensor::{runtime, Device};
use parking_lot::Mutex;
use std::sync::Arc;

/// Sizing of a [`KvBlockPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvBlockConfig {
    /// Token positions per block (the paging granularity).
    pub block_tokens: usize,
    /// Total physical blocks the pool may hand out; `0` means unbounded.
    pub max_blocks: usize,
}

impl Default for KvBlockConfig {
    fn default() -> Self {
        KvBlockConfig {
            block_tokens: 16,
            max_blocks: 0,
        }
    }
}

/// One physical KV block: `block_tokens` positions of K and V rows for
/// every layer of the model it was sized for.
#[derive(Debug)]
pub struct KvBlock {
    id: usize,
    k: Vec<f32>,
    v: Vec<f32>,
}

impl KvBlock {
    /// Physical block id (stable across free-list recycling).
    pub fn id(&self) -> usize {
        self.id
    }
}

#[derive(Debug)]
struct PoolInner {
    /// Recycled blocks ready for checkout.
    free: Vec<KvBlock>,
    /// Next fresh physical id.
    next_id: usize,
    /// Blocks currently checked out by live caches.
    in_use: usize,
}

/// Shared pool of fixed-size KV blocks for one served model.
///
/// Cheap to clone through its `Arc`; thread-safe. Sequences draw blocks
/// through [`KvCache::try_reserve`] and return them when the cache drops.
///
/// ```
/// use edkm_core::kv::{KvBlockConfig, KvBlockPool, KvCache};
/// use edkm_tensor::{runtime, Device};
///
/// runtime::reset();
/// // 4-token blocks, at most 3 blocks, for a 2-layer d_model-8 model.
/// let cfg = KvBlockConfig { block_tokens: 4, max_blocks: 3 };
/// let pool = KvBlockPool::new(cfg, 2, 8, Device::Cpu);
/// let mut cache = KvCache::new(pool.clone());
/// assert!(cache.try_reserve(6)); // 6 tokens -> 2 blocks
/// assert_eq!(pool.blocks_in_use(), 2);
/// assert_eq!(pool.free_blocks(), 1);
/// assert_eq!(cache.block_table().len(), 2);
/// drop(cache); // blocks return to the free list
/// assert_eq!(pool.blocks_in_use(), 0);
/// assert_eq!(runtime::cpu_live_bytes(), 0);
/// ```
#[derive(Debug)]
pub struct KvBlockPool {
    block_tokens: usize,
    max_blocks: usize,
    n_layers: usize,
    d_model: usize,
    inner: Mutex<PoolInner>,
    mem: Arc<PoolCell>,
}

impl KvBlockPool {
    /// A pool sized for a model of `n_layers` layers and width `d_model`,
    /// allocating on `device`.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` is 0.
    pub fn new(cfg: KvBlockConfig, n_layers: usize, d_model: usize, device: Device) -> Arc<Self> {
        assert!(cfg.block_tokens > 0, "block_tokens must be positive");
        Arc::new(KvBlockPool {
            block_tokens: cfg.block_tokens,
            max_blocks: cfg.max_blocks,
            n_layers,
            d_model,
            inner: Mutex::new(PoolInner {
                free: Vec::new(),
                next_id: 0,
                in_use: 0,
            }),
            mem: runtime::pool(device),
        })
    }

    /// Token positions per block.
    pub fn block_tokens(&self) -> usize {
        self.block_tokens
    }

    /// Physical block cap (`0` = unbounded).
    pub fn max_blocks(&self) -> usize {
        self.max_blocks
    }

    /// Device-pool bytes one block accounts for: K + V rows for every
    /// layer, `block_tokens` positions each.
    pub fn block_bytes(&self) -> usize {
        2 * self.n_layers * self.block_tokens * self.d_model * std::mem::size_of::<f32>()
    }

    /// Blocks needed to hold `tokens` positions.
    pub fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.block_tokens)
    }

    /// Blocks currently checked out by live caches.
    pub fn blocks_in_use(&self) -> usize {
        self.inner.lock().in_use
    }

    /// Blocks still available for checkout (`usize::MAX` when unbounded).
    pub fn free_blocks(&self) -> usize {
        if self.max_blocks == 0 {
            usize::MAX
        } else {
            self.max_blocks - self.inner.lock().in_use
        }
    }

    /// Check out `n` blocks, recycling free-listed buffers first. Returns
    /// `None` (taking nothing) if the cap would be exceeded; the device
    /// pool is charged `block_bytes` per block on success.
    fn try_take(&self, n: usize) -> Option<Vec<KvBlock>> {
        let row_floats = self.n_layers * self.block_tokens * self.d_model;
        let mut inner = self.inner.lock();
        if self.max_blocks > 0 && inner.in_use + n > self.max_blocks {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let block = inner.free.pop().unwrap_or_else(|| {
                let id = inner.next_id;
                inner.next_id += 1;
                KvBlock {
                    id,
                    k: vec![0.0; row_floats],
                    v: vec![0.0; row_floats],
                }
            });
            out.push(block);
        }
        inner.in_use += n;
        drop(inner);
        self.mem.alloc(n * self.block_bytes());
        Some(out)
    }

    /// Return blocks to the free list, uncharging their bytes.
    fn put_back(&self, blocks: Vec<KvBlock>) {
        if blocks.is_empty() {
            return;
        }
        self.mem.free(blocks.len() * self.block_bytes());
        let mut inner = self.inner.lock();
        inner.in_use -= blocks.len();
        inner.free.extend(blocks);
    }
}

/// Per-sequence paged KV cache: an ordered block table over blocks checked
/// out of a shared [`KvBlockPool`].
///
/// Rows are stored per layer as `[t, d_model]` (head-major within a row),
/// already rotated. Position `p` lives in the sequence's `p /
/// block_tokens`-th table entry at slot `p % block_tokens`. All blocks
/// return to the pool when the cache drops (i.e. when a request retires or
/// is preempted).
#[derive(Debug)]
pub struct KvCache {
    pool: Arc<KvBlockPool>,
    blocks: Vec<KvBlock>,
    len: usize,
}

impl KvCache {
    /// An empty cache drawing from `pool`.
    pub fn new(pool: Arc<KvBlockPool>) -> Self {
        KvCache {
            pool,
            blocks: Vec::new(),
            len: 0,
        }
    }

    /// Cached sequence length (committed positions).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` before the first token.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Token capacity of the blocks currently held.
    pub fn capacity(&self) -> usize {
        self.blocks.len() * self.pool.block_tokens()
    }

    /// Bytes currently charged to the device pool for this cache.
    pub fn bytes(&self) -> usize {
        self.blocks.len() * self.pool.block_bytes()
    }

    /// The sequence's block table: physical block ids in position order.
    pub fn block_table(&self) -> Vec<usize> {
        self.blocks.iter().map(KvBlock::id).collect()
    }

    /// Ensure capacity for `n_new` more positions, checking out blocks as
    /// needed. Returns `false` (holding what it already had) if the pool
    /// cap would be exceeded.
    pub fn try_reserve(&mut self, n_new: usize) -> bool {
        let needed_blocks = self.pool.blocks_for(self.len + n_new);
        if needed_blocks <= self.blocks.len() {
            return true;
        }
        match self.pool.try_take(needed_blocks - self.blocks.len()) {
            Some(fresh) => {
                self.blocks.extend(fresh);
                true
            }
            None => false,
        }
    }

    /// Write `n` consecutive K/V rows (width `d_model`) for `layer`
    /// starting at absolute position `pos0`. Capacity must already be
    /// reserved; positions become readable immediately and are counted by
    /// [`KvCache::len`] only after [`KvCache::commit`].
    pub(crate) fn write_rows(&mut self, layer: usize, pos0: usize, k_rows: &[f32], v_rows: &[f32]) {
        let d = self.pool.d_model;
        let bt = self.pool.block_tokens;
        debug_assert_eq!(k_rows.len(), v_rows.len());
        debug_assert_eq!(k_rows.len() % d, 0);
        let n = k_rows.len() / d;
        assert!(
            pos0 + n <= self.capacity(),
            "write past reserved capacity: {} + {n} > {}",
            pos0,
            self.capacity()
        );
        for i in 0..n {
            let pos = pos0 + i;
            let (b, slot) = (pos / bt, pos % bt);
            let off = (layer * bt + slot) * d;
            let block = &mut self.blocks[b];
            block.k[off..off + d].copy_from_slice(&k_rows[i * d..(i + 1) * d]);
            block.v[off..off + d].copy_from_slice(&v_rows[i * d..(i + 1) * d]);
        }
    }

    /// Commit `n` written positions to the sequence length.
    pub(crate) fn commit(&mut self, n: usize) {
        self.len += n;
        debug_assert!(self.len <= self.capacity(), "committed past capacity");
    }

    /// The K row of `layer` at absolute position `pos` (read through the
    /// block table).
    pub fn k_row(&self, layer: usize, pos: usize) -> &[f32] {
        self.row(layer, pos, false)
    }

    /// The V row of `layer` at absolute position `pos`.
    pub fn v_row(&self, layer: usize, pos: usize) -> &[f32] {
        self.row(layer, pos, true)
    }

    /// The contiguous K rows of `layer` from `pos` to the end of its
    /// block — positions inside one block are stored back to back per
    /// layer, so attention can stream a whole block per table lookup
    /// instead of resolving every row. Rows past the written range hold
    /// recycled data; callers clamp to their context length.
    pub fn k_rows_from(&self, layer: usize, pos: usize) -> &[f32] {
        self.rows_from(layer, pos, false)
    }

    /// The contiguous V rows of `layer` from `pos` to the end of its
    /// block; see [`KvCache::k_rows_from`].
    pub fn v_rows_from(&self, layer: usize, pos: usize) -> &[f32] {
        self.rows_from(layer, pos, true)
    }

    fn row(&self, layer: usize, pos: usize, v: bool) -> &[f32] {
        let d = self.pool.d_model;
        &self.rows_from(layer, pos, v)[..d]
    }

    fn rows_from(&self, layer: usize, pos: usize, v: bool) -> &[f32] {
        let d = self.pool.d_model;
        let bt = self.pool.block_tokens;
        let block = &self.blocks[pos / bt];
        let off = (layer * bt + pos % bt) * d;
        let end = (layer * bt + bt) * d;
        let buf = if v { &block.v } else { &block.k };
        &buf[off..end]
    }
}

impl Drop for KvCache {
    fn drop(&mut self) {
        self.pool.put_back(std::mem::take(&mut self.blocks));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(block_tokens: usize, max_blocks: usize) -> Arc<KvBlockPool> {
        runtime::reset();
        KvBlockPool::new(
            KvBlockConfig {
                block_tokens,
                max_blocks,
            },
            2,
            4,
            Device::Cpu,
        )
    }

    #[test]
    fn blocks_for_rounds_up() {
        let p = pool(4, 0);
        assert_eq!(p.blocks_for(0), 0);
        assert_eq!(p.blocks_for(1), 1);
        assert_eq!(p.blocks_for(4), 1);
        assert_eq!(p.blocks_for(5), 2);
    }

    #[test]
    fn block_bytes_formula() {
        let p = pool(4, 0);
        // 2 (K+V) × 2 layers × 4 tokens × 4 wide × 4 bytes.
        assert_eq!(p.block_bytes(), 2 * 2 * 4 * 4 * 4);
    }

    #[test]
    fn reserve_charges_and_drop_drains() {
        let p = pool(4, 0);
        let baseline = runtime::cpu_live_bytes();
        {
            let mut c = KvCache::new(Arc::clone(&p));
            assert!(c.try_reserve(6)); // 2 blocks
            assert_eq!(c.capacity(), 8);
            assert_eq!(c.bytes(), 2 * p.block_bytes());
            assert_eq!(p.blocks_in_use(), 2);
            assert_eq!(runtime::cpu_live_bytes(), baseline + 2 * p.block_bytes());
            // Already covered: no extra blocks taken.
            assert!(c.try_reserve(2));
            assert_eq!(p.blocks_in_use(), 2);
        }
        assert_eq!(p.blocks_in_use(), 0);
        assert_eq!(runtime::cpu_live_bytes(), baseline, "bytes must drain");
    }

    #[test]
    fn cap_is_enforced_and_free_list_recycles_ids() {
        let p = pool(4, 2);
        let mut a = KvCache::new(Arc::clone(&p));
        assert!(a.try_reserve(8));
        assert_eq!(p.free_blocks(), 0);
        let mut b = KvCache::new(Arc::clone(&p));
        assert!(!b.try_reserve(1), "pool is exhausted");
        assert_eq!(b.bytes(), 0, "failed reserve must take nothing");
        let ids = a.block_table();
        drop(a);
        assert_eq!(p.free_blocks(), 2);
        assert!(b.try_reserve(5));
        let mut recycled = b.block_table();
        recycled.sort_unstable();
        let mut want = ids.clone();
        want.sort_unstable();
        assert_eq!(recycled, want, "freed physical blocks are reused");
    }

    #[test]
    fn unbounded_pool_reports_max_free() {
        let p = pool(4, 0);
        assert_eq!(p.free_blocks(), usize::MAX);
        assert_eq!(p.max_blocks(), 0);
    }

    #[test]
    fn rows_roundtrip_through_the_block_table() {
        let p = pool(2, 0); // d_model 4, 2 layers, 2 tokens/block
        let mut c = KvCache::new(Arc::clone(&p));
        assert!(c.try_reserve(3)); // spans 2 blocks
        for layer in 0..2 {
            let k: Vec<f32> = (0..12).map(|i| (layer * 100 + i) as f32).collect();
            let v: Vec<f32> = k.iter().map(|x| -x).collect();
            c.write_rows(layer, 0, &k, &v);
        }
        c.commit(3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.k_row(1, 2), &[108.0, 109.0, 110.0, 111.0]);
        assert_eq!(c.v_row(0, 1), &[-4.0, -5.0, -6.0, -7.0]);
        assert_eq!(c.block_table().len(), 2);
    }

    #[test]
    fn block_runs_cover_rows_contiguously() {
        let p = pool(2, 0); // d_model 4, 2 layers, 2 tokens/block
        let mut c = KvCache::new(Arc::clone(&p));
        assert!(c.try_reserve(4));
        for layer in 0..2 {
            let k: Vec<f32> = (0..16).map(|i| (layer * 100 + i) as f32).collect();
            let v: Vec<f32> = k.iter().map(|x| -x).collect();
            c.write_rows(layer, 0, &k, &v);
        }
        c.commit(4);
        // A run starting at a block boundary covers the whole block…
        assert_eq!(c.k_rows_from(0, 0).len(), 2 * 4);
        assert_eq!(&c.k_rows_from(1, 2)[..4], c.k_row(1, 2));
        // …and a mid-block start covers the remainder only.
        assert_eq!(c.v_rows_from(0, 1).len(), 4);
        assert_eq!(c.v_rows_from(0, 1), c.v_row(0, 1));
        // Run contents equal the row-at-a-time reads, position by position.
        for pos in 0..4 {
            let run = c.k_rows_from(0, pos);
            for (r, chunk) in run.chunks(4).enumerate() {
                if pos + r < 4 {
                    assert_eq!(chunk, c.k_row(0, pos + r), "pos {pos} + {r}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "past reserved capacity")]
    fn writing_past_capacity_panics() {
        let p = pool(2, 0);
        let mut c = KvCache::new(p);
        c.write_rows(0, 0, &[0.0; 4], &[0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "block_tokens must be positive")]
    fn zero_block_tokens_panics() {
        pool(0, 0);
    }
}
