//! Paged KV-cache pool: fixed-size token blocks, a free-list allocator,
//! per-sequence block tables and a prefix-sharing radix index — the
//! vLLM-style storage layout that lets the continuous-batching scheduler
//! admit by *actual free blocks* instead of reserving worst-case sequence
//! lengths, and reuse already-computed prefixes across requests.
//!
//! A [`KvBlockPool`] owns a bounded (or unbounded) population of
//! [`KvBlock`]s. Each block stores `block_tokens` positions of rotated K and
//! V rows for *every* decoder layer, so one block table per sequence covers
//! the whole model. Blocks are checked out of the pool when a sequence
//! grows past a block boundary and return to the free list when the
//! sequence retires; buffer memory is recycled across sequences.
//!
//! **Prefix sharing.** A block table entry is either *owned* (private,
//! mutable, recycled through the free list) or *shared* (an `Arc` to an
//! immutable, refcounted block also reachable through the pool's radix
//! index keyed by token-id chunks). [`KvBlockPool::prefix_lookup`] maps the
//! longest indexed prefix of a prompt into a fresh cache read-only, so only
//! the suffix needs a forward pass; [`KvCache::write_rows`] into a shared
//! block copy-on-write forks it into a private owned block first. Shared
//! blocks are counted and charged **once** no matter how many block tables
//! map them; the last reference (table or index) to drop un-charges them.
//!
//! **Ledger conservation invariant:** exactly the physical blocks currently
//! live — owned checkouts plus distinct shared blocks — are charged to the
//! device pool (`block_bytes` each). Free-listed blocks are uncharged, so
//! `runtime::cpu_live_bytes()` returns to its baseline once every sequence
//! retires and the prefix index is cleared — the property
//! `tests/paged_kv.rs` pins over arbitrary admit/fork/retire interleavings.

use edkm_tensor::pool::PoolCell;
use edkm_tensor::{runtime, Device};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Sizing of a [`KvBlockPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvBlockConfig {
    /// Token positions per block (the paging granularity).
    pub block_tokens: usize,
    /// Total physical blocks the pool may hand out; `0` means unbounded.
    pub max_blocks: usize,
}

impl Default for KvBlockConfig {
    fn default() -> Self {
        KvBlockConfig {
            block_tokens: 16,
            max_blocks: 0,
        }
    }
}

/// One physical KV block: `block_tokens` positions of K and V rows for
/// every layer of the model it was sized for.
#[derive(Debug)]
pub struct KvBlock {
    id: usize,
    k: Vec<f32>,
    v: Vec<f32>,
}

impl KvBlock {
    /// Physical block id (stable across free-list recycling).
    pub fn id(&self) -> usize {
        self.id
    }
}

/// An immutable, refcounted KV block shared between block tables and the
/// pool's prefix index. The device-pool charge made when the block was
/// first checked out travels with it; the last `Arc` to drop un-charges
/// the bytes and releases the physical-block count (the buffers are not
/// free-listed — shared blocks retire by deallocation).
#[derive(Debug)]
struct SharedBlock {
    block: KvBlock,
    bytes: usize,
    mem: Arc<PoolCell>,
    live: Arc<AtomicUsize>,
}

impl Drop for SharedBlock {
    fn drop(&mut self) {
        self.mem.free(self.bytes);
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One block-table entry: a private owned block or a read-only shared one.
#[derive(Debug)]
enum BlockRef {
    Owned(KvBlock),
    Shared(Arc<SharedBlock>),
}

impl BlockRef {
    fn id(&self) -> usize {
        match self {
            BlockRef::Owned(b) => b.id,
            BlockRef::Shared(s) => s.block.id,
        }
    }

    fn k(&self) -> &[f32] {
        match self {
            BlockRef::Owned(b) => &b.k,
            BlockRef::Shared(s) => &s.block.k,
        }
    }

    fn v(&self) -> &[f32] {
        match self {
            BlockRef::Owned(b) => &b.v,
            BlockRef::Shared(s) => &s.block.v,
        }
    }
}

/// Radix-trie node: the edge *into* a node is one `block_tokens`-sized
/// chunk of token ids, and the node holds the shared block whose K/V rows
/// cover exactly those positions given the path from the root.
#[derive(Debug)]
struct PrefixNode {
    block: Arc<SharedBlock>,
    last_used: u64,
    children: HashMap<Box<[usize]>, PrefixNode>,
}

#[derive(Debug, Default)]
struct PrefixIndex {
    roots: HashMap<Box<[usize]>, PrefixNode>,
    clock: u64,
}

fn count_nodes(map: &HashMap<Box<[usize]>, PrefixNode>) -> usize {
    map.values().map(|n| 1 + count_nodes(&n.children)).sum()
}

fn collect_ids(map: &HashMap<Box<[usize]>, PrefixNode>, out: &mut Vec<usize>) {
    for node in map.values() {
        out.push(node.block.block.id);
        collect_ids(&node.children, out);
    }
}

/// Smallest `last_used` stamp among evictable leaves (no children, no
/// holder besides the index itself).
fn scan_lru_leaf(map: &HashMap<Box<[usize]>, PrefixNode>) -> Option<u64> {
    let mut best: Option<u64> = None;
    for node in map.values() {
        let cand = if node.children.is_empty() {
            (Arc::strong_count(&node.block) == 1).then_some(node.last_used)
        } else {
            scan_lru_leaf(&node.children)
        };
        if let Some(c) = cand {
            best = Some(best.map_or(c, |b| b.min(c)));
        }
    }
    best
}

fn remove_leaf_with_stamp(map: &mut HashMap<Box<[usize]>, PrefixNode>, stamp: u64) -> bool {
    let mut key: Option<Box<[usize]>> = None;
    for (k, node) in map.iter_mut() {
        if node.children.is_empty()
            && node.last_used == stamp
            && Arc::strong_count(&node.block) == 1
        {
            key = Some(k.clone());
            break;
        }
        if remove_leaf_with_stamp(&mut node.children, stamp) {
            return true;
        }
    }
    match key {
        Some(k) => {
            map.remove(&k);
            true
        }
        None => false,
    }
}

#[derive(Debug)]
struct PoolInner {
    /// Recycled blocks ready for checkout.
    free: Vec<KvBlock>,
    /// Next fresh physical id.
    next_id: usize,
    /// Owned blocks currently checked out by live caches.
    in_use: usize,
}

/// Shared pool of fixed-size KV blocks for one served model.
///
/// Cheap to clone through its `Arc`; thread-safe. Sequences draw blocks
/// through [`KvCache::try_reserve`] and return them when the cache drops.
/// With the prefix cache enabled ([`KvBlockPool::set_prefix_cache`]),
/// finished prefixes are promoted into a radix index and later prompts
/// adopt the longest matching run of blocks read-only.
///
/// ```
/// use edkm_core::kv::{KvBlockConfig, KvBlockPool, KvCache};
/// use edkm_tensor::{runtime, Device};
///
/// runtime::reset();
/// // 4-token blocks, at most 3 blocks, for a 2-layer d_model-8 model.
/// let cfg = KvBlockConfig { block_tokens: 4, max_blocks: 3 };
/// let pool = KvBlockPool::new(cfg, 2, 8, Device::Cpu);
/// let mut cache = KvCache::new(pool.clone());
/// assert!(cache.try_reserve(6)); // 6 tokens -> 2 blocks
/// assert_eq!(pool.blocks_in_use(), 2);
/// assert_eq!(pool.free_blocks(), 1);
/// assert_eq!(cache.block_table().len(), 2);
/// drop(cache); // blocks return to the free list
/// assert_eq!(pool.blocks_in_use(), 0);
/// assert_eq!(runtime::cpu_live_bytes(), 0);
/// ```
#[derive(Debug)]
pub struct KvBlockPool {
    block_tokens: usize,
    max_blocks: AtomicUsize,
    n_layers: usize,
    d_model: usize,
    inner: Mutex<PoolInner>,
    mem: Arc<PoolCell>,
    index: Mutex<PrefixIndex>,
    prefix_enabled: AtomicBool,
    shared_live: Arc<AtomicUsize>,
    peak_blocks: AtomicUsize,
}

impl KvBlockPool {
    /// A pool sized for a model of `n_layers` layers and width `d_model`,
    /// allocating on `device`.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` is 0.
    pub fn new(cfg: KvBlockConfig, n_layers: usize, d_model: usize, device: Device) -> Arc<Self> {
        assert!(cfg.block_tokens > 0, "block_tokens must be positive");
        Arc::new(KvBlockPool {
            block_tokens: cfg.block_tokens,
            max_blocks: AtomicUsize::new(cfg.max_blocks),
            n_layers,
            d_model,
            inner: Mutex::new(PoolInner {
                free: Vec::new(),
                next_id: 0,
                in_use: 0,
            }),
            mem: runtime::pool(device),
            index: Mutex::new(PrefixIndex::default()),
            prefix_enabled: AtomicBool::new(false),
            shared_live: Arc::new(AtomicUsize::new(0)),
            peak_blocks: AtomicUsize::new(0),
        })
    }

    /// Token positions per block.
    pub fn block_tokens(&self) -> usize {
        self.block_tokens
    }

    /// Physical block cap (`0` = unbounded).
    pub fn max_blocks(&self) -> usize {
        self.max_blocks.load(Ordering::Relaxed)
    }

    /// Replace the physical block cap and return the previous one — the
    /// KV-squeeze fault hook (`0` = unbounded). Blocks already checked out
    /// are never revoked: a squeeze below the current residency only
    /// refuses *new* checkouts (evicting index-only prefix blocks where it
    /// can) until enough sequences retire, so in-flight work is safe and
    /// the pressure resolves through the scheduler's ordinary
    /// admission-gating and preemption paths. Restoring the old cap lifts
    /// the squeeze.
    pub fn set_max_blocks(&self, max_blocks: usize) -> usize {
        self.max_blocks.swap(max_blocks, Ordering::Relaxed)
    }

    /// Device-pool bytes one block accounts for: K + V rows for every
    /// layer, `block_tokens` positions each.
    pub fn block_bytes(&self) -> usize {
        2 * self.n_layers * self.block_tokens * self.d_model * std::mem::size_of::<f32>()
    }

    /// Blocks needed to hold `tokens` positions.
    pub fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.block_tokens)
    }

    /// Physical blocks currently live: owned checkouts plus distinct
    /// shared blocks (each shared block counts once regardless of how many
    /// block tables map it).
    pub fn blocks_in_use(&self) -> usize {
        self.inner.lock().in_use + self.shared_live.load(Ordering::Relaxed)
    }

    /// High-water mark of physical resident blocks — owned checkouts plus
    /// distinct shared prefix blocks, the device-memory footprint a
    /// deployment must provision for. Unlike the engine's `kv_peak_bytes`
    /// (in-flight sequences only), this includes blocks the prefix index
    /// retains between requests, so cross-request dedup lowers it.
    pub fn peak_blocks(&self) -> usize {
        self.peak_blocks.load(Ordering::Relaxed)
    }

    /// [`Self::peak_blocks`] in device-pool bytes.
    pub fn peak_bytes(&self) -> usize {
        self.peak_blocks() * self.block_bytes()
    }

    /// Blocks still available for checkout (`usize::MAX` when unbounded).
    pub fn free_blocks(&self) -> usize {
        let cap = self.max_blocks();
        if cap == 0 {
            usize::MAX
        } else {
            cap.saturating_sub(self.blocks_in_use())
        }
    }

    /// Turn the prefix-sharing radix index on or off. Off (the default)
    /// preserves the PR-3 behavior exactly: every cache owns all of its
    /// blocks and nothing survives a sequence's retirement.
    pub fn set_prefix_cache(&self, enabled: bool) {
        self.prefix_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether prefix sharing is enabled.
    pub fn prefix_cache_enabled(&self) -> bool {
        self.prefix_enabled.load(Ordering::Relaxed)
    }

    /// Number of blocks currently held by the prefix index (shared with
    /// any block tables mapping them).
    pub fn prefix_cached_blocks(&self) -> usize {
        count_nodes(&self.index.lock().roots)
    }

    /// Physical ids of every block held by the prefix index, in no
    /// particular order. Diagnostic surface for refcount-conservation
    /// tests.
    pub fn indexed_block_ids(&self) -> Vec<usize> {
        let mut out = Vec::new();
        collect_ids(&self.index.lock().roots, &mut out);
        out
    }

    /// Drop the whole prefix index. Blocks still mapped by live caches
    /// survive until those caches drop; index-only blocks free (and
    /// un-charge) immediately.
    pub fn clear_prefix_cache(&self) {
        self.index.lock().roots.clear();
    }

    /// Map the longest indexed prefix of `prompt` into `cache` read-only.
    ///
    /// Walks the radix index chunk by chunk (`block_tokens` token ids per
    /// edge) and adopts each matching shared block into the cache's block
    /// table without charging the ledger again. The match is capped one
    /// position short of the full prompt so the suffix forward always has
    /// at least one token to produce logits from. Returns the number of
    /// prompt tokens covered (a multiple of `block_tokens`, possibly 0).
    ///
    /// # Panics
    ///
    /// Panics if `cache` is not empty.
    pub fn prefix_lookup(&self, prompt: &[usize], cache: &mut KvCache) -> usize {
        assert!(
            cache.blocks.is_empty() && cache.len == 0,
            "prefix_lookup requires an empty cache"
        );
        if !self.prefix_cache_enabled() || prompt.is_empty() {
            return 0;
        }
        let bt = self.block_tokens;
        let max_match = (prompt.len() - 1) / bt;
        if max_match == 0 {
            return 0;
        }
        let mut index = self.index.lock();
        index.clock += 1;
        let stamp = index.clock;
        let mut map = &mut index.roots;
        let mut adopted = 0;
        for b in 0..max_match {
            let chunk = &prompt[b * bt..(b + 1) * bt];
            match map.get_mut(chunk) {
                Some(node) => {
                    node.last_used = stamp;
                    cache.blocks.push(BlockRef::Shared(Arc::clone(&node.block)));
                    adopted += 1;
                    map = &mut node.children;
                }
                None => break,
            }
        }
        cache.len = adopted * bt;
        cache.len
    }

    /// Insert every full committed block of `cache` into the radix index
    /// under the token-id path `tokens`, promoting owned blocks to shared
    /// in place. Chunks already present keep their existing block (token
    /// determinism makes the contents identical) and are only
    /// freshness-stamped. A no-op while the prefix cache is disabled.
    pub fn prefix_insert(&self, tokens: &[usize], cache: &mut KvCache) {
        if !self.prefix_cache_enabled() {
            return;
        }
        let bt = self.block_tokens;
        let full = cache.len.min(tokens.len()) / bt;
        if full == 0 {
            return;
        }
        let mut index = self.index.lock();
        index.clock += 1;
        let stamp = index.clock;
        let mut map = &mut index.roots;
        for b in 0..full {
            let chunk = &tokens[b * bt..(b + 1) * bt];
            if !map.contains_key(chunk) {
                let shared = cache.share_block(b);
                map.insert(
                    chunk.to_vec().into_boxed_slice(),
                    PrefixNode {
                        block: shared,
                        last_used: stamp,
                        children: HashMap::new(),
                    },
                );
            }
            let node = map.get_mut(chunk).expect("chunk just ensured");
            node.last_used = stamp;
            map = &mut node.children;
        }
    }

    /// Move an owned block's accounting to the shared side and wrap it.
    /// The device-pool charge made at checkout carries over; the returned
    /// `Arc`'s final drop releases it.
    fn promote(&self, block: KvBlock) -> Arc<SharedBlock> {
        self.inner.lock().in_use -= 1;
        self.shared_live.fetch_add(1, Ordering::Relaxed);
        Arc::new(SharedBlock {
            block,
            bytes: self.block_bytes(),
            mem: Arc::clone(&self.mem),
            live: Arc::clone(&self.shared_live),
        })
    }

    /// Check out `n` blocks, recycling free-listed buffers first. When the
    /// cap would be exceeded, evicts least-recently-used index-only prefix
    /// blocks to make room; returns `None` (taking nothing) if that still
    /// cannot fit. The device pool is charged `block_bytes` per block on
    /// success.
    fn try_take(&self, n: usize) -> Option<Vec<KvBlock>> {
        let row_floats = self.n_layers * self.block_tokens * self.d_model;
        loop {
            let cap = self.max_blocks();
            let mut inner = self.inner.lock();
            let physical = inner.in_use + self.shared_live.load(Ordering::Relaxed);
            if cap > 0 && physical + n > cap {
                drop(inner);
                let need = physical + n - cap;
                if self.evict_prefix_blocks(need) == 0 {
                    return None;
                }
                continue;
            }
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                let block = inner.free.pop().unwrap_or_else(|| {
                    let id = inner.next_id;
                    inner.next_id += 1;
                    KvBlock {
                        id,
                        k: vec![0.0; row_floats],
                        v: vec![0.0; row_floats],
                    }
                });
                out.push(block);
            }
            inner.in_use += n;
            let resident = inner.in_use + self.shared_live.load(Ordering::Relaxed);
            drop(inner);
            self.peak_blocks.fetch_max(resident, Ordering::Relaxed);
            self.mem.alloc(n * self.block_bytes());
            return Some(out);
        }
    }

    /// Evict up to `want` least-recently-used prefix blocks held only by
    /// the index (leaves first, so interior path integrity is preserved).
    /// Returns how many were actually freed.
    fn evict_prefix_blocks(&self, want: usize) -> usize {
        let mut index = self.index.lock();
        let mut freed = 0;
        while freed < want {
            let Some(stamp) = scan_lru_leaf(&index.roots) else {
                break;
            };
            if !remove_leaf_with_stamp(&mut index.roots, stamp) {
                break;
            }
            freed += 1;
        }
        freed
    }

    /// Return blocks to the free list, uncharging their bytes.
    fn put_back(&self, blocks: Vec<KvBlock>) {
        if blocks.is_empty() {
            return;
        }
        self.mem.free(blocks.len() * self.block_bytes());
        let mut inner = self.inner.lock();
        inner.in_use -= blocks.len();
        inner.free.extend(blocks);
    }
}

/// Per-sequence paged KV cache: an ordered block table over blocks checked
/// out of a shared [`KvBlockPool`].
///
/// Rows are stored per layer as `[t, d_model]` (head-major within a row),
/// already rotated. Position `p` lives in the sequence's `p /
/// block_tokens`-th table entry at slot `p % block_tokens`. Table entries
/// are either owned (private, returned to the pool's free list when the
/// cache drops) or shared read-only with other sequences and the prefix
/// index (released by refcount). Writing into a shared entry forks it
/// copy-on-write first.
#[derive(Debug)]
pub struct KvCache {
    pool: Arc<KvBlockPool>,
    blocks: Vec<BlockRef>,
    len: usize,
}

impl KvCache {
    /// An empty cache drawing from `pool`.
    pub fn new(pool: Arc<KvBlockPool>) -> Self {
        KvCache {
            pool,
            blocks: Vec::new(),
            len: 0,
        }
    }

    /// Cached sequence length (committed positions).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` before the first token.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Token capacity of the blocks currently held.
    pub fn capacity(&self) -> usize {
        self.blocks.len() * self.pool.block_tokens()
    }

    /// Bytes charged to the device pool for blocks this cache exclusively
    /// owns. Shared blocks are charged once pool-wide, not per table; use
    /// the scheduler's deduplicated accounting for flight-level totals.
    pub fn bytes(&self) -> usize {
        self.owned_blocks() * self.pool.block_bytes()
    }

    /// Number of owned (private) entries in the block table.
    pub fn owned_blocks(&self) -> usize {
        self.blocks
            .iter()
            .filter(|r| matches!(r, BlockRef::Owned(_)))
            .count()
    }

    /// The sequence's block table: physical block ids in position order.
    pub fn block_table(&self) -> Vec<usize> {
        self.blocks.iter().map(BlockRef::id).collect()
    }

    /// `(physical id, is_shared)` for every block-table entry in position
    /// order — the raw material for deduplicated byte accounting.
    pub fn block_entries(&self) -> impl Iterator<Item = (usize, bool)> + '_ {
        self.blocks
            .iter()
            .map(|r| (r.id(), matches!(r, BlockRef::Shared(_))))
    }

    /// Reference count of the `i`-th table entry: 1 for an owned block,
    /// the `Arc` strong count (tables + index) for a shared one.
    pub fn block_refcount(&self, i: usize) -> usize {
        match &self.blocks[i] {
            BlockRef::Owned(_) => 1,
            BlockRef::Shared(s) => Arc::strong_count(s),
        }
    }

    /// Ensure capacity for `n_new` more positions, checking out blocks as
    /// needed. Returns `false` (holding what it already had) if the pool
    /// cap would be exceeded.
    pub fn try_reserve(&mut self, n_new: usize) -> bool {
        let needed_blocks = self.pool.blocks_for(self.len + n_new);
        if needed_blocks <= self.blocks.len() {
            return true;
        }
        match self.pool.try_take(needed_blocks - self.blocks.len()) {
            Some(fresh) => {
                self.blocks.extend(fresh.into_iter().map(BlockRef::Owned));
                true
            }
            None => false,
        }
    }

    /// Write `n` consecutive K/V rows (width `d_model`) for `layer`
    /// starting at absolute position `pos0`. Capacity must already be
    /// reserved; positions become readable immediately and are counted by
    /// [`KvCache::len`] only after [`KvCache::commit`]. Writing into a
    /// shared block forks it copy-on-write into a private owned block.
    ///
    /// # Panics
    ///
    /// Panics if the write runs past reserved capacity, or if a
    /// copy-on-write fork cannot check a fresh block out of the pool.
    pub fn write_rows(&mut self, layer: usize, pos0: usize, k_rows: &[f32], v_rows: &[f32]) {
        let d = self.pool.d_model;
        let bt = self.pool.block_tokens;
        debug_assert_eq!(k_rows.len(), v_rows.len());
        debug_assert_eq!(k_rows.len() % d, 0);
        let n = k_rows.len() / d;
        assert!(
            pos0 + n <= self.capacity(),
            "write past reserved capacity: {} + {n} > {}",
            pos0,
            self.capacity()
        );
        for i in 0..n {
            let pos = pos0 + i;
            let (b, slot) = (pos / bt, pos % bt);
            if matches!(self.blocks[b], BlockRef::Shared(_)) {
                self.fork_block(b);
            }
            let off = (layer * bt + slot) * d;
            let BlockRef::Owned(block) = &mut self.blocks[b] else {
                unreachable!("shared block just forked");
            };
            block.k[off..off + d].copy_from_slice(&k_rows[i * d..(i + 1) * d]);
            block.v[off..off + d].copy_from_slice(&v_rows[i * d..(i + 1) * d]);
        }
    }

    /// Replace the shared entry at table position `b` with a private copy.
    fn fork_block(&mut self, b: usize) {
        let mut fresh = self
            .pool
            .try_take(1)
            .expect("KV block pool exhausted during copy-on-write fork");
        let mut owned = fresh.pop().expect("requested one block");
        let BlockRef::Shared(shared) = &self.blocks[b] else {
            return;
        };
        owned.k.copy_from_slice(&shared.block.k);
        owned.v.copy_from_slice(&shared.block.v);
        self.blocks[b] = BlockRef::Owned(owned);
    }

    /// Promote the `b`-th table entry to shared (if it is not already) and
    /// return a clone of its `Arc` for the prefix index.
    fn share_block(&mut self, b: usize) -> Arc<SharedBlock> {
        if let BlockRef::Shared(s) = &self.blocks[b] {
            return Arc::clone(s);
        }
        let placeholder = BlockRef::Owned(KvBlock {
            id: usize::MAX,
            k: Vec::new(),
            v: Vec::new(),
        });
        let BlockRef::Owned(block) = std::mem::replace(&mut self.blocks[b], placeholder) else {
            unreachable!("checked owned above");
        };
        let shared = self.pool.promote(block);
        self.blocks[b] = BlockRef::Shared(Arc::clone(&shared));
        shared
    }

    /// Commit `n` written positions to the sequence length.
    pub fn commit(&mut self, n: usize) {
        self.len += n;
        debug_assert!(self.len <= self.capacity(), "committed past capacity");
    }

    /// Shrink the committed length to `new_len`, releasing whole blocks
    /// past the new end (owned blocks return to the free list, shared
    /// references drop). Rows between `new_len` and the end of the last
    /// kept block become dead and are overwritten by later writes — this
    /// is how speculative decoding rolls back rejected draft positions.
    ///
    /// # Panics
    ///
    /// Panics if `new_len` exceeds the current length.
    pub fn truncate(&mut self, new_len: usize) {
        assert!(
            new_len <= self.len,
            "truncate to {new_len} beyond length {}",
            self.len
        );
        self.len = new_len;
        let keep = self.pool.blocks_for(new_len);
        if keep >= self.blocks.len() {
            return;
        }
        let mut owned = Vec::new();
        for r in self.blocks.drain(keep..) {
            if let BlockRef::Owned(b) = r {
                owned.push(b);
            }
        }
        self.pool.put_back(owned);
    }

    /// The K row of `layer` at absolute position `pos` (read through the
    /// block table).
    pub fn k_row(&self, layer: usize, pos: usize) -> &[f32] {
        self.row(layer, pos, false)
    }

    /// The V row of `layer` at absolute position `pos`.
    pub fn v_row(&self, layer: usize, pos: usize) -> &[f32] {
        self.row(layer, pos, true)
    }

    /// The contiguous K rows of `layer` from `pos` to the end of its
    /// block — positions inside one block are stored back to back per
    /// layer, so attention can stream a whole block per table lookup
    /// instead of resolving every row. Rows past the written range hold
    /// recycled data; callers clamp to their context length.
    pub fn k_rows_from(&self, layer: usize, pos: usize) -> &[f32] {
        self.rows_from(layer, pos, false)
    }

    /// The contiguous V rows of `layer` from `pos` to the end of its
    /// block; see [`KvCache::k_rows_from`].
    pub fn v_rows_from(&self, layer: usize, pos: usize) -> &[f32] {
        self.rows_from(layer, pos, true)
    }

    fn row(&self, layer: usize, pos: usize, v: bool) -> &[f32] {
        let d = self.pool.d_model;
        &self.rows_from(layer, pos, v)[..d]
    }

    fn rows_from(&self, layer: usize, pos: usize, v: bool) -> &[f32] {
        let d = self.pool.d_model;
        let bt = self.pool.block_tokens;
        let block = &self.blocks[pos / bt];
        let off = (layer * bt + pos % bt) * d;
        let end = (layer * bt + bt) * d;
        let buf = if v { block.v() } else { block.k() };
        &buf[off..end]
    }
}

impl Drop for KvCache {
    fn drop(&mut self) {
        let mut owned = Vec::with_capacity(self.blocks.len());
        for r in self.blocks.drain(..) {
            if let BlockRef::Owned(b) = r {
                owned.push(b);
            }
        }
        self.pool.put_back(owned);
    }
}

/// Incremental FNV-1a fingerprint over a token-id sequence: push tokens
/// one at a time and read the fingerprint of every prefix along the way.
/// A cluster router hashes a prompt once with this and probes its
/// affinity table at each prefix length — the streaming dual of
/// [`prefix_fingerprints`], which records the radix-chunk-aligned
/// checkpoints of a dispatched prompt.
///
/// The hash is a pure function of the token ids (no per-process state),
/// so fingerprints agree across replicas, processes and runs.
#[derive(Debug, Clone)]
pub struct PrefixHasher {
    state: u64,
}

impl PrefixHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher over the empty prefix.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        PrefixHasher {
            state: Self::OFFSET,
        }
    }

    /// Absorb one token and return the fingerprint of the prefix ending
    /// at it.
    pub fn push(&mut self, token: usize) -> u64 {
        for byte in (token as u64).to_le_bytes() {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
        self.state
    }

    /// Fingerprint of everything pushed so far.
    pub fn fingerprint(&self) -> u64 {
        self.state
    }
}

/// FNV-1a fingerprint of a whole token-id sequence (the terminal value of
/// a [`PrefixHasher`] fed the same tokens).
pub fn token_fingerprint(tokens: &[usize]) -> u64 {
    let mut h = PrefixHasher::new();
    for &t in tokens {
        h.push(t);
    }
    h.fingerprint()
}

/// `(prefix_len, fingerprint)` of every `block_tokens`-aligned prefix of
/// `prompt` — the radix-index chunk boundaries of [`KvBlockPool`] — plus
/// the whole prompt when it is not already chunk-aligned, ascending by
/// length. These are the checkpoints a prefix-affinity router records at
/// dispatch: a follow-up chat turn extends this prompt, so hashing the
/// follow-up's prefixes (with [`PrefixHasher`]) rediscovers one of these
/// fingerprints and with it the replica whose radix index holds the
/// session's KV blocks.
pub fn prefix_fingerprints(prompt: &[usize], block_tokens: usize) -> Vec<(usize, u64)> {
    assert!(block_tokens > 0, "block_tokens must be positive");
    let mut out = Vec::with_capacity(prompt.len() / block_tokens + 1);
    let mut h = PrefixHasher::new();
    for (i, &t) in prompt.iter().enumerate() {
        let fp = h.push(t);
        if (i + 1) % block_tokens == 0 || i + 1 == prompt.len() {
            out.push((i + 1, fp));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(block_tokens: usize, max_blocks: usize) -> Arc<KvBlockPool> {
        runtime::reset();
        KvBlockPool::new(
            KvBlockConfig {
                block_tokens,
                max_blocks,
            },
            2,
            4,
            Device::Cpu,
        )
    }

    /// Write deterministic rows for `n` positions starting at `pos0` and
    /// commit them.
    fn fill(c: &mut KvCache, pos0: usize, n: usize, salt: f32) {
        for layer in 0..2 {
            let k: Vec<f32> = (0..n * 4)
                .map(|i| salt + (layer * 100 + i) as f32)
                .collect();
            let v: Vec<f32> = k.iter().map(|x| -x).collect();
            c.write_rows(layer, pos0, &k, &v);
        }
        c.commit(n);
    }

    #[test]
    fn blocks_for_rounds_up() {
        let p = pool(4, 0);
        assert_eq!(p.blocks_for(0), 0);
        assert_eq!(p.blocks_for(1), 1);
        assert_eq!(p.blocks_for(4), 1);
        assert_eq!(p.blocks_for(5), 2);
    }

    #[test]
    fn block_bytes_formula() {
        let p = pool(4, 0);
        // 2 (K+V) × 2 layers × 4 tokens × 4 wide × 4 bytes.
        assert_eq!(p.block_bytes(), 2 * 2 * 4 * 4 * 4);
    }

    #[test]
    fn reserve_charges_and_drop_drains() {
        let p = pool(4, 0);
        let baseline = runtime::cpu_live_bytes();
        {
            let mut c = KvCache::new(Arc::clone(&p));
            assert!(c.try_reserve(6)); // 2 blocks
            assert_eq!(c.capacity(), 8);
            assert_eq!(c.bytes(), 2 * p.block_bytes());
            assert_eq!(p.blocks_in_use(), 2);
            assert_eq!(runtime::cpu_live_bytes(), baseline + 2 * p.block_bytes());
            // Already covered: no extra blocks taken.
            assert!(c.try_reserve(2));
            assert_eq!(p.blocks_in_use(), 2);
        }
        assert_eq!(p.blocks_in_use(), 0);
        assert_eq!(runtime::cpu_live_bytes(), baseline, "bytes must drain");
    }

    #[test]
    fn cap_is_enforced_and_free_list_recycles_ids() {
        let p = pool(4, 2);
        let mut a = KvCache::new(Arc::clone(&p));
        assert!(a.try_reserve(8));
        assert_eq!(p.free_blocks(), 0);
        let mut b = KvCache::new(Arc::clone(&p));
        assert!(!b.try_reserve(1), "pool is exhausted");
        assert_eq!(b.bytes(), 0, "failed reserve must take nothing");
        let ids = a.block_table();
        drop(a);
        assert_eq!(p.free_blocks(), 2);
        assert!(b.try_reserve(5));
        let mut recycled = b.block_table();
        recycled.sort_unstable();
        let mut want = ids.clone();
        want.sort_unstable();
        assert_eq!(recycled, want, "freed physical blocks are reused");
    }

    #[test]
    fn unbounded_pool_reports_max_free() {
        let p = pool(4, 0);
        assert_eq!(p.free_blocks(), usize::MAX);
        assert_eq!(p.max_blocks(), 0);
    }

    #[test]
    fn rows_roundtrip_through_the_block_table() {
        let p = pool(2, 0); // d_model 4, 2 layers, 2 tokens/block
        let mut c = KvCache::new(Arc::clone(&p));
        assert!(c.try_reserve(3)); // spans 2 blocks
        for layer in 0..2 {
            let k: Vec<f32> = (0..12).map(|i| (layer * 100 + i) as f32).collect();
            let v: Vec<f32> = k.iter().map(|x| -x).collect();
            c.write_rows(layer, 0, &k, &v);
        }
        c.commit(3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.k_row(1, 2), &[108.0, 109.0, 110.0, 111.0]);
        assert_eq!(c.v_row(0, 1), &[-4.0, -5.0, -6.0, -7.0]);
        assert_eq!(c.block_table().len(), 2);
    }

    #[test]
    fn block_runs_cover_rows_contiguously() {
        let p = pool(2, 0); // d_model 4, 2 layers, 2 tokens/block
        let mut c = KvCache::new(Arc::clone(&p));
        assert!(c.try_reserve(4));
        for layer in 0..2 {
            let k: Vec<f32> = (0..16).map(|i| (layer * 100 + i) as f32).collect();
            let v: Vec<f32> = k.iter().map(|x| -x).collect();
            c.write_rows(layer, 0, &k, &v);
        }
        c.commit(4);
        // A run starting at a block boundary covers the whole block…
        assert_eq!(c.k_rows_from(0, 0).len(), 2 * 4);
        assert_eq!(&c.k_rows_from(1, 2)[..4], c.k_row(1, 2));
        // …and a mid-block start covers the remainder only.
        assert_eq!(c.v_rows_from(0, 1).len(), 4);
        assert_eq!(c.v_rows_from(0, 1), c.v_row(0, 1));
        // Run contents equal the row-at-a-time reads, position by position.
        for pos in 0..4 {
            let run = c.k_rows_from(0, pos);
            for (r, chunk) in run.chunks(4).enumerate() {
                if pos + r < 4 {
                    assert_eq!(chunk, c.k_row(0, pos + r), "pos {pos} + {r}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "past reserved capacity")]
    fn writing_past_capacity_panics() {
        let p = pool(2, 0);
        let mut c = KvCache::new(p);
        c.write_rows(0, 0, &[0.0; 4], &[0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "block_tokens must be positive")]
    fn zero_block_tokens_panics() {
        pool(0, 0);
    }

    #[test]
    fn prefix_lookup_adopts_shared_blocks_and_charges_once() {
        let p = pool(2, 0);
        p.set_prefix_cache(true);
        let baseline = runtime::cpu_live_bytes();
        let prompt: Vec<usize> = vec![7, 8, 9, 10, 11];
        let mut donor = KvCache::new(Arc::clone(&p));
        assert!(donor.try_reserve(5));
        fill(&mut donor, 0, 5, 0.0);
        p.prefix_insert(&prompt, &mut donor);
        assert_eq!(p.prefix_cached_blocks(), 2, "two full blocks indexed");
        assert_eq!(p.blocks_in_use(), 3, "promotion must not change count");
        assert_eq!(runtime::cpu_live_bytes(), baseline + 3 * p.block_bytes());

        let mut adopter = KvCache::new(Arc::clone(&p));
        let reused = p.prefix_lookup(&prompt, &mut adopter);
        assert_eq!(reused, 4, "match capped one short of the full prompt");
        assert_eq!(adopter.len(), 4);
        assert_eq!(adopter.block_table(), donor.block_table()[..2]);
        // Still three physical blocks; adoption is free.
        assert_eq!(p.blocks_in_use(), 3);
        assert_eq!(runtime::cpu_live_bytes(), baseline + 3 * p.block_bytes());
        // Shared rows read back identically through both tables.
        assert_eq!(adopter.k_row(1, 3), donor.k_row(1, 3));

        drop(donor);
        drop(adopter);
        // Index still pins the two shared blocks.
        assert_eq!(p.blocks_in_use(), 2);
        p.clear_prefix_cache();
        assert_eq!(p.blocks_in_use(), 0);
        assert_eq!(runtime::cpu_live_bytes(), baseline, "ledger drains");
    }

    #[test]
    fn writing_a_shared_block_forks_copy_on_write() {
        let p = pool(2, 0);
        p.set_prefix_cache(true);
        let prompt: Vec<usize> = vec![1, 2, 3];
        let mut donor = KvCache::new(Arc::clone(&p));
        assert!(donor.try_reserve(3));
        fill(&mut donor, 0, 3, 0.0);
        p.prefix_insert(&prompt, &mut donor);
        let mut adopter = KvCache::new(Arc::clone(&p));
        assert_eq!(p.prefix_lookup(&prompt, &mut adopter), 2);
        let shared_id = adopter.block_table()[0];
        assert_eq!(adopter.block_refcount(0), 3, "donor + adopter + index");

        // Overwrite position 1 through the adopter: must fork, not mutate.
        let before = donor.k_row(0, 1).to_vec();
        adopter.write_rows(0, 1, &[9.0; 4], &[9.0; 4]);
        assert_ne!(adopter.block_table()[0], shared_id, "fresh physical block");
        assert_eq!(adopter.block_refcount(0), 1);
        assert_eq!(donor.k_row(0, 1), &before[..], "donor rows untouched");
        assert_eq!(adopter.k_row(0, 1), &[9.0; 4]);
        // Untouched layer rows were carried over by the fork.
        assert_eq!(adopter.k_row(1, 0), donor.k_row(1, 0));
        assert_eq!(p.blocks_in_use(), 3, "fork added one physical block");
    }

    #[test]
    fn cap_pressure_evicts_lru_index_only_blocks() {
        let p = pool(2, 3);
        p.set_prefix_cache(true);
        let prompt: Vec<usize> = vec![1, 2, 3, 4, 5];
        let mut donor = KvCache::new(Arc::clone(&p));
        assert!(donor.try_reserve(5));
        fill(&mut donor, 0, 5, 0.0);
        p.prefix_insert(&prompt, &mut donor);
        drop(donor);
        // The pool is fully occupied by index-held blocks now.
        assert_eq!(p.blocks_in_use(), 2);
        assert_eq!(p.prefix_cached_blocks(), 2);
        // A 3-block reservation must evict both cached blocks (leaf first).
        let mut c = KvCache::new(Arc::clone(&p));
        assert!(c.try_reserve(6), "eviction makes room");
        assert_eq!(p.prefix_cached_blocks(), 0);
        assert_eq!(p.blocks_in_use(), 3);
        drop(c);
        assert_eq!(p.blocks_in_use(), 0);
    }

    #[test]
    fn eviction_spares_blocks_mapped_by_live_tables() {
        let p = pool(2, 2);
        p.set_prefix_cache(true);
        let prompt: Vec<usize> = vec![1, 2, 3];
        let mut donor = KvCache::new(Arc::clone(&p));
        assert!(donor.try_reserve(3));
        fill(&mut donor, 0, 3, 0.0);
        p.prefix_insert(&prompt, &mut donor);
        // Donor still maps the shared block: it must not be evicted.
        let mut c = KvCache::new(Arc::clone(&p));
        assert!(!c.try_reserve(4), "no evictable blocks, cap holds");
        assert_eq!(p.prefix_cached_blocks(), 1);
    }

    #[test]
    fn truncate_releases_tail_blocks_and_rolls_back_len() {
        let p = pool(2, 0);
        let mut c = KvCache::new(Arc::clone(&p));
        assert!(c.try_reserve(6));
        fill(&mut c, 0, 6, 0.0);
        assert_eq!(p.blocks_in_use(), 3);
        c.truncate(3);
        assert_eq!(c.len(), 3);
        assert_eq!(p.blocks_in_use(), 2, "third block returned");
        // Mid-block truncation keeps the partial block; rows re-writable.
        c.write_rows(0, 3, &[5.0; 4], &[5.0; 4]);
        c.commit(1);
        assert_eq!(c.k_row(0, 3), &[5.0; 4]);
        c.truncate(0);
        assert_eq!(p.blocks_in_use(), 0);
    }

    #[test]
    fn disabled_prefix_cache_is_inert() {
        let p = pool(2, 0);
        let prompt: Vec<usize> = vec![1, 2, 3, 4, 5];
        let mut donor = KvCache::new(Arc::clone(&p));
        assert!(donor.try_reserve(5));
        fill(&mut donor, 0, 5, 0.0);
        p.prefix_insert(&prompt, &mut donor);
        assert_eq!(p.prefix_cached_blocks(), 0);
        let mut adopter = KvCache::new(Arc::clone(&p));
        assert_eq!(p.prefix_lookup(&prompt, &mut adopter), 0);
    }

    #[test]
    fn prefix_hasher_matches_whole_sequence_fingerprint() {
        let tokens = [3usize, 1, 4, 1, 5, 9, 2, 6];
        let mut h = PrefixHasher::new();
        let mut last = 0;
        for &t in &tokens {
            last = h.push(t);
        }
        assert_eq!(last, token_fingerprint(&tokens));
        assert_eq!(h.fingerprint(), token_fingerprint(&tokens));
        // Prefix fingerprints only depend on the prefix.
        assert_eq!(
            token_fingerprint(&tokens[..3]),
            token_fingerprint(&[3, 1, 4])
        );
        assert_ne!(token_fingerprint(&tokens), token_fingerprint(&tokens[..7]));
    }

    #[test]
    fn prefix_fingerprints_mark_chunk_boundaries_and_the_whole_prompt() {
        let prompt = [10usize, 11, 12, 13, 14, 15, 16];
        let fps = prefix_fingerprints(&prompt, 3);
        assert_eq!(
            fps.iter().map(|&(n, _)| n).collect::<Vec<_>>(),
            vec![3, 6, 7]
        );
        for &(n, fp) in &fps {
            assert_eq!(fp, token_fingerprint(&prompt[..n]));
        }
        // A chunk-aligned prompt is not double-counted at its end.
        let aligned = prefix_fingerprints(&prompt[..6], 3);
        assert_eq!(
            aligned.iter().map(|&(n, _)| n).collect::<Vec<_>>(),
            vec![3, 6]
        );
        // A follow-up turn extending the prompt rediscovers every
        // checkpoint via the streaming hasher — the affinity-lookup path.
        let mut extended: Vec<usize> = prompt.to_vec();
        extended.extend_from_slice(&[17, 18]);
        let mut h = PrefixHasher::new();
        let streamed: Vec<(usize, u64)> = extended
            .iter()
            .enumerate()
            .map(|(i, &t)| (i + 1, h.push(t)))
            .collect();
        for &(n, fp) in &fps {
            assert!(streamed.contains(&(n, fp)));
        }
    }

    #[test]
    fn prefix_fingerprints_of_empty_prompt_are_empty() {
        assert!(prefix_fingerprints(&[], 4).is_empty());
    }
}
