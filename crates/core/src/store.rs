//! Offload stores: whole-buffer or sharded-across-learners payloads.
//!
//! Sharding (Section 2.2) keeps `1/|L|` of a buffer on each learner.
//! Learner 0 is the measured machine: its shard is an [`AccountedVec`]
//! charged to the CPU pool; peers' shards live outside the pools (they are
//! other machines' memory) and only return through a ledger-visible
//! all-gather.

use crate::accounting::AccountedVec;
use edkm_dist::LearnerGroup;
use edkm_tensor::Device;

/// A host-resident buffer, either whole or sharded over a learner group.
#[derive(Debug)]
pub enum Store<T: Copy> {
    /// The entire buffer on this learner.
    Whole(AccountedVec<T>),
    /// Sharded: learner 0's slice is accounted locally; peers' slices are
    /// simulated (unaccounted) and must be all-gathered to reassemble.
    Sharded {
        /// Learner 0's shard (accounted CPU bytes).
        local: AccountedVec<T>,
        /// Peers' shards in rank order (ranks `1..L`).
        remote: Vec<Vec<T>>,
        /// The group to all-gather over.
        group: LearnerGroup,
    },
}

impl<T: Copy> Store<T> {
    /// Offload `data` whole onto the CPU.
    pub fn whole(data: Vec<T>) -> Self {
        Store::Whole(AccountedVec::new(data, Device::Cpu))
    }

    /// Offload `data` sharded over `group` (balanced contiguous split).
    pub fn sharded(data: Vec<T>, group: LearnerGroup) -> Self {
        let spec = group.shard_spec(data.len());
        let mut shards = spec.split(&data);
        let local = AccountedVec::new(shards.remove(0), Device::Cpu);
        Store::Sharded {
            local,
            remote: shards,
            group,
        }
    }

    /// Bytes resident on *this* learner (the Table 2 per-learner metric).
    pub fn local_bytes(&self) -> usize {
        match self {
            Store::Whole(v) => v.bytes(),
            Store::Sharded { local, .. } => local.bytes(),
        }
    }

    /// Total logical element count.
    pub fn total_len(&self) -> usize {
        match self {
            Store::Whole(v) => v.len(),
            Store::Sharded { local, remote, .. } => {
                local.len() + remote.iter().map(|r| r.len()).sum::<usize>()
            }
        }
    }

    /// `true` if this store is sharded.
    pub fn is_sharded(&self) -> bool {
        matches!(self, Store::Sharded { .. })
    }

    /// Reassemble the full buffer. Sharded stores perform (and cost) an
    /// all-gather over the group.
    pub fn gather(&self) -> Vec<T> {
        match self {
            Store::Whole(v) => v.as_slice().to_vec(),
            Store::Sharded {
                local,
                remote,
                group,
            } => {
                let mut shards: Vec<Vec<T>> = Vec::with_capacity(remote.len() + 1);
                shards.push(local.as_slice().to_vec());
                shards.extend(remote.iter().cloned());
                group.all_gather(&shards)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_tensor::runtime;

    #[test]
    fn whole_store_accounts_everything() {
        runtime::reset();
        let s = Store::whole(vec![0u16; 1000]);
        assert_eq!(s.local_bytes(), 2000);
        assert_eq!(runtime::cpu_live_bytes(), 2000);
        assert_eq!(s.total_len(), 1000);
        assert!(!s.is_sharded());
        assert_eq!(s.gather().len(), 1000);
    }

    #[test]
    fn sharded_store_accounts_one_learner() {
        runtime::reset();
        let s = Store::sharded(vec![7u16; 800], LearnerGroup::new(8));
        assert_eq!(s.local_bytes(), 200, "1/8 of 1600 bytes");
        assert_eq!(runtime::cpu_live_bytes(), 200);
        assert_eq!(s.total_len(), 800);
        assert!(s.is_sharded());
    }

    #[test]
    fn sharded_gather_restores_order_and_costs_time() {
        runtime::reset();
        let data: Vec<u16> = (0..100).collect();
        let s = Store::sharded(data.clone(), LearnerGroup::new(4));
        let t0 = runtime::sim_seconds();
        assert_eq!(s.gather(), data);
        assert!(runtime::sim_seconds() > t0, "all-gather must cost time");
    }

    #[test]
    fn f32_sharded_bytes() {
        runtime::reset();
        let s = Store::sharded(vec![1.0f32; 100], LearnerGroup::new(4));
        assert_eq!(s.local_bytes(), 100);
        drop(s);
        assert_eq!(runtime::cpu_live_bytes(), 0);
    }

    #[test]
    fn single_learner_shard_is_whole_cost() {
        runtime::reset();
        let s = Store::sharded(vec![1u16; 10], LearnerGroup::new(1));
        assert_eq!(s.local_bytes(), 20);
        assert_eq!(s.gather().len(), 10);
    }
}
