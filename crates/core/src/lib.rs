//! # edkm-core
//!
//! The paper: *eDKM — an efficient and accurate train-time weight clustering
//! for large language models* (HPCA 2025).
//!
//! * [`dkm`] — the differentiable K-Means clustering layer (attention map
//!   between weights and centroids, Lloyd refinement, soft assignment).
//! * [`marshal`] — cross-device tensor marshaling: a storage-id registry
//!   plus a ≤4-hop forward-graph walk that eliminates duplicate CPU copies
//!   of tensors saved for backward (Section 2.1).
//! * [`uniquify`] — weight uniquification: the `|W|×|C|` attention map
//!   collapses into a ≤65 536-row attention table plus a 16-bit index list
//!   (Section 2.2).
//! * [`store`] — index-list sharding over the simulated learner group.
//! * [`hooks`] — [`hooks::EdkmHooks`], the `saved_tensors_hooks`
//!   implementation combining offload + M + U + S; one config per Table 2
//!   row.
//! * [`palettize`] — the deployment codec (LUT + bit-packed indices) and
//!   8-bit affine embeddings.
//! * [`pipeline`] — fine-tune-and-compress end to end.
//! * [`ablation`] — the Table 2 measurement harness.
//!
//! ## Quickstart
//!
//! ```
//! use edkm_core::{DkmConfig, DkmLayer};
//! use edkm_tensor::{DType, Device, Tensor};
//!
//! // Cluster a weight matrix to 8 centroids (3 bits/weight).
//! let w = Tensor::randn(&[64, 16], DType::Bf16, Device::Cpu, 0);
//! let layer = DkmLayer::new(DkmConfig::with_bits(3));
//! let out = layer.cluster_tensor(&w);
//! assert_eq!(out.centroids.shape(), &[8, 1]);
//!
//! // Deployment artifact: LUT + 3-bit packed indices.
//! let palettized = layer.palettize(&w);
//! assert!(palettized.size_bytes() < w.numel() * 2); // smaller than bf16
//! ```

#![warn(missing_docs)]

pub mod ablation;
pub mod accounting;
pub mod dkm;
pub mod engine;
pub mod entropy;
pub mod hooks;
pub mod infer;
pub mod kv;
pub mod marshal;
pub mod palettize;
pub mod pipeline;
pub mod scratch;
pub mod serialize;
pub mod serve;
pub mod store;
pub mod uniquify;

pub use ablation::{render_table2, run_one, run_table2, AblationRow, AblationSetup};
pub use accounting::AccountedVec;
pub use dkm::{DkmConfig, DkmInit, DkmLayer, DkmOutput};
pub use engine::{
    CancelOutcome, EngineConfig, EngineHandle, RecvTimeout, Request, RequestId, ServeEngine,
    StatsSnapshot, StreamPoll, SubmitError, TokenEvent, TokenStream, TtftHistogram,
};
pub use entropy::{index_entropy_bits, EntropyCoded, HuffmanCode};
pub use hooks::{EdkmConfig, EdkmHooks, HookStatsSnapshot};
pub use infer::{
    ChunkView, LutProjection, PalettizedLinear, PalettizedModel, Partition, ServeError, ServeModel,
    ShardedPalettizedLinear, ShardedPalettizedModel,
};
pub use kv::{
    prefix_fingerprints, token_fingerprint, KvBlockConfig, KvBlockPool, KvCache, PrefixHasher,
};
pub use marshal::{EdkmPacked, MarshalRegistry, StoredEntry};
pub use palettize::{AffineQuantized, GroupedPalettized, PalettizedTensor};
pub use pipeline::{
    CompressResult, CompressSpec, CompressedModel, CompressedTensor, CompressionPipeline,
};
pub use scratch::ScratchArena;
pub use serve::{
    sample_token, FinishReason, Generator, Priority, SamplingConfig, Scheduler, ServeRequest,
    ServeResponse, StepEvents, TokenEmission,
};
pub use store::Store;
pub use uniquify::RowKeys;
