//! Cross-device tensor marshaling (Section 2.1, Fig. 2 of the paper).
//!
//! The registry maps a GPU storage id to its CPU-resident offloaded entry.
//! Before copying a saved tensor to the CPU, the eDKM hooks first check the
//! registry for the tensor's own storage, then walk the forward graph
//! (≤ `hop_limit` storage-invariant hops) looking for an ancestor whose
//! storage is already offloaded. A hit stores only a *reference* plus the
//! op-chain needed to re-derive the view — no duplicate CPU copy, no extra
//! PCIe traffic.

use crate::accounting::AccountedVec;
use crate::store::Store;
use crate::uniquify;
use edkm_tensor::layout::Layout;
use edkm_tensor::{runtime, DType, Device, InvariantOp, StorageId, Tensor};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Offloaded representation of one storage buffer.
#[derive(Debug)]
pub enum Payload {
    /// Raw f32 contents.
    Dense32(Store<f32>),
    /// 16-bit contents as bit patterns (2 bytes/element, like the source).
    Dense16(Store<u16>),
    /// Uniquified attention map: replicated attention table + (possibly
    /// sharded) index list. This is Fig. 3 of the paper.
    Uniq {
        /// `[u × k]` unique-row table (replicated on every learner).
        table: AccountedVec<f32>,
        /// Index list, one u16 per map row.
        index: Store<u16>,
        /// Columns per row (`|C|`).
        k: usize,
    },
    /// Uniquified attention map of a *vector*-clustered weight (extension):
    /// block keys can exceed 2^16 uniques, so the index is u32. Built only
    /// when profitable (see [`StoredEntry::build`]).
    UniqWide {
        /// `[u × k]` unique-row table (replicated on every learner).
        table: AccountedVec<f32>,
        /// Index list, one u32 per map row.
        index: Store<u32>,
        /// Columns per row (`|C|`).
        k: usize,
    },
}

/// One offloaded storage: payload plus reconstruction metadata.
#[derive(Debug)]
pub struct StoredEntry {
    payload: Payload,
    storage_len: usize,
    dtype: DType,
    origin: Device,
    /// Memoized reconstruction (avoids re-transferring on repeated unpacks
    /// of marshaled references).
    cache: Mutex<Option<Tensor>>,
}

impl StoredEntry {
    /// Offload the full storage behind `t`, compressing via uniquification
    /// when `keys` are provided and sharding over `group` when given.
    pub fn build(
        t: &Tensor,
        keys: Option<&uniquify::RowKeys>,
        shard_group: Option<edkm_dist::LearnerGroup>,
    ) -> StoredEntry {
        let dtype = t.dtype();
        let origin = t.device();
        let full: Vec<f32> = t.storage().with_data(|d| d.to_vec());
        let len = full.len();

        // Scalar keys always uniquify (the paper's path — the 2^16 bound
        // guarantees profit at LLM scale). Block keys (vector-clustering
        // extension) uniquify only when the observed unique count makes the
        // decomposition smaller than the dense offload.
        let uniq = match keys {
            Some(rk) if !rk.is_empty() && len.is_multiple_of(rk.len()) => {
                let k = len / rk.len();
                runtime::record_hash_pass(len * 4);
                if rk.is_scalar() {
                    let (table, index, _u) = uniquify::uniquify(&full, rk.keys(), k);
                    let index = match shard_group {
                        Some(g) => Store::sharded(index, g),
                        None => Store::whole(index),
                    };
                    Some(Payload::Uniq {
                        table: AccountedVec::new(table, Device::Cpu),
                        index,
                        k,
                    })
                } else {
                    let (table, index, u) = uniquify::uniquify_wide(&full, rk.keys(), k);
                    if uniquify::compression_ratio_wide(rk.len(), k, u) > 1.0 {
                        let index = match shard_group {
                            Some(g) => Store::sharded(index, g),
                            None => Store::whole(index),
                        };
                        Some(Payload::UniqWide {
                            table: AccountedVec::new(table, Device::Cpu),
                            index,
                            k,
                        })
                    } else {
                        None // unprofitable: fall back to a dense offload
                    }
                }
            }
            _ => None,
        };
        let payload = match uniq {
            Some(p) => p,
            None => {
                if dtype.is_16bit() {
                    let bits: Vec<u16> = full
                        .iter()
                        .map(|&v| dtype.encode16(v).expect("16-bit dtype"))
                        .collect();
                    Payload::Dense16(match shard_group {
                        Some(g) => Store::sharded(bits, g),
                        None => Store::whole(bits),
                    })
                } else {
                    Payload::Dense32(match shard_group {
                        Some(g) => Store::sharded(full, g),
                        None => Store::whole(full),
                    })
                }
            }
        };

        let entry = StoredEntry {
            payload,
            storage_len: len,
            dtype,
            origin,
            cache: Mutex::new(None),
        };
        // The offload itself: this learner's stored bytes cross PCIe.
        if origin.is_gpu() {
            runtime::record_transfer(entry.local_bytes(), origin, Device::Cpu);
        }
        entry
    }

    /// Bytes this entry keeps on *this* learner's CPU.
    pub fn local_bytes(&self) -> usize {
        match &self.payload {
            Payload::Dense32(s) => s.local_bytes(),
            Payload::Dense16(s) => s.local_bytes(),
            Payload::Uniq { table, index, .. } => table.bytes() + index.local_bytes(),
            Payload::UniqWide { table, index, .. } => table.bytes() + index.local_bytes(),
        }
    }

    /// Total bytes of the compact form across all learners (what must reach
    /// the GPU again at unpack time).
    pub fn compact_total_bytes(&self) -> usize {
        match &self.payload {
            Payload::Dense32(s) => s.total_len() * 4,
            Payload::Dense16(s) => s.total_len() * 2,
            Payload::Uniq { table, index, .. } => table.bytes() + index.total_len() * 2,
            Payload::UniqWide { table, index, .. } => table.bytes() + index.total_len() * 4,
        }
    }

    /// `true` if the payload went through uniquification.
    pub fn is_uniquified(&self) -> bool {
        matches!(
            self.payload,
            Payload::Uniq { .. } | Payload::UniqWide { .. }
        )
    }

    /// `true` if the payload's main component is sharded.
    pub fn is_sharded(&self) -> bool {
        match &self.payload {
            Payload::Dense32(s) => s.is_sharded(),
            Payload::Dense16(s) => s.is_sharded(),
            Payload::Uniq { index, .. } => index.is_sharded(),
            Payload::UniqWide { index, .. } => index.is_sharded(),
        }
    }

    /// Element length of the original storage.
    pub fn storage_len(&self) -> usize {
        self.storage_len
    }

    /// Reconstruct the full storage as a contiguous `[len]` tensor on the
    /// origin device. Returns `(tensor, was_cached)`.
    ///
    /// Sharded payloads all-gather; uniquified payloads expand table rows;
    /// GPU origins pay an H2D transfer of the compact bytes — each cost is
    /// recorded once thanks to memoization.
    pub fn reconstruct_storage(&self) -> (Tensor, bool) {
        if let Some(t) = self.cache.lock().clone() {
            return (t, true);
        }
        let data: Vec<f32> = match &self.payload {
            Payload::Dense32(s) => s.gather(),
            Payload::Dense16(s) => {
                let dt = self.dtype;
                s.gather()
                    .into_iter()
                    .map(|b| dt.decode16(b).expect("16-bit dtype"))
                    .collect()
            }
            Payload::Uniq { table, index, k } => {
                let idx = index.gather();
                uniquify::reconstruct(table.as_slice(), &idx, *k)
            }
            Payload::UniqWide { table, index, k } => {
                let idx = index.gather();
                uniquify::reconstruct_wide(table.as_slice(), &idx, *k)
            }
        };
        if self.origin.is_gpu() {
            runtime::record_transfer(self.compact_total_bytes(), Device::Cpu, self.origin);
        }
        runtime::record_compute(data.len() as f64, self.origin);
        let t = Tensor::from_vec(data, &[self.storage_len], self.dtype, self.origin);
        *self.cache.lock() = Some(t.clone());
        (t, false)
    }
}

/// The pack-time product: a reference to a stored entry plus the view
/// reconstruction recipe.
#[derive(Debug)]
pub struct EdkmPacked {
    /// The (possibly shared) offloaded storage.
    pub entry: Arc<StoredEntry>,
    /// Layout of the base view over the reconstructed storage (the saved
    /// tensor's own layout for direct hits/misses; the ancestor's layout
    /// for graph-walk hits).
    pub base_layout: Layout,
    /// Invariant ops to replay on the base view (graph-walk hits only).
    pub replay: Vec<InvariantOp>,
    /// Shape the unpacked tensor must have (sanity check).
    pub expect_shape: Vec<usize>,
}

/// Apply a storage-invariant op to a reconstructed tensor.
pub fn apply_invariant(t: &Tensor, op: &InvariantOp) -> Tensor {
    match op {
        InvariantOp::Reshape { shape } => t.reshape(shape),
        InvariantOp::Transpose { d0, d1 } => t.transpose(*d0, *d1),
        InvariantOp::Contiguous => t.contiguous(),
        InvariantOp::Slice { dim, start, len } => t.slice(*dim, *start, *len),
        InvariantOp::Alias => t.clone(),
    }
}

/// Storage-id-keyed registry of offloaded entries (one per training step).
#[derive(Debug, Default)]
pub struct MarshalRegistry {
    entries: Mutex<HashMap<u64, Arc<StoredEntry>>>,
}

impl MarshalRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Entry registered for `sid`, if any.
    pub fn get(&self, sid: StorageId) -> Option<Arc<StoredEntry>> {
        self.entries.lock().get(&sid.0).cloned()
    }

    /// Register `entry` under `sid`.
    pub fn insert(&self, sid: StorageId, entry: Arc<StoredEntry>) {
        self.entries.lock().insert(sid.0, entry);
    }

    /// Number of registered storages.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_dist::LearnerGroup;
    use edkm_tensor::ops::allclose;

    #[test]
    fn dense32_roundtrip_and_bytes() {
        runtime::reset();
        let t = Tensor::randn(&[64, 4], DType::F32, Device::gpu(), 0);
        let e = StoredEntry::build(&t, None, None);
        assert_eq!(e.local_bytes(), 64 * 4 * 4);
        assert_eq!(runtime::cpu_live_bytes(), 64 * 4 * 4);
        assert!(!e.is_uniquified());
        assert!(!e.is_sharded());
        let (r, cached) = e.reconstruct_storage();
        assert!(!cached);
        assert_eq!(r.shape(), &[256]);
        assert_eq!(r.device(), Device::gpu());
        assert!(allclose(&r.reshape(&[64, 4]), &t, 0.0));
        // Second reconstruction is memoized.
        let (_r2, cached2) = e.reconstruct_storage();
        assert!(cached2);
    }

    #[test]
    fn dense16_halves_cpu_bytes() {
        runtime::reset();
        let t = Tensor::randn(&[100], DType::Bf16, Device::gpu(), 1);
        let e = StoredEntry::build(&t, None, None);
        assert_eq!(e.local_bytes(), 200, "bf16 offload is 2 bytes/element");
        let (r, _) = e.reconstruct_storage();
        assert_eq!(r.to_vec(), t.to_vec());
        assert_eq!(r.dtype(), DType::Bf16);
    }

    #[test]
    fn uniq_payload_compresses_and_roundtrips() {
        runtime::reset();
        // A [6, 2] map with 2 unique rows.
        let keys = uniquify::RowKeys::scalar(vec![10, 20, 10, 10, 20, 10]);
        let rows: Vec<f32> = keys
            .keys()
            .iter()
            .flat_map(|&k| vec![k as f32, k as f32 + 0.5])
            .collect();
        let t = Tensor::from_vec(rows.clone(), &[6, 2], DType::F32, Device::gpu());
        let e = StoredEntry::build(&t, Some(&keys), None);
        assert!(e.is_uniquified());
        // table: 2 rows × 2 cols × 4B = 16B; index: 6 × 2B = 12B.
        assert_eq!(e.local_bytes(), 16 + 12);
        let (r, _) = e.reconstruct_storage();
        assert_eq!(r.to_vec(), rows);
    }

    #[test]
    fn block_keys_use_wide_path_when_profitable() {
        runtime::reset();
        // 128 blocks drawn from only 4 distinct block keys: table has 4
        // rows, so the wide decomposition wins.
        let patterns: Vec<u16> = (0..256)
            .map(|i| [1u16, 2, 3, 4, 5, 6, 7, 8][i % 8])
            .collect();
        let keys = uniquify::RowKeys::blocks(&patterns, 2);
        let rows: Vec<f32> = keys
            .keys()
            .iter()
            .flat_map(|&k| vec![(k & 0xff) as f32, (k >> 16) as f32])
            .collect();
        let t = Tensor::from_vec(rows.clone(), &[128, 2], DType::F32, Device::gpu());
        let e = StoredEntry::build(&t, Some(&keys), None);
        assert!(e.is_uniquified());
        // table: 4 rows × 2 cols × 4B = 32B; index: 128 × 4B = 512B;
        // dense would be 128 × 2 × 4B = 1024B.
        assert_eq!(e.local_bytes(), 32 + 512);
        let (r, _) = e.reconstruct_storage();
        assert_eq!(r.to_vec(), rows);
    }

    #[test]
    fn block_keys_fall_back_to_dense_when_unprofitable() {
        runtime::reset();
        // Every block unique: uniquification would *grow* the buffer
        // (table == dense plus a u32 index), so build() stores densely.
        let patterns: Vec<u16> = (0..64u16).collect();
        let keys = uniquify::RowKeys::blocks(&patterns, 2);
        let rows: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let t = Tensor::from_vec(rows.clone(), &[32, 2], DType::F32, Device::gpu());
        let e = StoredEntry::build(&t, Some(&keys), None);
        assert!(
            !e.is_uniquified(),
            "unprofitable blocks must offload densely"
        );
        assert_eq!(e.local_bytes(), 64 * 4);
        let (r, _) = e.reconstruct_storage();
        assert_eq!(r.to_vec(), rows);
    }

    #[test]
    fn sharded_entry_stores_one_learner_share() {
        runtime::reset();
        let t = Tensor::randn(&[800], DType::F32, Device::gpu(), 2);
        let e = StoredEntry::build(&t, None, Some(LearnerGroup::new(8)));
        assert!(e.is_sharded());
        assert_eq!(e.local_bytes(), 800 * 4 / 8);
        let (r, _) = e.reconstruct_storage();
        assert_eq!(r.to_vec(), t.to_vec());
    }

    #[test]
    fn transfer_ledger_sees_offload_and_restore() {
        runtime::reset();
        let t = Tensor::randn(&[1000], DType::F32, Device::gpu(), 3);
        let e = StoredEntry::build(&t, None, None);
        let s = runtime::transfer_snapshot();
        assert_eq!(s.d2h_bytes, 4000);
        e.reconstruct_storage();
        let s = runtime::transfer_snapshot();
        assert_eq!(s.h2d_bytes, 4000);
        // Cached second unpack adds no traffic.
        e.reconstruct_storage();
        assert_eq!(runtime::transfer_snapshot().h2d_bytes, 4000);
    }

    #[test]
    fn cpu_origin_pays_no_pcie() {
        runtime::reset();
        let t = Tensor::randn(&[100], DType::F32, Device::Cpu, 4);
        let e = StoredEntry::build(&t, None, None);
        e.reconstruct_storage();
        assert_eq!(runtime::transfer_snapshot().total_bytes(), 0);
    }

    #[test]
    fn registry_roundtrip() {
        runtime::reset();
        let reg = MarshalRegistry::new();
        assert!(reg.is_empty());
        let t = Tensor::randn(&[10], DType::F32, Device::gpu(), 5);
        let e = Arc::new(StoredEntry::build(&t, None, None));
        reg.insert(t.storage_id(), Arc::clone(&e));
        assert_eq!(reg.len(), 1);
        assert!(reg.get(t.storage_id()).is_some());
        assert!(reg.get(StorageId(u64::MAX)).is_none());
    }

    #[test]
    fn apply_invariant_ops() {
        runtime::reset();
        let t = Tensor::arange(6, DType::F32, Device::Cpu).reshape(&[2, 3]);
        let r = apply_invariant(&t, &InvariantOp::Transpose { d0: 0, d1: 1 });
        assert_eq!(r.shape(), &[3, 2]);
        let r = apply_invariant(&t, &InvariantOp::Reshape { shape: vec![6] });
        assert_eq!(r.shape(), &[6]);
        let r = apply_invariant(
            &t,
            &InvariantOp::Slice {
                dim: 0,
                start: 1,
                len: 1,
            },
        );
        assert_eq!(r.to_vec(), vec![3.0, 4.0, 5.0]);
        let r = apply_invariant(&t.transpose(0, 1), &InvariantOp::Contiguous);
        assert!(r.is_contiguous());
        let r = apply_invariant(&t, &InvariantOp::Alias);
        assert_eq!(r.storage_id(), t.storage_id());
    }
}
