//! End-to-end train-time compression pipeline: fine-tune with DKM soft
//! clustering under eDKM hooks, then export a palettized model.
//!
//! This reproduces the paper's Section 3 workflow: fine-tune a pretrained
//! model on an instruction set while clustering every decoder projection to
//! `2^bits` centroids, keep embeddings at 8 bits and norms at 16 bits, and
//! ship `LUT + packed indices`.

use crate::dkm::{DkmConfig, DkmLayer};
use crate::hooks::{EdkmConfig, EdkmHooks, HookStatsSnapshot};
use crate::palettize::{native16_size_bytes, AffineQuantized, GroupedPalettized, PalettizedTensor};
use crate::uniquify;
use edkm_autograd::{push_hooks, SavedTensorHooks, Var};
use edkm_nn::{LlamaModel, LmBatch, TrainConfig, Trainer};
use std::collections::HashSet;
use std::sync::Arc;

/// What the pipeline does to each parameter class.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressSpec {
    /// Palette bits for decoder projections and the LM head (paper: 3).
    pub bits: u8,
    /// Affine bits for embedding tables (paper: 8).
    pub embedding_bits: u8,
    /// DKM clustering hyper-parameters.
    pub dkm: DkmConfig,
    /// eDKM memory-optimization configuration for the fine-tune.
    pub edkm: EdkmConfig,
    /// Optimizer/trainer settings (paper: AdamW 5e-5, clip 1.0).
    pub train: TrainConfig,
    /// Fine-tuning epochs over the provided batches (paper: 2).
    pub epochs: usize,
    /// Mixed precision: per-parameter bit overrides, matched by substring
    /// against the parameter name (first match wins). E.g.
    /// `("lm_head", 4)` keeps the output head at 4 bits while everything
    /// else uses [`CompressSpec::bits`].
    pub per_layer_bits: Vec<(String, u8)>,
    /// Per-epoch multiplier on the DKM softmax temperature τ (the DKM
    /// paper's annealing: τ shrinks over training, so the attention map
    /// sharpens and soft weights harden toward their centroids before
    /// export). 1.0 (the default) keeps τ constant.
    pub tau_anneal: f32,
    /// Rows per LUT group at export (per-grouped-channel palettization).
    /// 0 (the default) keeps one whole-matrix LUT, the paper's setting.
    pub lut_group_rows: usize,
}

impl CompressSpec {
    /// The paper's headline configuration: 3-bit weights, 8-bit embeddings,
    /// full eDKM, 2 epochs.
    pub fn paper_3bit() -> Self {
        CompressSpec {
            bits: 3,
            embedding_bits: 8,
            dkm: DkmConfig::with_bits(3),
            edkm: EdkmConfig::full(8),
            train: TrainConfig::default(),
            epochs: 2,
            per_layer_bits: Vec::new(),
            tau_anneal: 1.0,
            lut_group_rows: 0,
        }
    }

    /// Same pipeline at a different palette width.
    pub fn with_bits(bits: u8) -> Self {
        CompressSpec {
            bits,
            dkm: DkmConfig::with_bits(bits),
            ..Self::paper_3bit()
        }
    }

    /// The lossless "u16 case": projections keep a 2¹⁶-entry distinct-value
    /// palette ([`PalettizedTensor::lossless`]) and the embedding stays
    /// native, so a bf16 model round-trips bit-exactly through the
    /// container — the configuration the serving parity suite pins against
    /// dense generation.
    pub fn lossless() -> Self {
        CompressSpec {
            bits: 16,
            embedding_bits: 0,
            epochs: 0,
            ..Self::paper_3bit()
        }
    }

    /// Vector-palettization preset (extension beyond the paper): `2^bits`
    /// centroids of dimension `dim`, i.e. `bits / dim` effective bits per
    /// weight — e.g. `vector(4, 2)` reaches 2 bits/weight.
    pub fn vector(bits: u8, dim: usize) -> Self {
        CompressSpec {
            bits,
            dkm: DkmConfig::with_vector(bits, dim),
            ..Self::paper_3bit()
        }
    }

    /// Effective palette bits for a named parameter.
    pub fn bits_for(&self, name: &str) -> u8 {
        self.per_layer_bits
            .iter()
            .find(|(pat, _)| name.contains(pat.as_str()))
            .map(|&(_, b)| b)
            .unwrap_or(self.bits)
    }

    /// DKM config at the effective bit width of `name`.
    pub fn dkm_for(&self, name: &str) -> DkmConfig {
        DkmConfig {
            bits: self.bits_for(name),
            ..self.dkm
        }
    }

    /// DKM config for `name` at `epoch` (0-based), with the annealed
    /// temperature `τ · tau_anneal^epoch`.
    pub fn dkm_for_epoch(&self, name: &str, epoch: usize) -> DkmConfig {
        let mut cfg = self.dkm_for(name);
        cfg.temperature *= self.tau_anneal.powi(epoch as i32).max(1e-6);
        cfg
    }
}

/// One compressed parameter.
#[derive(Debug, Clone)]
pub enum CompressedTensor {
    /// Clustered projection: LUT + packed indices.
    Palettized(PalettizedTensor),
    /// Clustered projection with per-row-group LUTs (extension:
    /// per-grouped-channel palettization).
    PalettizedGrouped(GroupedPalettized),
    /// Affine-quantized embedding.
    Affine(AffineQuantized),
    /// Kept at 16 bits (norm gains).
    Native {
        /// Raw values.
        values: Vec<f32>,
        /// Original shape.
        shape: Vec<usize>,
    },
}

impl CompressedTensor {
    /// Serialized bytes of this entry.
    pub fn size_bytes(&self) -> usize {
        match self {
            CompressedTensor::Palettized(p) => p.size_bytes(),
            CompressedTensor::PalettizedGrouped(g) => g.size_bytes(),
            CompressedTensor::Affine(a) => a.size_bytes(),
            CompressedTensor::Native { values, .. } => native16_size_bytes(values.len()),
        }
    }

    /// Decode to dense values.
    pub fn decode_values(&self) -> Vec<f32> {
        match self {
            CompressedTensor::Palettized(p) => p.decode().to_vec(),
            CompressedTensor::PalettizedGrouped(g) => g.decode().to_vec(),
            CompressedTensor::Affine(a) => a.decode().to_vec(),
            CompressedTensor::Native { values, .. } => values.clone(),
        }
    }
}

/// A fully compressed model: every parameter by name.
#[derive(Debug, Clone, Default)]
pub struct CompressedModel {
    entries: Vec<(String, CompressedTensor)>,
}

impl CompressedModel {
    /// Rebuild from entries (used by deserialization).
    pub fn from_entries(entries: Vec<(String, CompressedTensor)>) -> Self {
        CompressedModel { entries }
    }

    /// The entries in registration order.
    pub fn entries(&self) -> &[(String, CompressedTensor)] {
        &self.entries
    }

    /// Total serialized bytes.
    pub fn size_bytes(&self) -> usize {
        self.entries.iter().map(|(_, e)| e.size_bytes()).sum()
    }

    /// Total serialized bytes when palettized entries ship Huffman-coded
    /// indices (extension; other entry kinds are unchanged).
    pub fn entropy_size_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|(_, e)| match e {
                CompressedTensor::Palettized(p) => p.entropy_size_bytes(),
                CompressedTensor::PalettizedGrouped(g) => g.entropy_size_bytes(),
                other => other.size_bytes(),
            })
            .sum()
    }

    /// Write decoded values back into a live model's parameters (for
    /// evaluating the compressed model).
    ///
    /// # Panics
    ///
    /// Panics if a named parameter is missing or has the wrong size.
    pub fn apply_to(&self, model: &LlamaModel) {
        let params = model.named_params();
        for (name, entry) in &self.entries {
            let (_, var) = params
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("model has no parameter named {name}"));
            let values = entry.decode_values();
            assert_eq!(
                values.len(),
                var.value().numel(),
                "size mismatch for {name}"
            );
            var.value().apply_inplace(|i, _| values[i]);
        }
    }
}

/// Result of a fine-tune-and-compress run.
#[derive(Debug)]
pub struct CompressResult {
    /// The exported compressed model.
    pub compressed: CompressedModel,
    /// Per-step training losses.
    pub losses: Vec<f32>,
    /// Hook statistics of the final training step.
    pub final_step_stats: Option<HookStatsSnapshot>,
}

/// The train-time compression pipeline.
#[derive(Debug, Clone)]
pub struct CompressionPipeline {
    spec: CompressSpec,
}

impl CompressionPipeline {
    /// Pipeline with the given spec.
    pub fn new(spec: CompressSpec) -> Self {
        CompressionPipeline { spec }
    }

    /// The spec.
    pub fn spec(&self) -> &CompressSpec {
        &self.spec
    }

    /// Fine-tune `model` on `batches` with DKM clustering substituted into
    /// every clusterable projection, then export the compressed model.
    pub fn fine_tune_and_compress(
        &self,
        model: &LlamaModel,
        batches: &[LmBatch],
    ) -> CompressResult {
        let clusterable: HashSet<String> = model.clusterable_names().into_iter().collect();
        let params = model.params();
        let mut trainer = Trainer::new(self.spec.train);
        let mut final_step_stats = None;

        for epoch in 0..self.spec.epochs {
            for batch in batches {
                uniquify::clear_annotations();
                let hooks = Arc::new(EdkmHooks::new(self.spec.edkm));
                let stats_handle = Arc::clone(&hooks);
                {
                    let _guard = push_hooks(hooks as Arc<dyn SavedTensorHooks>);
                    let hook = |name: &str, w: &Var| -> Var {
                        if clusterable.contains(name) {
                            DkmLayer::new(self.spec.dkm_for_epoch(name, epoch))
                                .cluster(w)
                                .soft
                        } else {
                            w.clone()
                        }
                    };
                    trainer.step(model, batch, &params, Some(&hook));
                }
                final_step_stats = Some(stats_handle.stats());
            }
        }
        uniquify::clear_annotations();

        CompressResult {
            compressed: self.export(model),
            losses: trainer.losses().to_vec(),
            final_step_stats,
        }
    }

    /// Export the current parameters of `model` as a compressed model
    /// (no training).
    ///
    /// # Panics
    ///
    /// Panics if the spec asks for a lossless (≥ 16-bit) palette on a
    /// parameter with more than 2¹⁶ distinct values (e.g. a large f32
    /// model) — 16-bit source weights always fit.
    pub fn export(&self, model: &LlamaModel) -> CompressedModel {
        let clusterable: HashSet<String> = model.clusterable_names().into_iter().collect();
        let embed_name = model.embedding().name().to_string();
        let mut entries = Vec::new();
        for (name, var) in model.named_params() {
            let value = var.value().clone();
            let entry = if clusterable.contains(&name) {
                if self.spec.bits_for(&name) >= 16 {
                    // The lossless u16 case: no clustering, the palette is
                    // the distinct-value set itself.
                    CompressedTensor::Palettized(PalettizedTensor::lossless(&value))
                } else {
                    let dkm = DkmLayer::new(self.spec.dkm_for(&name));
                    if self.spec.lut_group_rows > 0 && value.rank() == 2 {
                        CompressedTensor::PalettizedGrouped(
                            dkm.palettize_grouped(&value, self.spec.lut_group_rows),
                        )
                    } else {
                        CompressedTensor::Palettized(dkm.palettize(&value))
                    }
                }
            } else if name == embed_name && self.spec.embedding_bits > 0 {
                CompressedTensor::Affine(AffineQuantized::encode(&value, self.spec.embedding_bits))
            } else {
                CompressedTensor::Native {
                    values: value.to_vec(),
                    shape: value.shape().to_vec(),
                }
            };
            entries.push((name, entry));
        }
        CompressedModel { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_nn::LlamaConfig;
    use edkm_tensor::{runtime, DType, Device};

    fn tiny_model() -> LlamaModel {
        LlamaModel::new(LlamaConfig::tiny(), DType::Bf16, Device::Cpu, 0)
    }

    fn quick_spec() -> CompressSpec {
        let mut spec = CompressSpec::with_bits(3);
        spec.epochs = 1;
        spec.edkm = EdkmConfig::full(2);
        spec.dkm.iters = 3;
        spec
    }

    #[test]
    fn export_compresses_every_parameter() {
        runtime::reset();
        let model = tiny_model();
        let pipeline = CompressionPipeline::new(quick_spec());
        let compressed = pipeline.export(&model);
        assert_eq!(compressed.entries().len(), model.named_params().len());
        // Projections palettized, embedding affine, norms native.
        let mut pal = 0;
        let mut aff = 0;
        let mut nat = 0;
        for (name, e) in compressed.entries() {
            match e {
                CompressedTensor::Palettized(p) => {
                    pal += 1;
                    assert_eq!(p.bits(), 3, "{name}");
                }
                CompressedTensor::PalettizedGrouped(_) => {
                    panic!("{name}: grouped LUTs need lut_group_rows > 0")
                }
                CompressedTensor::Affine(a) => {
                    aff += 1;
                    assert_eq!(a.bits(), 8, "{name}");
                }
                CompressedTensor::Native { .. } => nat += 1,
            }
        }
        assert_eq!(pal, 8); // 7 per layer + lm_head
        assert_eq!(aff, 1); // embedding
        assert_eq!(nat, 3); // 2 layer norms + final norm
    }

    #[test]
    fn compressed_size_beats_native_16bit() {
        runtime::reset();
        let model = tiny_model();
        let pipeline = CompressionPipeline::new(quick_spec());
        let compressed = pipeline.export(&model);
        let native = model.native_size_bytes();
        let ratio = native as f64 / compressed.size_bytes() as f64;
        assert!(
            ratio > 2.0,
            "3-bit model must be much smaller: {native} -> {} ({ratio:.2}x)",
            compressed.size_bytes()
        );
    }

    #[test]
    fn apply_to_restores_lut_values() {
        runtime::reset();
        let model = tiny_model();
        let pipeline = CompressionPipeline::new(quick_spec());
        let compressed = pipeline.export(&model);
        let target = tiny_model();
        compressed.apply_to(&target);
        // Every projection weight now takes at most 8 distinct values.
        for layer in target.layers() {
            for p in layer.projections() {
                let unique: std::collections::HashSet<u32> = p
                    .weight()
                    .value()
                    .to_vec()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert!(
                    unique.len() <= 8,
                    "{} has {} values",
                    p.name(),
                    unique.len()
                );
            }
        }
    }

    #[test]
    fn fine_tune_and_compress_trains_and_reports_stats() {
        runtime::reset();
        let model = tiny_model();
        let batches = vec![LmBatch::new(vec![
            vec![1, 2, 3, 4, 1, 2],
            vec![3, 4, 1, 2, 3, 4],
        ])];
        let pipeline = CompressionPipeline::new(quick_spec());
        let result = pipeline.fine_tune_and_compress(&model, &batches);
        assert_eq!(result.losses.len(), 1);
        assert!(result.losses[0].is_finite());
        let stats = result.final_step_stats.expect("stats recorded");
        assert!(stats.packs > 0);
        assert!(
            stats.direct_hits + stats.walk_hits > 0,
            "DKM's repeated attention-map saves must dedup: {stats:?}"
        );
        assert!(result.compressed.size_bytes() > 0);
    }

    #[test]
    fn per_layer_bit_overrides_apply() {
        runtime::reset();
        let model = tiny_model();
        let mut spec = quick_spec();
        spec.per_layer_bits = vec![("lm_head".into(), 5), ("q_proj".into(), 2)];
        assert_eq!(spec.bits_for("lm_head"), 5);
        assert_eq!(spec.bits_for("layers.0.attn.q_proj"), 2);
        assert_eq!(spec.bits_for("layers.0.attn.k_proj"), 3);
        let compressed = CompressionPipeline::new(spec).export(&model);
        for (name, e) in compressed.entries() {
            if let CompressedTensor::Palettized(p) = e {
                let expect = if name.contains("lm_head") {
                    5
                } else if name.contains("q_proj") {
                    2
                } else {
                    3
                };
                assert_eq!(p.bits(), expect, "{name}");
            }
        }
    }

    #[test]
    fn entropy_size_never_beats_information_but_tracks_packed() {
        runtime::reset();
        let model = tiny_model();
        let compressed = CompressionPipeline::new(quick_spec()).export(&model);
        let packed = compressed.size_bytes();
        let entropy = compressed.entropy_size_bytes();
        // Non-palettized entries are identical; palettized entries pay at
        // most the code-length table + ≤1 bit/idx over entropy, and near-
        // uniform DKM assignments sit close to the fixed width.
        assert!(entropy > 0);
        assert!(
            (entropy as f64) < packed as f64 * 1.25,
            "entropy-coded {entropy} should stay near packed {packed}"
        );
    }

    #[test]
    fn tau_anneal_schedule_math() {
        let mut spec = quick_spec();
        spec.dkm.temperature = 0.08;
        spec.tau_anneal = 0.5;
        assert!((spec.dkm_for_epoch("q_proj", 0).temperature - 0.08).abs() < 1e-7);
        assert!((spec.dkm_for_epoch("q_proj", 1).temperature - 0.04).abs() < 1e-7);
        assert!((spec.dkm_for_epoch("q_proj", 2).temperature - 0.02).abs() < 1e-7);
        // Default: constant.
        let spec = quick_spec();
        assert_eq!(
            spec.dkm_for_epoch("q_proj", 7).temperature,
            spec.dkm.temperature
        );
    }

    #[test]
    fn annealed_fine_tune_runs_and_exports() {
        runtime::reset();
        let model = tiny_model();
        let batches = vec![LmBatch::new(vec![vec![1, 2, 3, 4, 1, 2]])];
        let mut spec = quick_spec();
        spec.epochs = 3;
        spec.tau_anneal = 0.5; // τ halves each epoch: assignments sharpen
        let result = CompressionPipeline::new(spec).fine_tune_and_compress(&model, &batches);
        assert_eq!(result.losses.len(), 3);
        assert!(result.losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn vector_clustering_pipeline_roundtrips() {
        runtime::reset();
        let model = tiny_model();
        let mut spec = quick_spec();
        spec.dkm.cluster_dim = 2; // block palettization: 2-vectors per entry
        let compressed = CompressionPipeline::new(spec).export(&model);
        let target = tiny_model();
        compressed.apply_to(&target);
        // 8 centroids of 2 values: at most 16 distinct scalars per matrix.
        let w = target.layers()[0].projections()[0]
            .weight()
            .value()
            .to_vec();
        let uniq: std::collections::HashSet<u32> = w.iter().map(|v| v.to_bits()).collect();
        assert!(uniq.len() <= 16, "vector palette too rich: {}", uniq.len());
        // Serialization handles vector palettes too.
        let back = CompressedModel::from_bytes(&compressed.to_bytes()).unwrap();
        assert_eq!(back.entries().len(), compressed.entries().len());
    }

    #[test]
    fn grouped_lut_export_roundtrips_through_bytes() {
        runtime::reset();
        let model = tiny_model();
        let mut spec = quick_spec();
        spec.lut_group_rows = 4; // per-grouped-channel palettization
        let compressed = CompressionPipeline::new(spec).export(&model);
        let grouped_count = compressed
            .entries()
            .iter()
            .filter(|(_, e)| matches!(e, CompressedTensor::PalettizedGrouped(_)))
            .count();
        assert_eq!(grouped_count, 8, "all projections become grouped entries");

        // Serialization handles the grouped tag.
        let back = CompressedModel::from_bytes(&compressed.to_bytes()).unwrap();
        for ((n1, e1), (n2, e2)) in compressed.entries().iter().zip(back.entries()) {
            assert_eq!(n1, n2);
            assert_eq!(e1.decode_values(), e2.decode_values(), "entry {n1}");
        }

        // And apply_to restores a runnable model with per-group palettes.
        let target = tiny_model();
        back.apply_to(&target);
        let w = target.layers()[0].projections()[0].weight().value();
        let uniq: std::collections::HashSet<u32> = w.to_vec().iter().map(|v| v.to_bits()).collect();
        // tiny d_model=8 rows split into groups of 4: 2 groups × ≤8 values.
        assert!(uniq.len() <= 16, "got {} distinct values", uniq.len());
    }

    #[test]
    fn fine_tuning_with_clustering_reduces_loss() {
        runtime::reset();
        let model = tiny_model();
        let batch = LmBatch::new(vec![vec![1, 2, 3, 1, 2, 3, 1, 2]]);
        let mut spec = quick_spec();
        spec.epochs = 25;
        spec.train.optim.lr = 5e-3;
        let pipeline = CompressionPipeline::new(spec);
        let result = pipeline.fine_tune_and_compress(&model, &[batch]);
        let first = result.losses[0];
        let last = *result.losses.last().unwrap();
        assert!(
            last < first,
            "clustered fine-tuning should reduce loss: {first} -> {last}"
        );
    }
}
