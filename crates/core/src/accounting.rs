//! Byte-accurate host buffers for offloaded payloads.
//!
//! Offloaded saved tensors are not `Tensor`s (an index list is `u16` data,
//! not `f32`), but their bytes must still show up in the CPU pool for the
//! Table 1/2 measurements to be honest. [`AccountedVec`] is a `Vec<T>` that
//! registers `len × size_of::<T>()` with a device pool on creation and
//! deregisters on drop.

use edkm_tensor::pool::PoolCell;
use edkm_tensor::{runtime, Device};
use std::sync::Arc;

/// A host-side buffer whose bytes are charged to a device pool.
#[derive(Debug)]
pub struct AccountedVec<T: Copy> {
    data: Vec<T>,
    bytes: usize,
    pool: Arc<PoolCell>,
}

impl<T: Copy> AccountedVec<T> {
    /// Take ownership of `data`, charging its bytes to `device`'s pool of
    /// the current thread runtime.
    pub fn new(data: Vec<T>, device: Device) -> Self {
        let bytes = data.len() * std::mem::size_of::<T>();
        let pool = runtime::pool(device);
        pool.alloc(bytes);
        AccountedVec { data, bytes, pool }
    }

    /// The buffer contents.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes charged to the pool.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl<T: Copy> Drop for AccountedVec<T> {
    fn drop(&mut self) {
        self.pool.free(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u16_buffer_charges_two_bytes_per_element() {
        runtime::reset();
        {
            let v = AccountedVec::new(vec![0u16; 100], Device::Cpu);
            assert_eq!(runtime::cpu_live_bytes(), 200);
            assert_eq!(v.bytes(), 200);
            assert_eq!(v.len(), 100);
            assert!(!v.is_empty());
        }
        assert_eq!(runtime::cpu_live_bytes(), 0);
        assert_eq!(runtime::peak_bytes(Device::Cpu), 200);
    }

    #[test]
    fn f32_buffer_charges_four_bytes() {
        runtime::reset();
        let v = AccountedVec::new(vec![1.0f32, 2.0], Device::Cpu);
        assert_eq!(runtime::cpu_live_bytes(), 8);
        assert_eq!(v.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn empty_buffer_is_free() {
        runtime::reset();
        let v: AccountedVec<u16> = AccountedVec::new(vec![], Device::Cpu);
        assert_eq!(runtime::cpu_live_bytes(), 0);
        assert!(v.is_empty());
    }
}
