//! Palettized inference: run a linear projection *directly* from the
//! compressed representation (LUT + packed indices), the way the paper's
//! target accelerators consume weight-clustered models ("a lookup table and
//! a list of low-precision indices … consumed by modern inference
//! accelerators").
//!
//! For scalar clustering the matvec `y = x Wᵀ` factors through the palette:
//! for each output row, accumulate `Σ_j x_j · lut[idx[row, j]]` — but since
//! `lut` has only `k ≤ 256` values, we can instead accumulate *per-centroid
//! partial sums* `b[c] = Σ_{j: idx=c} x_j` and finish with `Σ_c lut[c]·b[c]`
//! (k multiplies per row instead of `in` multiplies). This is the classic
//! LUT-GEMM trick.

use crate::palettize::PalettizedTensor;
use edkm_tensor::{runtime, DType, Tensor};
use rayon::prelude::*;

/// Multiply-accumulate count below which [`PalettizedLinear::forward_batch`]
/// stays on the serial path (mirrors the kernel threshold in
/// `edkm_tensor::ops`): spawning workers costs more than it saves on small
/// layers.
const PAR_WORK_THRESHOLD: usize = 1 << 17;

/// A linear layer evaluated straight from its palettized weights.
#[derive(Debug, Clone)]
pub struct PalettizedLinear {
    weights: PalettizedTensor,
    out_features: usize,
    in_features: usize,
    /// Unpacked indices, row-major `[out, in]` (cached for speed).
    indices: Vec<u32>,
}

impl PalettizedLinear {
    /// Wrap a palettized `[out, in]` scalar-clustered weight.
    ///
    /// # Panics
    ///
    /// Panics if the palette is not 2-D scalar-clustered.
    pub fn new(weights: PalettizedTensor) -> Self {
        assert_eq!(
            weights.shape().len(),
            2,
            "palettized linear expects [out, in]"
        );
        let (out_features, in_features) = (weights.shape()[0], weights.shape()[1]);
        let indices = weights.indices();
        assert_eq!(
            indices.len(),
            out_features * in_features,
            "palette must be scalar-clustered (cluster_dim = 1)"
        );
        PalettizedLinear {
            weights,
            out_features,
            in_features,
            indices,
        }
    }

    /// Output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// The compressed weights.
    pub fn weights(&self) -> &PalettizedTensor {
        &self.weights
    }

    /// Serialized parameter bytes of this layer.
    pub fn size_bytes(&self) -> usize {
        self.weights.size_bytes()
    }

    /// `y = x Wᵀ` for `x: [n, in]`, computed via per-centroid accumulation
    /// (k multiplies per output instead of `in`).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[n, in]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 2, "input must be [n, in]");
        assert_eq!(x.shape()[1], self.in_features, "input width mismatch");
        let n = x.shape()[0];
        let k = self.weights.k();
        let lut = self.weights.lut();
        let xd = x.to_vec();
        let mut out = vec![0.0f32; n * self.out_features];
        let mut bins = vec![0.0f32; k];
        if self.out_features > 0 {
            for (i, orow) in out.chunks_mut(self.out_features).enumerate() {
                let xrow = &xd[i * self.in_features..(i + 1) * self.in_features];
                self.forward_row(xrow, orow, lut, &mut bins);
            }
        }
        // The LUT trick costs |W| adds + k·out multiplies instead of 2|W|.
        runtime::record_compute(
            (n * self.out_features * (self.in_features + k)) as f64,
            x.device(),
        );
        Tensor::from_vec(out, &[n, self.out_features], DType::F32, x.device())
    }

    /// One batch row of the LUT-GEMM: per-centroid partial sums, then the
    /// `k`-wide dot with the palette. Identical accumulation order to
    /// [`PalettizedLinear::forward`], so results match it bit for bit.
    fn forward_row(&self, xrow: &[f32], orow: &mut [f32], lut: &[f32], bins: &mut [f32]) {
        for (r, o) in orow.iter_mut().enumerate() {
            bins.iter_mut().for_each(|b| *b = 0.0);
            let idx_row = &self.indices[r * self.in_features..(r + 1) * self.in_features];
            for (&xv, &c) in xrow.iter().zip(idx_row) {
                bins[c as usize] += xv;
            }
            let mut acc = 0.0f32;
            for (b, &l) in bins.iter().zip(lut) {
                acc += b * l;
            }
            *o = acc;
        }
    }

    /// Batched `y = x Wᵀ` for `x: [n, in]`, with the per-row LUT-GEMM
    /// partial sums computed across worker threads.
    ///
    /// Bit-identical to [`PalettizedLinear::forward`]; every FLOP is charged
    /// once to the caller's runtime (workers do pure slice math). Rows are
    /// independent, so the split is by batch row.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[n, in]`.
    pub fn forward_batch(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 2, "input must be [n, in]");
        assert_eq!(x.shape()[1], self.in_features, "input width mismatch");
        let n = x.shape()[0];
        let k = self.weights.k();
        if self.out_features == 0
            || n * self.out_features * (self.in_features + k) < PAR_WORK_THRESHOLD
        {
            return self.forward(x);
        }
        let lut = self.weights.lut();
        let xd = x.to_vec();
        let mut out = vec![0.0f32; n * self.out_features];
        out.par_chunks_mut(self.out_features)
            .enumerate()
            .for_each(|(i, orow)| {
                let xrow = &xd[i * self.in_features..(i + 1) * self.in_features];
                let mut bins = vec![0.0f32; k];
                self.forward_row(xrow, orow, lut, &mut bins);
            });
        runtime::record_compute(
            (n * self.out_features * (self.in_features + k)) as f64,
            x.device(),
        );
        Tensor::from_vec(out, &[n, self.out_features], DType::F32, x.device())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dkm::{DkmConfig, DkmLayer};
    use edkm_tensor::{ops as t, Device};

    fn palettized_pair(seed: u64) -> (Tensor, PalettizedLinear) {
        runtime::reset();
        let w = Tensor::randn(&[12, 20], DType::Bf16, Device::Cpu, seed).map(|v| v * 0.05);
        let dkm = DkmLayer::new(DkmConfig::with_bits(3));
        let pal = dkm.palettize(&w);
        (w, PalettizedLinear::new(pal))
    }

    #[test]
    fn forward_matches_decoded_matmul_exactly() {
        let (_w, lin) = palettized_pair(0);
        let x = Tensor::randn(&[5, 20], DType::F32, Device::Cpu, 1);
        let direct = lin.forward(&x);
        let decoded = lin.weights().decode();
        let reference = t::matmul(&x, &decoded.t());
        assert!(
            t::max_abs_diff(&direct, &reference) < 1e-4,
            "LUT-GEMM must match dense matmul on the decoded weights"
        );
        assert_eq!(direct.shape(), &[5, 12]);
    }

    #[test]
    fn forward_approximates_original_weights() {
        let (w, lin) = palettized_pair(2);
        let x = Tensor::randn(&[4, 20], DType::F32, Device::Cpu, 3);
        let approx = lin.forward(&x);
        let exact = t::matmul(&x, &w.t());
        // 3-bit clustering: close but not exact.
        let rel = t::max_abs_diff(&approx, &exact) / t::l2_norm(&exact).max(1e-9);
        assert!(rel < 0.5, "palettized forward too far off: {rel}");
        assert!(
            t::max_abs_diff(&approx, &exact) > 0.0,
            "must not be bit-identical"
        );
    }

    #[test]
    fn accessors() {
        let (_w, lin) = palettized_pair(4);
        assert_eq!(lin.out_features(), 12);
        assert_eq!(lin.in_features(), 20);
        assert!(lin.size_bytes() < 12 * 20 * 2, "smaller than bf16");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_input_width_panics() {
        let (_w, lin) = palettized_pair(5);
        let x = Tensor::zeros(&[2, 7], DType::F32, Device::Cpu);
        lin.forward(&x);
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let (_w, lin) = palettized_pair(6);
        let x = Tensor::zeros(&[3, 20], DType::F32, Device::Cpu);
        assert!(lin.forward(&x).to_vec().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn forward_batch_is_bit_identical_to_forward() {
        let (_w, lin) = palettized_pair(7);
        // Small batch (serial fallback) and large batch (threaded path).
        for n in [33usize, 512] {
            let x = Tensor::randn(&[n, 20], DType::F32, Device::Cpu, 8);
            assert_eq!(
                lin.forward(&x).to_vec(),
                lin.forward_batch(&x).to_vec(),
                "threaded LUT-GEMM must match the serial loop bit for bit"
            );
        }
    }

    #[test]
    fn zero_output_features_yield_empty_result() {
        runtime::reset();
        let w = Tensor::zeros(&[0, 5], DType::F32, Device::Cpu);
        let centroids = Tensor::from_vec(vec![0.0, 1.0], &[2, 1], DType::F32, Device::Cpu);
        let lin = PalettizedLinear::new(crate::palettize::PalettizedTensor::from_nearest(
            &w, &centroids, 1, 1,
        ));
        let x = Tensor::randn(&[3, 5], DType::F32, Device::Cpu, 0);
        assert_eq!(lin.forward(&x).shape(), &[3, 0]);
        assert_eq!(lin.forward_batch(&x).shape(), &[3, 0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn forward_batch_wrong_width_panics() {
        let (_w, lin) = palettized_pair(9);
        lin.forward_batch(&Tensor::zeros(&[2, 7], DType::F32, Device::Cpu));
    }

    #[test]
    fn forward_batch_accounts_every_flop_exactly_once_across_threads() {
        use std::sync::Arc;

        // Reference: one forward_batch on one thread.
        runtime::reset();
        let (_w, lin) = palettized_pair(10); // resets the runtime again
        let lin = Arc::new(lin);
        // Batch 512 clears PAR_WORK_THRESHOLD, so every call below also
        // fans out its own worker threads.
        runtime::reset_peak(Device::Cpu);
        let t0 = runtime::sim_seconds();
        let allocs0 = runtime::pool(Device::Cpu).alloc_count();
        // The measured unit matches what each thread below does: allocate
        // the input, run the batch, drop both.
        let x = Tensor::randn(&[512, 20], DType::F32, Device::Cpu, 11);
        drop(lin.forward_batch(&x));
        drop(x);
        let one_call_seconds = runtime::sim_seconds() - t0;
        let one_call_allocs = runtime::pool(Device::Cpu).alloc_count() - allocs0;
        assert!(one_call_seconds > 0.0);

        // Four threads, all bound to one fresh runtime, each running the
        // same forward_batch (which itself fans out worker threads). The
        // shared ledgers must account exactly 4× one call: no lost updates,
        // no double counting, no bytes left behind.
        let rt = edkm_tensor::runtime::Runtime::new();
        let workers = 4;
        std::thread::scope(|s| {
            for _ in 0..workers {
                let lin = Arc::clone(&lin);
                let rt = rt.clone();
                s.spawn(move || {
                    let _g = runtime::bind(&rt);
                    let x = Tensor::randn(&[512, 20], DType::F32, Device::Cpu, 11);
                    drop(lin.forward_batch(&x));
                });
            }
        });
        let _g = runtime::bind(&rt);
        // The clock advance per call is a deterministic nanosecond quantum,
        // so 4 concurrent calls must land on exactly 4x one call.
        assert!(
            (runtime::sim_seconds() - workers as f64 * one_call_seconds).abs() < 1e-12,
            "compute ledger lost or duplicated work: {} vs {}",
            runtime::sim_seconds(),
            workers as f64 * one_call_seconds
        );
        // Every input + output allocation of every thread hit the shared
        // pool (one x + one output per call), and every byte drained.
        assert_eq!(
            runtime::pool(Device::Cpu).alloc_count(),
            workers * one_call_allocs,
            "pool must see each thread's allocations exactly once"
        );
        assert_eq!(runtime::cpu_live_bytes(), 0, "all buffers must drain");
    }
}
