//! Palettized inference: run a linear projection *directly* from the
//! compressed representation (LUT + packed indices), the way the paper's
//! target accelerators consume weight-clustered models ("a lookup table and
//! a list of low-precision indices … consumed by modern inference
//! accelerators").
//!
//! For scalar clustering the matvec `y = x Wᵀ` factors through the palette:
//! for each output row, accumulate `Σ_j x_j · lut[idx[row, j]]` — but since
//! `lut` has only `k ≤ 256` values, we can instead accumulate *per-centroid
//! partial sums* `b[c] = Σ_{j: idx=c} x_j` and finish with `Σ_c lut[c]·b[c]`
//! (k multiplies per row instead of `in` multiplies). This is the classic
//! LUT-GEMM trick.

use crate::palettize::PalettizedTensor;
use edkm_tensor::{runtime, DType, Tensor};

/// A linear layer evaluated straight from its palettized weights.
#[derive(Debug, Clone)]
pub struct PalettizedLinear {
    weights: PalettizedTensor,
    out_features: usize,
    in_features: usize,
    /// Unpacked indices, row-major `[out, in]` (cached for speed).
    indices: Vec<u32>,
}

impl PalettizedLinear {
    /// Wrap a palettized `[out, in]` scalar-clustered weight.
    ///
    /// # Panics
    ///
    /// Panics if the palette is not 2-D scalar-clustered.
    pub fn new(weights: PalettizedTensor) -> Self {
        assert_eq!(weights.shape().len(), 2, "palettized linear expects [out, in]");
        let (out_features, in_features) = (weights.shape()[0], weights.shape()[1]);
        let indices = weights.indices();
        assert_eq!(
            indices.len(),
            out_features * in_features,
            "palette must be scalar-clustered (cluster_dim = 1)"
        );
        PalettizedLinear {
            weights,
            out_features,
            in_features,
            indices,
        }
    }

    /// Output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// The compressed weights.
    pub fn weights(&self) -> &PalettizedTensor {
        &self.weights
    }

    /// Serialized parameter bytes of this layer.
    pub fn size_bytes(&self) -> usize {
        self.weights.size_bytes()
    }

    /// `y = x Wᵀ` for `x: [n, in]`, computed via per-centroid accumulation
    /// (k multiplies per output instead of `in`).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[n, in]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 2, "input must be [n, in]");
        assert_eq!(x.shape()[1], self.in_features, "input width mismatch");
        let n = x.shape()[0];
        let k = self.weights.k();
        let lut = self.weights.lut();
        let xd = x.to_vec();
        let mut out = vec![0.0f32; n * self.out_features];
        let mut bins = vec![0.0f32; k];
        for i in 0..n {
            let xrow = &xd[i * self.in_features..(i + 1) * self.in_features];
            for r in 0..self.out_features {
                bins.iter_mut().for_each(|b| *b = 0.0);
                let idx_row = &self.indices[r * self.in_features..(r + 1) * self.in_features];
                for (&xv, &c) in xrow.iter().zip(idx_row) {
                    bins[c as usize] += xv;
                }
                let mut acc = 0.0f32;
                for (b, &l) in bins.iter().zip(lut) {
                    acc += b * l;
                }
                out[i * self.out_features + r] = acc;
            }
        }
        // The LUT trick costs |W| adds + k·out multiplies instead of 2|W|.
        runtime::record_compute(
            (n * self.out_features * (self.in_features + k)) as f64,
            x.device(),
        );
        Tensor::from_vec(out, &[n, self.out_features], DType::F32, x.device())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dkm::{DkmConfig, DkmLayer};
    use edkm_tensor::{ops as t, Device};

    fn palettized_pair(seed: u64) -> (Tensor, PalettizedLinear) {
        runtime::reset();
        let w = Tensor::randn(&[12, 20], DType::Bf16, Device::Cpu, seed).map(|v| v * 0.05);
        let dkm = DkmLayer::new(DkmConfig::with_bits(3));
        let pal = dkm.palettize(&w);
        (w, PalettizedLinear::new(pal))
    }

    #[test]
    fn forward_matches_decoded_matmul_exactly() {
        let (_w, lin) = palettized_pair(0);
        let x = Tensor::randn(&[5, 20], DType::F32, Device::Cpu, 1);
        let direct = lin.forward(&x);
        let decoded = lin.weights().decode();
        let reference = t::matmul(&x, &decoded.t());
        assert!(
            t::max_abs_diff(&direct, &reference) < 1e-4,
            "LUT-GEMM must match dense matmul on the decoded weights"
        );
        assert_eq!(direct.shape(), &[5, 12]);
    }

    #[test]
    fn forward_approximates_original_weights() {
        let (w, lin) = palettized_pair(2);
        let x = Tensor::randn(&[4, 20], DType::F32, Device::Cpu, 3);
        let approx = lin.forward(&x);
        let exact = t::matmul(&x, &w.t());
        // 3-bit clustering: close but not exact.
        let rel = t::max_abs_diff(&approx, &exact) / t::l2_norm(&exact).max(1e-9);
        assert!(rel < 0.5, "palettized forward too far off: {rel}");
        assert!(t::max_abs_diff(&approx, &exact) > 0.0, "must not be bit-identical");
    }

    #[test]
    fn accessors() {
        let (_w, lin) = palettized_pair(4);
        assert_eq!(lin.out_features(), 12);
        assert_eq!(lin.in_features(), 20);
        assert!(lin.size_bytes() < 12 * 20 * 2, "smaller than bf16");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_input_width_panics() {
        let (_w, lin) = palettized_pair(5);
        let x = Tensor::zeros(&[2, 7], DType::F32, Device::Cpu);
        lin.forward(&x);
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let (_w, lin) = palettized_pair(6);
        let x = Tensor::zeros(&[3, 20], DType::F32, Device::Cpu);
        assert!(lin.forward(&x).to_vec().iter().all(|&v| v == 0.0));
    }
}
