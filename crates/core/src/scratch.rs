//! Reusable scratch-buffer arena for the serving hot path.
//!
//! Steady-state decode runs the same forward shape every step (one token
//! per in-flight sequence), so every temporary the decoder needs — hidden
//! states, projection outputs, attention context, the kernel's activation
//! LUT tables, logits — can be recycled instead of reallocated. A
//! [`ScratchArena`] is a free list of `f32` buffers with best-fit checkout:
//! once the arena has seen one step of a given shape, later steps of the
//! same shape perform **zero heap allocations** (the property
//! `tests/alloc_steady_state.rs` pins via the [`ScratchArena::grows`]
//! counter).
//!
//! The arena is deliberately *not* charged to the device memory pool: it is
//! reusable scratch owned by the scheduler, not model or KV state, and the
//! pool-conservation invariants (`runtime::cpu_live_bytes()` returning to
//! baseline when requests retire) are about accountable state.

use std::cell::RefCell;

/// A free list of reusable `f32` scratch buffers.
///
/// [`ScratchArena::take`] checks out a zeroed buffer of the requested
/// length, preferring the smallest pooled buffer whose capacity fits
/// (best-fit, so a tiny request never pins a huge buffer); the caller
/// hands the buffer back with [`ScratchArena::put`] when done. Only a
/// checkout that no pooled buffer can satisfy allocates.
///
/// ```
/// use edkm_core::scratch::ScratchArena;
///
/// let mut arena = ScratchArena::new();
/// let buf = arena.take(128);
/// assert_eq!(buf.len(), 128);
/// arena.put(buf);
/// // The second checkout of the same shape reuses the pooled buffer.
/// let again = arena.take(128);
/// assert_eq!(arena.checkouts(), 2);
/// assert_eq!(arena.grows(), 1, "only the cold checkout allocated");
/// arena.put(again);
/// ```
#[derive(Debug, Default)]
pub struct ScratchArena {
    free: Vec<Vec<f32>>,
    free_idx: Vec<Vec<usize>>,
    checkouts: u64,
    grows: u64,
}

impl ScratchArena {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        ScratchArena::default()
    }

    /// Check out a zeroed buffer of exactly `len` elements, reusing the
    /// best-fitting pooled buffer when one exists. A zero-length checkout
    /// neither touches the free list nor counts as growth (an empty `Vec`
    /// does not allocate).
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        self.checkouts += 1;
        if len == 0 {
            return Vec::new();
        }
        let mut best: Option<(usize, usize)> = None;
        for (i, b) in self.free.iter().enumerate() {
            let cap = b.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        match best {
            Some((i, _)) => {
                let mut buf = self.free.swap_remove(i);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.grows += 1;
                vec![0.0; len]
            }
        }
    }

    /// Return a buffer to the free list for reuse.
    pub fn put(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Check out a zeroed `usize` index buffer of exactly `len` elements —
    /// the bookkeeping twin of [`ScratchArena::take`] (per-chunk cache
    /// starts, RoPE positions), sharing the same checkout/grow counters
    /// and the same allocation-free steady-state contract.
    pub fn take_idx(&mut self, len: usize) -> Vec<usize> {
        self.checkouts += 1;
        if len == 0 {
            return Vec::new();
        }
        let mut best: Option<(usize, usize)> = None;
        for (i, b) in self.free_idx.iter().enumerate() {
            let cap = b.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        match best {
            Some((i, _)) => {
                let mut buf = self.free_idx.swap_remove(i);
                buf.clear();
                buf.resize(len, 0);
                buf
            }
            None => {
                self.grows += 1;
                vec![0; len]
            }
        }
    }

    /// Return an index buffer to its free list for reuse.
    pub fn put_idx(&mut self, buf: Vec<usize>) {
        if buf.capacity() > 0 {
            self.free_idx.push(buf);
        }
    }

    /// Total checkouts served over the arena's lifetime.
    pub fn checkouts(&self) -> u64 {
        self.checkouts
    }

    /// Checkouts that had to allocate because no pooled buffer fit. Flat
    /// across steady-state decode steps — the allocation-free contract.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Buffers currently sitting in the free lists (f32 and index).
    pub fn pooled(&self) -> usize {
        self.free.len() + self.free_idx.len()
    }

    /// Fold `other`'s free lists and counters into this arena (how nested
    /// [`with_thread_scratch`] scopes re-merge on exit).
    fn absorb(&mut self, other: ScratchArena) {
        self.checkouts += other.checkouts;
        self.grows += other.grows;
        self.free.extend(other.free);
        self.free_idx.extend(other.free_idx);
    }
}

thread_local! {
    static THREAD_SCRATCH: RefCell<ScratchArena> = RefCell::new(ScratchArena::new());
}

/// Run `f` with this thread's long-lived [`ScratchArena`] — what the
/// `Tensor`-returning compatibility wrappers (and shard worker threads) use
/// so that even callers without an explicit arena recycle their scratch.
///
/// Re-entrant: the arena is moved out of the thread slot for `f`'s
/// duration, so a nested call (e.g. a sharded projection running its shard
/// GEMMs inline on the calling thread) gets a fresh arena, and both merge
/// back on exit.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut ScratchArena) -> R) -> R {
    let mut arena = THREAD_SCRATCH.with(|a| std::mem::take(&mut *a.borrow_mut()));
    let out = f(&mut arena);
    THREAD_SCRATCH.with(|a| {
        let mut slot = a.borrow_mut();
        arena.absorb(std::mem::take(&mut *slot));
        *slot = arena;
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_even_after_reuse() {
        let mut a = ScratchArena::new();
        let mut b = a.take(8);
        b.iter_mut().for_each(|v| *v = 7.0);
        a.put(b);
        assert!(a.take(8).iter().all(|&v| v == 0.0), "reuse must re-zero");
    }

    #[test]
    fn best_fit_prefers_the_smallest_sufficient_buffer() {
        let mut a = ScratchArena::new();
        let big = a.take(1000);
        let small = a.take(10);
        a.put(big);
        a.put(small);
        let got = a.take(10);
        assert!(got.capacity() < 1000, "must not burn the big buffer");
        a.put(got);
        assert_eq!(a.grows(), 2);
        assert_eq!(a.pooled(), 2);
    }

    #[test]
    fn steady_state_shape_stops_growing() {
        let mut a = ScratchArena::new();
        for _ in 0..5 {
            let x = a.take(64);
            let y = a.take(128);
            a.put(x);
            a.put(y);
        }
        assert_eq!(a.grows(), 2, "one allocation per distinct shape");
        assert_eq!(a.checkouts(), 10);
    }

    #[test]
    fn index_buffers_recycle_like_f32_buffers() {
        let mut a = ScratchArena::new();
        let mut idx = a.take_idx(16);
        idx.iter_mut().for_each(|v| *v = 9);
        a.put_idx(idx);
        let grows = a.grows();
        let again = a.take_idx(16);
        assert!(again.iter().all(|&v| v == 0), "reuse must re-zero");
        assert_eq!(a.grows(), grows, "warm index checkout must not allocate");
        a.put_idx(again);
        // The pools are separate: an f32 checkout cannot satisfy an index
        // request or vice versa.
        let f = a.take(16);
        assert_eq!(a.grows(), grows + 1);
        a.put(f);
    }

    #[test]
    fn zero_len_buffers_are_not_pooled() {
        let mut a = ScratchArena::new();
        a.put(Vec::new());
        assert_eq!(a.pooled(), 0);
    }

    #[test]
    fn thread_scratch_persists_across_calls() {
        let first = with_thread_scratch(|a| {
            let b = a.take(32);
            a.put(b);
            a.grows()
        });
        let second = with_thread_scratch(|a| {
            let b = a.take(32);
            a.put(b);
            a.grows()
        });
        assert_eq!(first, second, "second call reuses the pooled buffer");
    }
}
