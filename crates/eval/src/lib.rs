//! # edkm-eval
//!
//! The evaluation harness behind the Table 3 reproduction: perplexity,
//! length-normalized multiple-choice log-likelihood scoring (the
//! lm-eval-harness convention), greedy cloze scoring, and report
//! formatting.

pub mod multichoice;
pub mod perplexity;
pub mod report;
pub mod stats;

pub use multichoice::{
    choice_logprob, cloze_outcomes, evaluate_suite, evaluate_task, multichoice_outcomes,
    score_cloze, score_multichoice,
};
pub use perplexity::perplexity;
pub use report::{render_table3, Table3Row};
pub use stats::{bootstrap_ci, paired_superiority, AccuracyCi};
