//! Table 3-style report rendering.

use edkm_data::TaskKind;

/// One row of the accuracy table (one compression method).
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Method label (e.g. "eDKM", "GPTQ g128").
    pub method: String,
    /// Weight bits (16 for the uncompressed baseline).
    pub bits: u8,
    /// Serialized model bytes.
    pub size_bytes: usize,
    /// Accuracy (%) per task, in suite order.
    pub accuracies: Vec<(TaskKind, f32)>,
}

/// Render rows in the paper's Table 3 layout (method, bits, size, one
/// column per benchmark).
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut s = String::new();
    let headers: Vec<&str> = rows
        .first()
        .map(|r| r.accuracies.iter().map(|(k, _)| k.name()).collect())
        .unwrap_or_default();
    s.push_str(&format!(
        "{:<14} {:>4} {:>10}",
        "Method", "bits", "Size(KB)"
    ));
    for h in &headers {
        s.push_str(&format!(" {h:>10}"));
    }
    s.push('\n');
    for r in rows {
        s.push_str(&format!(
            "{:<14} {:>4} {:>10.1}",
            r.method,
            r.bits,
            r.size_bytes as f64 / 1024.0
        ));
        for (_, acc) in &r.accuracies {
            s.push_str(&format!(" {acc:>10.1}"));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let rows = vec![
            Table3Row {
                method: "LLaMA-sim".into(),
                bits: 16,
                size_bytes: 10240,
                accuracies: vec![(TaskKind::SynPiqa, 79.3), (TaskKind::SynMmlu, 35.2)],
            },
            Table3Row {
                method: "eDKM".into(),
                bits: 3,
                size_bytes: 2048,
                accuracies: vec![(TaskKind::SynPiqa, 77.7), (TaskKind::SynMmlu, 30.3)],
            },
        ];
        let s = render_table3(&rows);
        assert!(s.contains("PIQA"));
        assert!(s.contains("MMLU"));
        assert!(s.contains("eDKM"));
        assert!(s.contains("79.3"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn empty_rows_render_header_only() {
        let s = render_table3(&[]);
        assert_eq!(s.lines().count(), 1);
    }
}
