//! Multiple-choice and cloze scoring (lm-eval-harness conventions).

use edkm_autograd::no_grad;
use edkm_data::{ClozeTask, MultiChoiceTask, Task, TaskKind, TaskSuite};
use edkm_nn::LlamaModel;
use edkm_tensor::ops as t;

/// Length-normalized log-probability of `choice` as the continuation of
/// `prompt`.
///
/// # Panics
///
/// Panics if `prompt` or `choice` is empty or the combined length exceeds
/// the model's `max_seq`.
pub fn choice_logprob(model: &LlamaModel, prompt: &[usize], choice: &[usize]) -> f32 {
    assert!(!prompt.is_empty(), "empty prompt");
    assert!(!choice.is_empty(), "empty choice");
    let _ng = no_grad();
    let mut seq: Vec<usize> = prompt.to_vec();
    seq.extend_from_slice(choice);
    let tl = seq.len();
    // Predict positions 1..tl from 0..tl-1.
    let logits = model.logits(&seq[..tl - 1], 1, tl - 1, None);
    let logp = t::log_softmax_lastdim(logits.value());
    let vocab = model.config().vocab;
    let lp = logp.to_vec();
    let mut total = 0.0f32;
    for (k, &tok) in choice.iter().enumerate() {
        // choice token k sits at position prompt.len()+k, predicted by the
        // logits row at index prompt.len()+k-1.
        let row = prompt.len() + k - 1;
        total += lp[row * vocab + tok];
    }
    total / choice.len() as f32
}

/// Per-item correctness on multiple-choice items: the choice with the
/// highest normalized log-probability wins.
pub fn multichoice_outcomes(model: &LlamaModel, items: &[MultiChoiceTask]) -> Vec<bool> {
    items
        .iter()
        .map(|item| {
            let scores: Vec<f32> = item
                .choices
                .iter()
                .map(|c| choice_logprob(model, &item.prompt, c))
                .collect();
            let best = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            best == item.correct
        })
        .collect()
}

/// Per-item correctness on cloze items: greedy next token must equal the
/// answer.
pub fn cloze_outcomes(model: &LlamaModel, items: &[ClozeTask]) -> Vec<bool> {
    let _ng = no_grad();
    items
        .iter()
        .map(|item| {
            let tl = item.prompt.len();
            let logits = model.logits(&item.prompt, 1, tl, None);
            let last = logits.value().slice(0, tl - 1, 1);
            t::argmax_lastdim(&last)[0] == item.answer
        })
        .collect()
}

fn percent(outcomes: &[bool]) -> f32 {
    100.0 * outcomes.iter().filter(|&&b| b).count() as f32 / outcomes.len() as f32
}

/// Accuracy (%) of the model on multiple-choice items.
pub fn score_multichoice(model: &LlamaModel, items: &[MultiChoiceTask]) -> f32 {
    assert!(!items.is_empty(), "no items");
    percent(&multichoice_outcomes(model, items))
}

/// Accuracy (%) on cloze items.
pub fn score_cloze(model: &LlamaModel, items: &[ClozeTask]) -> f32 {
    assert!(!items.is_empty(), "no items");
    percent(&cloze_outcomes(model, items))
}

/// Per-item correctness for any task.
pub fn task_outcomes(model: &LlamaModel, task: &Task) -> Vec<bool> {
    match task {
        Task::MultiChoice { items, .. } => multichoice_outcomes(model, items),
        Task::Cloze { items, .. } => cloze_outcomes(model, items),
    }
}

/// Accuracy (%) of one task.
pub fn evaluate_task(model: &LlamaModel, task: &Task) -> f32 {
    match task {
        Task::MultiChoice { items, .. } => score_multichoice(model, items),
        Task::Cloze { items, .. } => score_cloze(model, items),
    }
}

/// Accuracy (%) per task of a whole suite, in Table 3 column order.
pub fn evaluate_suite(model: &LlamaModel, suite: &TaskSuite) -> Vec<(TaskKind, f32)> {
    suite
        .tasks()
        .iter()
        .map(|task| (task.kind(), evaluate_task(model, task)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_data::Grammar;
    use edkm_nn::{AdamWConfig, LlamaConfig, LlamaModel, LmBatch, TrainConfig, Trainer};
    use edkm_tensor::{runtime, DType, Device};

    fn model() -> LlamaModel {
        runtime::reset();
        LlamaModel::new(
            LlamaConfig {
                vocab: 64,
                d_model: 16,
                n_heads: 2,
                n_layers: 1,
                d_ff: 32,
                max_seq: 32,
            },
            DType::F32,
            Device::Cpu,
            0,
        )
    }

    #[test]
    fn logprob_is_negative_and_finite() {
        let m = model();
        let lp = choice_logprob(&m, &[1, 2, 3], &[4, 5]);
        assert!(lp < 0.0 && lp.is_finite());
    }

    #[test]
    fn logprob_prefers_trained_continuation() {
        let m = model();
        // Teach the model that 7 follows [1, 2].
        let mut trainer = Trainer::new(TrainConfig {
            optim: AdamWConfig {
                lr: 5e-3,
                ..AdamWConfig::default()
            },
            ..TrainConfig::default()
        });
        let params = m.params();
        let batch = LmBatch::new(vec![vec![1, 2, 7, 1, 2, 7]]);
        for _ in 0..40 {
            trainer.step(&m, &batch, &params, None);
        }
        let good = choice_logprob(&m, &[1, 2], &[7]);
        let bad = choice_logprob(&m, &[1, 2], &[9]);
        assert!(good > bad, "trained continuation must score higher");
    }

    #[test]
    fn untrained_accuracy_is_near_chance() {
        let m = model();
        let g = Grammar::default_with_seed(0);
        let suite = edkm_data::TaskSuite::generate(&g, 40, 1);
        for (kind, acc) in evaluate_suite(&m, &suite) {
            let chance = kind.chance_percent();
            // Untrained models should hover near chance (generously wide
            // band: tiny models have arbitrary biases).
            assert!(
                (acc - chance).abs() <= 35.0,
                "{}: acc {acc} too far from chance {chance}",
                kind.name()
            );
        }
    }

    #[test]
    fn cloze_scoring_counts_exact_matches() {
        let m = model();
        let g = Grammar::default_with_seed(0);
        let suite = edkm_data::TaskSuite::generate(&g, 10, 2);
        let cloze = suite
            .tasks()
            .iter()
            .find(|t| t.kind() == TaskKind::SynTriviaQa)
            .unwrap();
        let acc = evaluate_task(&m, cloze);
        assert!((0.0..=100.0).contains(&acc));
    }

    #[test]
    fn suite_reports_all_seven() {
        let m = model();
        let g = Grammar::default_with_seed(0);
        let suite = edkm_data::TaskSuite::generate(&g, 5, 3);
        let results = evaluate_suite(&m, &suite);
        assert_eq!(results.len(), 7);
        assert_eq!(results[0].0, TaskKind::SynPiqa);
        assert_eq!(results[6].0, TaskKind::SynMmlu);
    }
}
