//! Held-out perplexity.

use edkm_autograd::no_grad;
use edkm_nn::LlamaModel;

/// Perplexity of `model` over token `windows` (each ≥ 2 tokens):
/// `exp(mean next-token cross-entropy)`.
///
/// # Panics
///
/// Panics if `windows` is empty or any window is shorter than 2 tokens.
pub fn perplexity(model: &LlamaModel, windows: &[Vec<usize>]) -> f32 {
    assert!(!windows.is_empty(), "perplexity needs at least one window");
    let _ng = no_grad();
    let mut total = 0.0f64;
    let mut count = 0usize;
    for w in windows {
        assert!(w.len() >= 2, "windows must have >= 2 tokens");
        let loss = model.lm_loss(std::slice::from_ref(w), None);
        total += loss.value().item() as f64 * (w.len() - 1) as f64;
        count += w.len() - 1;
    }
    ((total / count as f64).exp()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_nn::{AdamWConfig, LlamaConfig, LmBatch, TrainConfig, Trainer};
    use edkm_tensor::{runtime, DType, Device};

    #[test]
    fn untrained_model_is_near_uniform() {
        runtime::reset();
        let cfg = LlamaConfig::tiny();
        let model = LlamaModel::new(cfg, DType::F32, Device::Cpu, 0);
        let ppl = perplexity(&model, &[vec![1, 2, 3, 4], vec![5, 6, 7, 8]]);
        let uniform = cfg.vocab as f32;
        assert!(
            ppl > uniform * 0.55 && ppl < uniform * 1.8,
            "init ppl {ppl} should be near |V| = {uniform}"
        );
    }

    #[test]
    fn training_reduces_perplexity() {
        runtime::reset();
        let model = LlamaModel::new(LlamaConfig::tiny(), DType::F32, Device::Cpu, 0);
        let window = vec![1usize, 2, 3, 1, 2, 3, 1, 2];
        let before = perplexity(&model, std::slice::from_ref(&window));
        let mut trainer = Trainer::new(TrainConfig {
            optim: AdamWConfig {
                lr: 3e-3,
                ..AdamWConfig::default()
            },
            ..TrainConfig::default()
        });
        let params = model.params();
        let batch = LmBatch::new(vec![window.clone()]);
        for _ in 0..40 {
            trainer.step(&model, &batch, &params, None);
        }
        let after = perplexity(&model, &[window]);
        assert!(after < before * 0.7, "ppl should fall: {before} -> {after}");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_windows_panic() {
        runtime::reset();
        let model = LlamaModel::new(LlamaConfig::tiny(), DType::F32, Device::Cpu, 0);
        perplexity(&model, &[]);
    }
}
