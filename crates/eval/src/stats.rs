//! Uncertainty quantification for benchmark accuracies.
//!
//! Table 3 cells are finite-sample estimates; this module provides the
//! bootstrap confidence intervals used in EXPERIMENTS.md's noise notes, and
//! a paired significance check for "method A beats method B" claims.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A bootstrap confidence interval on an accuracy (percent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyCi {
    /// Point estimate (%).
    pub mean: f32,
    /// Lower bound (%).
    pub lo: f32,
    /// Upper bound (%).
    pub hi: f32,
}

/// Percentile-bootstrap CI over per-item correctness indicators.
///
/// `level` is the central coverage (e.g. 0.95).
///
/// # Panics
///
/// Panics if `outcomes` is empty or `level` is not in (0, 1).
pub fn bootstrap_ci(outcomes: &[bool], level: f64, resamples: usize, seed: u64) -> AccuracyCi {
    assert!(!outcomes.is_empty(), "no outcomes");
    assert!(level > 0.0 && level < 1.0, "level must be in (0,1)");
    let n = outcomes.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut means: Vec<f32> = (0..resamples.max(1))
        .map(|_| {
            let hits = (0..n).filter(|_| outcomes[rng.gen_range(0..n)]).count();
            100.0 * hits as f32 / n as f32
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((means.len() as f64) * alpha) as usize;
    let hi_idx = (((means.len() as f64) * (1.0 - alpha)) as usize).min(means.len() - 1);
    let mean = 100.0 * outcomes.iter().filter(|&&b| b).count() as f32 / n as f32;
    AccuracyCi {
        mean,
        lo: means[lo_idx],
        hi: means[hi_idx],
    }
}

/// Paired-bootstrap probability that method `a` is more accurate than
/// method `b` on the *same* items (per-item outcome vectors must align).
///
/// # Panics
///
/// Panics if the vectors are empty or differ in length.
pub fn paired_superiority(a: &[bool], b: &[bool], resamples: usize, seed: u64) -> f32 {
    assert_eq!(a.len(), b.len(), "paired outcomes must align");
    assert!(!a.is_empty(), "no outcomes");
    let n = a.len();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b9);
    let mut wins = 0usize;
    let resamples = resamples.max(1);
    for _ in 0..resamples {
        let mut diff = 0i64;
        for _ in 0..n {
            let i = rng.gen_range(0..n);
            diff += a[i] as i64 - b[i] as i64;
        }
        if diff > 0 {
            wins += 1;
        }
    }
    wins as f32 / resamples as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_brackets_the_mean() {
        let outcomes: Vec<bool> = (0..200).map(|i| i % 4 != 0).collect(); // 75%
        let ci = bootstrap_ci(&outcomes, 0.95, 500, 1);
        assert!((ci.mean - 75.0).abs() < 1e-4);
        assert!(ci.lo <= ci.mean && ci.mean <= ci.hi);
        assert!(ci.hi - ci.lo < 15.0, "CI too wide: {ci:?}");
        assert!(ci.hi - ci.lo > 1.0, "CI suspiciously tight: {ci:?}");
    }

    #[test]
    fn ci_narrows_with_more_items() {
        let small: Vec<bool> = (0..50).map(|i| i % 2 == 0).collect();
        let large: Vec<bool> = (0..2000).map(|i| i % 2 == 0).collect();
        let cs = bootstrap_ci(&small, 0.95, 400, 2);
        let cl = bootstrap_ci(&large, 0.95, 400, 2);
        assert!(cl.hi - cl.lo < cs.hi - cs.lo);
    }

    #[test]
    fn perfect_scores_have_degenerate_ci() {
        let ci = bootstrap_ci(&[true; 100], 0.95, 200, 3);
        assert_eq!(ci.mean, 100.0);
        assert_eq!(ci.lo, 100.0);
        assert_eq!(ci.hi, 100.0);
    }

    #[test]
    fn paired_test_detects_clear_winner() {
        // a correct on 90%, b on 60%, overlapping items.
        let a: Vec<bool> = (0..300).map(|i| i % 10 != 0).collect();
        let b: Vec<bool> = (0..300).map(|i| i % 10 < 6).collect();
        let p = paired_superiority(&a, &b, 400, 4);
        assert!(p > 0.99, "clear winner must be detected: {p}");
        let p_rev = paired_superiority(&b, &a, 400, 4);
        assert!(p_rev < 0.01);
    }

    #[test]
    fn paired_test_is_uncertain_for_ties() {
        let a: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let b: Vec<bool> = (0..100).map(|i| i % 2 == 1).collect(); // same rate
        let p = paired_superiority(&a, &b, 800, 5);
        assert!(p > 0.2 && p < 0.8, "tied methods must be ambiguous: {p}");
    }

    #[test]
    #[should_panic(expected = "no outcomes")]
    fn empty_outcomes_panic() {
        bootstrap_ci(&[], 0.95, 10, 0);
    }
}
