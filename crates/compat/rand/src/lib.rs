//! Offline API-subset shim of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *interface* this repository actually uses
//! (`StdRng`, `SeedableRng`, `Rng::{gen, gen_range}`, `SliceRandom::shuffle`)
//! over a deterministic xoshiro256++ generator. Streams differ from upstream
//! `rand` for the same seed — everything in this workspace only relies on
//! *determinism*, never on specific stream values.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Minimal core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a reproducible generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministically seed the generator.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa-bearing bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniformly samplable from a half-open `lo..hi` range.
pub trait SampleUniform: Sized {
    /// Draw uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f32::draw(rng) * (hi - lo)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of `T`'s full standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value in the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f32 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = r.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 6];
        for _ in 0..500 {
            let v = r.gen_range(0..6usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bucket values must appear");
        for _ in 0..100 {
            let f = r.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_centered() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
