//! Sampling from explicit option sets.

use crate::{Strategy, TestRng};

/// Strategy choosing uniformly among `options`.
///
/// # Panics
///
/// Panics (at sample time) if `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "select over an empty set");
        self.options[rng.index(self.options.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_options() {
        let s = select(vec![1usize, 3, 7]);
        let mut rng = TestRng::deterministic("select");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.sample(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
