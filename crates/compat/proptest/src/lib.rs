//! Offline API-subset shim of `proptest`.
//!
//! Supports the surface this workspace's property tests use: the
//! `proptest!` macro (with optional `#![proptest_config(..)]`), range and
//! `any::<T>()` strategies, `Just`, `prop_oneof!`, `prop::collection::vec`,
//! `prop::num::f32::NORMAL`, `prop::sample::select`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: sampling is deterministic per test name (no
//! `PROPTEST_*` env handling), failures panic immediately, and there is **no
//! shrinking** — a failing case prints the assertion, not a minimal
//! counterexample. Good enough to enforce the properties; swap the path
//! dependency for upstream proptest when a registry is reachable.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod num;
pub mod sample;

/// Deterministic generator driving every strategy (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator seeded from a test's name, so every run replays the same
    /// cases.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `0..n` (`n > 0`).
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Per-block test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// Box a strategy for heterogeneous unions (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! int_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                self.start().wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
int_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a full-domain default strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        num::f32::NORMAL.sample(rng)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// Strategy over `T`'s whole domain.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Union of `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.index(self.options.len());
        self.options[i].sample(rng)
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Just,
        ProptestConfig, Strategy, TestRng, Union,
    };

    /// Namespace mirror of upstream's `prop::` module tree.
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::sample;
    }
}

/// Define property tests: each `fn name(arg in strategy, ..) { .. }` becomes
/// a `#[test]` that samples and runs the body `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..config.cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a property (no shrinking in the offline shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a property (no shrinking in the offline shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a property (no shrinking in the offline shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::boxed($s) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_any_sample_in_domain() {
        let mut rng = TestRng::deterministic("domain");
        for _ in 0..200 {
            let v = Strategy::sample(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::sample(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let _: u64 = Strategy::sample(&any::<u64>(), &mut rng);
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::deterministic("union");
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::sample(&s, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: multiple args, trailing comma, prop_asserts.
        #[test]
        fn macro_roundtrip(
            a in 1usize..5,
            b in any::<u16>(),
            v in prop::collection::vec(0u32..7, 0..6),
        ) {
            prop_assert!((1..5).contains(&a));
            prop_assert_eq!(u32::from(b) as u64, b as u64);
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 7));
        }
    }
}
