//! Numeric strategies.

/// `f32` strategies.
pub mod f32 {
    use crate::{Strategy, TestRng};

    /// Strategy yielding *normal* (finite, non-zero, non-subnormal) `f32`s
    /// of either sign across the whole exponent range.
    #[derive(Debug, Clone, Copy)]
    pub struct Normal;

    /// All normal `f32` values.
    pub const NORMAL: Normal = Normal;

    impl Strategy for Normal {
        type Value = f32;

        fn sample(&self, rng: &mut TestRng) -> f32 {
            loop {
                let candidate = f32::from_bits(rng.next_u64() as u32);
                if candidate.is_normal() {
                    return candidate;
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn only_normal_values() {
            let mut rng = TestRng::deterministic("normal-f32");
            let mut saw_negative = false;
            for _ in 0..500 {
                let v = NORMAL.sample(&mut rng);
                assert!(v.is_normal());
                saw_negative |= v < 0.0;
            }
            assert!(saw_negative, "both signs must occur");
        }
    }
}
