//! Collection strategies.

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Strategy for vectors of `element` values with a length drawn from
/// `sizes`.
pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, sizes }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    sizes: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = Strategy::sample(&self.sizes.clone(), rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_range() {
        let s = vec(10u8..20, 2..5);
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| (10..20).contains(&x)));
        }
    }
}
