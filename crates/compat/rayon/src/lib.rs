//! Offline API-subset shim of `rayon` over `std::thread::scope`.
//!
//! Implements exactly the parallel surface the workspace's hot paths use —
//! `par_chunks_mut(..).for_each`, `par_chunks_mut(..).enumerate().for_each`,
//! [`join`], [`scope`], [`current_num_threads`] — with the same call shapes
//! as upstream rayon, so the path dependency can later be swapped for the
//! real crate without touching call sites.
//!
//! Scheduling is static: the chunk list is divided into one contiguous run
//! per worker thread. That is cruder than rayon's work stealing but correct,
//! and for the near-uniform row workloads in this repository it is within
//! noise of ideal. Work is only parallelized when there is more than one
//! chunk and more than one available core; otherwise it runs inline on the
//! caller, which keeps tiny kernels allocation- and thread-free.

pub mod prelude {
    pub use crate::slice::ParallelSliceMut;
}

pub mod slice;

/// Number of worker threads a parallel operation may use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon-shim join task panicked"))
    })
}

/// Scope for spawning parallel tasks that may borrow from the caller.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task inside the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Run `f` with a scope whose spawned tasks all finish before `scope`
/// returns.
pub fn scope<'env, F>(f: F)
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) + Send,
{
    std::thread::scope(|s| f(&Scope { inner: s }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn scope_waits_for_tasks() {
        let hits = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn thread_count_positive() {
        assert!(current_num_threads() >= 1);
    }
}
