//! Parallel mutable slice chunking.

use crate::current_num_threads;

/// Parallel extensions on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Non-overlapping mutable chunks of `chunk_size` elements (the last may
    /// be shorter), processable in parallel.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            data: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParChunksMut<'a, T> {
    data: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { chunks: self }
    }

    /// Apply `f` to every chunk, in parallel when profitable.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Send + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated parallel iterator over mutable chunks.
pub struct ParChunksMutEnumerate<'a, T> {
    chunks: ParChunksMut<'a, T>,
}

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    /// Apply `f` to every `(index, chunk)` pair, in parallel when profitable.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Send + Sync,
    {
        let chunk_size = self.chunks.chunk_size;
        let data = self.chunks.data;
        let n_chunks = data.len().div_ceil(chunk_size.max(1));
        let workers = current_num_threads().min(n_chunks);
        if workers <= 1 {
            for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
                f((i, chunk));
            }
            return;
        }
        // Static split: one contiguous run of chunks per worker.
        let per_worker = n_chunks.div_ceil(workers);
        let mut runs: Vec<(usize, &mut [T])> = Vec::with_capacity(workers);
        let mut rest = data;
        let mut first_chunk = 0;
        while !rest.is_empty() {
            let take = (per_worker * chunk_size).min(rest.len());
            let (run, tail) = rest.split_at_mut(take);
            runs.push((first_chunk, run));
            first_chunk += per_worker;
            rest = tail;
        }
        let f = &f;
        std::thread::scope(|s| {
            for (base, run) in runs {
                s.spawn(move || {
                    for (i, chunk) in run.chunks_mut(chunk_size).enumerate() {
                        f((base + i, chunk));
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_every_element_once() {
        let mut v = vec![0u32; 1003];
        v.as_mut_slice()
            .par_chunks_mut(17)
            .enumerate()
            .for_each(|(i, chunk)| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x += (i * 17 + j) as u32;
                }
            });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as u32);
        }
    }

    #[test]
    fn unenumerated_for_each_visits_all() {
        let mut v = vec![1i64; 256];
        v.as_mut_slice().par_chunks_mut(8).for_each(|chunk| {
            for x in chunk {
                *x *= 2;
            }
        });
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn single_chunk_runs_inline() {
        let mut v = vec![0u8; 5];
        v.as_mut_slice().par_chunks_mut(100).for_each(|c| c.fill(9));
        assert_eq!(v, vec![9; 5]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chunk_size_panics() {
        [0u8; 2].as_mut_slice().par_chunks_mut(0).for_each(|_| {});
    }
}
