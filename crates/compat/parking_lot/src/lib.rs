//! Offline API-subset shim of `parking_lot` over `std::sync`.
//!
//! Only the surface this workspace uses: `Mutex::{new, lock}` and
//! `RwLock::{new, read, write}`, with parking_lot's non-poisoning semantics
//! (a panic while holding a guard does not poison the lock).

use std::sync::{self, PoisonError};

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Non-poisoning mutual exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// New unlocked mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// New unlocked lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until shared read access is held.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Block until exclusive write access is held.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must stay usable after a panic");
    }
}
