//! No-op `Serialize` / `Deserialize` derives.
//!
//! The workspace derives serde traits on a handful of config enums/structs
//! but never serializes through serde (the on-disk format in
//! `edkm-core::serialize` is hand-rolled). Offline, the derives expand to
//! nothing so the annotations stay source-compatible with upstream serde.

use proc_macro::TokenStream;

/// Expands to nothing (marker only).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing (marker only).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
