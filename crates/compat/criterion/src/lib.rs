//! Offline API-subset shim of `criterion`.
//!
//! Supports the bench surface this workspace uses — `Criterion::default()`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `sample_size`, `b.iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros (both plain and
//! `name/config/targets` forms). Instead of criterion's statistical engine
//! it reports the median wall-clock time of `sample_size` timed iterations.
//! Swap the path dependency for upstream criterion when a registry is
//! reachable.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("[bench] group {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, None, f);
    }
}

/// Identifier `function_name/parameter` for parameterized benches.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id for `function_name` at `parameter`.
    pub fn new(function_name: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        run_one(&name, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Finish the group (reporting is per-bench; this is a no-op).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `sample_size` calls of `routine` (after one warm-up call).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one<F>(name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("[bench] {name}: no samples (b.iter never called)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let rate = throughput
        .map(|t| match t {
            Throughput::Elements(n) => {
                format!("  ({:.1} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
            }
            Throughput::Bytes(n) => {
                format!("  ({:.1} MB/s)", n as f64 / median.as_secs_f64() / 1e6)
            }
        })
        .unwrap_or_default();
    eprintln!("[bench] {name}: median {median:?} over {sample_size} samples{rate}");
}

/// Collect benchmark functions under one group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x * x));
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        c.bench_function("top", |b| b.iter(|| black_box(2 + 2)));
    }

    #[test]
    fn harness_runs_all_forms() {
        let mut c = Criterion::default().sample_size(2);
        sample_bench(&mut c);
    }

    criterion_group!(plain_group, sample_bench);
    criterion_group! {
        name = cfg_group;
        config = Criterion::default().sample_size(2);
        targets = sample_bench
    }

    #[test]
    fn groups_invoke() {
        plain_group();
        cfg_group();
    }
}
