//! Offline API-subset shim of `serde`.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derive markers. Nothing in
//! this workspace serializes through serde (see `edkm-core::serialize` for
//! the real on-disk format), so the derives only need to exist, not to emit
//! code. Swap this path dependency for upstream serde when a registry is
//! reachable.

pub use serde_derive::{Deserialize, Serialize};
