//! Round-to-nearest (RTN) uniform quantization.

use crate::common::{
    affine_fake_quant, effective_group, group_quant_size_bytes, QuantResult, WeightQuantizer,
};
use edkm_tensor::{DType, Tensor};

/// Per-group affine min–max quantizer (the simplest PTQ baseline in
/// Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtnQuantizer {
    bits: u8,
    /// Group size along the input dimension; 0 = per-row.
    group: usize,
}

impl RtnQuantizer {
    /// New RTN at `bits` with `group` columns per scale (0 = whole row).
    pub fn new(bits: u8, group: usize) -> Self {
        assert!((1..=8).contains(&bits), "rtn bits must be 1..=8");
        RtnQuantizer { bits, group }
    }

    /// Group size.
    pub fn group(&self) -> usize {
        self.group
    }

    /// Fake-quantize an arbitrary tensor (used by LLM-QAT's STE forward):
    /// rows are the leading dim, groups along the trailing dim.
    pub fn fake_quant_tensor(&self, w: &Tensor) -> Tensor {
        let cols = *w.shape().last().expect("rank >= 1");
        let g = effective_group(cols, self.group);
        let data = w.to_vec();
        let mut out = Vec::with_capacity(data.len());
        for row in data.chunks(cols) {
            for seg in row.chunks(g) {
                out.extend(affine_fake_quant(seg, self.bits));
            }
        }
        Tensor::from_vec(out, w.shape(), DType::F32, w.device())
    }
}

impl WeightQuantizer for RtnQuantizer {
    fn method_name(&self) -> String {
        if self.group == 0 {
            "RTN".to_string()
        } else {
            format!("RTN g{}", self.group)
        }
    }

    fn bits(&self) -> u8 {
        self.bits
    }

    fn quantize(&self, w: &Tensor, _calib: Option<&Tensor>) -> QuantResult {
        assert_eq!(w.rank(), 2, "RTN expects [out, in]");
        let (rows, cols) = (w.shape()[0], w.shape()[1]);
        let g = effective_group(cols, self.group);
        QuantResult {
            dequantized: self.fake_quant_tensor(w),
            size_bytes: group_quant_size_bytes(rows, cols, self.bits, g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_tensor::{runtime, Device};

    #[test]
    fn name_and_bits() {
        assert_eq!(RtnQuantizer::new(4, 0).method_name(), "RTN");
        assert_eq!(RtnQuantizer::new(3, 128).method_name(), "RTN g128");
        assert_eq!(RtnQuantizer::new(3, 128).bits(), 3);
    }

    #[test]
    fn error_bounded_by_group_range() {
        runtime::reset();
        let w = Tensor::randn(&[8, 32], DType::F32, Device::Cpu, 0);
        let q = RtnQuantizer::new(4, 8).quantize(&w, None);
        let orig = w.to_vec();
        let deq = q.dequantized.to_vec();
        for (r, (o_row, d_row)) in orig.chunks(32).zip(deq.chunks(32)).enumerate() {
            for (gi, (o_seg, d_seg)) in o_row.chunks(8).zip(d_row.chunks(8)).enumerate() {
                let lo = o_seg.iter().cloned().fold(f32::INFINITY, f32::min);
                let hi = o_seg.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let step = (hi - lo) / 15.0;
                for (o, d) in o_seg.iter().zip(d_seg) {
                    assert!((o - d).abs() <= step / 2.0 + 1e-6, "row {r} group {gi}");
                }
            }
        }
    }

    #[test]
    fn more_bits_means_less_error() {
        runtime::reset();
        let w = Tensor::randn(&[16, 64], DType::F32, Device::Cpu, 1);
        let err = |bits: u8| {
            let q = RtnQuantizer::new(bits, 0).quantize(&w, None);
            edkm_tensor::ops::max_abs_diff(&w, &q.dequantized)
        };
        assert!(err(8) < err(4));
        assert!(err(4) < err(2));
    }

    #[test]
    fn smaller_groups_mean_less_error_more_bytes() {
        runtime::reset();
        let w = Tensor::randn(&[16, 64], DType::F32, Device::Cpu, 2);
        let fine = RtnQuantizer::new(3, 8).quantize(&w, None);
        let coarse = RtnQuantizer::new(3, 0).quantize(&w, None);
        let mse = |q: &QuantResult| {
            let d = q.dequantized.to_vec();
            w.to_vec()
                .iter()
                .zip(&d)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };
        assert!(mse(&fine) < mse(&coarse));
        assert!(fine.size_bytes > coarse.size_bytes);
    }

    #[test]
    fn size_accounting() {
        runtime::reset();
        let w = Tensor::randn(&[4, 128], DType::F32, Device::Cpu, 3);
        let q = RtnQuantizer::new(4, 128).quantize(&w, None);
        assert_eq!(q.size_bytes, (4 * 128 * 4) / 8 + 4 * 4);
    }
}
