//! Whole-model quantization with tapped calibration, and Table 3-style
//! size accounting.

use crate::common::WeightQuantizer;
use edkm_autograd::no_grad;
use edkm_nn::{tap, LlamaModel};
use edkm_tensor::Tensor;
use std::collections::HashMap;

/// Per-model quantization summary.
#[derive(Debug, Clone)]
pub struct ModelQuantReport {
    /// Method name (Table 3 row label).
    pub method: String,
    /// Code bit width.
    pub bits: u8,
    /// Serialized model bytes (quantized projections + 16-bit embeddings
    /// and norms, as the PTQ baselines ship them).
    pub size_bytes: usize,
    /// Per-projection serialized bytes.
    pub per_layer: Vec<(String, usize)>,
}

/// Run `windows` through the model under `no_grad` with the activation tap
/// armed, returning per-projection calibration matrices (truncated to at
/// most `max_rows` rows each).
pub fn capture_calibration(
    model: &LlamaModel,
    windows: &[Vec<usize>],
    max_rows: usize,
) -> HashMap<String, Tensor> {
    let _ng = no_grad();
    tap::start();
    for w in windows {
        let t = w.len().min(model.config().max_seq);
        model.logits(&w[..t], 1, t, None);
    }
    let captured = tap::stop();
    let mut out = HashMap::new();
    for name in captured.keys() {
        if let Some(x) = tap::concat_inputs(&captured, name) {
            let rows = x.shape()[0].min(max_rows);
            out.insert(name.clone(), x.slice(0, 0, rows).contiguous());
        }
    }
    out
}

/// Quantize every clusterable projection of `model` **in place** (weights
/// are replaced by their dequantized values) and return the size report.
///
/// Embeddings and norms are left at 16 bits, matching how the PTQ baselines
/// in Table 3 ship their models (eDKM's 8-bit embeddings are why its model
/// is smaller).
pub fn quantize_model(
    model: &LlamaModel,
    quantizer: &dyn WeightQuantizer,
    calib: Option<&HashMap<String, Tensor>>,
) -> ModelQuantReport {
    let clusterable: std::collections::HashSet<String> =
        model.clusterable_names().into_iter().collect();
    let mut size_bytes = 0usize;
    let mut per_layer = Vec::new();
    for (name, var) in model.named_params() {
        if clusterable.contains(&name) {
            let w = var.value().clone();
            let x = calib.and_then(|c| c.get(&name));
            let result = quantizer.quantize(&w, x);
            let dq = result.dequantized.to_vec();
            var.value().apply_inplace(|i, _| dq[i]);
            size_bytes += result.size_bytes;
            per_layer.push((name, result.size_bytes));
        } else {
            // Embedding + norms stay 16-bit.
            size_bytes += var.value().numel() * 2;
        }
    }
    ModelQuantReport {
        method: quantizer.method_name(),
        bits: quantizer.bits(),
        size_bytes,
        per_layer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtn::RtnQuantizer;
    use edkm_nn::LlamaConfig;
    use edkm_tensor::{DType, Device};

    fn model() -> LlamaModel {
        edkm_tensor::runtime::reset();
        LlamaModel::new(LlamaConfig::tiny(), DType::F32, Device::Cpu, 0)
    }

    #[test]
    fn calibration_covers_every_projection() {
        let m = model();
        let windows = vec![vec![1usize, 2, 3, 4, 5, 6]];
        let calib = capture_calibration(&m, &windows, 64);
        for name in m.clusterable_names() {
            let x = calib.get(&name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(x.rank(), 2);
            assert!(x.shape()[0] > 0);
        }
    }

    #[test]
    fn calibration_respects_max_rows() {
        let m = model();
        let windows = vec![vec![1usize; 8], vec![2usize; 8]];
        let calib = capture_calibration(&m, &windows, 5);
        for x in calib.values() {
            assert!(x.shape()[0] <= 5);
        }
    }

    #[test]
    fn quantize_model_replaces_weights_and_counts_size() {
        let m = model();
        let before = m.layers()[0].projections()[0].weight().value().to_vec();
        let rtn = RtnQuantizer::new(3, 0);
        let report = quantize_model(&m, &rtn, None);
        let after = m.layers()[0].projections()[0].weight().value().to_vec();
        assert_ne!(before, after, "weights must change");
        // 3-bit weights: at most 8 distinct values per row.
        let unique: std::collections::HashSet<u32> =
            after.iter().take(8).map(|v| v.to_bits()).collect();
        assert!(unique.len() <= 8);
        assert_eq!(report.method, "RTN");
        assert_eq!(report.per_layer.len(), 8);
        assert!(report.size_bytes > 0);
        // Smaller than the native 16-bit model.
        assert!(report.size_bytes < m.native_size_bytes());
    }

    #[test]
    fn four_bit_model_is_larger_than_three_bit() {
        let m3 = model();
        let m4 = model();
        let r3 = quantize_model(&m3, &RtnQuantizer::new(3, 0), None);
        let r4 = quantize_model(&m4, &RtnQuantizer::new(4, 0), None);
        assert!(r4.size_bytes > r3.size_bytes);
    }
}
